// Quickstart: the whole library in ~60 lines.
//
//   1. generate a Graph 500-style R-MAT graph;
//   2. train the switching-point predictor offline (once);
//   3. run the adaptive cross-architecture BFS (paper Algorithm 3);
//   4. inspect the per-level plan and the result.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "bfs/validate.h"
#include "core/api.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

int main() {
  using namespace bfsx;

  // 1. A scale-free graph: 2^14 vertices, edgefactor 16, the paper's
  //    Kronecker parameters (A,B,C,D) = (0.57, 0.19, 0.19, 0.05).
  graph::RmatParams params;
  params.scale = 14;
  params.edgefactor = 16;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(params));
  std::printf("graph: %s\n", graph::summarize(g).c_str());

  // 2. Offline training (paper Fig. 6). In production this happens once
  //    and the model is stored with SwitchPredictor::save_file.
  std::printf("training switching-point predictor...\n");
  core::TrainerConfig cfg = core::default_trainer_config();
  const core::SwitchPredictor predictor =
      core::train_predictor(core::generate_training_data(cfg));

  // 3. A heterogeneous node (Sandy Bridge host + Kepler K20x over PCIe,
  //    modelled) and one adaptive traversal.
  sim::Machine machine = sim::make_paper_node();
  const graph::vid_t root = graph::sample_roots(g, 1, 7)[0];
  const core::CombinationRun run = core::run_adaptive(
      g, root, core::features_from_rmat(params), machine, predictor);

  // 4. What happened, level by level.
  std::printf("\nper-level plan (root %d):\n", root);
  for (const core::ExecutedLevel& lvl : run.levels) {
    std::printf("  level %d: %-16s %-3s |V|cq=%-8d %.3f ms\n",
                lvl.outcome.level, lvl.device.c_str(),
                to_string(lvl.outcome.direction),
                lvl.outcome.frontier_vertices, lvl.outcome.seconds * 1e3);
  }
  std::printf("\nreached %d vertices in %.3f ms modelled time "
              "(%.3f GTEPS, %.3f ms of that on PCIe)\n",
              run.result.reached, run.seconds * 1e3, run.teps() / 1e9,
              run.transfer_seconds * 1e3);

  const bfs::ValidationReport report = bfs::validate_bfs(g, root, run.result);
  std::printf("Graph 500 validation: %s\n", report.ok ? "PASS" : report.error.c_str());
  return report.ok ? 0 : 1;
}
