// Capacity planner — "should I buy the accelerator?"
//
// Shows the what-if workflow the simulator + predictors enable: model a
// hypothetical device as a key=value string (sim/arch_config.h), check
// its roofline balance for BFS, and ask the trained TimePredictor
// whether pairing it with the CPU host would beat the devices you
// already have — all without touching hardware.
//
// Usage: ./examples/capacity_planner ["base=gpu,name=NextGen,..."]
#include <cstdio>
#include <string>
#include <vector>

#include "bfs/spmv.h"
#include "core/api.h"
#include "core/level_trace.h"
#include "core/tuner.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "sim/arch_config.h"
#include "sim/roofline.h"

int main(int argc, char** argv) {
  using namespace bfsx;

  // A hypothetical next-generation accelerator: double the K20x's
  // bandwidth, half its launch overhead, weaker all-miss penalty.
  const std::string spec_text =
      argc > 1 ? argv[1]
               : "base=gpu,name=NextGenGPU,bw_measured_gbps=376,"
                 "level_overhead_us=110,bu_edge_miss_ns=0.8,td_edge_ns=0.6";
  const sim::ArchSpec candidate = sim::parse_arch_spec(spec_text);
  std::printf("candidate device: %s\n\n", sim::format_arch_spec(candidate).c_str());

  // 1. Roofline sanity: is BFS still memory-bound on it?
  const double bfs_rcma = bfs::rcma_sparse_bfs(1 << 20, 16 << 20);
  std::printf("balance check: %s\n",
              sim::describe_balance(bfs_rcma, candidate, true).c_str());

  // 2. Representative workload and the devices to beat.
  graph::RmatParams p;
  p.scale = 16;
  p.edgefactor = 16;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  const graph::vid_t root = graph::sample_roots(g, 1, 11)[0];
  const core::LevelTrace trace = core::build_level_trace(g, root);

  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();
  const sim::InterconnectSpec link;

  struct Plan {
    std::string name;
    double seconds;
  };
  std::vector<Plan> plans;
  auto cross_cost = [&](const sim::ArchSpec& accel) {
    const core::TunedPolicy inner =
        core::pick_best(core::sweep_single(trace, accel, cands), cands);
    return core::pick_best(
               core::sweep_cross(trace, cpu, accel, link, cands, inner.policy),
               cands)
        .seconds;
  };
  plans.push_back({"CPU alone (tuned CB)",
                   core::pick_best(core::sweep_single(trace, cpu, cands), cands)
                       .seconds});
  plans.push_back({"CPU + K20x GPU", cross_cost(sim::make_kepler_gpu())});
  plans.push_back({"CPU + KNC MIC", cross_cost(sim::make_knights_corner_mic())});
  plans.push_back({"CPU + " + candidate.name, cross_cost(candidate)});

  std::printf("\ntuned plans on a SCALE-%d R-MAT (exhaustive oracle):\n",
              p.scale);
  double best = plans.front().seconds;
  for (const Plan& plan : plans) best = std::min(best, plan.seconds);
  for (const Plan& plan : plans) {
    std::printf("  %-24s %9.4f ms %s\n", plan.name.c_str(),
                plan.seconds * 1e3,
                plan.seconds == best ? "<- best" : "");
  }

  std::printf("\n(change the spec string to explore: e.g. "
              "\"base=mic,bw_measured_gbps=400\" or a full custom device — "
              "every numeric ArchSpec field is settable.)\n");
  return 0;
}
