// Offline training workflow (paper Fig. 6): generate labelled data by
// exhaustive search, train the two SVR models, persist them, reload,
// and sanity-check the reloaded predictor on a fresh graph.
//
// Usage: ./examples/train_and_save [model-path]
// (default model path: ./bfsx_switch_model.txt)
#include <cstdio>
#include <string>

#include "core/api.h"
#include "core/level_trace.h"
#include "core/tuner.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "ml/metrics.h"

int main(int argc, char** argv) {
  using namespace bfsx;
  const std::string path =
      argc > 1 ? argv[1] : std::string("bfsx_switch_model.txt");

  // Step 1-2 of Fig. 6: exhaustive-search labelling over the training
  // configurations (36 graphs x 4 architecture pairs = 144 samples).
  std::printf("generating training data (this is the one-time cost the "
              "paper amortises)...\n");
  const core::TrainerConfig cfg = core::default_trainer_config();
  const core::TrainingData data = core::generate_training_data(cfg);
  std::printf("  %zu samples, %zu features each\n", data.m_data.size(),
              data.m_data.num_features());

  // Step 3: fit the two SVR models and persist them.
  const core::SwitchPredictor predictor = core::train_predictor(data);
  predictor.save_file(path);
  std::printf("saved model to %s\n", path.c_str());

  // Runtime side: load and predict for an unseen graph.
  const core::SwitchPredictor loaded = core::SwitchPredictor::load_file(path);
  graph::RmatParams p;
  p.scale = 13;
  p.edgefactor = 20;
  p.seed = 31337;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  const graph::vid_t root = graph::sample_roots(g, 1, 3)[0];

  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const core::HybridPolicy predicted =
      loaded.predict(core::features_from_rmat(p), cpu, gpu);
  std::printf("\npredicted switching point for an unseen graph "
              "(CPU-TD / GPU-BU pair): M=%.1f N=%.1f\n",
              predicted.m, predicted.n);

  // How good is it? Compare against the exhaustive oracle.
  const core::LevelTrace trace = core::build_level_trace(g, root);
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();
  const core::HybridPolicy inner =
      loaded.predict(core::features_from_rmat(p), gpu, gpu);
  const core::CandidateSweep sweep = core::sweep_cross(
      trace, cpu, gpu, sim::InterconnectSpec{}, cands, inner);
  const double mine = core::replay_cross(trace, cpu, gpu,
                                         sim::InterconnectSpec{}, predicted,
                                         inner);
  std::printf("predicted plan: %.4f ms | exhaustive best: %.4f ms | worst: "
              "%.4f ms\n-> prediction reaches %.0f%% of the oracle with one "
              "SVR evaluation instead of %zu replays\n",
              mine * 1e3, sweep.best_seconds() * 1e3,
              sweep.worst_seconds() * 1e3,
              100.0 * sweep.best_seconds() / mine, cands.size());
  return 0;
}
