// Social-network analysis — the workload class the paper's introduction
// motivates (reference [1]: "User interactions in social networks").
//
// Models a follower graph as an R-MAT instance and answers two classic
// questions with the adaptive BFS engine:
//   * degrees-of-separation distribution from a set of seed users
//     (how many hops reach how much of the network);
//   * reachable audience per seed (the root's component).
// Every traversal runs through the cross-architecture engine so you can
// see the switching plan pay off on a real analytics loop.
#include <cstdio>
#include <vector>

#include "core/api.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

int main() {
  using namespace bfsx;

  // A "social network": heavy-tailed degrees (celebrities vs lurkers).
  graph::RmatParams params;
  params.scale = 15;       // ~32k users
  params.edgefactor = 24;  // ~786k follow relations
  params.seed = 777;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(params));
  const graph::DegreeStats deg = graph::compute_degree_stats(g);
  std::printf("network: %d users, %lld follow edges (max followers %lld, "
              "mean %.1f)\n",
              g.num_vertices(), static_cast<long long>(g.num_edges() / 2),
              static_cast<long long>(deg.max), deg.mean);

  std::printf("training predictor once (offline)...\n");
  const core::SwitchPredictor predictor = core::train_predictor(
      core::generate_training_data(core::default_trainer_config()));
  sim::Machine machine = sim::make_paper_node();
  const core::GraphFeatures features = core::features_from_rmat(params);

  const std::vector<graph::vid_t> seeds = graph::sample_roots(g, 5, 42);
  std::printf("\n%-10s %-10s %-8s %-12s %-30s\n", "seed", "audience",
              "diameter", "time(ms)", "hop histogram (users per hop)");
  double total_seconds = 0.0;
  for (graph::vid_t seed : seeds) {
    const core::CombinationRun run =
        core::run_adaptive(g, seed, features, machine, predictor);
    total_seconds += run.seconds;

    // Degrees-of-separation histogram from the level map.
    std::vector<int> hops;
    for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
      const std::int32_t lv = run.result.level[static_cast<std::size_t>(v)];
      if (lv < 0) continue;
      if (static_cast<std::size_t>(lv) >= hops.size()) {
        hops.resize(static_cast<std::size_t>(lv) + 1, 0);
      }
      ++hops[static_cast<std::size_t>(lv)];
    }
    std::printf("%-10d %-10d %-8zu %-12.3f ", seed, run.result.reached,
                hops.size() - 1, run.seconds * 1e3);
    for (std::size_t h = 0; h < hops.size(); ++h) {
      std::printf("%d%s", hops[h], h + 1 < hops.size() ? "/" : "");
    }
    std::printf("\n");
  }
  std::printf("\n5 audience queries in %.2f ms modelled time; the "
              "small-world effect keeps every user within a handful of "
              "hops — exactly the frontier bulge the hybrid BFS exploits.\n",
              total_seconds * 1e3);
  return 0;
}
