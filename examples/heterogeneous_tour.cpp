// Heterogeneous-platform tour — the paper's contribution (3): "a
// pairwise comparison between CPU, GPU and MIC, which can hopefully
// help the readers select the best architectures for similar
// applications."
//
// For one graph, runs every engine the paper names — pure directions,
// per-device combinations, and the two cross-architecture variants —
// and prints a ranking with the per-phase explanation.
#include <cstdio>
#include <string>
#include <vector>

#include "core/api.h"
#include "core/level_trace.h"
#include "core/tuner.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

int main() {
  using namespace bfsx;

  graph::RmatParams params;
  params.scale = 16;
  params.edgefactor = 16;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(params));
  const graph::vid_t root = graph::sample_roots(g, 1, 9)[0];
  std::printf("graph: %s\n\n", graph::summarize(g).c_str());

  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const sim::Device gpu{sim::make_kepler_gpu()};
  const sim::Device mic{sim::make_knights_corner_mic()};
  const sim::InterconnectSpec link;

  // Tune each combination with the exhaustive oracle (cheap via trace
  // replay) so the tour shows each platform at its best.
  const core::LevelTrace trace = core::build_level_trace(g, root);
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();
  auto tuned = [&](const sim::Device& d) {
    return core::pick_best(core::sweep_single(trace, d.spec(), cands), cands)
        .policy;
  };
  const core::HybridPolicy cpu_cb = tuned(cpu);
  const core::HybridPolicy gpu_cb = tuned(gpu);
  const core::HybridPolicy mic_cb = tuned(mic);
  const core::HybridPolicy handoff =
      core::pick_best(
          core::sweep_cross(trace, cpu.spec(), gpu.spec(), link, cands, gpu_cb),
          cands)
          .policy;

  struct Row {
    std::string name;
    double seconds;
    std::string note;
  };
  std::vector<Row> rows;
  auto add = [&rows](std::string name, const core::CombinationRun& run,
                     std::string note) {
    rows.push_back({std::move(name), run.seconds, std::move(note)});
  };
  add("CPU top-down", core::run_pure(g, root, cpu, bfs::Direction::kTopDown),
      "low per-level overhead, drowns at the frontier peak");
  add("CPU bottom-up", core::run_pure(g, root, cpu, bfs::Direction::kBottomUp),
      "pays the all-miss scans of the first levels");
  add("CPU combination", core::run_combination(g, root, cpu, cpu_cb),
      "Beamer-style hybrid on one socket");
  add("GPU top-down", core::run_pure(g, root, gpu, bfs::Direction::kTopDown),
      "2496 lanes starve on small frontiers");
  add("GPU bottom-up", core::run_pure(g, root, gpu, bfs::Direction::kBottomUp),
      "fast V-sweep, brutal miss penalty early");
  add("GPU combination", core::run_combination(g, root, gpu, gpu_cb),
      "hybrid confined to the GPU");
  add("MIC combination", core::run_combination(g, root, mic, mic_cb),
      "simple cores + slow barrier = slowest hybrid");
  add("CPU-TD + GPU-BU",
      core::run_cross_arch_bu_only(g, root, cpu, gpu, link, handoff),
      "first cross-architecture split");
  add("CPU-TD + GPU-CB",
      core::run_cross_arch(g, root, cpu, gpu, link, handoff, gpu_cb),
      "the paper's winner at paper-scale graphs");

  double best = rows.front().seconds;
  for (const Row& r : rows) best = std::min(best, r.seconds);
  std::printf("%-18s %12s %10s   %s\n", "engine", "time(ms)", "vs best",
              "why");
  for (const Row& r : rows) {
    std::printf("%-18s %12.4f %9.1fx   %s\n", r.name.c_str(),
                r.seconds * 1e3, r.seconds / best, r.note.c_str());
  }
  std::printf("\nlesson (paper Section IV): use the CPU where the frontier "
              "is small, the GPU where parallelism is abundant, and never "
              "pay a device's weak phase. At this demo size the CPU's "
              "per-level overhead still rivals whole GPU levels, so the "
              "GPU-only hybrid can edge out the cross split — the "
              "cross-architecture advantage materialises from SCALE ~20 "
              "(see bench_fig9_cross_arch and EXPERIMENTS.md).\n");
  return 0;
}
