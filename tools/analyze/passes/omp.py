#!/usr/bin/env python3
"""OpenMP race pass for the bfsx kernels (formerly tools/lint/omp_lint).

A narrow, project-specific static checker over every ``#pragma omp``
site. It parses each pragma's clauses and the loop body it governs, and
enforces the determinism/race contracts PR 3 established by hand:

  shared-write     In a worksharing ``for`` loop, a write to a variable
                   that is not loop-local must be covered by a matching
                   ``reduction`` clause, an ``omp atomic``/``critical``,
                   or be an index-deterministic store (a subscript that
                   depends on the loop induction variable or a value
                   derived from it inside the body). Parameters of
                   lambdas defined inside the body count as loop-local:
                   the templated GraphView kernels traverse neighbours
                   through ``for_each_*`` callbacks, so a callback
                   parameter plays the role the range-for variable plays
                   in CSR-style code.
  det-dynamic      Loops annotated ``// det:`` are determinism-critical
                   in *iteration order*; a ``schedule(dynamic)`` there
                   can reorder side effects between runs, so only
                   static schedules are allowed.
  missing-workers  Functions that compute a ``workers`` thread-count
                   override must pass it to every parallel construct
                   via ``num_threads(workers)``; forgetting it silently
                   ignores the small-input serial fallback.
  nowait-read      After a ``for ... nowait`` loop, reading a variable
                   the loop wrote (before the enclosing region's
                   barrier) races with threads still in the loop.

Suppressions keep the historical ``omp-lint`` spelling — they sit on
the pragma they justify and the reasons in src/ predate the analyzer::

    // omp-lint: allow(shared-write) scatter indices are disjoint by
    //           construction (per-thread cursor ranges)

A suppression must name the rule and give a non-empty reason; malformed
annotations are themselves reported (rule ``bad-annotation``).

This module is self-contained on purpose: ``tools/lint/omp_lint.py``
loads it as the back-compat CLI, and the ``PASS`` adapter at the bottom
plugs the same ``lint_text`` into the bfsx-analyze engine.

This is a heuristic lint, not a compiler: it trades soundness for zero
build-time dependencies. When it is wrong, say why with an allow()
annotation — that reason is exactly the hand-written race argument the
lint exists to make explicit.
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass, field

RULES = ("shared-write", "det-dynamic", "missing-workers", "nowait-read",
         "bad-annotation")

SOURCE_SUFFIXES = (".h", ".hpp", ".cc", ".cpp", ".cxx")

ALLOW_RE = re.compile(r"//\s*omp-lint:\s*allow\(([\w-]+)\)\s*(.*)")
DET_RE = re.compile(r"//\s*det:")

# A declaration introducing a body-local name: optional qualifiers, a
# type-ish token (keyword, std::foo, Foo, foo_t, possibly templated),
# optional ref/pointer, then the declared identifier.
DECL_RE = re.compile(
    r"(?:const\s+|constexpr\s+|static\s+)*"
    r"(?:auto|bool|int|unsigned|signed|long|short|float|double|char|"
    r"std::\w+|[A-Za-z_]\w*(?:::\w+)+|[A-Za-z_]\w*_t|[A-Z]\w*)"
    r"(?:<[^;<>(){}]*>)?"
    r"\s*[&*]*\s+([A-Za-z_]\w*)\s*(?:=|\{|:(?!:))")

# Bare-identifier mutation: `x = ...`, `x += ...`, `++x`, `x--`, ...
BARE_ASSIGN_RE = re.compile(
    r"(?<![\w.\]>])([A-Za-z_]\w*)\s*"
    r"(\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=|=(?![=]))")
INCDEC_RE = re.compile(
    r"(?:\+\+|--)\s*([A-Za-z_]\w*)|(?<![\w.\]>])([A-Za-z_]\w*)\s*(?:\+\+|--)")

# Subscripted store: `base[index] = ...` where base may be dotted
# (`state.parent`). The index expression is captured for the
# loop-derivation test.
SUBSCRIPT_ASSIGN_RE = re.compile(
    r"([A-Za-z_][\w.]*(?:->[\w.]*)?)\s*\[([^\]]*)\]\s*"
    r"(?:\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=|=(?![=]))")

# A lambda's parameter list: capture clause immediately followed by
# parentheses. Parameters declared there are iteration-local values fed
# by whatever the body invokes the lambda on (the GraphView
# for_each_out_neighbor / for_each_in_neighbor protocol).
LAMBDA_PARAMS_RE = re.compile(r"\[[^\[\]]*\]\s*\(([^()]*)\)")

REDUCTION_RE = re.compile(r"reduction\s*\(\s*[^:()]+:\s*([^)]*)\)")
SCHEDULE_RE = re.compile(r"schedule\s*\(\s*(\w+)")
NUM_THREADS_RE = re.compile(r"num_threads\s*\(")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")

CONTROL_KEYWORDS = frozenset({
    "if", "while", "for", "switch", "return", "sizeof", "case", "else",
    "do", "break", "continue", "goto", "new", "delete", "throw", "catch",
})


@dataclass
class Violation:
    path: str
    line: int  # 1-based pragma line
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Pragma:
    line: int          # 1-based line of the `#pragma omp`
    text: str          # continuation-joined pragma text
    end_line: int      # last (0-based) line index of the pragma itself
    allows: dict = field(default_factory=dict)  # rule -> reason
    det: bool = False


def _strip_line_comment(line: str) -> str:
    """Removes // comments and string/char literal contents (keeps
    delimiters) so identifier scans do not see prose."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        ch = line[i]
        if in_str:
            if ch == "\\":
                i += 2
                continue
            if ch == in_str:
                in_str = None
                out.append(ch)
                i += 1
                continue
            i += 1
            continue
        if ch in "\"'":
            in_str = ch
            out.append(ch)
            i += 1
            continue
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(ch)
        i += 1
    return "".join(out)


def _find_pragmas(lines: list[str]) -> list[Pragma]:
    pragmas = []
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped.startswith("#pragma omp"):
            text = stripped
            end = i
            while text.endswith("\\") and end + 1 < len(lines):
                end += 1
                text = text[:-1].rstrip() + " " + lines[end].strip()
            p = Pragma(line=i + 1, text=text, end_line=end)
            # Annotations live on the pragma line or up to 2 lines above.
            for j in range(max(0, i - 2), i + 1):
                m = ALLOW_RE.search(lines[j])
                if m:
                    p.allows[m.group(1)] = m.group(2).strip()
                if DET_RE.search(lines[j]):
                    p.det = True
            # A determinism annotation may also sit atop the comment
            # block immediately above; scan a short comment run.
            j = i - 1
            while j >= 0 and lines[j].strip().startswith("//"):
                if DET_RE.search(lines[j]):
                    p.det = True
                m = ALLOW_RE.search(lines[j])
                if m and m.group(1) not in p.allows:
                    p.allows[m.group(1)] = m.group(2).strip()
                j -= 1
            pragmas.append(p)
            i = end + 1
            continue
        i += 1
    return pragmas


def _skip_preprocessor(lines: list[str], i: int) -> int:
    """First line index >= i that is code (not blank/preprocessor)."""
    while i < len(lines):
        s = lines[i].strip()
        if s and not s.startswith("#") and not s.startswith("//"):
            return i
        i += 1
    return len(lines)


def _match_region(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Index just past the delimiter balancing text[start] == open_ch."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _governed_block(lines: list[str], pragma: Pragma):
    """Returns (kind, loop_var, body, after_start) for the statement the
    pragma governs. kind is 'for' or 'block'; body is the statement
    text; after_start is the flat-text offset just past the body."""
    start = _skip_preprocessor(lines, pragma.end_line + 1)
    flat = "\n".join(_strip_line_comment(l) for l in lines[start:])
    m = re.match(r"\s*for\s*\(", flat)
    if m and ("for" in pragma.text.split()):
        header_end = _match_region(flat, m.end() - 1, "(", ")")
        header = flat[m.end():header_end - 1]
        loop_var = None
        vm = re.match(r"\s*(?:[\w:<>]+(?:\s*[&*])?\s+)?([A-Za-z_]\w*)\s*[=:]",
                      header)
        if vm:
            loop_var = vm.group(1)
        rest = flat[header_end:]
        bm = re.match(r"\s*\{", rest)
        if bm:
            body_end = _match_region(rest, bm.end() - 1, "{", "}")
            body = rest[:body_end]
        else:
            body_end = rest.find(";") + 1
            body = rest[:body_end]
        return "for", loop_var, header + "\n" + body, header_end + body_end
    bm = re.match(r"\s*\{", flat)
    if bm:
        body_end = _match_region(flat, bm.end() - 1, "{", "}")
        return "block", None, flat[:body_end], body_end
    # Single statement (e.g. `#pragma omp atomic` target).
    end = flat.find(";") + 1
    return "stmt", None, flat[:end], end


def _reduction_vars(pragma_text: str) -> set[str]:
    out = set()
    for m in REDUCTION_RE.finditer(pragma_text):
        out.update(v.strip() for v in m.group(1).split(",") if v.strip())
    return out


def _body_locals(body: str) -> set[str]:
    names = {m.group(1) for m in DECL_RE.finditer(body)}
    for m in LAMBDA_PARAMS_RE.finditer(body):
        for param in m.group(1).split(","):
            idents = IDENT_RE.findall(param)
            if idents:
                names.add(idents[-1])  # `vid_t v` declares v
    return names - CONTROL_KEYWORDS


def _enclosing_function(lines: list[str], pragma_line0: int) -> str:
    """Text from the start of the enclosing function (first column-0
    code line scanning upward) to the pragma."""
    start = 0
    for j in range(pragma_line0 - 1, -1, -1):
        line = lines[j]
        if line and not line[0].isspace():
            s = line.strip()
            if s.startswith(("//", "#", "}", "{")) or s.endswith(";"):
                if s == "}" or s.startswith("}"):
                    start = j + 1
                    break
                continue
            start = j
            break
    return "\n".join(lines[start:pragma_line0])


def _enclosing_parallel(pragmas: list[Pragma], pragma: Pragma):
    """Nearest preceding `parallel` (non-for) pragma — the region a bare
    `for`/worksharing pragma binds to, approximately."""
    best = None
    for p in pragmas:
        if p.line >= pragma.line:
            break
        words = p.text.split()
        if "parallel" in words and "for" not in words:
            best = p
    return best


def _covered_by_sync(body: str, name: str) -> bool:
    """True when every mutation of `name` in the body sits under an
    `omp atomic` or inside an `omp critical` block (coarse: presence of
    the pragma in the preceding line)."""
    lines = body.split("\n")
    for i, line in enumerate(lines):
        hits = [m.group(1) for m in BARE_ASSIGN_RE.finditer(line)]
        hits += [m.group(1) or m.group(2) for m in INCDEC_RE.finditer(line)]
        if name not in hits:
            continue
        window = "\n".join(lines[max(0, i - 2):i])
        if "#pragma omp atomic" in window or "#pragma omp critical" in window:
            continue
        return False
    return True


def _loop_derived(index_expr: str, loop_var: str, locals_: set[str]) -> bool:
    """Is the subscript expression derived from the loop (directly via
    the induction variable or via a body-local)?"""
    idents = set(IDENT_RE.findall(index_expr))
    if loop_var and loop_var in idents:
        return True
    return bool(idents & locals_)


def lint_text(text: str, path: str = "<string>") -> list[Violation]:
    lines = text.split("\n")
    pragmas = _find_pragmas(lines)
    violations: list[Violation] = []

    def report(pragma: Pragma, rule: str, message: str) -> None:
        if rule in pragma.allows:
            if not pragma.allows[rule]:
                violations.append(Violation(
                    path, pragma.line, "bad-annotation",
                    f"allow({rule}) has no reason; justify the suppression"))
            return
        violations.append(Violation(path, pragma.line, rule, message))

    for pragma in pragmas:
        for rule, reason in pragma.allows.items():
            if rule not in RULES:
                violations.append(Violation(
                    path, pragma.line, "bad-annotation",
                    f"allow({rule}) names an unknown rule "
                    f"(known: {', '.join(RULES[:-1])})"))
        words = pragma.text.split()
        is_parallel = "parallel" in words
        is_for = "for" in words
        kind, loop_var, body, after_start = _governed_block(lines, pragma)

        # ---- missing-workers ------------------------------------------
        if is_parallel:
            region = _enclosing_function(lines, pragma.line - 1)
            if re.search(r"\bworkers\b", region) and \
                    not NUM_THREADS_RE.search(pragma.text):
                report(pragma, "missing-workers",
                       "function computes a `workers` override but this "
                       "parallel construct does not pass "
                       "num_threads(workers)")

        # ---- det-dynamic ----------------------------------------------
        sched = SCHEDULE_RE.search(pragma.text)
        if pragma.det and sched and sched.group(1) == "dynamic":
            report(pragma, "det-dynamic",
                   "loop is annotated `// det:` (iteration order is part "
                   "of the determinism contract) but uses "
                   "schedule(dynamic); use a static schedule")

        # ---- shared-write ---------------------------------------------
        if is_for and kind == "for":
            reductions = _reduction_vars(pragma.text)
            if not is_parallel:
                enclosing = _enclosing_parallel(pragmas, pragma)
                if enclosing is not None:
                    reductions |= _reduction_vars(enclosing.text)
            locals_ = _body_locals(body)
            safe = reductions | locals_
            if loop_var:
                safe.add(loop_var)
            flagged = set()
            for m in BARE_ASSIGN_RE.finditer(body):
                name = m.group(1)
                if name in safe or name in CONTROL_KEYWORDS or name in flagged:
                    continue
                if _covered_by_sync(body, name):
                    continue
                flagged.add(name)
                report(pragma, "shared-write",
                       f"`{name}` is written by every iteration but is "
                       f"neither loop-local nor in a reduction clause; "
                       f"add reduction(...: {name}), an omp atomic, or "
                       f"make the store index-deterministic")
            for m in INCDEC_RE.finditer(body):
                name = m.group(1) or m.group(2)
                if name in safe or name in CONTROL_KEYWORDS or name in flagged:
                    continue
                if _covered_by_sync(body, name):
                    continue
                flagged.add(name)
                report(pragma, "shared-write",
                       f"`{name}` is incremented concurrently without a "
                       f"reduction or atomic")
            for m in SUBSCRIPT_ASSIGN_RE.finditer(body):
                base, index = m.group(1), m.group(2)
                base_root = base.split(".")[0].split("->")[0]
                if base_root in locals_:
                    continue
                if not _loop_derived(index, loop_var, locals_):
                    key = f"{base}[{index}]"
                    if key in flagged:
                        continue
                    flagged.add(key)
                    report(pragma, "shared-write",
                           f"store to `{base}[{index}]` uses a "
                           f"loop-independent index: two iterations can "
                           f"hit the same element; derive the index from "
                           f"the loop variable or synchronise")

        # ---- nowait-read ----------------------------------------------
        if is_for and "nowait" in words and kind == "for":
            enclosing = _enclosing_parallel(pragmas, pragma)
            if enclosing is not None:
                written = {m.group(1) for m in BARE_ASSIGN_RE.finditer(body)}
                written |= {m.group(1) or m.group(2)
                            for m in INCDEC_RE.finditer(body)}
                written -= _body_locals(body)
                if loop_var:
                    written.discard(loop_var)
                # Text between the end of this loop and the end of the
                # enclosing parallel block.
                _, _, region_body, _ = _governed_block(lines, enclosing)
                loop_start = _skip_preprocessor(lines, pragma.end_line + 1)
                flat_from_loop = "\n".join(
                    _strip_line_comment(l) for l in lines[loop_start:])
                tail = flat_from_loop[after_start:]
                region_start = _skip_preprocessor(lines, enclosing.end_line + 1)
                flat_from_region = "\n".join(
                    _strip_line_comment(l) for l in lines[region_start:])
                region_end_off = len(region_body)
                # Clip the tail at the parallel region's closing brace.
                tail_limit = max(
                    0, region_end_off - (after_start +
                                         (len(flat_from_region) -
                                          len(flat_from_loop))))
                tail = tail[:tail_limit]
                for name in sorted(written):
                    if re.search(rf"\b{re.escape(name)}\b", tail):
                        report(pragma, "nowait-read",
                               f"`{name}` is written by this nowait loop "
                               f"and read again before the region's "
                               f"barrier; drop nowait or move the read "
                               f"past the region")
    return violations


def lint_file(path: str) -> list[Violation]:
    with open(path, encoding="utf-8", errors="replace") as f:
        return lint_text(f.read(), path)


def collect_sources(paths: list[str]) -> list[str]:
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(SOURCE_SUFFIXES):
                        files.append(os.path.join(root, name))
        else:
            files.append(p)
    return files


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip().split("\n")[0])
        print("usage: omp_lint.py PATH...", file=sys.stderr)
        return 2
    files = collect_sources(argv)
    violations = []
    pragma_count = 0
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        pragma_count += len(_find_pragmas(text.split("\n")))
        violations.extend(lint_text(text, path))
    for v in violations:
        print(v)
    print(f"omp_lint: {len(files)} file(s), {pragma_count} pragma(s), "
          f"{len(violations)} violation(s)")
    return 1 if violations else 0


class OmpPass:
    """bfsx-analyze adapter: same checker, engine-shaped findings.

    ``lint_text`` already consumed ``// omp-lint: allow`` suppressions
    (they live on the pragma and predate the analyzer), so what it
    returns is final; ``// analyze: allow(...)`` works on top for
    uniformity but is not the preferred spelling for these four rules.
    """

    name = "omp"
    rules = {
        "shared-write":
            "non-loop-local write in a worksharing loop without "
            "reduction/atomic/index-deterministic store",
        "det-dynamic":
            "schedule(dynamic) on a loop annotated `// det:`",
        "missing-workers":
            "parallel construct ignores the function's `workers` "
            "thread-count override",
        "nowait-read":
            "variable written by a nowait loop is read before the "
            "region's barrier",
        "bad-annotation":
            "malformed or reasonless // omp-lint: allow(...) annotation",
    }
    scope = ("src", "bench")

    def run(self, ctx):
        findings = []
        for sf in ctx.files:
            for v in lint_text(sf.text, sf.rel):
                findings.append(ctx.finding(
                    self.name, v.rule, sf, v.line, v.message))
        return findings


PASS = OmpPass()


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
