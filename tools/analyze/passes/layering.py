"""Layering pass: enforce the subsystem dependency DAG from #include
edges.

The DAG is declared in ``tools/analyze/layers.toml`` — checked in, so a
new edge is a reviewed architectural decision, not an accident of
whoever needed a symbol first. A layer is (by default) a directory
under the configured root (``src``); every quoted include of the form
``"other_layer/header.h"`` is an edge, and the edge must appear in the
including layer's ``deps`` list.

Rules
-----
layering-violation   file in layer A includes a header of layer B, but
                     B is not in A's declared deps.
unmapped-file        file under the root belongs to no declared layer
                     (and no override names one) — it would otherwise
                     escape the DAG entirely.

With the clang backend, include edges come pre-resolved from the
frontend (transitive includes excluded — only direct edges are layer
decisions); the token fallback scans ``#include "..."`` lines, which in
this repo is exact because all intra-project includes are quoted and
root-relative.

Config errors (unknown dep names, cycles in the declared DAG, a
missing root) abort the run with a ConfigError — a broken contract
must not be reported as a mere finding.
"""

from __future__ import annotations

import os
import tomllib


class ConfigError(Exception):
    pass


INCLUDE_RE_TEXT = r'^\s*#\s*include\s+"([^"]+)"'


class LayerConfig:
    def __init__(self, root: str, layers: dict[str, list[str]],
                 virtual: set[str], overrides: dict[str, str]):
        self.root = root                  # e.g. "src"
        self.layers = layers              # name -> allowed dep names
        self.virtual = virtual            # layers with no directory
        self.overrides = overrides        # rel path -> layer name

    @classmethod
    def load(cls, path: str) -> "LayerConfig":
        with open(path, "rb") as f:
            data = tomllib.load(f)
        root = data.get("settings", {}).get("root", "src")
        raw = data.get("layers", {})
        if not raw:
            raise ConfigError(f"{path}: no [layers.*] tables")
        layers: dict[str, list[str]] = {}
        virtual: set[str] = set()
        for name, spec in raw.items():
            deps = spec.get("deps", [])
            if not isinstance(deps, list):
                raise ConfigError(f"{path}: layers.{name}.deps must be a list")
            layers[name] = deps
            if spec.get("virtual", False):
                virtual.add(name)
        for name, deps in layers.items():
            for d in deps:
                if d != "*" and d not in layers:
                    raise ConfigError(
                        f"{path}: layers.{name} depends on undeclared "
                        f"layer '{d}'")
        overrides = dict(data.get("overrides", {}))
        for p, layer in overrides.items():
            if layer not in layers:
                raise ConfigError(
                    f"{path}: override '{p}' maps to undeclared layer "
                    f"'{layer}'")
        cfg = cls(root=root, layers=layers, virtual=virtual,
                  overrides=overrides)
        cfg._check_acyclic(path)
        return cfg

    def _check_acyclic(self, path: str) -> None:
        state: dict[str, int] = {}  # 0 visiting, 1 done

        def visit(n: str, trail: list[str]) -> None:
            if state.get(n) == 1:
                return
            if state.get(n) == 0:
                cyc = trail[trail.index(n):] + [n]
                raise ConfigError(
                    f"{path}: declared layer graph has a cycle: "
                    f"{' -> '.join(cyc)}")
            state[n] = 0
            for d in self.layers[n]:
                if d != "*":
                    visit(d, trail + [n])
            state[n] = 1

        for n in self.layers:
            visit(n, [])

    def layer_of(self, rel: str) -> str | None:
        """Layer a repo-relative file belongs to, or None if outside
        the root / not mapped."""
        if rel in self.overrides:
            return self.overrides[rel]
        prefix = self.root + "/"
        if not rel.startswith(prefix):
            return None
        rest = rel[len(prefix):]
        top = rest.split("/", 1)[0]
        return top if top in self.layers and top not in self.virtual else None

    def include_target_layer(self, include_path: str) -> str | None:
        """Layer an include string like "serve/engine.h" points at."""
        if "/" not in include_path:
            return None  # same-directory include
        top = include_path.split("/", 1)[0]
        return top if top in self.layers and top not in self.virtual else None

    def allowed(self, src_layer: str, dst_layer: str) -> bool:
        if src_layer == dst_layer:
            return True
        deps = self.layers[src_layer]
        return "*" in deps or dst_layer in deps


class LayeringPass:
    name = "layering"
    rules = {
        "layering-violation":
            "include edge not in the declared subsystem dependency DAG "
            "(tools/analyze/layers.toml)",
        "unmapped-file":
            "file under the layer root belongs to no declared layer",
    }
    scope = ("src",)

    def run(self, ctx):
        import re
        cfg: LayerConfig = ctx.config
        inc_re = re.compile(INCLUDE_RE_TEXT)
        findings = []

        clang_edges = None
        if ctx.backend_name == "clang" and ctx.backend is not None \
                and getattr(ctx, "clang_edges", None):
            clang_edges = ctx.clang_edges

        for sf in ctx.files:
            src_layer = cfg.layer_of(sf.rel)
            if src_layer is None:
                if sf.rel.startswith(cfg.root + "/") \
                        and sf.rel not in cfg.overrides:
                    findings.append(ctx.finding(
                        self.name, "unmapped-file", sf, 1,
                        f"'{sf.rel}' is under {cfg.root}/ but belongs to "
                        f"no layer declared in layers.toml; add a "
                        f"[layers.*] entry or an override"))
                continue
            if clang_edges is not None and sf.rel in clang_edges:
                # Resolved edges (clang backend): map each included file
                # back to a layer by path.
                for dst_rel in sorted(clang_edges[sf.rel]):
                    dst_layer = cfg.layer_of(dst_rel)
                    if dst_layer is None or cfg.allowed(src_layer, dst_layer):
                        continue
                    findings.append(ctx.finding(
                        self.name, "layering-violation", sf, 1,
                        self._msg(src_layer, dst_layer, dst_rel)))
                continue
            # Raw lines, not code_lines: the include path lives inside
            # string quotes, which the comment/string stripper blanks.
            for i, line in enumerate(sf.lines):
                m = inc_re.match(line)
                if not m:
                    continue
                dst_layer = cfg.include_target_layer(m.group(1))
                if dst_layer is None or cfg.allowed(src_layer, dst_layer):
                    continue
                findings.append(ctx.finding(
                    self.name, "layering-violation", sf, i + 1,
                    self._msg(src_layer, dst_layer, m.group(1))))
        return findings

    @staticmethod
    def _msg(src_layer: str, dst_layer: str, target: str) -> str:
        return (f"layer '{src_layer}' must not include '{target}': "
                f"'{dst_layer}' is not in its declared deps — either the "
                f"code belongs elsewhere, or the edge is a real "
                f"architectural decision that belongs in layers.toml")


PASS = LayeringPass()
