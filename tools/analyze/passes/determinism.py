"""Determinism pass: kernels and benchmarks must be replayable.

Graph500 validation, the trace-replay tests, and every perf comparison
in bench/ assume that a run is a pure function of (graph, source,
seed). Three things quietly break that:

  * C random/time primitives — ``rand()`` has global hidden state and
    platform-defined sequences; ``time()``/``clock()`` as a seed makes
    two runs incomparable. The repo's contract is xoshiro/splitmix
    seeded explicitly (src/graph/generators, bench harness).
  * Address-ordered iteration — iterating an unordered container keyed
    by pointers visits elements in ASLR order; any output derived from
    that order differs run to run.
  * The PR 5 nested-parallelism bug class — chunking work by
    ``omp_get_thread_num()`` against a team size read *inside* a region
    that can be a nested 1-thread team silently serialises or, worse,
    double-assigns chunks. Files that partition by thread id must
    consult ``omp_in_parallel()`` (or take the team size outside the
    region) and say so.

Rules
-----
banned-random    rand()/srand()/random()/drand48() in kernel or bench
                 code.
banned-time     time()/clock()/gettimeofday() used as a value source
                 in kernel or bench code (omp_get_wtime and
                 steady_clock for *measurement* are fine and do not
                 match).
addr-ordered    unordered_map/unordered_set keyed by a pointer type —
                 iteration order is address order.
nested-chunking  file partitions work by omp_get_thread_num() but
                 never consults omp_in_parallel()/omp_get_level() —
                 the exact shape of the PR 5 bug.
"""

from __future__ import annotations

import re

RANDOM_RE = re.compile(r"\b(?:s?rand|random|drand48|lrand48)\s*\(")
TIME_RE = re.compile(r"\b(?:time|clock|gettimeofday)\s*\(")
ADDR_ORDERED_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*")
TID_RE = re.compile(r"\bomp_get_thread_num\s*\(\s*\)")
NESTED_AWARE_RE = re.compile(
    r"\bomp_(?:in_parallel|get_level|get_active_level)\s*\(")
#: tid used for *partitioning* (arithmetic on the tid), as opposed to
#: indexing a per-thread slot — `scratch[tid]` is fine, `tid * chunk`
#: is the bug shape.
TID_PARTITION_RE = re.compile(
    r"\bomp_get_thread_num\s*\(\s*\)\s*[*+]|"
    r"[*+]\s*omp_get_thread_num\s*\(\s*\)|"
    r"\btid\s*\*|\*\s*tid\b|\btid\s*\+\s*1\b")

#: Kernel/bench scope — src dirs whose outputs feed validation or
#: timing comparisons. obs/serve/tools are deliberately out: telemetry
#: may timestamp, the CLI may wall-clock.
KERNEL_DIRS = ("src/bfs", "src/graph", "src/graph500", "src/core",
               "src/dist", "src/sim", "bench")


def _in_scope(rel: str) -> bool:
    return any(rel == d or rel.startswith(d + "/") for d in KERNEL_DIRS)


class DeterminismPass:
    name = "determinism"
    rules = {
        "banned-random":
            "C random primitive in kernel/bench code; use the seeded "
            "xoshiro/splitmix generators",
        "banned-time":
            "wall-clock value source in kernel/bench code; runs must "
            "be a pure function of (graph, source, seed)",
        "addr-ordered":
            "unordered container keyed by pointer; iteration order is "
            "address order and differs run to run",
        "nested-chunking":
            "work partitioned by omp_get_thread_num() with no "
            "omp_in_parallel()/omp_get_level() awareness — the PR 5 "
            "nested-team bug shape",
    }
    scope = ("src", "bench")

    def run(self, ctx):
        findings = []
        for sf in ctx.files:
            if not _in_scope(sf.rel):
                continue
            findings.extend(self._scan_lines(ctx, sf))
            findings.extend(self._scan_nested_chunking(ctx, sf))
        return findings

    def _scan_lines(self, ctx, sf):
        out = []
        for i, line in enumerate(sf.code_lines):
            m = RANDOM_RE.search(line)
            if m:
                out.append(ctx.finding(
                    self.name, "banned-random", sf, i + 1,
                    f"`{m.group(0).rstrip('(').strip()}()` has hidden "
                    f"global state and platform-defined sequences; draw "
                    f"from the explicitly-seeded generator instead"))
            m = TIME_RE.search(line)
            if m:
                out.append(ctx.finding(
                    self.name, "banned-time", sf, i + 1,
                    f"`{m.group(0).rstrip('(').strip()}()` makes the run "
                    f"depend on the wall clock; kernel/bench outputs must "
                    f"replay bit-identically from the seed"))
            m = ADDR_ORDERED_RE.search(line)
            if m:
                out.append(ctx.finding(
                    self.name, "addr-ordered", sf, i + 1,
                    "unordered container keyed by a pointer iterates in "
                    "address (ASLR) order; key by a stable id, or use an "
                    "ordered container"))
        return out

    def _scan_nested_chunking(self, ctx, sf):
        # File-granularity rule: if any tid-arithmetic partitioning
        # exists and the file never consults nesting state, every
        # partitioning site is reported (each needs its own reasoning).
        if NESTED_AWARE_RE.search(sf.code_text):
            return []
        if not TID_RE.search(sf.code_text):
            return []
        out = []
        for i, line in enumerate(sf.code_lines):
            if TID_PARTITION_RE.search(line):
                out.append(ctx.finding(
                    self.name, "nested-chunking", sf, i + 1,
                    "work is partitioned by thread id, but nothing here "
                    "checks omp_in_parallel()/omp_get_level(); inside a "
                    "nested 1-thread team this chunking collapses (the "
                    "PR 5 bug class) — either handle nesting or annotate "
                    "why the partition is nesting-safe"))
        return out


PASS = DeterminismPass()
