"""Pass registry for bfsx-analyze.

Each pass module exposes a ``PASS`` object with:
  * ``name``   — pass id used in finding labels and --passes selection
  * ``rules``  — {rule-id: one-line description}, feeds --list-rules
    and the SARIF rule catalog
  * ``scope``  — repo-relative directories the pass scans by default
  * ``run(ctx)`` — returns a list of engine.Finding

Order matters only for output stability; passes are independent.
"""

from __future__ import annotations


def all_passes():
    from . import atomics, determinism, layering, lifecycle, omp
    return [layering.PASS, atomics.PASS, lifecycle.PASS,
            determinism.PASS, omp.PASS]


def known_rules() -> set[str]:
    rules = {"bad-suppression"}
    for p in all_passes():
        rules.update(p.rules)
    return rules
