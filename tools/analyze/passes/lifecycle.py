"""Lifecycle pass: paired-resource protocols must not leak through
early returns.

The repository has three hand-rolled acquire/release protocols whose
release is NOT enforced by the type system at every site:

  * GraphEpochs pin/unpin        (src/serve/epochs.h) — a leaked pin
    wedges snapshot reclamation forever; the RAII ``Pin`` exists
    precisely so nobody calls ``unpin`` by hand.
  * StatePool lease/return       (src/bfs/state_pool.h) — same shape;
    ``Lease`` is the only sanctioned door.
  * perf_event_open/::close      (src/obs/perf_counters.cc) — raw fds
    from a raw syscall; between ``perf_open`` and the member store
    there is a window where an early return leaks the fd.

Rules
-----
raw-unpin        a direct ``.unpin(`` / ``->unpin(`` call outside the
                 class that owns the protocol. Holding a ``Pin`` is the
                 API; calling unpin by hand defeats the refcount's
                 exception/early-return safety.
raw-lease-call   same for ``.release_state(`` / ``->release_state(``
                 outside StatePool/Lease — returning a lease by hand.
open-escape      a raw fd from ``perf_event_open``/``perf_open``/
                 ``::open`` reaches a ``return`` (other than a
                 failure-guard ``if (fd < 0) return...``) before being
                 stored into a member / closed — the fd leaks on that
                 path.
manual-lock      a bare ``.lock()`` / ``.unlock()`` on a receiver that
                 is not a declared guard object (``unique_lock``,
                 ``lock_guard``, ``scoped_lock``, ``shared_lock``) in
                 the same file. Guards exist; raw mutex choreography is
                 how the serve engine's condition-variable dance would
                 rot into a deadlock.

All rules are token-level by design: the protocols are project idioms,
and each has exactly one sanctioned implementation site that carries an
``// analyze: allow(...)`` annotation explaining why it is the one
place allowed to touch the raw operation.
"""

from __future__ import annotations

import re

UNPIN_RE = re.compile(r"(?:\.|->)\s*unpin\s*\(")
LEASE_RET_RE = re.compile(r"(?:\.|->)\s*release_state\s*\(")
OPEN_RE = re.compile(
    r"\b(?:int|auto)\s+(\w+)\s*=\s*(?:perf_event_open|perf_open|::open)\s*\(")
RETURN_RE = re.compile(r"\breturn\b")
LOCK_CALL_RE = re.compile(r"(\w[\w.\->]*)\s*\.\s*(lock|unlock)\s*\(\s*\)")
GUARD_DECL_RE = re.compile(
    r"\b(?:std::)?(?:unique_lock|lock_guard|scoped_lock|shared_lock)\s*"
    r"<[^>]*>\s+(\w+)")

#: Lines scanned after a raw open for the fd's fate.
OPEN_WINDOW = 16
#: A failure guard must test the fd within this many lines of a return.
GUARD_LOOKBACK = 2

#: Files that implement a protocol are allowed to touch its raw half —
#: the destructor/release method has to call the real thing. (Findings
#: there would force annotations on the definition itself, which is
#: noise; the rule targets *callers*.)
PROTOCOL_IMPL_FILES = {
    "raw-unpin": ("src/serve/epochs.h",),
    "raw-lease-call": ("src/bfs/state_pool.h",),
}


def _is_definition_line(line: str) -> bool:
    """True for the declaration/definition of the method itself
    (``void GraphEpochs::unpin(...)`` / ``void unpin(...) {``) as
    opposed to a call — definitions never match because the regexes
    require a preceding ``.``/``->``, but out-of-class definitions use
    ``::`` which this catches."""
    return bool(re.search(r"\b\w+::(?:unpin|release_state)\s*\(", line)) \
        or bool(re.match(r"\s*(?:void|auto)\s+(?:unpin|release_state)\s*\(",
                         line))


class LifecyclePass:
    name = "lifecycle"
    rules = {
        "raw-unpin":
            "direct unpin() call outside the epoch protocol owner; "
            "hold a GraphEpochs::Pin instead",
        "raw-lease-call":
            "direct release_state() call outside StatePool/Lease; "
            "return leases by destroying the Lease",
        "open-escape":
            "raw fd from perf_event_open/::open can leak through a "
            "non-failure return before being stored or closed",
        "manual-lock":
            "bare lock()/unlock() on a non-guard receiver; use "
            "unique_lock/lock_guard so early returns unlock",
    }
    scope = ("src", "bench")

    def run(self, ctx):
        findings = []
        for sf in ctx.files:
            findings.extend(self._scan_raw_calls(ctx, sf))
            findings.extend(self._scan_open_escape(ctx, sf))
            findings.extend(self._scan_manual_lock(ctx, sf))
        return findings

    def _scan_raw_calls(self, ctx, sf):
        out = []
        for rule, pat in (("raw-unpin", UNPIN_RE),
                          ("raw-lease-call", LEASE_RET_RE)):
            if sf.rel in PROTOCOL_IMPL_FILES.get(rule, ()):
                continue
            for i, line in enumerate(sf.code_lines):
                if not pat.search(line) or _is_definition_line(line):
                    continue
                what = "unpin" if rule == "raw-unpin" else "release_state"
                out.append(ctx.finding(
                    self.name, rule, sf, i + 1,
                    f"direct `{what}()` call bypasses the RAII protocol; "
                    f"an exception or early return on this path leaks the "
                    f"{'pin' if rule == 'raw-unpin' else 'lease'} — hold "
                    f"the guard object instead"))
        return out

    def _scan_open_escape(self, ctx, sf):
        out = []
        lines = sf.code_lines
        for i, line in enumerate(lines):
            m = OPEN_RE.search(line)
            if not m:
                continue
            fd = m.group(1)
            for j in range(i + 1, min(len(lines), i + 1 + OPEN_WINDOW)):
                nxt = lines[j]
                # Settled: stored into a member/container, or closed.
                if re.search(rf"(?:\w+(?:\[[^\]]*\])?\s*(?:=|\.push_back\(|"
                             rf"\.emplace_back\()\s*{re.escape(fd)}\b"
                             rf"|close\s*\(\s*{re.escape(fd)}\s*\))", nxt):
                    break
                if RETURN_RE.search(nxt):
                    guard = any(
                        re.search(rf"if\s*\(\s*{re.escape(fd)}\s*<\s*0",
                                  lines[k])
                        for k in range(max(i, j - GUARD_LOOKBACK), j + 1))
                    if guard:
                        continue  # failure path: fd is invalid, no leak
                    out.append(ctx.finding(
                        self.name, "open-escape", sf, j + 1,
                        f"`return` at line {j + 1} can leak fd `{fd}` "
                        f"opened at line {i + 1}: the fd is neither stored "
                        f"nor closed on this path"))
                    break
        return out

    def _scan_manual_lock(self, ctx, sf):
        guards = {m.group(1) for m in GUARD_DECL_RE.finditer(sf.code_text)}
        out = []
        for i, line in enumerate(sf.code_lines):
            for m in LOCK_CALL_RE.finditer(line):
                receiver, method = m.group(1), m.group(2)
                root = receiver.split(".")[0].split("->")[0]
                if root in guards or receiver in guards:
                    # unique_lock::unlock() before a notify is the
                    # sanctioned condition-variable idiom — the guard
                    # still unlocks on every other path.
                    continue
                out.append(ctx.finding(
                    self.name, "manual-lock", sf, i + 1,
                    f"bare `{receiver}.{method}()` on a non-guard "
                    f"receiver; wrap the mutex in std::unique_lock/"
                    f"lock_guard so early returns and exceptions "
                    f"unlock it"))
        return out


PASS = LifecyclePass()
