"""Atomics / memory-order pass.

The repository's lock-free surface is small and deliberate: bitmap
claim words, the MS-BFS lane masks, and the contract kill-switch. Every
one of those sites went through a hand-written happens-before argument
in review — this pass makes that argument a checked artifact instead of
tribal memory.

Rules
-----
seq-cst-default       an atomic operation relies on the defaulted
                      ``std::memory_order_seq_cst``. On hot paths the
                      default buys fences nobody asked for; on cold
                      paths it hides the fact that nobody thought about
                      the ordering at all. Spell the order out.
mem-order-comment     an atomic operation with an explicit memory
                      order has no justifying ``// mem-order:`` comment
                      on the same line or within 6 lines above (wide
                      enough that a thorough multi-line argument is not
                      penalized). The comment must carry the
                      happens-before argument (see the MS-BFS fetch_or
                      sites for the idiom).
relaxed-guard-write   the result of a relaxed load guards a dependent
                      non-atomic write with no intervening RMW
                      (fetch_*/compare_exchange/store) on the same
                      atomic to re-validate the claim — the PR 5 lane
                      protocol is safe *because* the fetch_or
                      re-checks; a bare relaxed load is not a claim.

Token-level semantics (the selftest corpus pins these): an operation
counts as atomic when its method name is atomic-specific (fetch_*,
compare_exchange_*) or when its receiver is visibly atomic — declared
``std::atomic<...>``/``std::atomic_ref<...>`` in the same file, or an
inline ``std::atomic_ref<T>(...)`` temporary.
"""

from __future__ import annotations

import re

# Methods that only exist on atomics — always classified.
STRONG_METHODS = r"fetch_(?:or|and|add|sub|xor)|compare_exchange_(?:weak|strong)"
# Methods that need a visibly-atomic receiver to classify.
WEAK_METHODS = r"load|store|exchange"

OP_RE = re.compile(
    rf"\.\s*({STRONG_METHODS}|{WEAK_METHODS})\s*\(")

ATOMIC_DECL_RE = re.compile(
    r"std::atomic(?:_ref)?\s*<[^<>;]*(?:<[^<>]*>)?[^<>;]*>\s+(\w+)\s*[({=;]")

MEM_ORDER_RE = re.compile(r"memory_order")
MEM_ORDER_COMMENT_RE = re.compile(r"//.*mem-order:")
RELAXED_LOAD_RE = re.compile(
    r"(?:^|[^\w.])(\w+)\s*=[^=;]*?([\w.\->]*|\))\s*\.\s*load\s*\(\s*"
    r"std::memory_order_relaxed")
SUBSCRIPT_WRITE_RE = re.compile(
    r"[\w.\]\->]+\s*\[[^\]]*\]\s*(?:[|&^+\-]|<<|>>)?=(?!=)")

#: Lines above an op in which a // mem-order: comment counts. Wider
#: than the engine's allow() window: justification comments are often
#: several lines long and the marker sits on the first of them.
COMMENT_WINDOW = 6
#: Lines after a relaxed load scanned for an unguarded dependent write.
GUARD_WINDOW = 20


def _declared_atomics(code_text: str) -> set[str]:
    return {m.group(1) for m in ATOMIC_DECL_RE.finditer(code_text)}


def _receiver_before(line: str, dot_pos: int) -> str:
    """Identifier chain ending just before the '.' of a method call."""
    i = dot_pos - 1
    while i >= 0 and (line[i].isalnum() or line[i] in "_.:]["):
        i -= 1
    return line[i + 1:dot_pos]


def _args_text(lines: list[str], row: int, open_col: int) -> str:
    """Argument-list text from the '(' at (row, open_col) through its
    balancing ')'."""
    depth = 0
    collected: list[str] = []
    r, c = row, open_col
    while r < len(lines):
        line = lines[r]
        start = c
        while c < len(line):
            ch = line[c]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    collected.append(line[start:c + 1])
                    return "\n".join(collected)
            c += 1
        collected.append(line[start:])
        r, c = r + 1, 0
    return "\n".join(collected)


class AtomicsPass:
    name = "atomics"
    rules = {
        "seq-cst-default":
            "atomic operation relies on the defaulted seq_cst memory "
            "order; state the order explicitly",
        "mem-order-comment":
            "atomic operation lacks a justifying // mem-order: comment "
            "with the happens-before argument",
        "relaxed-guard-write":
            "relaxed load guards a dependent non-atomic write without "
            "an intervening RMW on the same atomic to re-validate",
    }
    scope = ("src", "bench")

    def run(self, ctx):
        findings = []
        for sf in ctx.files:
            declared = _declared_atomics(sf.code_text)
            findings.extend(self._scan_ops(ctx, sf, declared))
            findings.extend(self._scan_relaxed_guards(ctx, sf))
        return findings

    def _scan_ops(self, ctx, sf, declared):
        out = []
        for i, line in enumerate(sf.code_lines):
            for m in OP_RE.finditer(line):
                method = m.group(1)
                receiver = _receiver_before(line, m.start())
                strong = re.fullmatch(STRONG_METHODS, method) is not None
                if not strong:
                    root = receiver.split(".")[0].split("->")[0]
                    ctx_text = line if i == 0 else \
                        sf.code_lines[i - 1] + " " + line
                    visibly_atomic = (
                        root in declared
                        or receiver.split(".")[-1] in declared
                        or "atomic_ref" in ctx_text
                        or "atomic<" in ctx_text)
                    # `load`/`store`/`exchange` on non-atomics (file IO,
                    # std::exchange is a free function and never matches
                    # the `.method(` form) are skipped here.
                    if not visibly_atomic:
                        continue
                args = _args_text(sf.code_lines, i, m.end() - 1)
                site = i + 1
                if not MEM_ORDER_RE.search(args):
                    out.append(ctx.finding(
                        self.name, "seq-cst-default", sf, site,
                        f"`{receiver or '<expr>'}.{method}(...)` uses the "
                        f"defaulted seq_cst order; pass an explicit "
                        f"std::memory_order and justify it with a "
                        f"// mem-order: comment"))
                    continue
                window = sf.lines[max(0, i - COMMENT_WINDOW): i + 1]
                if not any(MEM_ORDER_COMMENT_RE.search(w) for w in window):
                    out.append(ctx.finding(
                        self.name, "mem-order-comment", sf, site,
                        f"`{receiver or '<expr>'}.{method}(...)` picks an "
                        f"explicit memory order but gives no "
                        f"// mem-order: justification within "
                        f"{COMMENT_WINDOW} lines; write down the "
                        f"happens-before argument"))
        return out

    def _scan_relaxed_guards(self, ctx, sf):
        out = []
        lines = sf.code_lines
        for i, line in enumerate(lines):
            m = RELAXED_LOAD_RE.search(line)
            if not m:
                continue
            # Receiver of the load: identifier chain before ".load".
            dot = line.find(".load", m.start())
            receiver = _receiver_before(line, dot)
            root = receiver.split(".")[0].split("->")[0] if receiver else ""
            for j in range(i + 1, min(len(lines), i + 1 + GUARD_WINDOW)):
                nxt = lines[j]
                if root and re.search(
                        rf"\b{re.escape(root)}\b\s*\.\s*"
                        rf"(?:fetch_|compare_exchange|store)", nxt):
                    break  # re-validated by an RMW/store on the atomic
                if not root and re.search(
                        r"\.\s*(?:fetch_|compare_exchange)", nxt):
                    # Inline atomic_ref temporaries: any RMW between the
                    # load and the write counts as the re-validation.
                    break
                if SUBSCRIPT_WRITE_RE.search(nxt):
                    out.append(ctx.finding(
                        self.name, "relaxed-guard-write", sf, i + 1,
                        f"result of relaxed load on "
                        f"`{receiver or '<atomic>'}` guards the non-atomic "
                        f"write at line {j + 1} with no intervening RMW on "
                        f"the same atomic; a stale relaxed load is not a "
                        f"claim — confirm with fetch_*/compare_exchange "
                        f"before writing"))
                    break
                if nxt.strip().startswith("}") and not nxt.strip("} ;"):
                    # Likely end of the enclosing block; stop the scan.
                    break
        return out


PASS = AtomicsPass()
