// Fixture: a reasonless omp-lint suppression — the annotation itself
// is the violation.
#include <cstddef>

namespace bfsx {

double sloppy(const double* data, std::size_t n) {
  double total = 0.0;
  // omp-lint: allow(shared-write)
  // EXPECT(bad-annotation)
#pragma omp parallel for
  for (std::size_t i = 0; i < n; ++i) {
    total += data[i];
  }
  return total;
}

}  // namespace bfsx
