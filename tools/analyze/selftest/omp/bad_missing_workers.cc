// Fixture: a function that computes a `workers` override, then opens a
// parallel region without num_threads(workers).
#include <cstddef>

namespace bfsx {

int pick_workers(std::size_t n);

void scaled_fill(double* out, std::size_t n) {
  const int workers = pick_workers(n);
  (void)workers;
// EXPECT(missing-workers)
#pragma omp parallel for
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = 0.0;
  }
}

}  // namespace bfsx
