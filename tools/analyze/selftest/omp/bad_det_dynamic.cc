// Fixture: a determinism-critical loop (// det:) scheduled dynamic.
#include <cstddef>

namespace bfsx {

void stamp_order(std::size_t* order, std::size_t n) {
  std::size_t cursor = 0;
  // det: visit order is part of the replay contract
  // EXPECT(det-dynamic)
#pragma omp parallel for schedule(dynamic)
  for (std::size_t i = 0; i < n; ++i) {
#pragma omp critical
    order[i] = cursor++;
  }
}

}  // namespace bfsx
