// Fixture: a worksharing loop accumulating into a shared variable with
// no reduction clause — next to the reduction shape that stays silent.
#include <cstddef>

namespace bfsx {

double racy_sum(const double* data, std::size_t n) {
  double total = 0.0;
// EXPECT(shared-write)
#pragma omp parallel for
  for (std::size_t i = 0; i < n; ++i) {
    total += data[i];
  }
  return total;
}

double reduced_sum(const double* data, std::size_t n) {
  double total = 0.0;
#pragma omp parallel for reduction(+ : total)
  for (std::size_t i = 0; i < n; ++i) {
    total += data[i];
  }
  return total;
}

}  // namespace bfsx
