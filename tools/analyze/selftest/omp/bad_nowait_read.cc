// Fixture: a nowait loop whose written variable is read again before
// the region's barrier.
#include <cstddef>

namespace bfsx {

double hasty(const double* data, double* out, std::size_t n) {
  double last = 0.0;
#pragma omp parallel
  {
// EXPECT(nowait-read)
// omp-lint: allow(shared-write) fixture isolates the nowait-read rule;
// the write itself is the planted hazard, not the subject
#pragma omp for nowait
    for (std::size_t i = 0; i < n; ++i) {
      last = data[i];
    }
#pragma omp single
    out[0] = last;
  }
  return last;
}

}  // namespace bfsx
