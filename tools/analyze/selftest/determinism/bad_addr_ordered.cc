// Fixture: a pointer-keyed unordered container — iteration is ASLR
// order. The id-keyed map below it must stay silent.
#include <cstdint>
#include <unordered_map>

namespace bfsx {

struct Node {
  std::uint32_t id;
};

std::unordered_map<Node*, int> g_by_addr;  // EXPECT(addr-ordered)
std::unordered_map<std::uint32_t, int> g_by_id;

}  // namespace bfsx
