// Fixture: C random primitives in kernel code.
#include <cstdlib>

namespace bfsx {

unsigned pick_source() {
  std::srand(42);                              // EXPECT(banned-random)
  return static_cast<unsigned>(std::rand());   // EXPECT(banned-random)
}

}  // namespace bfsx
