// Fixture: the PR 5 bug shape — work partitioned by thread id with no
// nesting awareness anywhere in the file. In a nested 1-thread team
// this chunking collapses.
#include <cstddef>
#include <omp.h>

namespace bfsx {

void process(const double* data, double* out, std::size_t n) {
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    const std::size_t chunk = n / static_cast<std::size_t>(
                                      omp_get_num_threads());
    const std::size_t begin = tid * chunk;  // EXPECT(nested-chunking)
    for (std::size_t i = begin; i < begin + chunk; ++i) {
      out[i] = data[i] * 2.0;
    }
  }
}

}  // namespace bfsx
