// Fixture: wall-clock value source in kernel code. omp_get_wtime for
// *measurement* must stay silent (word boundary: 'wtime' != 'time').
#include <ctime>
#include <omp.h>

namespace bfsx {

unsigned long long seed_from_clock() {
  return static_cast<unsigned long long>(time(nullptr));  // EXPECT(banned-time)
}

double measure() {
  const double t0 = omp_get_wtime();
  const double t1 = omp_get_wtime();
  return t1 - t0;
}

}  // namespace bfsx
