// Fixture: hand-rolled release calls that bypass the RAII protocols.
#include <cstddef>

namespace bfsx {

struct Epochs {
  void unpin(std::size_t e);
};
struct Pool {
  void release_state(std::size_t idx);
};

void leak_prone(Epochs* epochs, Pool& pool, std::size_t e,
                std::size_t idx) {
  epochs->unpin(e);         // EXPECT(raw-unpin)
  pool.release_state(idx);  // EXPECT(raw-lease-call)
}

}  // namespace bfsx
