// Fixture: a raw fd that can leak through a non-failure early return —
// next to the sanctioned shape (failure guard, then member store).
#include <unistd.h>

#include <vector>

struct perf_event_attr;
extern int perf_event_open(perf_event_attr* attr, int pid, int cpu,
                           int group, unsigned long flags);

namespace bfsx {

struct Counters {
  std::vector<int> fds_;
  bool config_bad_ = false;

  bool leaky(perf_event_attr* attr) {
    int fd = perf_event_open(attr, 0, -1, -1, 0);
    if (config_bad_) {
      return false;  // EXPECT(open-escape)
    }
    fds_.push_back(fd);
    return true;
  }

  bool careful(perf_event_attr* attr) {
    int fd = perf_event_open(attr, 0, -1, -1, 0);
    if (fd < 0) {
      return false;
    }
    fds_.push_back(fd);
    return true;
  }
};

}  // namespace bfsx
