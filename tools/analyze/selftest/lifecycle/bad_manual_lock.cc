// Fixture: bare mutex choreography vs. the sanctioned guard idiom
// (unique_lock::unlock() before a notify stays silent).
#include <condition_variable>
#include <mutex>

namespace bfsx {

struct Queue {
  std::mutex mu_;
  std::condition_variable cv_;
  int depth_ = 0;

  void racy_push() {
    mu_.lock();  // EXPECT(manual-lock)
    ++depth_;
    mu_.unlock();  // EXPECT(manual-lock)
    cv_.notify_one();
  }

  void guarded_push() {
    std::unique_lock<std::mutex> lock(mu_);
    ++depth_;
    lock.unlock();
    cv_.notify_one();
  }
};

}  // namespace bfsx
