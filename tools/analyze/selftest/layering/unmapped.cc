// REL: src/quarantine/unmapped.cc
// Fixture: a file under src/ in a directory no [layers.*] table
// declares — it would escape the DAG entirely.
// EXPECT(unmapped-file)
#include "graph/csr.h"

namespace bfsx {

void orphan() {}

}  // namespace bfsx
