// REL: src/graph/bad_cross_include.cc
// Fixture: the storage layer reaching up into the query engine — the
// canonical inverted edge the DAG exists to forbid.
#include "graph/csr.h"
#include "serve/engine.h"  // EXPECT(layering-violation)
#include "check/contract.h"

namespace bfsx::graph {

void touch() {}

}  // namespace bfsx::graph
