// Fixture: atomic ops that ride the defaulted seq_cst order.
#include <atomic>
#include <cstdint>

namespace bfsx {

std::atomic<std::uint64_t> g_counter{0};
std::atomic<bool> g_flag{false};

void bump() {
  g_counter.fetch_add(1);  // EXPECT(seq-cst-default)
}

void raise_flag() {
  g_flag.store(true);  // EXPECT(seq-cst-default)
}

bool peek() {
  return g_flag.load();  // EXPECT(seq-cst-default)
}

}  // namespace bfsx
