// Fixture: a relaxed load used as a claim guarding a dependent
// non-atomic write, with no re-validating RMW in between — plus the
// safe shape (load, fetch_or, then write) that must stay silent.
#include <atomic>
#include <cstdint>

namespace bfsx {

std::atomic<std::uint64_t> g_seen{0};

void racy(std::uint64_t bit, std::uint64_t* parent, std::uint64_t v) {
  // mem-order: relaxed — (fixture prose; the bug is the missing RMW).
  std::uint64_t cur = g_seen.load(std::memory_order_relaxed);  // EXPECT(relaxed-guard-write)
  if ((cur & bit) == 0) {
    parent[bit] = v;
  }
}

void safe(std::uint64_t bit, std::uint64_t* parent, std::uint64_t v) {
  // mem-order: relaxed — advisory pre-filter; the fetch_or below
  // re-validates the claim before the dependent store.
  std::uint64_t cur = g_seen.load(std::memory_order_relaxed);
  if ((cur & bit) != 0) return;
  // mem-order: relaxed — RMW atomicity elects the winner.
  std::uint64_t old = g_seen.fetch_or(bit, std::memory_order_relaxed);
  if ((old & bit) == 0) {
    parent[bit] = v;
  }
}

}  // namespace bfsx
