// Fixture: explicit memory orders with no // mem-order: justification,
// next to a correctly-annotated site that must stay silent.
#include <atomic>
#include <cstdint>

namespace bfsx {

std::atomic<std::uint64_t> g_word{0};

void publish(std::uint64_t bits) {
  g_word.store(bits, std::memory_order_release);  // EXPECT(mem-order-comment)
}

std::uint64_t consume() {
  return g_word.load(std::memory_order_acquire);  // EXPECT(mem-order-comment)
}

std::uint64_t documented() {
  // mem-order: relaxed — statistics counter; the value is only read
  // after the join, which already synchronizes.
  return g_word.load(std::memory_order_relaxed);
}

}  // namespace bfsx
