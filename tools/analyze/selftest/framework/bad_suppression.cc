// Fixture: malformed // analyze: allow annotations — one naming an
// unknown rule, one with no reason. A correct annotation (known rule,
// real reason) must stay silent.
#include <cstdint>

namespace bfsx {

// analyze: allow(definitely-not-a-rule) the rule name is wrong  EXPECT(bad-suppression)
std::uint64_t a = 0;

// analyze: allow(raw-unpin)
std::uint64_t b = 0;  // EXPECT(bad-suppression) reasonless above

// analyze: allow(manual-lock) fixture-only: documented fine annotation
std::uint64_t c = 0;

}  // namespace bfsx
