"""Core of bfsx-analyze: the multi-pass static-analysis framework.

This module owns everything the individual passes share:

  * ``SourceFile`` — one parsed source file: raw lines, comment/string
    stripped ``code_lines`` (same line numbering, so findings map back
    exactly), and the parsed ``// analyze: allow(rule) reason``
    suppression annotations.
  * ``Finding`` — one diagnostic: (pass, rule, path, line, message)
    plus a content fingerprint that survives line drift, used by the
    committed baseline.
  * ``Baseline`` — load/match/drift logic for
    ``tools/analyze/baseline.json``: a finding matching a baseline
    entry is reported but does not fail the run; a baseline entry that
    matches nothing is *stale* and fails the drift check (the baseline
    may only shrink).
  * ``run_passes`` — the driver loop: collect files, run every pass,
    apply suppressions and the baseline, and produce an
    ``AnalysisReport``.

Suppressions
------------
A finding at line L is suppressed by an annotation on line L or up to
``SUPPRESS_WINDOW`` lines above::

    // analyze: allow(raw-unpin) Pin::release is the single blessed
    // caller; every other path holds the RAII handle.

The annotation must name a known rule and carry a non-empty reason;
malformed annotations are themselves findings (rule
``bad-suppression`` of the ``framework`` pseudo-pass). The OpenMP pass
keeps its historical ``// omp-lint: allow(rule)`` spelling — the
migration must not invalidate the annotations PR 4 put in the tree.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field

SOURCE_SUFFIXES = (".h", ".hpp", ".cc", ".cpp", ".cxx")

#: Lines above a finding in which an allow() annotation is honoured.
SUPPRESS_WINDOW = 4

ALLOW_RE = re.compile(r"//\s*analyze:\s*allow\(([\w,\s-]+)\)\s*(.*)")


# ---------------------------------------------------------------------------
# Source model


def strip_comments(lines: list[str]) -> list[str]:
    """Returns lines with // and /* */ comments and string/char literal
    contents blanked (delimiters kept), preserving line count and
    column positions so findings keep exact locations."""
    out: list[str] = []
    in_block = False
    for line in lines:
        buf: list[str] = []
        i, n = 0, len(line)
        in_str: str | None = None
        while i < n:
            ch = line[i]
            if in_block:
                if ch == "*" and i + 1 < n and line[i + 1] == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                    continue
                buf.append(" ")
                i += 1
                continue
            if in_str:
                if ch == "\\" and i + 1 < n:
                    buf.append("  ")
                    i += 2
                    continue
                if ch == in_str:
                    in_str = None
                    buf.append(ch)
                else:
                    buf.append(" ")
                i += 1
                continue
            if ch in "\"'":
                in_str = ch
                buf.append(ch)
                i += 1
                continue
            if ch == "/" and i + 1 < n and line[i + 1] == "/":
                break
            if ch == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                buf.append("  ")
                i += 2
                continue
            buf.append(ch)
            i += 1
        out.append("".join(buf).rstrip())
    return out


@dataclass
class Suppression:
    line: int           # 1-based annotation line
    rules: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class SourceFile:
    path: str           # absolute
    rel: str            # repo-relative, '/'-separated
    lines: list[str]    # raw text, no trailing newlines
    code_lines: list[str]
    suppressions: list[Suppression]

    @property
    def text(self) -> str:
        return "\n".join(self.lines)

    @property
    def code_text(self) -> str:
        return "\n".join(self.code_lines)


def load_source(path: str, rel: str) -> SourceFile:
    with open(path, encoding="utf-8", errors="replace") as f:
        lines = f.read().split("\n")
    suppressions = []
    for i, line in enumerate(lines):
        m = ALLOW_RE.search(line)
        if m:
            rules = tuple(r.strip() for r in m.group(1).split(",") if r.strip())
            suppressions.append(
                Suppression(line=i + 1, rules=rules, reason=m.group(2).strip()))
    return SourceFile(path=path, rel=rel, lines=lines,
                      code_lines=strip_comments(lines),
                      suppressions=suppressions)


# ---------------------------------------------------------------------------
# Findings


@dataclass
class Finding:
    pass_name: str
    rule: str
    path: str        # repo-relative
    line: int        # 1-based
    message: str
    snippet: str = ""   # normalized source line, feeds the fingerprint

    @property
    def fingerprint(self) -> str:
        basis = f"{self.rule}|{self.path}|{' '.join(self.snippet.split())}"
        return hashlib.sha1(basis.encode()).hexdigest()[:16]

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: [{self.pass_name}/{self.rule}] "
                f"{self.message}")


class PassContext:
    """What a pass sees: the repo root, the per-pass file list, and the
    shared configuration (parsed layers.toml, backend handle)."""

    def __init__(self, repo: str, files: list[SourceFile], config,
                 backend_name: str, backend=None):
        self.repo = repo
        self.files = files
        self.config = config
        self.backend_name = backend_name
        self.backend = backend

    def finding(self, pass_name: str, rule: str, sf: SourceFile, line: int,
                message: str) -> Finding:
        snippet = sf.lines[line - 1] if 0 < line <= len(sf.lines) else ""
        return Finding(pass_name=pass_name, rule=rule, path=sf.rel,
                       line=line, message=message, snippet=snippet)


# ---------------------------------------------------------------------------
# File collection


def collect_files(repo: str, scope_dirs: list[str],
                  explicit: list[str] | None = None) -> list[SourceFile]:
    """Loads every C++ source under the scope directories (repo-relative),
    or the explicit path list when given. Deterministic order."""
    paths: list[tuple[str, str]] = []
    if explicit:
        for p in explicit:
            ap = os.path.abspath(p)
            if os.path.isdir(ap):
                for root, dirs, names in os.walk(ap):
                    dirs.sort()
                    for name in sorted(names):
                        if name.endswith(SOURCE_SUFFIXES):
                            full = os.path.join(root, name)
                            paths.append((full, os.path.relpath(full, repo)))
            elif ap.endswith(SOURCE_SUFFIXES):
                paths.append((ap, os.path.relpath(ap, repo)))
    else:
        for d in scope_dirs:
            base = os.path.join(repo, d)
            if not os.path.isdir(base):
                continue
            for root, dirs, names in os.walk(base):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(SOURCE_SUFFIXES):
                        full = os.path.join(root, name)
                        paths.append((full, os.path.relpath(full, repo)))
    return [load_source(p, rel.replace(os.sep, "/")) for p, rel in paths]


# ---------------------------------------------------------------------------
# Baseline


@dataclass
class Baseline:
    path: str
    entries: list[dict] = field(default_factory=list)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls(path=path, entries=[])
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
        if not isinstance(data, dict) or data.get("version") != 1 \
                or not isinstance(data.get("entries"), list):
            raise ValueError(
                f"{path}: baseline must be {{\"version\": 1, \"entries\": "
                f"[...]}}")
        for e in data["entries"]:
            if not {"rule", "path", "fingerprint"} <= set(e):
                raise ValueError(
                    f"{path}: every baseline entry needs rule/path/"
                    f"fingerprint, got {sorted(e)}")
        return cls(path=path, entries=data["entries"])

    def save(self, findings: list[Finding]) -> None:
        entries = [{"rule": f.rule, "path": f.path,
                    "fingerprint": f.fingerprint,
                    "message": f.message} for f in findings]
        with open(self.path, "w", encoding="utf-8") as f:
            json.dump({"version": 1, "entries": entries}, f, indent=2,
                      sort_keys=True)
            f.write("\n")

    def partition(self, findings: list[Finding]):
        """Splits findings into (new, baselined) and returns the stale
        baseline entries (matched by nothing) third."""
        keys = {(e["rule"], e["path"], e["fingerprint"]): False
                for e in self.entries}
        new, old = [], []
        for f in findings:
            k = (f.rule, f.path, f.fingerprint)
            if k in keys:
                keys[k] = True
                old.append(f)
            else:
                new.append(f)
        stale = [e for e in self.entries
                 if not keys[(e["rule"], e["path"], e["fingerprint"])]]
        return new, old, stale


# ---------------------------------------------------------------------------
# Suppression application


def apply_suppressions(findings: list[Finding],
                       files: dict[str, SourceFile],
                       known_rules: set[str]):
    """Returns (kept, suppressed, annotation_findings). A finding whose
    rule appears in an allow() annotation within SUPPRESS_WINDOW lines
    above it (or on its own line) is moved to `suppressed`; annotations
    with no reason or naming unknown rules yield `bad-suppression`
    findings."""
    kept, suppressed = [], []
    for f in findings:
        sf = files.get(f.path)
        hit = None
        if sf is not None:
            for s in sf.suppressions:
                if f.rule in s.rules and \
                        f.line - SUPPRESS_WINDOW <= s.line <= f.line:
                    hit = s
                    break
        if hit is not None and hit.reason:
            hit.used = True
            suppressed.append(f)
        elif hit is not None:
            hit.used = True
            kept.append(f)   # reasonless allow() does not suppress
        else:
            kept.append(f)
    ann: list[Finding] = []
    for sf in files.values():
        for s in sf.suppressions:
            unknown = [r for r in s.rules if r not in known_rules]
            if unknown:
                ann.append(Finding(
                    pass_name="framework", rule="bad-suppression",
                    path=sf.rel, line=s.line,
                    message=(f"allow({', '.join(unknown)}) names unknown "
                             f"rule(s); known rules: "
                             f"{', '.join(sorted(known_rules))}"),
                    snippet=sf.lines[s.line - 1]))
            if not s.reason:
                ann.append(Finding(
                    pass_name="framework", rule="bad-suppression",
                    path=sf.rel, line=s.line,
                    message=(f"allow({', '.join(s.rules)}) carries no "
                             f"reason; a suppression must argue why the "
                             f"rule is wrong here"),
                    snippet=sf.lines[s.line - 1]))
    return kept, suppressed, ann


# ---------------------------------------------------------------------------
# Report


@dataclass
class AnalysisReport:
    new_findings: list[Finding]
    suppressed: list[Finding]
    baselined: list[Finding]
    stale_baseline: list[dict]
    files_scanned: int
    backend_name: str
    passes_run: list[str]

    @property
    def ok(self) -> bool:
        return not self.new_findings

    def summary(self) -> str:
        return (f"bfsx-analyze: backend={self.backend_name} "
                f"passes={','.join(self.passes_run)} "
                f"files={self.files_scanned} | "
                f"{len(self.new_findings)} new, "
                f"{len(self.suppressed)} suppressed, "
                f"{len(self.baselined)} baselined, "
                f"{len(self.stale_baseline)} stale-baseline")
