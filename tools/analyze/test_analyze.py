#!/usr/bin/env python3
"""Selftests for bfsx-analyze.

Three layers:

  * corpus — every fixture under selftest/ is scanned by its owning
    pass and the found rule multiset must EXACTLY match the
    ``// EXPECT(rule)`` markers: every rule proves it can fire, and the
    fixtures' documented-safe idioms prove they stay silent.
  * engine — suppressions, baseline partition/drift, fingerprint
    stability under line drift, layer-config validation.
  * driver — the CLI's exit-code contract (0 clean / 1 findings /
    2 config error / 3 baseline drift) and SARIF emission, exercised
    as real subprocesses.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import engine  # noqa: E402
import sarif  # noqa: E402
from passes import all_passes, known_rules  # noqa: E402
from passes.layering import ConfigError, LayerConfig  # noqa: E402

REPO = os.path.dirname(os.path.dirname(HERE))
SELFTEST = os.path.join(HERE, "selftest")
DRIVER = os.path.join(HERE, "bfsx_analyze.py")

EXPECT_RE = re.compile(r"EXPECT\(([\w-]+)\)")
REL_RE = re.compile(r"//\s*REL:\s*(\S+)")

PASSES = {p.name: p for p in all_passes()}


def load_fixture(path: str) -> engine.SourceFile:
    with open(path, encoding="utf-8") as f:
        text = f.read()
    m = REL_RE.search(text)
    rel = m.group(1) if m else f"src/bfs/{os.path.basename(path)}"
    return engine.load_source(path, rel)


def run_pass(pass_name: str, sf: engine.SourceFile) -> list[engine.Finding]:
    cfg = LayerConfig.load(os.path.join(HERE, "layers.toml"))
    ctx = engine.PassContext(repo=REPO, files=[sf], config=cfg,
                             backend_name="tokens")
    return PASSES[pass_name].run(ctx)


class CorpusTest(unittest.TestCase):
    """Every planted violation is found; nothing else fires."""

    def _check_fixture(self, pass_name: str, path: str) -> None:
        sf = load_fixture(path)
        expected = sorted(EXPECT_RE.findall(sf.text))
        self.assertTrue(expected,
                        f"{path}: fixture declares no EXPECT markers")
        found = sorted(f.rule for f in run_pass(pass_name, sf))
        self.assertEqual(
            expected, found,
            f"{path}: expected {expected}, pass found {found}")

    def test_corpus(self):
        pass_dirs = [d for d in sorted(os.listdir(SELFTEST))
                     if os.path.isdir(os.path.join(SELFTEST, d))
                     and d in PASSES]
        self.assertGreaterEqual(len(pass_dirs), 4)
        for d in pass_dirs:
            for name in sorted(os.listdir(os.path.join(SELFTEST, d))):
                if not name.endswith(engine.SOURCE_SUFFIXES):
                    continue
                with self.subTest(pass_name=d, fixture=name):
                    self._check_fixture(
                        d, os.path.join(SELFTEST, d, name))

    def test_every_rule_has_a_fixture(self):
        covered: set[str] = set()
        for d in sorted(os.listdir(SELFTEST)):
            full = os.path.join(SELFTEST, d)
            if not os.path.isdir(full):
                continue
            for name in os.listdir(full):
                if name.endswith(engine.SOURCE_SUFFIXES):
                    with open(os.path.join(full, name),
                              encoding="utf-8") as f:
                        covered.update(EXPECT_RE.findall(f.read()))
        missing = known_rules() - covered - {"missing-tu"}
        self.assertFalse(
            missing,
            f"rules with no seeded-violation fixture: {sorted(missing)}")

    def test_framework_bad_suppression_fixture(self):
        path = os.path.join(SELFTEST, "framework", "bad_suppression.cc")
        sf = load_fixture(path)
        expected = sorted(EXPECT_RE.findall(sf.text))
        _, _, ann = engine.apply_suppressions(
            [], {sf.rel: sf}, known_rules())
        self.assertEqual(expected, sorted(f.rule for f in ann))


class EngineTest(unittest.TestCase):
    def _source(self, text: str, rel: str = "src/bfs/x.cc"):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".cc", delete=False) as f:
            f.write(text)
            path = f.name
        self.addCleanup(os.unlink, path)
        return engine.load_source(path, rel)

    def test_reasoned_suppression_suppresses(self):
        sf = self._source(
            "#include <atomic>\n"
            "std::atomic<int> g{0};\n"
            "// analyze: allow(seq-cst-default) cold one-shot init flag;\n"
            "// contention is impossible by construction\n"
            "void f() { g.store(1); }\n")
        findings = run_pass("atomics", sf)
        self.assertEqual(["seq-cst-default"], [f.rule for f in findings])
        kept, suppressed, ann = engine.apply_suppressions(
            findings, {sf.rel: sf}, known_rules())
        self.assertEqual([], kept)
        self.assertEqual(1, len(suppressed))
        self.assertEqual([], ann)

    def test_reasonless_suppression_does_not_suppress(self):
        sf = self._source(
            "#include <atomic>\n"
            "std::atomic<int> g{0};\n"
            "// analyze: allow(seq-cst-default)\n"
            "void f() { g.store(1); }\n")
        findings = run_pass("atomics", sf)
        kept, suppressed, ann = engine.apply_suppressions(
            findings, {sf.rel: sf}, known_rules())
        self.assertEqual(["seq-cst-default"], [f.rule for f in kept])
        self.assertEqual([], suppressed)
        self.assertEqual(["bad-suppression"], [f.rule for f in ann])

    def test_suppression_window(self):
        # An annotation further than SUPPRESS_WINDOW lines above the
        # finding must not apply.
        filler = "int a%d = 0;\n"
        sf = self._source(
            "#include <atomic>\n"
            "std::atomic<int> g{0};\n"
            "// analyze: allow(seq-cst-default) too far away to count\n"
            + "".join(filler % i for i in range(engine.SUPPRESS_WINDOW + 1))
            + "void f() { g.store(1); }\n")
        findings = run_pass("atomics", sf)
        kept, suppressed, _ = engine.apply_suppressions(
            findings, {sf.rel: sf}, known_rules())
        self.assertEqual(1, len(kept))
        self.assertEqual([], suppressed)

    def test_fingerprint_survives_line_drift(self):
        a = engine.Finding("atomics", "seq-cst-default", "src/x.cc", 10,
                           "m", snippet="  g.store(1);")
        b = engine.Finding("atomics", "seq-cst-default", "src/x.cc", 99,
                           "m", snippet="\tg.store(1);  ")
        self.assertEqual(a.fingerprint, b.fingerprint)
        c = engine.Finding("atomics", "seq-cst-default", "src/y.cc", 10,
                           "m", snippet="  g.store(1);")
        self.assertNotEqual(a.fingerprint, c.fingerprint)

    def test_baseline_partition_and_drift(self):
        f1 = engine.Finding("atomics", "seq-cst-default", "src/x.cc", 1,
                            "m", snippet="g.store(1);")
        f2 = engine.Finding("lifecycle", "raw-unpin", "src/y.cc", 2,
                            "m", snippet="e->unpin(k);")
        bl = engine.Baseline(path="<mem>", entries=[
            {"rule": f1.rule, "path": f1.path,
             "fingerprint": f1.fingerprint},
            {"rule": "manual-lock", "path": "src/gone.cc",
             "fingerprint": "0" * 16},
        ])
        new, old, stale = bl.partition([f1, f2])
        self.assertEqual([f2], new)
        self.assertEqual([f1], old)
        self.assertEqual(1, len(stale))
        self.assertEqual("src/gone.cc", stale[0]["path"])

    def test_layer_config_rejects_cycle(self):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".toml", delete=False) as f:
            f.write('[layers.a]\ndeps = ["b"]\n'
                    '[layers.b]\ndeps = ["a"]\n')
            path = f.name
        self.addCleanup(os.unlink, path)
        with self.assertRaises(ConfigError):
            LayerConfig.load(path)

    def test_layer_config_rejects_unknown_dep(self):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".toml", delete=False) as f:
            f.write('[layers.a]\ndeps = ["ghost"]\n')
            path = f.name
        self.addCleanup(os.unlink, path)
        with self.assertRaises(ConfigError):
            LayerConfig.load(path)

    def test_repo_layer_config_is_valid(self):
        cfg = LayerConfig.load(os.path.join(HERE, "layers.toml"))
        self.assertIn("serve", cfg.layers)
        self.assertEqual("cli", cfg.layer_of("src/tools/bfsx_cli.cpp"))
        self.assertTrue(cfg.allowed("serve", "graph500"))
        self.assertFalse(cfg.allowed("obs", "bfs"))


class SarifTest(unittest.TestCase):
    def _report(self):
        f = engine.Finding("atomics", "seq-cst-default", "src/x.cc", 3,
                           "m", snippet="g.store(1);")
        s = engine.Finding("lifecycle", "raw-unpin", "src/y.cc", 7,
                           "m", snippet="e->unpin(k);")
        return engine.AnalysisReport(
            new_findings=[f], suppressed=[s], baselined=[],
            stale_baseline=[], files_scanned=2, backend_name="tokens",
            passes_run=["atomics", "lifecycle"])

    def _catalog(self):
        cat = {"bad-suppression": "x", "missing-tu": "x"}
        for p in all_passes():
            cat.update(p.rules)
        return cat

    def test_build_validates(self):
        doc = sarif.build(self._report(), self._catalog(),
                          {("raw-unpin", "src/y.cc", 7): "blessed caller"})
        self.assertEqual([], sarif.validate(doc))
        results = doc["runs"][0]["results"]
        self.assertEqual(2, len(results))
        by_rule = {r["ruleId"]: r for r in results}
        self.assertEqual("new", by_rule["seq-cst-default"]["baselineState"])
        self.assertEqual(
            "blessed caller",
            by_rule["raw-unpin"]["suppressions"][0]["justification"])
        self.assertIn(sarif.FINGERPRINT_KEY,
                      by_rule["seq-cst-default"]["partialFingerprints"])

    def test_validate_catches_breakage(self):
        doc = sarif.build(self._report(), self._catalog())
        doc["version"] = "2.0.0"
        doc["runs"][0]["results"][0]["ruleId"] = "unknown-rule"
        del doc["runs"][0]["results"][1]["message"]
        doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]["region"]["startLine"] = 0
        problems = sarif.validate(doc)
        self.assertGreaterEqual(len(problems), 4)


class DriverTest(unittest.TestCase):
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, DRIVER, *args],
            capture_output=True, text=True)

    def test_exit_1_on_findings(self):
        r = self._run("--no-baseline", "--passes", "atomics",
                      os.path.join(SELFTEST, "atomics", "bad_seq_cst.cc"))
        self.assertEqual(1, r.returncode, r.stdout + r.stderr)
        self.assertIn("seq-cst-default", r.stdout)

    def test_exit_0_on_clean(self):
        r = self._run("--no-baseline", "--passes", "atomics",
                      os.path.join(SELFTEST, "omp", "bad_shared_write.cc"))
        self.assertEqual(0, r.returncode, r.stdout + r.stderr)

    def test_exit_2_on_unknown_pass(self):
        r = self._run("--passes", "nonsense")
        self.assertEqual(2, r.returncode)
        self.assertIn("unknown pass", r.stderr)

    def test_exit_3_on_stale_baseline(self):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            json.dump({"version": 1, "entries": [
                {"rule": "seq-cst-default", "path": "src/gone.cc",
                 "fingerprint": "f" * 16}]}, f)
            path = f.name
        self.addCleanup(os.unlink, path)
        r = self._run("--baseline", path, "--passes", "atomics",
                      os.path.join(SELFTEST, "omp", "bad_shared_write.cc"))
        self.assertEqual(3, r.returncode, r.stdout + r.stderr)
        self.assertIn("stale", r.stdout)

    def test_write_baseline_roundtrip(self):
        with tempfile.NamedTemporaryFile(suffix=".json",
                                         delete=False) as f:
            path = f.name
        self.addCleanup(os.unlink, path)
        fixture = os.path.join(SELFTEST, "atomics", "bad_seq_cst.cc")
        r = self._run("--baseline", path, "--write-baseline",
                      "--passes", "atomics", fixture)
        self.assertEqual(0, r.returncode, r.stdout + r.stderr)
        r = self._run("--baseline", path, "--passes", "atomics", fixture)
        self.assertEqual(0, r.returncode, r.stdout + r.stderr)
        self.assertIn("3 baselined", r.stdout)

    def test_sarif_output(self):
        with tempfile.NamedTemporaryFile(suffix=".sarif",
                                         delete=False) as f:
            path = f.name
        self.addCleanup(os.unlink, path)
        r = self._run("--no-baseline", "--passes", "atomics",
                      "--sarif", path,
                      os.path.join(SELFTEST, "atomics", "bad_seq_cst.cc"))
        self.assertEqual(1, r.returncode, r.stdout + r.stderr)
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        self.assertEqual([], sarif.validate(doc))
        self.assertEqual(
            3, len(doc["runs"][0]["results"]))

    def test_list_rules(self):
        r = self._run("--list-rules")
        self.assertEqual(0, r.returncode)
        for rule in ("layering-violation", "seq-cst-default", "raw-unpin",
                     "nested-chunking", "shared-write", "bad-suppression"):
            self.assertIn(rule, r.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
