"""SARIF v2.1.0 emission for bfsx-analyze.

One run, one driver, the full rule catalog (so GitHub code scanning can
render rule help even for rules with zero results this run). Findings
map to ``results``:

  * new + baselined findings are plain results (baselined ones carry
    ``baselineState: "unchanged"`` so the UI can tell them apart);
  * in-source suppressed findings are emitted with a ``suppressions``
    record quoting the annotation's justification — code scanning hides
    them but keeps the audit trail.

``partialFingerprints`` carries the same content fingerprint the
committed baseline uses, so the SARIF result and the baseline entry for
one finding are trivially joinable.

``validate`` is a structural checker (required properties, types,
location sanity) used by the selftests — the point is catching emitter
regressions without a jsonschema dependency, not re-implementing the
spec.
"""

from __future__ import annotations

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "bfsx-analyze"
TOOL_VERSION = "1.0.0"
FINGERPRINT_KEY = "bfsxAnalyze/v1"


def _rule_descriptor(rule_id: str, description: str) -> dict:
    return {
        "id": rule_id,
        "shortDescription": {"text": description},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding, baseline_state: str | None = None,
            justification: str | None = None) -> dict:
    r = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": f"[{finding.pass_name}] {finding.message}"},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "SRCROOT",
                },
                "region": {"startLine": max(1, finding.line)},
            },
        }],
        "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint},
    }
    if baseline_state is not None:
        r["baselineState"] = baseline_state
    if justification is not None:
        r["suppressions"] = [{
            "kind": "inSource",
            "justification": justification,
        }]
    return r


def build(report, rule_catalog: dict[str, str],
          suppression_reasons: dict[tuple, str] | None = None) -> dict:
    """``rule_catalog`` is {rule-id: description} for every known rule;
    ``suppression_reasons`` maps (rule, path, line) to the annotation
    reason for suppressed findings."""
    reasons = suppression_reasons or {}
    results = []
    for f in report.new_findings:
        results.append(_result(f, baseline_state="new"))
    for f in report.baselined:
        results.append(_result(f, baseline_state="unchanged"))
    for f in report.suppressed:
        just = reasons.get((f.rule, f.path, f.line),
                           "suppressed by // analyze: allow annotation")
        results.append(_result(f, justification=just))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "version": TOOL_VERSION,
                    "informationUri":
                        "https://github.com/bfsx/bfsx/tree/main/tools/analyze",
                    "rules": [
                        _rule_descriptor(rid, desc)
                        for rid, desc in sorted(rule_catalog.items())
                    ],
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///"},
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def write(doc: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def validate(doc: dict) -> list[str]:
    """Structural SARIF check; returns a list of problems (empty =
    valid as far as this checker sees)."""
    errs: list[str] = []

    def need(obj, key, typ, where):
        if not isinstance(obj, dict) or key not in obj:
            errs.append(f"{where}: missing '{key}'")
            return None
        if not isinstance(obj[key], typ):
            errs.append(f"{where}.{key}: expected {typ.__name__}, got "
                        f"{type(obj[key]).__name__}")
            return None
        return obj[key]

    if need(doc, "version", str, "$") != SARIF_VERSION:
        errs.append(f"$.version: must be '{SARIF_VERSION}'")
    runs = need(doc, "runs", list, "$")
    if not runs:
        if runs is not None:
            errs.append("$.runs: must contain at least one run")
        return errs
    for ri, run in enumerate(runs):
        where = f"$.runs[{ri}]"
        tool = need(run, "tool", dict, where)
        driver = need(tool, "driver", dict, f"{where}.tool") if tool else None
        rule_ids: set[str] = set()
        if driver:
            need(driver, "name", str, f"{where}.tool.driver")
            rules = need(driver, "rules", list, f"{where}.tool.driver") or []
            for qi, rd in enumerate(rules):
                rid = need(rd, "id", str,
                           f"{where}.tool.driver.rules[{qi}]")
                if rid:
                    rule_ids.add(rid)
        results = need(run, "results", list, where)
        if results is None:
            continue
        for si, res in enumerate(results):
            rwhere = f"{where}.results[{si}]"
            rid = need(res, "ruleId", str, rwhere)
            if rid and rule_ids and rid not in rule_ids:
                errs.append(f"{rwhere}.ruleId: '{rid}' not in the driver "
                            f"rule catalog")
            msg = need(res, "message", dict, rwhere)
            if msg is not None:
                need(msg, "text", str, f"{rwhere}.message")
            locs = need(res, "locations", list, rwhere) or []
            for li, loc in enumerate(locs):
                phys = need(loc, "physicalLocation", dict,
                            f"{rwhere}.locations[{li}]")
                if not phys:
                    continue
                art = need(phys, "artifactLocation", dict,
                           f"{rwhere}.locations[{li}].physicalLocation")
                if art:
                    uri = need(art, "uri", str,
                               f"{rwhere}.locations[{li}]"
                               f".physicalLocation.artifactLocation")
                    if uri and (uri.startswith("/") or ".." in uri):
                        errs.append(
                            f"{rwhere}: artifact uri '{uri}' must be "
                            f"relative and inside the repo")
                region = phys.get("region")
                if isinstance(region, dict):
                    sl = region.get("startLine")
                    if not isinstance(sl, int) or sl < 1:
                        errs.append(f"{rwhere}: region.startLine must be a "
                                    f"positive integer")
    return errs
