#!/usr/bin/env python3
"""bfsx-analyze: unified multi-pass static analysis for the bfsx repo.

Runs the pass suite (layering, atomics, lifecycle, determinism, omp —
see tools/analyze/passes/) over the repository sources, applies
in-source ``// analyze: allow(rule) reason`` suppressions and the
committed baseline, and reports what remains.

Usage::

    bfsx_analyze.py                      # full scan, all passes
    bfsx_analyze.py --passes atomics src/bfs/msbfs.cc
    bfsx_analyze.py --sarif out.sarif    # emit SARIF 2.1.0 for CI
    bfsx_analyze.py --list-rules

Exit codes::

    0  clean (no unbaselined, unsuppressed findings)
    1  findings
    2  configuration / usage error (broken layers.toml, bad baseline,
       unusable requested backend)
    3  baseline drift (an entry in baseline.json matches nothing — the
       baseline may only shrink; regenerate with --write-baseline)

``compile_commands.json`` (default: <repo>/build/compile_commands.json
when present) is used for translation-unit coverage: a TU the build
compiles inside the analyzer's scope that the scan did not load is
reported as ``missing-tu`` — a file must not fall out of analysis by
falling out of a directory glob.
"""

from __future__ import annotations

import argparse
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import backends  # noqa: E402
import engine  # noqa: E402
import sarif  # noqa: E402
from passes import all_passes, known_rules  # noqa: E402
from passes.layering import ConfigError, LayerConfig  # noqa: E402

DEFAULT_REPO = os.path.dirname(os.path.dirname(HERE))


def parse_args(argv):
    p = argparse.ArgumentParser(
        prog="bfsx-analyze",
        description="multi-pass static analysis for the bfsx repository")
    p.add_argument("paths", nargs="*",
                   help="explicit files/directories to scan (default: each "
                        "pass's declared scope)")
    p.add_argument("--repo", default=DEFAULT_REPO,
                   help="repository root (default: two levels above this "
                        "script)")
    p.add_argument("--passes", default="all",
                   help="comma-separated pass names, or 'all'")
    p.add_argument("--backend", default="auto",
                   choices=("auto", "tokens", "clang"),
                   help="'clang' fails rather than downgrade when libclang "
                        "is unusable; 'auto' upgrades when it can")
    p.add_argument("--baseline", default=os.path.join(HERE, "baseline.json"),
                   help="baseline file (default: tools/analyze/baseline.json)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baseline (every finding is 'new')")
    p.add_argument("--write-baseline", action="store_true",
                   help="rewrite the baseline to the current finding set "
                        "and exit 0")
    p.add_argument("--sarif", metavar="PATH",
                   help="write a SARIF 2.1.0 report to PATH")
    p.add_argument("--compile-commands", metavar="PATH",
                   help="compilation database for TU-coverage checking "
                        "(default: <repo>/build/compile_commands.json when "
                        "present)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="summary line only")
    return p.parse_args(argv)


def select_passes(spec: str):
    available = {p.name: p for p in all_passes()}
    if spec == "all":
        return list(available.values())
    out = []
    for name in spec.split(","):
        name = name.strip()
        if name not in available:
            raise ConfigError(
                f"unknown pass '{name}' (available: "
                f"{', '.join(sorted(available))})")
        out.append(available[name])
    return out


def rule_catalog(selected) -> dict[str, str]:
    cat = {
        "bad-suppression":
            "malformed // analyze: allow annotation (unknown rule or "
            "missing reason)",
        "missing-tu":
            "translation unit compiled by the build but not loaded by "
            "the analyzer scan",
    }
    for p in selected:
        cat.update(p.rules)
    return cat


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])
    repo = os.path.abspath(args.repo)

    try:
        selected = select_passes(args.passes)
        cfg = LayerConfig.load(os.path.join(HERE, "layers.toml"))
        backend_name, backend = backends.detect_backend(args.backend)
    except (ConfigError, RuntimeError, ValueError) as e:
        print(f"bfsx-analyze: error: {e}", file=sys.stderr)
        return 2

    if args.list_rules:
        for p in selected:
            for rid, desc in sorted(p.rules.items()):
                print(f"{p.name}/{rid}: {desc}")
        print(f"framework/bad-suppression: "
              f"{rule_catalog([])['bad-suppression']}")
        print(f"framework/missing-tu: {rule_catalog([])['missing-tu']}")
        return 0

    # ---- collect sources --------------------------------------------------
    explicit = [os.path.join(repo, p) if not os.path.isabs(p) else p
                for p in args.paths]
    scope_union: list[str] = []
    for p in selected:
        for d in p.scope:
            if d not in scope_union:
                scope_union.append(d)
    files = engine.collect_files(repo, scope_union, explicit or None)
    by_rel = {sf.rel: sf for sf in files}

    # ---- run passes -------------------------------------------------------
    findings: list[engine.Finding] = []
    clang_edges = None
    cc_path = args.compile_commands or os.path.join(
        repo, "build", "compile_commands.json")
    if backend_name == "clang" and os.path.exists(cc_path):
        clang_edges = backends.clang_include_edges(backend, cc_path, repo)
    for p in selected:
        if explicit:
            scoped = files
        else:
            scoped = [sf for sf in files
                      if any(sf.rel == d or sf.rel.startswith(d + "/")
                             for d in p.scope)]
        ctx = engine.PassContext(repo, scoped, cfg, backend_name, backend)
        if clang_edges is not None:
            ctx.clang_edges = clang_edges
        findings.extend(p.run(ctx))

    # ---- TU coverage ------------------------------------------------------
    if not explicit and os.path.exists(cc_path):
        for rel in backends.check_tu_coverage(
                repo, cc_path, set(by_rel), scope_union):
            findings.append(engine.Finding(
                pass_name="framework", rule="missing-tu", path=rel, line=1,
                message=(f"the build compiles '{rel}' but the analyzer scan "
                         f"did not load it; widen the scan scope so the "
                         f"file cannot escape analysis"),
                snippet=rel))

    # ---- suppressions, baseline -------------------------------------------
    kept, suppressed, ann = engine.apply_suppressions(
        findings, by_rel, known_rules() | {"missing-tu"})
    kept.extend(ann)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.write_baseline:
        baseline = engine.Baseline(path=args.baseline)
        baseline.save(kept)
        print(f"bfsx-analyze: baseline rewritten with {len(kept)} "
              f"entr{'y' if len(kept) == 1 else 'ies'} -> "
              f"{args.baseline}")
        return 0

    baseline = engine.Baseline(path=args.baseline)
    if not args.no_baseline:
        try:
            baseline = engine.Baseline.load(args.baseline)
        except ValueError as e:
            print(f"bfsx-analyze: error: {e}", file=sys.stderr)
            return 2
    new, old, stale = baseline.partition(kept)

    report = engine.AnalysisReport(
        new_findings=new, suppressed=suppressed, baselined=old,
        stale_baseline=stale, files_scanned=len(files),
        backend_name=backend_name, passes_run=[p.name for p in selected])

    # ---- output -----------------------------------------------------------
    if not args.quiet:
        for f in report.new_findings:
            print(f)
        for f in report.baselined:
            print(f"{f}  [baselined]")
        for e in report.stale_baseline:
            print(f"{e['path']}: [baseline/{e['rule']}] stale entry "
                  f"{e['fingerprint']} matches no finding; the baseline "
                  f"may only shrink — remove it (or --write-baseline)")
    print(report.summary())

    if args.sarif:
        reasons = {}
        for f in report.suppressed:
            sf = by_rel.get(f.path)
            if sf is None:
                continue
            for s in sf.suppressions:
                if f.rule in s.rules and \
                        f.line - engine.SUPPRESS_WINDOW <= s.line <= f.line:
                    reasons[(f.rule, f.path, f.line)] = s.reason
                    break
        doc = sarif.build(report, rule_catalog(selected), reasons)
        problems = sarif.validate(doc)
        if problems:
            for p in problems:
                print(f"bfsx-analyze: sarif: {p}", file=sys.stderr)
            return 2
        sarif.write(doc, args.sarif)
        if not args.quiet:
            print(f"bfsx-analyze: sarif report -> {args.sarif}")

    if report.stale_baseline:
        return 3
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
