"""Analysis backends: libclang when importable, token-level otherwise.

Every pass in this framework has a token-level implementation — that is
the contract that keeps CI honest on machines without clang: the
analyzer *degrades in precision, never in coverage*. When the
``clang.cindex`` bindings are importable (and can locate a
libclang.so), the driver upgrades the include-graph used by the
layering pass from the quoted-include regex to clang's resolved include
edges; everything else stays token-level by design (the atomics /
lifecycle / determinism rules are project-idiom checks, not general
dataflow, and their token form is the documented semantics the selftest
corpus pins down).

``compile_commands.json`` is consumed for translation-unit discovery:
it tells the driver which .cc files the build actually compiles, so a
file that falls out of the build cannot silently fall out of analysis
(the driver reports TUs missing from its scan).
"""

from __future__ import annotations

import json
import os


def detect_backend(requested: str = "auto"):
    """Returns (name, handle): ("clang", cindex-module) or
    ("tokens", None). ``requested`` is "auto", "tokens" or "clang";
    asking for clang when it is unusable raises RuntimeError rather
    than silently downgrading."""
    if requested == "tokens":
        return "tokens", None
    try:
        from clang import cindex  # type: ignore
        # Importable is not usable: the bindings need a libclang.so.
        try:
            cindex.Index.create()
        except Exception:
            raise ImportError("clang.cindex present but libclang missing")
        return "clang", cindex
    except ImportError:
        if requested == "clang":
            raise RuntimeError(
                "--backend clang requested but the clang.cindex bindings "
                "(python3-clang + libclang) are not usable here")
        return "tokens", None


def translation_units(compile_commands_path: str) -> list[str]:
    """Absolute paths of every TU in the compilation database."""
    with open(compile_commands_path, encoding="utf-8") as f:
        db = json.load(f)
    out = []
    for entry in db:
        p = entry.get("file", "")
        if not os.path.isabs(p):
            p = os.path.join(entry.get("directory", ""), p)
        out.append(os.path.normpath(p))
    return sorted(set(out))


def check_tu_coverage(repo: str, compile_commands_path: str,
                      scanned_rels: set[str],
                      scope_dirs: list[str]) -> list[str]:
    """Repo-relative TUs that the build compiles, that live inside the
    analyzer's scope, but that the scan did not load — each one is a
    coverage hole worth failing on."""
    missing = []
    for tu in translation_units(compile_commands_path):
        rel = os.path.relpath(tu, repo).replace(os.sep, "/")
        if rel.startswith(".."):
            continue  # outside the repo (system/generated sources)
        if not any(rel.startswith(d + "/") for d in scope_dirs):
            continue
        if rel not in scanned_rels:
            missing.append(rel)
    return sorted(missing)


def clang_include_edges(cindex, compile_commands_path: str, repo: str):
    """Resolved include edges {including-rel: set(included-rel)} from
    libclang, restricted to in-repo files. Used by the layering pass to
    replace the quoted-include regex when the real frontend is
    available."""
    db_dir = os.path.dirname(compile_commands_path)
    comp_db = cindex.CompilationDatabase.fromDirectory(db_dir)
    index = cindex.Index.create()
    edges: dict[str, set[str]] = {}
    for tu_path in translation_units(compile_commands_path):
        cmds = comp_db.getCompileCommands(tu_path)
        if not cmds:
            continue
        args = [a for a in list(cmds[0].arguments)[1:-1]
                if a not in ("-c", "-o")]
        try:
            tu = index.parse(tu_path, args=args)
        except cindex.TranslationUnitLoadError:
            continue
        for inc in tu.get_includes():
            src = os.path.normpath(str(inc.location.file))
            dst = os.path.normpath(str(inc.include))
            sr = os.path.relpath(src, repo).replace(os.sep, "/")
            dr = os.path.relpath(dst, repo).replace(os.sep, "/")
            if sr.startswith("..") or dr.startswith(".."):
                continue
            edges.setdefault(sr, set()).add(dr)
    return edges
