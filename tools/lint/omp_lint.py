#!/usr/bin/env python3
"""Back-compat shim: the OpenMP race lint moved into the bfsx-analyze
framework as tools/analyze/passes/omp.py (one pass among five).

This file keeps the historical entry point alive — the test suite and
any scripts that do ``import omp_lint`` or run ``omp_lint.py PATH...``
get the identical checker, loaded from its new home. New callers should
use ``tools/analyze/bfsx_analyze.py --passes omp`` instead.
"""

from __future__ import annotations

import importlib.util
import os
import sys

_IMPL = os.path.normpath(os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..", "analyze", "passes", "omp.py"))

_spec = importlib.util.spec_from_file_location("_bfsx_omp_pass", _IMPL)
_mod = importlib.util.module_from_spec(_spec)
sys.modules[_spec.name] = _mod  # dataclasses resolve types via sys.modules
_spec.loader.exec_module(_mod)

# Re-export the public surface verbatim.
RULES = _mod.RULES
SOURCE_SUFFIXES = _mod.SOURCE_SUFFIXES
Violation = _mod.Violation
Pragma = _mod.Pragma
lint_text = _mod.lint_text
lint_file = _mod.lint_file
collect_sources = _mod.collect_sources
main = _mod.main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
