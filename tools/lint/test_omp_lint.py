#!/usr/bin/env python3
"""Unit tests for omp_lint.py: every rule must fire on a seeded
violation and stay quiet on the equivalent clean code, and the
allow() annotation grammar must suppress (with a reason) or be
reported as malformed (without one)."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import omp_lint  # noqa: E402


def rules_of(violations):
    return sorted(v.rule for v in violations)


def lint(snippet):
    return omp_lint.lint_text(snippet, "test.cc")


class SharedWriteTest(unittest.TestCase):
    def test_bare_shared_write_flagged(self):
        out = lint("""
void f(std::vector<int>& x, long total) {
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < x.size(); ++i) {
    total += x[i];
  }
}
""")
        self.assertEqual(rules_of(out), ["shared-write"])
        self.assertIn("total", out[0].message)
        self.assertEqual(out[0].line, 3)

    def test_reduction_clause_is_clean(self):
        out = lint("""
void f(std::vector<int>& x, long total) {
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::size_t i = 0; i < x.size(); ++i) {
    total += x[i];
  }
}
""")
        self.assertEqual(out, [])

    def test_enclosing_parallel_reduction_merged(self):
        # A bare `omp for` inherits reduction clauses from the parallel
        # region it binds to (the topdown.cc pattern).
        out = lint("""
void f(std::vector<int>& x, long total) {
#pragma omp parallel reduction(+ : total)
  {
#pragma omp for schedule(dynamic, 64) nowait
    for (std::size_t i = 0; i < x.size(); ++i) {
      total += x[i];
    }
  }
}
""")
        self.assertEqual(out, [])

    def test_increment_of_shared_counter_flagged(self):
        out = lint("""
void f(int n, int hits) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    ++hits;
  }
}
""")
        self.assertEqual(rules_of(out), ["shared-write"])
        self.assertIn("hits", out[0].message)

    def test_body_local_write_is_clean(self):
        out = lint("""
void f(int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    int acc = 0;
    acc += i;
    std::size_t row = hist[i];
    row += 1;
  }
}
""")
        self.assertEqual(out, [])

    def test_index_deterministic_store_is_clean(self):
        out = lint("""
void f(std::vector<int>& y, int n) {
#pragma omp parallel for schedule(static)
  for (int v = 0; v < n; ++v) {
    y[static_cast<std::size_t>(v)] = v * 2;
  }
}
""")
        self.assertEqual(out, [])

    def test_loop_independent_store_flagged(self):
        out = lint("""
void f(std::vector<int>& y, int n, int k) {
#pragma omp parallel for
  for (int v = 0; v < n; ++v) {
    y[k] = v;
  }
}
""")
        self.assertEqual(rules_of(out), ["shared-write"])
        self.assertIn("y[k]", out[0].message)

    def test_store_via_body_local_index_is_clean(self):
        # The builder.cc scatter pattern: index comes from a per-thread
        # cursor computed in the body.
        out = lint("""
void f(std::vector<int>& y, int n) {
#pragma omp parallel for
  for (int v = 0; v < n; ++v) {
    const std::size_t slot = cursor[v];
    y[slot] = v;
  }
}
""")
        self.assertEqual(out, [])

    def test_store_via_lambda_parameter_is_clean(self):
        # The templated GraphView kernels (src/bfs/topdown.h) traverse
        # neighbours through a callback; its parameter is the per-edge
        # value the range-for variable used to be.
        out = lint("""
void f(const V& g, State& state, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    const int u = queue[i];
    g.for_each_out_neighbor(u, [&state, u](vid_t v) {
      state.parent[static_cast<std::size_t>(v)] = u;
    });
  }
}
""")
        self.assertEqual(out, [])

    def test_lambda_capture_list_does_not_localize(self):
        # Captured names are not declarations; a store indexed only by a
        # captured outer variable is still loop-independent.
        out = lint("""
void f(const V& g, int n, int k) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    g.visit([&y, k](int unused) {
      y[k] = 1;
    });
  }
}
""")
        self.assertEqual(rules_of(out), ["shared-write"])
        self.assertIn("y[k]", out[0].message)

    def test_atomic_covered_write_is_clean(self):
        out = lint("""
void f(int n, int hits) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
#pragma omp atomic
    ++hits;
  }
}
""")
        self.assertEqual(out, [])

    def test_plain_parallel_block_not_scanned(self):
        # shared-write only reasons about worksharing loops; parallel
        # blocks manage their own disjointness (builder.cc scatter).
        out = lint("""
void f(std::vector<int>& y) {
  const int workers = 4;
#pragma omp parallel num_threads(workers)
  {
    y[omp_get_thread_num()] = 1;
  }
}
""")
        self.assertEqual(out, [])


class DetDynamicTest(unittest.TestCase):
    def test_det_with_dynamic_flagged(self):
        out = lint("""
void f(int n) {
  // det: results must be bit-identical across runs.
#pragma omp parallel for schedule(dynamic, 16)
  for (int i = 0; i < n; ++i) {
    g(i);
  }
}
""")
        self.assertEqual(rules_of(out), ["det-dynamic"])

    def test_det_with_static_is_clean(self):
        out = lint("""
void f(int n) {
  // det: results must be bit-identical across runs.
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    g(i);
  }
}
""")
        self.assertEqual(out, [])

    def test_dynamic_without_det_is_clean(self):
        # Index-deterministic bodies may use dynamic freely (rmat.cc).
        out = lint("""
void f(std::vector<int>& y, int n) {
#pragma omp parallel for schedule(dynamic)
  for (int i = 0; i < n; ++i) {
    y[i] = g(i);
  }
}
""")
        self.assertEqual(out, [])


class MissingWorkersTest(unittest.TestCase):
    def test_missing_num_threads_flagged(self):
        out = lint("""
void f(int n) {
  const int workers = worker_count(n);
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    y[i] = i;
  }
}
""")
        self.assertEqual(rules_of(out), ["missing-workers"])

    def test_num_threads_present_is_clean(self):
        out = lint("""
void f(int n) {
  const int workers = worker_count(n);
#pragma omp parallel for schedule(static) num_threads(workers)
  for (int i = 0; i < n; ++i) {
    y[i] = i;
  }
}
""")
        self.assertEqual(out, [])

    def test_no_workers_variable_is_clean(self):
        out = lint("""
void f(int n) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    y[i] = i;
  }
}
""")
        self.assertEqual(out, [])

    def test_workers_in_previous_function_not_inherited(self):
        out = lint("""
void g(int n) {
  const int workers = worker_count(n);
  use(workers);
}

void f(int n) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) {
    y[i] = i;
  }
}
""")
        self.assertEqual(out, [])


class NowaitReadTest(unittest.TestCase):
    def test_read_after_nowait_flagged(self):
        out = lint("""
void f(int n, long total) {
#pragma omp parallel reduction(+ : total)
  {
#pragma omp for nowait
    for (int i = 0; i < n; ++i) {
      total += i;
    }
    use(total);
  }
}
""")
        self.assertEqual(rules_of(out), ["nowait-read"])
        self.assertIn("total", out[0].message)

    def test_no_read_after_nowait_is_clean(self):
        out = lint("""
void f(int n, long total) {
#pragma omp parallel reduction(+ : total)
  {
#pragma omp for nowait
    for (int i = 0; i < n; ++i) {
      total += i;
    }
  }
  use(total);
}
""")
        self.assertEqual(out, [])


class AllowAnnotationTest(unittest.TestCase):
    def test_allow_with_reason_suppresses(self):
        out = lint("""
void f(std::vector<int>& x, long total) {
  // omp-lint: allow(shared-write) totals are per-thread slices merged
  // after the region; the lint cannot see the slicing.
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < x.size(); ++i) {
    total += x[i];
  }
}
""")
        self.assertEqual(out, [])

    def test_allow_without_reason_reported(self):
        out = lint("""
void f(std::vector<int>& x, long total) {
  // omp-lint: allow(shared-write)
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < x.size(); ++i) {
    total += x[i];
  }
}
""")
        self.assertEqual(rules_of(out), ["bad-annotation"])

    def test_allow_unknown_rule_reported(self):
        out = lint("""
void f(int n) {
  // omp-lint: allow(made-up-rule) because reasons.
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    y[i] = i;
  }
}
""")
        self.assertEqual(rules_of(out), ["bad-annotation"])

    def test_allow_only_suppresses_named_rule(self):
        out = lint("""
void f(int n, int hits) {
  const int workers = worker_count(n);
  // omp-lint: allow(missing-workers) thread count is pinned by caller.
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    ++hits;
  }
}
""")
        self.assertEqual(rules_of(out), ["shared-write"])


class HarnessTest(unittest.TestCase):
    def test_pragma_continuation_lines_joined(self):
        out = lint("""
void f(int n, long total) {
#pragma omp parallel for schedule(static) \\
    reduction(+ : total)
  for (int i = 0; i < n; ++i) {
    total += i;
  }
}
""")
        self.assertEqual(out, [])

    def test_preprocessor_between_pragma_and_loop_skipped(self):
        out = lint("""
void f(int n, int hits) {
#pragma omp parallel for
#ifdef NEVER
#endif
  for (int i = 0; i < n; ++i) {
    ++hits;
  }
}
""")
        self.assertEqual(rules_of(out), ["shared-write"])

    def test_strings_and_comments_not_scanned(self):
        out = lint("""
void f(int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    log("total += broken");  // total += also broken here
    y[i] = i;
  }
}
""")
        self.assertEqual(out, [])

    def test_comparison_operators_not_writes(self):
        out = lint("""
void f(int n, int bound) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    if (i <= bound || i >= bound || i == bound || i != bound) {
      y[i] = i;
    }
  }
}
""")
        self.assertEqual(out, [])

    def test_violation_reports_pragma_location(self):
        out = lint("""
void f(int n, int hits) {



#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    ++hits;
  }
}
""")
        self.assertEqual(len(out), 1)
        self.assertEqual(out[0].line, 6)
        self.assertEqual(out[0].path, "test.cc")


if __name__ == "__main__":
    unittest.main()
