// Scenario engines: the Graph 500 protocol over implicit graphs.
//
// `--scenario` hands the runner a graph::ScenarioGraph — a variant of
// implicit views (grid world, n-puzzle) whose neighbours are generated
// on the fly instead of read from CSR arrays. The factories here wrap
// the same templated level-step core the native CSR engines use
// (graph500/view_engine.h), instantiated per concrete view by one
// std::visit at whole-run granularity; the hot loops stay free of
// virtual dispatch and variant branching.
//
// run_scenario_benchmark mirrors run_benchmark's kernel-2 protocol:
// sampled or explicit roots, per-root validation through the templated
// Graph 500 validator, deterministic root-order aggregation, serial or
// parallel_roots dispatch. msbfs is not available — the bit-parallel
// lane kernel is CSR-specialised (DESIGN.md §11).
#pragma once

#include <functional>

#include "bfs/state_pool.h"
#include "core/hybrid_policy.h"
#include "graph/scenario.h"
#include "graph500/runner.h"
#include "obs/sink.h"

namespace bfsx::graph500 {

/// A BFS implementation over an implicit graph: (scenario, root) ->
/// timed result. The scenario counterpart of BfsEngine.
using ScenarioBfsEngine =
    std::function<TimedBfs(const graph::ScenarioGraph&, graph::vid_t)>;

/// Pure top-down over a scenario view, wall-clock timed. Traced as
/// "native-td" (same kernels, same counters as the CSR engine).
[[nodiscard]] ScenarioBfsEngine make_scenario_top_down_engine(
    obs::TraceSink* sink = nullptr, bfs::StatePool* pool = nullptr);

/// Pure bottom-up over a scenario view. Both implicit views are
/// symmetric, so in-neighbour scans reuse the successor enumeration.
/// Traced as "native-bu".
[[nodiscard]] ScenarioBfsEngine make_scenario_bottom_up_engine(
    obs::TraceSink* sink = nullptr, bfs::StatePool* pool = nullptr);

/// The M/N combination over a scenario view: `policy` is evaluated
/// against |E|cq / |V|cq and the view's exact edge count every level,
/// exactly like the CSR hybrid. Traced as "native-hybrid".
[[nodiscard]] ScenarioBfsEngine make_scenario_hybrid_engine(
    core::HybridPolicy policy, obs::TraceSink* sink = nullptr,
    bfs::StatePool* pool = nullptr);

/// Runs `engine` over the benchmark roots of the scenario and
/// aggregates TEPS, mirroring run_benchmark: explicit roots are
/// range-checked, sampled roots come from graph::sample_view_roots
/// (identical RNG stream to CSR sampling), every traversal optionally
/// runs the Graph 500 validator, and aggregation is deterministic in
/// root order. Supports serial and parallel_roots; throws
/// std::invalid_argument for msbfs. Throws std::runtime_error if every
/// run failed validation.
[[nodiscard]] BenchmarkResult run_scenario_benchmark(
    const graph::ScenarioGraph& g, const ScenarioBfsEngine& engine,
    const RunnerOptions& opts = {});

}  // namespace bfsx::graph500
