// Templated wall-clock traversal core, shared by the CSR-facing native
// engines (native_engine.cc) and the implicit-graph scenario engines
// (scenario_engine.cc).
//
// Everything here is parameterized over the graph type `G` — either
// graph::CsrGraph (whose kernel overloads forward through the
// zero-overhead CsrGraphView adapter) or any graph::HybridView such as
// GridWorld / NPuzzleSpace. One definition of the traced level loop
// therefore serves both worlds, and the per-level counters it emits are
// byte-identical for identical work regardless of representation.
#pragma once

#include <chrono>
#include <optional>
#include <utility>

#include "bfs/bottomup.h"
#include "bfs/frontier.h"
#include "bfs/state_pool.h"
#include "bfs/topdown.h"
#include "core/hybrid_policy.h"
#include "core/trace_emit.h"
#include "graph500/runner.h"
#include "obs/sink.h"

namespace bfsx::graph500::detail {

using EngineClock = std::chrono::steady_clock;

inline double seconds_since(EngineClock::time_point start) {
  return std::chrono::duration<double>(EngineClock::now() - start).count();
}

/// Runs a traversal with `step(state, event_or_null)`. With no sink the
/// loop is exactly the untraced original — one clock read per
/// traversal, no per-level work. With a sink, each level is wall-timed
/// and emitted (the counter collection adds a frontier scan on
/// bottom-up levels, so traced native runs pay a small, explicit
/// observation cost). With a pool, the state is a recycled lease
/// instead of a fresh allocation; take_result still moves the maps out,
/// and the next checkout's reset refills them.
template <typename G, typename Step>
TimedBfs traced_traversal(const G& g, graph::vid_t root, const char* engine,
                          obs::TraceSink* sink, bfs::StatePool* pool,
                          Step&& step) {
  std::optional<bfs::StatePool::Lease> lease;
  std::optional<bfs::BfsState> local;
  bfs::BfsState& state =
      pool != nullptr ? *lease.emplace(pool->acquire(g.num_vertices(), root))
                      : local.emplace(g.num_vertices(), root);
  if (sink == nullptr) {
    const auto start = EngineClock::now();
    while (!state.frontier_empty()) step(state, nullptr);
    const double seconds = seconds_since(start);
    return {std::move(state).take_result(g), seconds};
  }

  obs::RunEvent trace = core::trace_begin_run(sink, engine, g, root);
  std::int32_t depth = 0;
  int switches = 0;
  bfs::Direction prev = bfs::Direction::kTopDown;
  const auto start = EngineClock::now();
  while (!state.frontier_empty()) {
    obs::LevelEvent event;
    event.device = "host";
    const auto level_start = EngineClock::now();
    step(state, &event);
    event.compute_seconds = seconds_since(level_start);
    if (depth > 0 && event.direction != prev) ++switches;
    prev = event.direction;
    ++depth;
    sink->on_level(event);
  }
  const double seconds = seconds_since(start);
  TimedBfs timed{std::move(state).take_result(g), seconds};
  core::trace_end_run(sink, std::move(trace), timed.result, seconds, 0.0,
                      depth, switches);
  return timed;
}

/// The trailing `tuning` parameter on every step helper defaults to the
/// inert MemTuning{} (bfs/mem_tuning.h), so existing call sites run the
/// historical code path untouched; the native engines forward the knobs
/// from NativeOptions.
template <typename G>
void step_top_down(const G& g, bfs::BfsState& s, obs::LevelEvent* e,
                   bfs::MemTuning tuning = {}) {
  if (e == nullptr) {
    bfs::top_down_step(g, s, tuning);
    return;
  }
  e->level = s.current_level;
  e->direction = bfs::Direction::kTopDown;
  const bfs::TopDownStats stats = bfs::top_down_step(g, s, tuning);
  e->frontier_vertices = stats.frontier_vertices;
  e->frontier_edges = stats.frontier_edges;
  e->next_vertices = stats.next_vertices;
}

template <typename G>
void step_bottom_up(const G& g, bfs::BfsState& s, obs::LevelEvent* e,
                    bfs::MemTuning tuning = {}) {
  if (e == nullptr) {
    bfs::bottom_up_step(g, s, tuning);
    return;
  }
  e->level = s.current_level;
  e->direction = bfs::Direction::kBottomUp;
  // |E|cq is not a bottom-up kernel byproduct; count it so traces from
  // every engine family carry the same per-level counters.
  e->frontier_vertices = static_cast<graph::vid_t>(s.frontier_queue.size());
  e->frontier_edges = bfs::frontier_out_edges(g, s.frontier_queue);
  const bfs::BottomUpStats stats = bfs::bottom_up_step(g, s, tuning);
  e->bu_edges_hit = stats.edges_scanned_hit;
  e->bu_edges_miss = stats.edges_scanned_miss;
  e->next_vertices = stats.next_vertices;
}

/// One M/N-decided level: evaluates `policy` against the real frontier
/// statistics — exactly like the simulated executor — then steps in the
/// chosen direction.
template <typename G>
void step_hybrid(const G& g, const core::HybridPolicy& policy,
                 bfs::BfsState& s, obs::LevelEvent* e,
                 bfs::MemTuning tuning = {}) {
  const graph::eid_t e_cq = bfs::frontier_out_edges(g, s.frontier_queue);
  const auto v_cq = static_cast<graph::vid_t>(s.frontier_queue.size());
  if (policy.decide(e_cq, v_cq, g.num_edges(), g.num_vertices()) ==
      bfs::Direction::kTopDown) {
    step_top_down(g, s, e, tuning);
  } else {
    step_bottom_up(g, s, e, tuning);
  }
}

}  // namespace bfsx::graph500::detail
