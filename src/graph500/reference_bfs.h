// A stand-in for the Graph 500 reference BFS code (the paper's §V-D
// baseline: "The Graph 500 benchmark also provides parallel
// implementation source codes ... Our CPU implementation achieves
// 4.96-21.0x speedups over theirs").
//
// Functionally it is a plain level-synchronous top-down traversal; its
// modelled time is the host's top-down cost inflated by
// `kReferencePenalty`, representing the reference code's shared-queue
// contention and lack of bitmap/CSR micro-optimisation. The penalty is
// the one free parameter of this baseline and was chosen so that
// "optimised top-down over reference" lands in the low single digits,
// with the rest of the paper's 16-63x coming from the hybrid direction
// switch — matching how the paper decomposes its speedup.
#pragma once

#include "graph500/runner.h"
#include "obs/sink.h"
#include "sim/device.h"

namespace bfsx::graph500 {

/// Modelled slowdown of the reference implementation relative to this
/// repository's optimised top-down kernel on the same hardware.
inline constexpr double kReferencePenalty = 3.0;

/// The reference traversal itself: a plain serial queue BFS, the
/// distance/parent oracle every engine (including the distributed one,
/// src/dist) is checked against in tests.
[[nodiscard]] bfs::BfsResult reference_bfs(const graph::CsrGraph& g,
                                           graph::vid_t root);

/// Builds a BfsEngine that emulates the Graph 500 reference code
/// running on `device`. `sink` (optional, non-owning, must outlive the
/// engine) observes every traversal as engine "ref", with per-level
/// modelled seconds already penalty-inflated.
[[nodiscard]] BfsEngine make_reference_engine(const sim::Device& device,
                                              obs::TraceSink* sink = nullptr);

/// Builds a BfsEngine for this repo's optimised pure top-down on
/// `device` (the paper's CPUTD / GPUTD / MICTD rows). Traced as "td".
[[nodiscard]] BfsEngine make_top_down_engine(const sim::Device& device,
                                             obs::TraceSink* sink = nullptr);

/// Ditto for pure bottom-up (CPUBU / GPUBU / MICBU). Traced as "bu".
[[nodiscard]] BfsEngine make_bottom_up_engine(const sim::Device& device,
                                              obs::TraceSink* sink = nullptr);

}  // namespace bfsx::graph500
