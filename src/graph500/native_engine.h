// Wall-clock engines: the same kernels, timed for real.
//
// The simulator (src/sim) answers "what would this cost on the paper's
// hardware"; these engines answer "what does it cost on the machine I
// am running on". They drive the identical OpenMP level-step kernels
// and time each traversal with a steady clock, so the library is
// directly usable as a production BFS on a real multicore host —
// including the M/N hybrid, which needs no hardware model at all.
#pragma once

#include "core/hybrid_policy.h"
#include "graph500/runner.h"
#include "obs/sink.h"

namespace bfsx::graph500 {

/// Pure top-down, wall-clock timed. `sink` (optional, non-owning, must
/// outlive the engine) observes every traversal as engine "native-td"
/// with real per-level seconds.
[[nodiscard]] BfsEngine make_native_top_down_engine(
    obs::TraceSink* sink = nullptr);

/// Pure bottom-up, wall-clock timed. Traced as "native-bu".
[[nodiscard]] BfsEngine make_native_bottom_up_engine(
    obs::TraceSink* sink = nullptr);

/// The M/N combination, wall-clock timed. `policy` is evaluated against
/// the real frontier statistics every level, exactly like the simulated
/// executor. Traced as "native-hybrid".
[[nodiscard]] BfsEngine make_native_hybrid_engine(
    core::HybridPolicy policy, obs::TraceSink* sink = nullptr);

}  // namespace bfsx::graph500
