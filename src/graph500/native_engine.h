// Wall-clock engines: the same kernels, timed for real.
//
// The simulator (src/sim) answers "what would this cost on the paper's
// hardware"; these engines answer "what does it cost on the machine I
// am running on". They drive the identical OpenMP level-step kernels
// and time each traversal with a steady clock, so the library is
// directly usable as a production BFS on a real multicore host —
// including the M/N hybrid, which needs no hardware model at all.
//
// All three single-source factories optionally draw their BfsState from
// a bfs::StatePool (non-owning; must outlive the engine): under
// batch_mode=parallel_roots each worker recycles a state instead of
// reallocating per root. The msbfs factory returns a BatchBfsEngine
// wrapping the bit-parallel kernel — its state is the per-batch lane
// masks, sized once per batch, so it takes no pool.
#pragma once

#include "bfs/mem_tuning.h"
#include "bfs/state_pool.h"
#include "core/hybrid_policy.h"
#include "graph/compressed_csr.h"
#include "graph500/runner.h"
#include "obs/sink.h"

namespace bfsx::graph500 {

/// Memory-subsystem knobs for the native engines (all default-off; the
/// default NativeOptions{} yields the historical engines exactly).
struct NativeOptions {
  /// Prefetch distance and hub cache, forwarded to every level step.
  /// A referenced HubCache is non-owning and must outlive the engine
  /// (it is immutable and shared safely across parallel-roots workers).
  bfs::MemTuning tuning{};
  /// Non-null routes traversals through the delta/varint-compressed
  /// adjacency (graph/compressed_csr.h) instead of the raw CSR arrays —
  /// same templated kernels, same results, smaller edge working set.
  /// Non-owning; must outlive the engine and must be built from the
  /// same CsrGraph the engine is invoked with.
  const graph::CompressedCsrView* compressed = nullptr;
};

/// Pure top-down, wall-clock timed. `sink` (optional, non-owning, must
/// outlive the engine) observes every traversal as engine "native-td"
/// with real per-level seconds.
[[nodiscard]] BfsEngine make_native_top_down_engine(
    obs::TraceSink* sink = nullptr, bfs::StatePool* pool = nullptr,
    NativeOptions options = {});

/// Pure bottom-up, wall-clock timed. Traced as "native-bu".
[[nodiscard]] BfsEngine make_native_bottom_up_engine(
    obs::TraceSink* sink = nullptr, bfs::StatePool* pool = nullptr,
    NativeOptions options = {});

/// The M/N combination, wall-clock timed. `policy` is evaluated against
/// the real frontier statistics every level, exactly like the simulated
/// executor. Traced as "native-hybrid".
[[nodiscard]] BfsEngine make_native_hybrid_engine(
    core::HybridPolicy policy, obs::TraceSink* sink = nullptr,
    bfs::StatePool* pool = nullptr, NativeOptions options = {});

/// Bit-parallel multi-source BFS (bfs::ms_bfs), wall-clock timed per
/// batch. `policy`'s M/N knobs steer the union-frontier direction
/// switch. Per-root seconds are the batch wall time divided evenly
/// across the batch. With a sink attached, each batch is traced as one
/// run of engine "msbfs" (root = first of the batch) whose level events
/// carry the union-frontier counters; per-lane counters stay available
/// to embedders via bfs::ms_bfs directly.
[[nodiscard]] BatchBfsEngine make_msbfs_batch_engine(
    core::HybridPolicy policy, obs::TraceSink* sink = nullptr);

}  // namespace bfsx::graph500
