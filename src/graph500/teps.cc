#include "graph500/teps.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace bfsx::graph500 {

double quantile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

TepsStats compute_teps_stats(std::span<const double> teps) {
  if (teps.empty()) {
    throw std::invalid_argument("compute_teps_stats: empty input");
  }
  for (double t : teps) {
    if (!(t > 0.0)) {
      throw std::invalid_argument("compute_teps_stats: non-positive TEPS");
    }
  }
  TepsStats s;
  s.count = teps.size();
  s.min = quantile(teps, 0.0);
  s.first_quartile = quantile(teps, 0.25);
  s.median = quantile(teps, 0.5);
  s.third_quartile = quantile(teps, 0.75);
  s.max = quantile(teps, 1.0);

  // Harmonic mean via the mean of inverse rates, exactly as the
  // Graph 500 reference output does; its stddev propagates the stddev
  // of the inverse rates through the reciprocal.
  const auto n = static_cast<double>(teps.size());
  double inv_sum = 0.0;
  for (double t : teps) inv_sum += 1.0 / t;
  const double inv_mean = inv_sum / n;
  s.harmonic_mean = 1.0 / inv_mean;
  if (teps.size() > 1) {
    double inv_var = 0.0;
    for (double t : teps) {
      const double d = 1.0 / t - inv_mean;
      inv_var += d * d;
    }
    inv_var /= (n - 1.0);
    s.harmonic_stddev =
        std::sqrt(inv_var) / (inv_mean * inv_mean) / std::sqrt(n);
  }
  return s;
}

std::string format_teps_stats(const TepsStats& stats) {
  std::ostringstream os;
  os << "min_TEPS:            " << stats.min << '\n'
     << "firstquartile_TEPS:  " << stats.first_quartile << '\n'
     << "median_TEPS:         " << stats.median << '\n'
     << "thirdquartile_TEPS:  " << stats.third_quartile << '\n'
     << "max_TEPS:            " << stats.max << '\n'
     << "harmonic_mean_TEPS:  " << stats.harmonic_mean << '\n'
     << "harmonic_stddev_TEPS:" << stats.harmonic_stddev << '\n';
  return os.str();
}

}  // namespace bfsx::graph500
