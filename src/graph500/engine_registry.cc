#include "graph500/engine_registry.h"

#include <algorithm>
#include <utility>

#include "core/adaptive_bfs.h"
#include "core/cross_arch_bfs.h"
#include "dist/dist_bfs.h"
#include "graph500/native_engine.h"
#include "graph500/reference_bfs.h"
#include "graph500/scenario_engine.h"
#include "sim/arch_config.h"
#include "tools/args.h"

namespace bfsx::graph500 {
namespace {

sim::Device cpu_preset() {
  return sim::Device{sim::parse_arch_spec("base=cpu,name=cpu")};
}

[[noreturn]] void throw_unknown(
    const std::vector<EngineRegistry::Entry>& entries,
    const std::string& name) {
  std::string message = "unknown engine '" + name + "'";
  std::vector<std::string_view> names;
  names.reserve(entries.size());
  for (const EngineRegistry::Entry& e : entries) names.push_back(e.name);
  if (const std::string_view closest = tools::suggest_closest(name, names);
      !closest.empty()) {
    message += " (did you mean '" + std::string(closest) + "'?)";
  }
  message += "; valid engines:";
  for (const EngineRegistry::Entry& e : entries) message += " " + e.name;
  throw UnknownEngineError(message);
}

}  // namespace

EngineConfig::EngineConfig() : device(cpu_preset()), host(cpu_preset()) {}

void EngineRegistry::register_engine(Entry entry) {
  if (entry.name.empty()) {
    throw std::invalid_argument("EngineRegistry: empty engine name");
  }
  if (!entry.factory) {
    throw std::invalid_argument("EngineRegistry: engine '" + entry.name +
                                "' has no factory");
  }
  if (find(entry.name) != nullptr) {
    throw std::invalid_argument("EngineRegistry: duplicate engine '" +
                                entry.name + "'");
  }
  entries_.push_back(std::move(entry));
}

const EngineRegistry::Entry* EngineRegistry::find(
    std::string_view name) const noexcept {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

BfsEngine EngineRegistry::make_engine(const std::string& name,
                                      const EngineConfig& config) const {
  if (const Entry* entry = find(name)) return entry->factory(config);
  throw_unknown(entries_, name);
}

BatchBfsEngine EngineRegistry::make_batch_engine(
    const std::string& name, const EngineConfig& config) const {
  const Entry* entry = find(name);
  if (entry == nullptr) throw_unknown(entries_, name);
  if (entry->batch_factory) return entry->batch_factory(config);
  return [engine = entry->factory(config)](
             const graph::CsrGraph& g,
             const std::vector<graph::vid_t>& batch) {
    std::vector<TimedBfs> timed;
    timed.reserve(batch.size());
    for (const graph::vid_t root : batch) timed.push_back(engine(g, root));
    return timed;
  };
}

ScenarioBfsEngine EngineRegistry::make_scenario_engine(
    const std::string& name, const EngineConfig& config) const {
  const Entry* entry = find(name);
  if (entry == nullptr) throw_unknown(entries_, name);
  if (!entry->scenario_factory) {
    std::string message =
        "engine '" + name +
        "' does not support --scenario (its kernels are CSR- or "
        "simulator-specific); scenario-capable engines:";
    for (const Entry& e : entries_) {
      if (e.scenario_factory) message += " " + e.name;
    }
    throw UnknownEngineError(message);
  }
  return entry->scenario_factory(config);
}

std::vector<std::string> EngineRegistry::scenario_names() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (e.scenario_factory) out.push_back(e.name);
  }
  return out;
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::string EngineRegistry::describe() const {
  std::size_t width = 0;
  for (const Entry& e : entries_) width = std::max(width, e.name.size());
  std::string out;
  for (const Entry& e : entries_) {
    out += "    " + e.name + std::string(width - e.name.size() + 2, ' ') +
           e.description + "\n";
  }
  return out;
}

EngineRegistry EngineRegistry::with_builtin_engines() {
  EngineRegistry r;
  r.register_engine(
      {"td", "pure top-down on one simulated device (CPUTD/GPUTD rows)",
       [](const EngineConfig& cfg) -> BfsEngine {
         return [device = cfg.device, sink = cfg.sink](
                    const graph::CsrGraph& g, graph::vid_t root) {
           core::CombinationRun run = core::run_pure(
               g, root, device, bfs::Direction::kTopDown, sink);
           return TimedBfs{std::move(run.result), run.seconds};
         };
       }});
  r.register_engine(
      {"bu", "pure bottom-up on one simulated device (CPUBU/GPUBU rows)",
       [](const EngineConfig& cfg) -> BfsEngine {
         return [device = cfg.device, sink = cfg.sink](
                    const graph::CsrGraph& g, graph::vid_t root) {
           core::CombinationRun run = core::run_pure(
               g, root, device, bfs::Direction::kBottomUp, sink);
           return TimedBfs{std::move(run.result), run.seconds};
         };
       }});
  r.register_engine(
      {"ref", "Graph 500 reference-code stand-in (penalised top-down)",
       [](const EngineConfig& cfg) -> BfsEngine {
         // make_reference_engine holds the device by reference; give
         // the closure shared ownership of a copy instead.
         auto device = std::make_shared<sim::Device>(cfg.device);
         BfsEngine inner = make_reference_engine(*device, cfg.sink);
         return [device, inner = std::move(inner)](const graph::CsrGraph& g,
                                                   graph::vid_t root) {
           return inner(g, root);
         };
       }});
  r.register_engine(
      {"hybrid", "M/N direction-switching combination on one device",
       [](const EngineConfig& cfg) -> BfsEngine {
         return [device = cfg.device, policy = cfg.policy, sink = cfg.sink](
                    const graph::CsrGraph& g, graph::vid_t root) {
           core::CombinationRun run =
               core::run_combination(g, root, device, policy, sink);
           return TimedBfs{std::move(run.result), run.seconds};
         };
       }});
  r.register_engine(
      {"cross",
       "host runs top-down, accelerator finishes (paper Algorithm 3)",
       [](const EngineConfig& cfg) -> BfsEngine {
         return [host = cfg.host, accel = cfg.device, link = cfg.link,
                 handoff = cfg.policy, accel_policy = cfg.accel_policy,
                 sink = cfg.sink](const graph::CsrGraph& g,
                                  graph::vid_t root) {
           core::CombinationRun run = core::run_cross_arch(
               g, root, host, accel, link, handoff, accel_policy, sink);
           return TimedBfs{std::move(run.result), run.seconds};
         };
       }});
  r.register_engine(
      {"dist", "BSP distributed BFS over a partitioned device cluster",
       [](const EngineConfig& cfg) -> BfsEngine {
         std::shared_ptr<const sim::Cluster> cluster = cfg.cluster;
         if (cluster == nullptr) {
           cluster = std::make_shared<const sim::Cluster>(
               std::vector<sim::Device>{cfg.device, cfg.device},
               sim::InterconnectSpec{});
         }
         dist::DistBfsOptions dopts;
         dopts.policy = cfg.policy;
         dopts.strategy = cfg.strategy;
         dopts.sink = cfg.sink;
         return [cluster, dopts](const graph::CsrGraph& g,
                                 graph::vid_t root) {
           dist::DistBfsRun run = dist::run_dist_bfs(g, root, *cluster, dopts);
           return TimedBfs{std::move(run.result), run.seconds};
         };
       }});
  // The native engines' kernels are templated over GraphView, so they
  // also register scenario factories — the same level-step core runs
  // over implicit grid/puzzle views (--scenario).
  r.register_engine(
      {"native-td", "pure top-down on this host, wall-clock timed",
       [](const EngineConfig& cfg) {
         return make_native_top_down_engine(cfg.sink, cfg.pool,
                                            {cfg.tuning, cfg.compressed});
       },
       {},
       [](const EngineConfig& cfg) {
         return make_scenario_top_down_engine(cfg.sink, cfg.pool);
       }});
  r.register_engine(
      {"native-bu", "pure bottom-up on this host, wall-clock timed",
       [](const EngineConfig& cfg) {
         return make_native_bottom_up_engine(cfg.sink, cfg.pool,
                                             {cfg.tuning, cfg.compressed});
       },
       {},
       [](const EngineConfig& cfg) {
         return make_scenario_bottom_up_engine(cfg.sink, cfg.pool);
       }});
  r.register_engine(
      {"native-hybrid", "M/N combination on this host, wall-clock timed",
       [](const EngineConfig& cfg) {
         return make_native_hybrid_engine(cfg.policy, cfg.sink, cfg.pool,
                                          {cfg.tuning, cfg.compressed});
       },
       {},
       [](const EngineConfig& cfg) {
         return make_scenario_hybrid_engine(cfg.policy, cfg.sink, cfg.pool);
       }});
  // The per-root factory serves callers that treat msbfs like any other
  // engine (batches of one); --batch=msbfs goes through the
  // batch_factory and amortises one kernel pass over up to 64 roots.
  r.register_engine(
      {"msbfs", "bit-parallel multi-source BFS, up to 64 roots per pass",
       [](const EngineConfig& cfg) -> BfsEngine {
         return [batch_engine = make_msbfs_batch_engine(cfg.policy,
                                                        cfg.sink)](
                    const graph::CsrGraph& g, graph::vid_t root) {
           return std::move(batch_engine(g, {root}).front());
         };
       },
       [](const EngineConfig& cfg) {
         return make_msbfs_batch_engine(cfg.policy, cfg.sink);
       }});
  return r;
}

}  // namespace bfsx::graph500
