// Graph 500 performance statistics.
//
// The benchmark's output rows: min/quartiles/max plus *harmonic* mean
// and harmonic stddev for TEPS (rates average harmonically), and
// arithmetic mean/stddev for times. Terms per the paper's Table I:
// TEPS = traversed edges per second.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace bfsx::graph500 {

struct TepsStats {
  double min = 0;
  double first_quartile = 0;
  double median = 0;
  double third_quartile = 0;
  double max = 0;
  double harmonic_mean = 0;
  double harmonic_stddev = 0;
  std::size_t count = 0;
};

/// Computes the Graph 500 statistics over a set of per-root TEPS
/// values. Throws std::invalid_argument on empty or non-positive input.
[[nodiscard]] TepsStats compute_teps_stats(std::span<const double> teps);

/// Quantile with linear interpolation on the sorted copy (the Graph 500
/// reference "statistics" kernel behaviour).
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Renders stats in Graph 500 output style, one "key: value" per line.
[[nodiscard]] std::string format_teps_stats(const TepsStats& stats);

}  // namespace bfsx::graph500
