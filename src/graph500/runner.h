// The Graph 500 kernel-2 protocol: sample roots, run BFS per root,
// validate each result, report TEPS statistics.
#pragma once

#include <functional>

#include "bfs/state.h"
#include "bfs/validate.h"
#include "graph500/teps.h"
#include "obs/registry.h"

namespace bfsx::graph500 {

/// A BFS run plus the time it took. Engines backed by the simulator
/// report *modelled* seconds; wall-clock engines report real seconds.
struct TimedBfs {
  bfs::BfsResult result;
  double seconds = 0.0;
};

/// Any BFS implementation: (graph, root) -> timed result. The runner is
/// deliberately engine-agnostic so the paper's eight variants (CPUTD,
/// GPUCB, CPUTD+GPUCB, ...) all flow through the same protocol.
using BfsEngine =
    std::function<TimedBfs(const graph::CsrGraph&, graph::vid_t)>;

struct RootRun {
  graph::vid_t root = 0;
  double seconds = 0.0;
  double teps = 0.0;
  graph::vid_t reached = 0;
  bool valid = true;
};

struct BenchmarkResult {
  std::vector<RootRun> runs;
  TepsStats stats;
  int validation_failures = 0;

  [[nodiscard]] double mean_seconds() const;
};

struct RunnerOptions {
  /// Number of BFS roots (the official benchmark uses 64).
  int num_roots = 16;
  std::uint64_t root_seed = 500;
  /// Run the Graph 500 validator on every traversal.
  bool validate = true;
  /// Optional, non-owning metrics registry. The runner accounts its
  /// protocol phases into it: wall timers runner.engine_seconds /
  /// runner.validate_seconds, counters runner.roots,
  /// runner.validation_failures, runner.vertices_reached. Per-level
  /// tracing is the engine's job (obs::TraceSink bound at engine
  /// construction); the runner only sees opaque timed results.
  obs::Registry* metrics = nullptr;
};

/// Runs `engine` over sampled roots of `g` and aggregates TEPS.
/// TEPS counts undirected edges in the reached component, per the spec.
/// Throws std::runtime_error if every sampled run failed validation.
[[nodiscard]] BenchmarkResult run_benchmark(const graph::CsrGraph& g,
                                            const BfsEngine& engine,
                                            const RunnerOptions& opts = {});

}  // namespace bfsx::graph500
