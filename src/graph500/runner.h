// The Graph 500 kernel-2 protocol: sample roots, run BFS per root,
// validate each result, report TEPS statistics.
//
// Roots can be dispatched three ways (RunnerOptions::batch_mode):
// one at a time (`serial`, the reference protocol), across OpenMP
// workers (`parallel_roots` — independent single-source traversals,
// ideally serial kernels drawing states from a bfs::StatePool), or in
// bit-parallel batches (`msbfs` — up to 64 roots per kernel pass).
// Whatever the completion order, aggregation is deterministic: per-root
// records land in preallocated root-index slots and are merged into the
// TEPS statistics and the metrics registry in root order, so
// OMP_NUM_THREADS=1 and =4 produce identical BenchmarkResults for
// engines with deterministic per-root seconds.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "bfs/state.h"
#include "bfs/validate.h"
#include "graph500/teps.h"
#include "obs/registry.h"

namespace bfsx::graph500 {

/// A BFS run plus the time it took. Engines backed by the simulator
/// report *modelled* seconds; wall-clock engines report real seconds.
struct TimedBfs {
  bfs::BfsResult result;
  double seconds = 0.0;
};

/// Any BFS implementation: (graph, root) -> timed result. The runner is
/// deliberately engine-agnostic so the paper's eight variants (CPUTD,
/// GPUCB, CPUTD+GPUCB, ...) all flow through the same protocol.
using BfsEngine =
    std::function<TimedBfs(const graph::CsrGraph&, graph::vid_t)>;

/// A batched BFS implementation: one timed result per requested root,
/// in request order. The msbfs engine amortises one kernel pass over
/// the whole batch; per-root `seconds` is the pass wall time divided
/// evenly across the batch (the per-root marginal cost is not
/// observable inside a bit-parallel pass).
using BatchBfsEngine = std::function<std::vector<TimedBfs>(
    const graph::CsrGraph&, const std::vector<graph::vid_t>&)>;

/// How run_benchmark dispatches its roots.
enum class BatchMode {
  kSerial,         ///< one root at a time (reference protocol)
  kParallelRoots,  ///< roots spread across OpenMP workers
  kMsBfs,          ///< bit-parallel batches of up to 64 roots
};

[[nodiscard]] constexpr const char* to_string(BatchMode m) noexcept {
  switch (m) {
    case BatchMode::kSerial: return "serial";
    case BatchMode::kParallelRoots: return "parallel_roots";
    case BatchMode::kMsBfs: return "msbfs";
  }
  return "?";
}

/// Parses a `--batch=` value; throws std::invalid_argument listing the
/// valid spellings on anything else.
[[nodiscard]] BatchMode parse_batch_mode(std::string_view text);

struct RootRun {
  graph::vid_t root = 0;
  double seconds = 0.0;
  double teps = 0.0;
  graph::vid_t reached = 0;
  /// Undirected edges in the reached component (the TEPS numerator);
  /// benches sum this for aggregate throughput.
  graph::eid_t edges = 0;
  bool valid = true;
};

struct BenchmarkResult {
  std::vector<RootRun> runs;
  TepsStats stats;
  int validation_failures = 0;

  [[nodiscard]] double mean_seconds() const;
};

struct RunnerOptions {
  /// Number of BFS roots (the official benchmark uses 64). Ignored when
  /// `roots` is non-empty.
  int num_roots = 16;
  std::uint64_t root_seed = 500;
  /// Explicit root list overriding sampling — used by the --reorder CLI
  /// path (roots chosen on the original graph, translated through the
  /// permutation) and by tests. Duplicates are allowed, as in the
  /// official benchmark's sampling.
  std::vector<graph::vid_t> roots;
  /// Run the Graph 500 validator on every traversal.
  bool validate = true;
  BatchMode batch_mode = BatchMode::kSerial;
  /// Roots per msbfs kernel pass (1..64); other modes ignore it.
  int batch_size = 64;
  /// Optional, non-owning metrics registry. The runner accounts its
  /// protocol phases into it: wall timers runner.engine_seconds /
  /// runner.validate_seconds (one observation per root, merged in root
  /// order regardless of completion order), counters runner.roots,
  /// runner.validation_failures, runner.vertices_reached, and — in
  /// msbfs mode — runner.batches plus the runner.batch_seconds timer.
  /// Registry is not thread-safe; the runner only touches it from the
  /// calling thread, after all workers have joined.
  obs::Registry* metrics = nullptr;
};

/// Runs `engine` over the benchmark roots of `g` and aggregates TEPS.
/// TEPS counts undirected edges in the reached component, per the spec.
/// Supports serial and parallel_roots modes; msbfs needs a batch engine
/// (throws std::invalid_argument). Throws std::runtime_error if every
/// sampled run failed validation.
[[nodiscard]] BenchmarkResult run_benchmark(const graph::CsrGraph& g,
                                            const BfsEngine& engine,
                                            const RunnerOptions& opts = {});

/// Batch-engine protocol: all three modes. serial / parallel_roots
/// dispatch batches of one root; msbfs dispatches batches of
/// `opts.batch_size` sequentially (parallelism lives inside the
/// bit-parallel kernel).
[[nodiscard]] BenchmarkResult run_benchmark(const graph::CsrGraph& g,
                                            const BatchBfsEngine& engine,
                                            const RunnerOptions& opts = {});

}  // namespace bfsx::graph500
