#include "graph500/runner.h"

#include <stdexcept>

#include "graph/graph_stats.h"

namespace bfsx::graph500 {

double BenchmarkResult::mean_seconds() const {
  if (runs.empty()) return 0.0;
  double sum = 0.0;
  for (const RootRun& r : runs) sum += r.seconds;
  return sum / static_cast<double>(runs.size());
}

BenchmarkResult run_benchmark(const graph::CsrGraph& g,
                              const BfsEngine& engine,
                              const RunnerOptions& opts) {
  if (opts.num_roots <= 0) {
    throw std::invalid_argument("run_benchmark: num_roots must be > 0");
  }
  const std::vector<graph::vid_t> roots =
      graph::sample_roots(g, opts.num_roots, opts.root_seed);

  BenchmarkResult out;
  std::vector<double> teps;
  for (graph::vid_t root : roots) {
    TimedBfs timed = [&] {
      if (opts.metrics == nullptr) return engine(g, root);
      obs::ScopedTimer t(*opts.metrics, "runner.engine_seconds");
      return engine(g, root);
    }();
    RootRun run;
    run.root = root;
    run.seconds = timed.seconds;
    run.reached = timed.result.reached;
    if (opts.metrics != nullptr) {
      opts.metrics->add("runner.roots");
      opts.metrics->add("runner.vertices_reached", timed.result.reached);
    }
    if (opts.validate) {
      const bfs::ValidationReport report = [&] {
        if (opts.metrics == nullptr) return bfs::validate_bfs(g, root,
                                                              timed.result);
        obs::ScopedTimer t(*opts.metrics, "runner.validate_seconds");
        return bfs::validate_bfs(g, root, timed.result);
      }();
      run.valid = report.ok;
      if (!report.ok) {
        ++out.validation_failures;
        if (opts.metrics != nullptr) {
          opts.metrics->add("runner.validation_failures");
        }
      }
    }
    if (run.valid && timed.seconds > 0.0) {
      run.teps = static_cast<double>(timed.result.edges_in_component) /
                 timed.seconds;
      teps.push_back(run.teps);
    }
    out.runs.push_back(run);
  }
  if (teps.empty()) {
    throw std::runtime_error(
        "run_benchmark: no valid timed runs to aggregate");
  }
  out.stats = compute_teps_stats(teps);
  return out;
}

}  // namespace bfsx::graph500
