#include "graph500/runner.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "check/contract.h"
#include "graph/graph_stats.h"

namespace bfsx::graph500 {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

std::vector<graph::vid_t> resolve_roots(const graph::CsrGraph& g,
                                        const RunnerOptions& opts) {
  if (!opts.roots.empty()) {
    for (const graph::vid_t r : opts.roots) {
      if (r < 0 || r >= g.num_vertices()) {
        throw std::invalid_argument("run_benchmark: explicit root " +
                                    std::to_string(r) +
                                    " out of range [0, " +
                                    std::to_string(g.num_vertices()) + ")");
      }
    }
    return opts.roots;
  }
  if (opts.num_roots <= 0) {
    throw std::invalid_argument("run_benchmark: num_roots must be > 0");
  }
  return graph::sample_roots(g, opts.num_roots, opts.root_seed);
}

/// Per-root record produced by a worker. Everything the deterministic
/// merge needs, indexed by root position — workers never touch the
/// (thread-unsafe) metrics registry or any shared accumulator.
struct Slot {
  RootRun run;
  double engine_seconds = 0.0;    // wall time attributed to this root
  double validate_seconds = 0.0;  // wall time of this root's validation
};

}  // namespace

double BenchmarkResult::mean_seconds() const {
  if (runs.empty()) return 0.0;
  double sum = 0.0;
  for (const RootRun& r : runs) sum += r.seconds;
  return sum / static_cast<double>(runs.size());
}

BatchMode parse_batch_mode(std::string_view text) {
  if (text == "serial") return BatchMode::kSerial;
  if (text == "parallel_roots") return BatchMode::kParallelRoots;
  if (text == "msbfs") return BatchMode::kMsBfs;
  throw std::invalid_argument("unknown batch mode '" + std::string(text) +
                              "' (valid: serial, parallel_roots, msbfs)");
}

BenchmarkResult run_benchmark(const graph::CsrGraph& g,
                              const BatchBfsEngine& engine,
                              const RunnerOptions& opts) {
  const std::vector<graph::vid_t> roots = resolve_roots(g, opts);
  const std::size_t total = roots.size();

  std::size_t chunk = 1;
  if (opts.batch_mode == BatchMode::kMsBfs) {
    if (opts.batch_size < 1 || opts.batch_size > 64) {
      throw std::invalid_argument("run_benchmark: batch_size " +
                                  std::to_string(opts.batch_size) +
                                  " out of range [1, 64]");
    }
    chunk = static_cast<std::size_t>(opts.batch_size);
  }
  const std::size_t num_chunks = (total + chunk - 1) / chunk;

  std::vector<Slot> slots(total);
  std::vector<double> batch_wall(num_chunks, 0.0);

  // Runs one chunk of roots through the engine and validates each
  // result, writing only this chunk's slots (disjoint across chunks, so
  // parallel_roots threads never contend).
  const auto eval_chunk = [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(begin + chunk, total);
    const std::vector<graph::vid_t> batch(roots.begin() +
                                              static_cast<std::ptrdiff_t>(begin),
                                          roots.begin() +
                                              static_cast<std::ptrdiff_t>(end));
    const auto t0 = Clock::now();
    std::vector<TimedBfs> timed = engine(g, batch);
    const double wall = elapsed_seconds(t0);
    batch_wall[c] = wall;
    BFSX_CHECK(timed.size() == batch.size())
        << "batch engine returned " << timed.size() << " results for "
        << batch.size() << " roots";
    const double share = wall / static_cast<double>(batch.size());
    for (std::size_t i = begin; i < end; ++i) {
      Slot& slot = slots[i];
      TimedBfs& t = timed[i - begin];
      slot.engine_seconds = share;
      slot.run.root = roots[i];
      slot.run.seconds = t.seconds;
      slot.run.reached = t.result.reached;
      slot.run.edges = t.result.edges_in_component;
      if (opts.validate) {
        const auto v0 = Clock::now();
        const bfs::ValidationReport report =
            bfs::validate_bfs(g, roots[i], t.result);
        slot.validate_seconds = elapsed_seconds(v0);
        slot.run.valid = report.ok;
      }
      if (slot.run.valid && t.seconds > 0.0) {
        slot.run.teps =
            static_cast<double>(t.result.edges_in_component) / t.seconds;
      }
    }
  };

  if (opts.batch_mode == BatchMode::kParallelRoots) {
    // Threads fill disjoint slots; exceptions are ferried out (OpenMP
    // regions must not leak them) and rethrown once, after the join.
    std::exception_ptr first_error;
    std::mutex error_mu;
    const auto count = static_cast<std::int64_t>(num_chunks);
    // omp-lint: allow(shared-write) first_error is assigned under
    //           error_mu; eval_chunk writes only chunk-disjoint slots
#pragma omp parallel for schedule(dynamic, 1)
    for (std::int64_t c = 0; c < count; ++c) {
      try {
        eval_chunk(static_cast<std::size_t>(c));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  } else {
    for (std::size_t c = 0; c < num_chunks; ++c) eval_chunk(c);
  }

  // Deterministic merge, in root order, on the calling thread — the
  // only place the metrics registry and the TEPS list are touched.
  BenchmarkResult out;
  out.runs.reserve(total);
  std::vector<double> teps;
  for (const Slot& slot : slots) {
    if (opts.metrics != nullptr) {
      opts.metrics->record_seconds("runner.engine_seconds",
                                   slot.engine_seconds);
      opts.metrics->add("runner.roots");
      opts.metrics->add("runner.vertices_reached", slot.run.reached);
      if (opts.validate) {
        opts.metrics->record_seconds("runner.validate_seconds",
                                     slot.validate_seconds);
      }
    }
    if (!slot.run.valid) {
      ++out.validation_failures;
      if (opts.metrics != nullptr) {
        opts.metrics->add("runner.validation_failures");
      }
    }
    if (slot.run.valid && slot.run.seconds > 0.0) {
      teps.push_back(slot.run.teps);
    }
    out.runs.push_back(slot.run);
  }
  if (opts.metrics != nullptr && opts.batch_mode == BatchMode::kMsBfs) {
    for (const double w : batch_wall) {
      opts.metrics->add("runner.batches");
      opts.metrics->record_seconds("runner.batch_seconds", w);
    }
  }
  if (teps.empty()) {
    throw std::runtime_error(
        "run_benchmark: no valid timed runs to aggregate");
  }
  out.stats = compute_teps_stats(teps);
  return out;
}

BenchmarkResult run_benchmark(const graph::CsrGraph& g,
                              const BfsEngine& engine,
                              const RunnerOptions& opts) {
  if (opts.batch_mode == BatchMode::kMsBfs) {
    throw std::invalid_argument(
        "run_benchmark: batch mode 'msbfs' needs a BatchBfsEngine "
        "(e.g. EngineRegistry::make_batch_engine(\"msbfs\", ...))");
  }
  const BatchBfsEngine one_at_a_time =
      [&engine](const graph::CsrGraph& graph,
                const std::vector<graph::vid_t>& batch) {
        std::vector<TimedBfs> timed;
        timed.reserve(batch.size());
        for (const graph::vid_t root : batch) {
          timed.push_back(engine(graph, root));
        }
        return timed;
      };
  return run_benchmark(g, one_at_a_time, opts);
}

}  // namespace bfsx::graph500
