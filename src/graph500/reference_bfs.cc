#include "graph500/reference_bfs.h"

#include "bfs/drivers.h"

namespace bfsx::graph500 {

bfs::BfsResult reference_bfs(const graph::CsrGraph& g, graph::vid_t root) {
  return bfs::run_serial(g, root);
}

BfsEngine make_reference_engine(const sim::Device& device) {
  return [&device](const graph::CsrGraph& g, graph::vid_t root) -> TimedBfs {
    bfs::BfsState state(g, root);
    double seconds = 0.0;
    while (!state.frontier_empty()) {
      const sim::LevelOutcome out = device.run_top_down_level(g, state);
      seconds += out.seconds * kReferencePenalty;
    }
    return {std::move(state).take_result(g), seconds};
  };
}

BfsEngine make_top_down_engine(const sim::Device& device) {
  return [&device](const graph::CsrGraph& g, graph::vid_t root) -> TimedBfs {
    bfs::BfsState state(g, root);
    double seconds = 0.0;
    while (!state.frontier_empty()) {
      seconds += device.run_top_down_level(g, state).seconds;
    }
    return {std::move(state).take_result(g), seconds};
  };
}

BfsEngine make_bottom_up_engine(const sim::Device& device) {
  return [&device](const graph::CsrGraph& g, graph::vid_t root) -> TimedBfs {
    bfs::BfsState state(g, root);
    double seconds = 0.0;
    while (!state.frontier_empty()) {
      seconds += device.run_bottom_up_level(g, state).seconds;
    }
    return {std::move(state).take_result(g), seconds};
  };
}

}  // namespace bfsx::graph500
