#include "graph500/reference_bfs.h"

#include "bfs/drivers.h"
#include "core/adaptive_bfs.h"
#include "core/trace_emit.h"

namespace bfsx::graph500 {

bfs::BfsResult reference_bfs(const graph::CsrGraph& g, graph::vid_t root) {
  return bfs::run_serial(g, root);
}

BfsEngine make_reference_engine(const sim::Device& device,
                                obs::TraceSink* sink) {
  return [&device, sink](const graph::CsrGraph& g,
                         graph::vid_t root) -> TimedBfs {
    obs::RunEvent trace = core::trace_begin_run(sink, "ref", g, root);
    bfs::BfsState state(g, root);
    double seconds = 0.0;
    std::int32_t depth = 0;
    while (!state.frontier_empty()) {
      sim::LevelOutcome out = device.run_top_down_level(g, state);
      out.seconds *= kReferencePenalty;
      seconds += out.seconds;
      ++depth;
      if (sink != nullptr) {
        sink->on_level(core::trace_level(out, std::string(device.name())));
      }
    }
    TimedBfs timed{std::move(state).take_result(g), seconds};
    core::trace_end_run(sink, std::move(trace), timed.result, seconds, 0.0,
                        depth, 0);
    return timed;
  };
}

BfsEngine make_top_down_engine(const sim::Device& device,
                               obs::TraceSink* sink) {
  return [&device, sink](const graph::CsrGraph& g,
                         graph::vid_t root) -> TimedBfs {
    core::CombinationRun run =
        core::run_pure(g, root, device, bfs::Direction::kTopDown, sink);
    return {std::move(run.result), run.seconds};
  };
}

BfsEngine make_bottom_up_engine(const sim::Device& device,
                                obs::TraceSink* sink) {
  return [&device, sink](const graph::CsrGraph& g,
                         graph::vid_t root) -> TimedBfs {
    core::CombinationRun run =
        core::run_pure(g, root, device, bfs::Direction::kBottomUp, sink);
    return {std::move(run.result), run.seconds};
  };
}

}  // namespace bfsx::graph500
