#include "graph500/native_engine.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <span>
#include <utility>

#include "bfs/bottomup.h"
#include "bfs/frontier.h"
#include "bfs/msbfs.h"
#include "bfs/topdown.h"
#include "core/trace_emit.h"

namespace bfsx::graph500 {
namespace {

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point start) {
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// Runs a traversal with `step(state, event_or_null)`. With no sink the
/// loop is exactly the untraced original — one clock read per
/// traversal, no per-level work. With a sink, each level is wall-timed
/// and emitted (the counter collection adds a frontier scan on
/// bottom-up levels, so traced native runs pay a small, explicit
/// observation cost). With a pool, the state is a recycled lease
/// instead of a fresh allocation; take_result still moves the maps out,
/// and the next checkout's reset refills them.
template <typename Step>
TimedBfs traced_traversal(const graph::CsrGraph& g, graph::vid_t root,
                          const char* engine, obs::TraceSink* sink,
                          bfs::StatePool* pool, Step&& step) {
  std::optional<bfs::StatePool::Lease> lease;
  std::optional<bfs::BfsState> local;
  bfs::BfsState& state = pool != nullptr
                             ? *lease.emplace(pool->acquire(g, root))
                             : local.emplace(g, root);
  if (sink == nullptr) {
    const auto start = clock::now();
    while (!state.frontier_empty()) step(state, nullptr);
    const double seconds = seconds_since(start);
    return {std::move(state).take_result(g), seconds};
  }

  obs::RunEvent trace = core::trace_begin_run(sink, engine, g, root);
  std::int32_t depth = 0;
  int switches = 0;
  bfs::Direction prev = bfs::Direction::kTopDown;
  const auto start = clock::now();
  while (!state.frontier_empty()) {
    obs::LevelEvent event;
    event.device = "host";
    const auto level_start = clock::now();
    step(state, &event);
    event.compute_seconds = seconds_since(level_start);
    if (depth > 0 && event.direction != prev) ++switches;
    prev = event.direction;
    ++depth;
    sink->on_level(event);
  }
  const double seconds = seconds_since(start);
  TimedBfs timed{std::move(state).take_result(g), seconds};
  core::trace_end_run(sink, std::move(trace), timed.result, seconds, 0.0,
                      depth, switches);
  return timed;
}

void step_top_down(const graph::CsrGraph& g, bfs::BfsState& s,
                   obs::LevelEvent* e) {
  if (e == nullptr) {
    bfs::top_down_step(g, s);
    return;
  }
  e->level = s.current_level;
  e->direction = bfs::Direction::kTopDown;
  const bfs::TopDownStats stats = bfs::top_down_step(g, s);
  e->frontier_vertices = stats.frontier_vertices;
  e->frontier_edges = stats.frontier_edges;
  e->next_vertices = stats.next_vertices;
}

void step_bottom_up(const graph::CsrGraph& g, bfs::BfsState& s,
                    obs::LevelEvent* e) {
  if (e == nullptr) {
    bfs::bottom_up_step(g, s);
    return;
  }
  e->level = s.current_level;
  e->direction = bfs::Direction::kBottomUp;
  // |E|cq is not a bottom-up kernel byproduct; count it so traces from
  // every engine family carry the same per-level counters.
  e->frontier_vertices = static_cast<graph::vid_t>(s.frontier_queue.size());
  e->frontier_edges = bfs::frontier_out_edges(g, s.frontier_queue);
  const bfs::BottomUpStats stats = bfs::bottom_up_step(g, s);
  e->bu_edges_hit = stats.edges_scanned_hit;
  e->bu_edges_miss = stats.edges_scanned_miss;
  e->next_vertices = stats.next_vertices;
}

}  // namespace

BfsEngine make_native_top_down_engine(obs::TraceSink* sink,
                                      bfs::StatePool* pool) {
  return [sink, pool](const graph::CsrGraph& g, graph::vid_t root) {
    return traced_traversal(g, root, "native-td", sink, pool,
                            [&g](bfs::BfsState& s, obs::LevelEvent* e) {
                              step_top_down(g, s, e);
                            });
  };
}

BfsEngine make_native_bottom_up_engine(obs::TraceSink* sink,
                                       bfs::StatePool* pool) {
  return [sink, pool](const graph::CsrGraph& g, graph::vid_t root) {
    return traced_traversal(g, root, "native-bu", sink, pool,
                            [&g](bfs::BfsState& s, obs::LevelEvent* e) {
                              step_bottom_up(g, s, e);
                            });
  };
}

BfsEngine make_native_hybrid_engine(core::HybridPolicy policy,
                                    obs::TraceSink* sink,
                                    bfs::StatePool* pool) {
  policy.validate();
  return [policy, sink, pool](const graph::CsrGraph& g, graph::vid_t root) {
    return traced_traversal(
        g, root, "native-hybrid", sink, pool,
        [&g, &policy](bfs::BfsState& s, obs::LevelEvent* e) {
          const graph::eid_t e_cq =
              bfs::frontier_out_edges(g, s.frontier_queue);
          const auto v_cq = static_cast<graph::vid_t>(s.frontier_queue.size());
          if (policy.decide(e_cq, v_cq, g.num_edges(), g.num_vertices()) ==
              bfs::Direction::kTopDown) {
            step_top_down(g, s, e);
          } else {
            step_bottom_up(g, s, e);
          }
        });
  };
}

BatchBfsEngine make_msbfs_batch_engine(core::HybridPolicy policy,
                                       obs::TraceSink* sink) {
  policy.validate();
  return [policy, sink](const graph::CsrGraph& g,
                        const std::vector<graph::vid_t>& batch) {
    bfs::MsBfsOptions mopts;
    mopts.m = policy.m;
    mopts.n = policy.n;

    obs::RunEvent trace;
    if (sink != nullptr) {
      trace = core::trace_begin_run(sink, "msbfs", g,
                                    batch.empty() ? 0 : batch.front());
    }
    const auto start = clock::now();
    bfs::MsBfsResult ms =
        bfs::ms_bfs(g, std::span<const graph::vid_t>(batch), mopts);
    const double wall = seconds_since(start);

    if (sink != nullptr) {
      // One trace run per batch: level events carry the union-frontier
      // counters the direction decision actually saw, with the batch
      // wall time spread evenly (per-level wall is not observable
      // without timing inside the kernel).
      for (const bfs::MsUnionLevel& lvl : ms.levels) {
        obs::LevelEvent event;
        event.device = "host";
        event.level = lvl.level;
        event.direction = lvl.direction;
        event.frontier_vertices = lvl.frontier_vertices;
        event.frontier_edges = lvl.frontier_edges;
        event.next_vertices = lvl.next_vertices;
        event.compute_seconds =
            ms.levels.empty() ? 0.0
                              : wall / static_cast<double>(ms.levels.size());
        sink->on_level(event);
      }
      // Totals for the batch run: the union traversal's footprint.
      bfs::BfsResult batch_totals;
      for (const bfs::BfsResult& r : ms.per_root) {
        batch_totals.reached = std::max(batch_totals.reached, r.reached);
        batch_totals.edges_in_component = std::max(
            batch_totals.edges_in_component, r.edges_in_component);
      }
      core::trace_end_run(sink, std::move(trace), batch_totals, wall, 0.0,
                          ms.depth, ms.direction_switches);
    }

    const double share = wall / static_cast<double>(batch.size());
    std::vector<TimedBfs> out;
    out.reserve(batch.size());
    for (bfs::BfsResult& r : ms.per_root) {
      out.push_back(TimedBfs{std::move(r), share});
    }
    return out;
  };
}

}  // namespace bfsx::graph500
