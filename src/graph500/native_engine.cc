#include "graph500/native_engine.h"

#include <algorithm>
#include <span>
#include <utility>

#include "bfs/msbfs.h"
#include "core/trace_emit.h"
#include "graph500/view_engine.h"

namespace bfsx::graph500 {

using detail::seconds_since;
using detail::step_bottom_up;
using detail::step_top_down;
using detail::traced_traversal;

BfsEngine make_native_top_down_engine(obs::TraceSink* sink,
                                      bfs::StatePool* pool,
                                      NativeOptions options) {
  return [sink, pool, options](const graph::CsrGraph& g, graph::vid_t root) {
    // --compress: the same templated level loop, instantiated for the
    // compressed view; results are identical because the kernels only
    // see the GraphView surface.
    if (options.compressed != nullptr) {
      const graph::CompressedCsrView& cg = *options.compressed;
      return traced_traversal(cg, root, "native-td", sink, pool,
                              [&cg, &options](bfs::BfsState& s,
                                              obs::LevelEvent* e) {
                                step_top_down(cg, s, e, options.tuning);
                              });
    }
    return traced_traversal(g, root, "native-td", sink, pool,
                            [&g, &options](bfs::BfsState& s,
                                           obs::LevelEvent* e) {
                              step_top_down(g, s, e, options.tuning);
                            });
  };
}

BfsEngine make_native_bottom_up_engine(obs::TraceSink* sink,
                                       bfs::StatePool* pool,
                                       NativeOptions options) {
  return [sink, pool, options](const graph::CsrGraph& g, graph::vid_t root) {
    if (options.compressed != nullptr) {
      const graph::CompressedCsrView& cg = *options.compressed;
      return traced_traversal(cg, root, "native-bu", sink, pool,
                              [&cg, &options](bfs::BfsState& s,
                                              obs::LevelEvent* e) {
                                step_bottom_up(cg, s, e, options.tuning);
                              });
    }
    return traced_traversal(g, root, "native-bu", sink, pool,
                            [&g, &options](bfs::BfsState& s,
                                           obs::LevelEvent* e) {
                              step_bottom_up(g, s, e, options.tuning);
                            });
  };
}

BfsEngine make_native_hybrid_engine(core::HybridPolicy policy,
                                    obs::TraceSink* sink,
                                    bfs::StatePool* pool,
                                    NativeOptions options) {
  policy.validate();
  return [policy, sink, pool, options](const graph::CsrGraph& g,
                                       graph::vid_t root) {
    if (options.compressed != nullptr) {
      const graph::CompressedCsrView& cg = *options.compressed;
      return traced_traversal(cg, root, "native-hybrid", sink, pool,
                              [&cg, &policy, &options](bfs::BfsState& s,
                                                       obs::LevelEvent* e) {
                                detail::step_hybrid(cg, policy, s, e,
                                                    options.tuning);
                              });
    }
    return traced_traversal(g, root, "native-hybrid", sink, pool,
                            [&g, &policy, &options](bfs::BfsState& s,
                                                    obs::LevelEvent* e) {
                              detail::step_hybrid(g, policy, s, e,
                                                  options.tuning);
                            });
  };
}

BatchBfsEngine make_msbfs_batch_engine(core::HybridPolicy policy,
                                       obs::TraceSink* sink) {
  policy.validate();
  return [policy, sink](const graph::CsrGraph& g,
                        const std::vector<graph::vid_t>& batch) {
    bfs::MsBfsOptions mopts;
    mopts.m = policy.m;
    mopts.n = policy.n;

    obs::RunEvent trace;
    if (sink != nullptr) {
      trace = core::trace_begin_run(sink, "msbfs", g,
                                    batch.empty() ? 0 : batch.front());
    }
    const auto start = detail::EngineClock::now();
    bfs::MsBfsResult ms =
        bfs::ms_bfs(g, std::span<const graph::vid_t>(batch), mopts);
    const double wall = seconds_since(start);

    if (sink != nullptr) {
      // One trace run per batch: level events carry the union-frontier
      // counters the direction decision actually saw, with the batch
      // wall time spread evenly (per-level wall is not observable
      // without timing inside the kernel).
      for (const bfs::MsUnionLevel& lvl : ms.levels) {
        obs::LevelEvent event;
        event.device = "host";
        event.level = lvl.level;
        event.direction = lvl.direction;
        event.frontier_vertices = lvl.frontier_vertices;
        event.frontier_edges = lvl.frontier_edges;
        event.next_vertices = lvl.next_vertices;
        event.compute_seconds =
            ms.levels.empty() ? 0.0
                              : wall / static_cast<double>(ms.levels.size());
        sink->on_level(event);
      }
      // Totals for the batch run: the union traversal's footprint.
      bfs::BfsResult batch_totals;
      for (const bfs::BfsResult& r : ms.per_root) {
        batch_totals.reached = std::max(batch_totals.reached, r.reached);
        batch_totals.edges_in_component = std::max(
            batch_totals.edges_in_component, r.edges_in_component);
      }
      core::trace_end_run(sink, std::move(trace), batch_totals, wall, 0.0,
                          ms.depth, ms.direction_switches);
    }

    const double share = wall / static_cast<double>(batch.size());
    std::vector<TimedBfs> out;
    out.reserve(batch.size());
    for (bfs::BfsResult& r : ms.per_root) {
      out.push_back(TimedBfs{std::move(r), share});
    }
    return out;
  };
}

}  // namespace bfsx::graph500
