#include "graph500/native_engine.h"

#include <chrono>

#include "bfs/bottomup.h"
#include "bfs/frontier.h"
#include "bfs/topdown.h"
#include "core/trace_emit.h"

namespace bfsx::graph500 {
namespace {

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point start) {
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// Runs a traversal with `step(state, event_or_null)`. With no sink the
/// loop is exactly the untraced original — one clock read per
/// traversal, no per-level work. With a sink, each level is wall-timed
/// and emitted (the counter collection adds a frontier scan on
/// bottom-up levels, so traced native runs pay a small, explicit
/// observation cost).
template <typename Step>
TimedBfs traced_traversal(const graph::CsrGraph& g, graph::vid_t root,
                          const char* engine, obs::TraceSink* sink,
                          Step&& step) {
  bfs::BfsState state(g, root);
  if (sink == nullptr) {
    const auto start = clock::now();
    while (!state.frontier_empty()) step(state, nullptr);
    const double seconds = seconds_since(start);
    return {std::move(state).take_result(g), seconds};
  }

  obs::RunEvent trace = core::trace_begin_run(sink, engine, g, root);
  std::int32_t depth = 0;
  int switches = 0;
  bfs::Direction prev = bfs::Direction::kTopDown;
  const auto start = clock::now();
  while (!state.frontier_empty()) {
    obs::LevelEvent event;
    event.device = "host";
    const auto level_start = clock::now();
    step(state, &event);
    event.compute_seconds = seconds_since(level_start);
    if (depth > 0 && event.direction != prev) ++switches;
    prev = event.direction;
    ++depth;
    sink->on_level(event);
  }
  const double seconds = seconds_since(start);
  TimedBfs timed{std::move(state).take_result(g), seconds};
  core::trace_end_run(sink, std::move(trace), timed.result, seconds, 0.0,
                      depth, switches);
  return timed;
}

void step_top_down(const graph::CsrGraph& g, bfs::BfsState& s,
                   obs::LevelEvent* e) {
  if (e == nullptr) {
    bfs::top_down_step(g, s);
    return;
  }
  e->level = s.current_level;
  e->direction = bfs::Direction::kTopDown;
  const bfs::TopDownStats stats = bfs::top_down_step(g, s);
  e->frontier_vertices = stats.frontier_vertices;
  e->frontier_edges = stats.frontier_edges;
  e->next_vertices = stats.next_vertices;
}

void step_bottom_up(const graph::CsrGraph& g, bfs::BfsState& s,
                    obs::LevelEvent* e) {
  if (e == nullptr) {
    bfs::bottom_up_step(g, s);
    return;
  }
  e->level = s.current_level;
  e->direction = bfs::Direction::kBottomUp;
  // |E|cq is not a bottom-up kernel byproduct; count it so traces from
  // every engine family carry the same per-level counters.
  e->frontier_vertices = static_cast<graph::vid_t>(s.frontier_queue.size());
  e->frontier_edges = bfs::frontier_out_edges(g, s.frontier_queue);
  const bfs::BottomUpStats stats = bfs::bottom_up_step(g, s);
  e->bu_edges_hit = stats.edges_scanned_hit;
  e->bu_edges_miss = stats.edges_scanned_miss;
  e->next_vertices = stats.next_vertices;
}

}  // namespace

BfsEngine make_native_top_down_engine(obs::TraceSink* sink) {
  return [sink](const graph::CsrGraph& g, graph::vid_t root) {
    return traced_traversal(g, root, "native-td", sink,
                            [&g](bfs::BfsState& s, obs::LevelEvent* e) {
                              step_top_down(g, s, e);
                            });
  };
}

BfsEngine make_native_bottom_up_engine(obs::TraceSink* sink) {
  return [sink](const graph::CsrGraph& g, graph::vid_t root) {
    return traced_traversal(g, root, "native-bu", sink,
                            [&g](bfs::BfsState& s, obs::LevelEvent* e) {
                              step_bottom_up(g, s, e);
                            });
  };
}

BfsEngine make_native_hybrid_engine(core::HybridPolicy policy,
                                    obs::TraceSink* sink) {
  policy.validate();
  return [policy, sink](const graph::CsrGraph& g, graph::vid_t root) {
    return traced_traversal(
        g, root, "native-hybrid", sink,
        [&g, &policy](bfs::BfsState& s, obs::LevelEvent* e) {
          const graph::eid_t e_cq =
              bfs::frontier_out_edges(g, s.frontier_queue);
          const auto v_cq = static_cast<graph::vid_t>(s.frontier_queue.size());
          if (policy.decide(e_cq, v_cq, g.num_edges(), g.num_vertices()) ==
              bfs::Direction::kTopDown) {
            step_top_down(g, s, e);
          } else {
            step_bottom_up(g, s, e);
          }
        });
  };
}

}  // namespace bfsx::graph500
