#include "graph500/native_engine.h"

#include <chrono>

#include "bfs/bottomup.h"
#include "bfs/frontier.h"
#include "bfs/topdown.h"

namespace bfsx::graph500 {
namespace {

using clock = std::chrono::steady_clock;

template <typename Body>
TimedBfs timed_traversal(const graph::CsrGraph& g, graph::vid_t root,
                         Body&& body) {
  bfs::BfsState state(g, root);
  const auto start = clock::now();
  while (!state.frontier_empty()) body(state);
  const double seconds =
      std::chrono::duration<double>(clock::now() - start).count();
  return {std::move(state).take_result(g), seconds};
}

}  // namespace

BfsEngine make_native_top_down_engine() {
  return [](const graph::CsrGraph& g, graph::vid_t root) {
    return timed_traversal(
        g, root, [&g](bfs::BfsState& s) { bfs::top_down_step(g, s); });
  };
}

BfsEngine make_native_bottom_up_engine() {
  return [](const graph::CsrGraph& g, graph::vid_t root) {
    return timed_traversal(
        g, root, [&g](bfs::BfsState& s) { bfs::bottom_up_step(g, s); });
  };
}

BfsEngine make_native_hybrid_engine(core::HybridPolicy policy) {
  policy.validate();
  return [policy](const graph::CsrGraph& g, graph::vid_t root) {
    return timed_traversal(g, root, [&g, &policy](bfs::BfsState& s) {
      const graph::eid_t e_cq = bfs::frontier_out_edges(g, s.frontier_queue);
      const auto v_cq = static_cast<graph::vid_t>(s.frontier_queue.size());
      if (policy.decide(e_cq, v_cq, g.num_edges(), g.num_vertices()) ==
          bfs::Direction::kTopDown) {
        bfs::top_down_step(g, s);
      } else {
        bfs::bottom_up_step(g, s);
      }
    });
  };
}

}  // namespace bfsx::graph500
