// EngineRegistry: every BFS engine family constructible by name, from
// one place, with one construction point where the trace sink attaches.
//
// Before this existed the CLI grew an if/else chain per engine and each
// caller re-invented engine wiring; now `bfsx bfs --engine X`, tests,
// and embedders all go through make_engine(name, config). Each entry
// carries a one-line description, which is also what generates the
// CLI usage text — the engine list can never drift from the parser.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bfs/mem_tuning.h"
#include "bfs/state_pool.h"
#include "core/hybrid_policy.h"
#include "graph/partition.h"
#include "graph500/runner.h"
#include "graph500/scenario_engine.h"
#include "obs/sink.h"
#include "sim/cluster.h"
#include "sim/device.h"

namespace bfsx::graph {
class CompressedCsrView;
}

namespace bfsx::graph500 {

/// Everything an engine factory may need. Factories copy what they use
/// into the returned closure, so the config (and the devices inside
/// it) need not outlive the call — only `sink` and `cluster` are
/// referenced afterwards (non-owning pointer / shared ownership).
struct EngineConfig {
  /// Primary device: the whole machine for single-device engines, the
  /// accelerator for "cross". Defaults to the CPU preset.
  sim::Device device;
  /// Host side of the "cross" engine. Defaults to the CPU preset.
  sim::Device host;
  /// M/N rule for hybrid engines; the handoff rule for "cross".
  core::HybridPolicy policy{};
  /// The on-accelerator rule of "cross" (the paper's M2/N2).
  core::HybridPolicy accel_policy{};
  /// Host-accelerator link crossed by the "cross" handoff.
  sim::InterconnectSpec link{};
  /// Cluster for "dist"; when null the factory builds a 2-device
  /// homogeneous cluster from `device`.
  std::shared_ptr<const sim::Cluster> cluster;
  graph::PartitionStrategy strategy = graph::PartitionStrategy::kBlock;
  /// Optional, non-owning; must outlive the constructed engine. Bound
  /// into the engine closure — this is the single attach point for
  /// per-level tracing across all engine families.
  obs::TraceSink* sink = nullptr;
  /// Optional, non-owning; must outlive the constructed engine. The
  /// native engines draw reusable BfsStates from it — under
  /// batch_mode=parallel_roots this is what keeps per-root allocation
  /// off the hot path. Simulated engines ignore it (their state is
  /// modelled, not real).
  bfs::StatePool* pool = nullptr;
  /// Memory-subsystem knobs for the native engines (--prefetch,
  /// --hub-cache); everything else ignores them. A referenced HubCache
  /// is non-owning and must outlive the constructed engine.
  bfs::MemTuning tuning{};
  /// Non-null routes the native engines through the compressed
  /// adjacency view (--compress). Non-owning; must outlive the engine
  /// and be built from the graph the engine traverses.
  const graph::CompressedCsrView* compressed = nullptr;

  EngineConfig();
};

/// Thrown by make_engine for an unregistered name. The message names
/// the closest registered engine ("did you mean") and lists all of
/// them.
class UnknownEngineError : public std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

class EngineRegistry {
 public:
  struct Entry {
    std::string name;
    /// One line, lower-case, no trailing period; rendered verbatim in
    /// the CLI usage text.
    std::string description;
    std::function<BfsEngine(const EngineConfig&)> factory;
    /// Optional batched construction (engines that amortise one kernel
    /// pass over many roots, e.g. msbfs). Entries without one still
    /// work with make_batch_engine via a one-root-at-a-time wrapper.
    std::function<BatchBfsEngine(const EngineConfig&)> batch_factory{};
    /// Optional implicit-graph (--scenario) construction. Engines whose
    /// kernels are templated over graph::GraphView register one;
    /// CSR-specialised kernels (msbfs lane masks) and the modelled
    /// simulator engines (which cost CSR memory traffic) leave it
    /// empty, and make_scenario_engine rejects them by name.
    std::function<ScenarioBfsEngine(const EngineConfig&)> scenario_factory{};
  };

  /// Registers an engine; throws std::invalid_argument on a duplicate
  /// name or an empty name/factory.
  void register_engine(Entry entry);

  /// The registered entry, or nullptr.
  [[nodiscard]] const Entry* find(std::string_view name) const noexcept;

  /// Constructs the named engine with the sink (and everything else)
  /// taken from `config`. Throws UnknownEngineError for unknown names.
  [[nodiscard]] BfsEngine make_engine(const std::string& name,
                                      const EngineConfig& config) const;

  /// Constructs the named engine in batched form: the entry's
  /// batch_factory when it has one, otherwise the per-root engine
  /// wrapped to serve each batch one root at a time. Throws
  /// UnknownEngineError for unknown names.
  [[nodiscard]] BatchBfsEngine make_batch_engine(
      const std::string& name, const EngineConfig& config) const;

  /// Constructs the named engine for implicit scenario graphs. Throws
  /// UnknownEngineError both for unknown names and for engines without
  /// scenario support — the latter message lists the scenario-capable
  /// engines so `--scenario --engine=msbfs` fails with a usable hint.
  [[nodiscard]] ScenarioBfsEngine make_scenario_engine(
      const std::string& name, const EngineConfig& config) const;

  /// Names of entries with a scenario_factory, registration order.
  [[nodiscard]] std::vector<std::string> scenario_names() const;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  /// "  name          description" lines, registration order — the
  /// engine section of the CLI usage text.
  [[nodiscard]] std::string describe() const;

  /// A registry holding every built-in engine family: td, bu, ref,
  /// hybrid, cross, dist, native-td, native-bu, native-hybrid, msbfs.
  /// Returned by value so embedders can extend their copy.
  [[nodiscard]] static EngineRegistry with_builtin_engines();

 private:
  std::vector<Entry> entries_;
};

}  // namespace bfsx::graph500
