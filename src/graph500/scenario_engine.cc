#include "graph500/scenario_engine.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "bfs/validate.h"
#include "check/contract.h"
#include "graph/view.h"
#include "graph500/view_engine.h"

namespace bfsx::graph500 {
namespace {

graph::vid_t scenario_num_vertices(const graph::ScenarioGraph& g) {
  return std::visit([](const auto& view) { return view.num_vertices(); }, g);
}

std::vector<graph::vid_t> resolve_scenario_roots(const graph::ScenarioGraph& g,
                                                 const RunnerOptions& opts) {
  if (!opts.roots.empty()) {
    const graph::vid_t n = scenario_num_vertices(g);
    for (const graph::vid_t r : opts.roots) {
      if (r < 0 || r >= n) {
        throw std::invalid_argument(
            "run_scenario_benchmark: explicit root " + std::to_string(r) +
            " out of range [0, " + std::to_string(n) + ")");
      }
    }
    return opts.roots;
  }
  if (opts.num_roots <= 0) {
    throw std::invalid_argument(
        "run_scenario_benchmark: num_roots must be > 0");
  }
  return std::visit(
      [&opts](const auto& view) {
        return graph::sample_view_roots(view, opts.num_roots, opts.root_seed);
      },
      g);
}

bfs::ValidationReport validate_scenario(const graph::ScenarioGraph& g,
                                        graph::vid_t root,
                                        const bfs::BfsResult& result) {
  return std::visit(
      [root, &result](const auto& view) {
        return bfs::validate_bfs(view, root, result);
      },
      g);
}

/// Per-root record produced by a worker — same disjoint-slot scheme as
/// runner.cc, so parallel_roots never touches a shared accumulator.
struct Slot {
  RootRun run;
  double engine_seconds = 0.0;
  double validate_seconds = 0.0;
};

}  // namespace

ScenarioBfsEngine make_scenario_top_down_engine(obs::TraceSink* sink,
                                                bfs::StatePool* pool) {
  return [sink, pool](const graph::ScenarioGraph& sg, graph::vid_t root) {
    return std::visit(
        [root, sink, pool](const auto& g) {
          return detail::traced_traversal(
              g, root, "native-td", sink, pool,
              [&g](bfs::BfsState& s, obs::LevelEvent* e) {
                detail::step_top_down(g, s, e);
              });
        },
        sg);
  };
}

ScenarioBfsEngine make_scenario_bottom_up_engine(obs::TraceSink* sink,
                                                 bfs::StatePool* pool) {
  return [sink, pool](const graph::ScenarioGraph& sg, graph::vid_t root) {
    return std::visit(
        [root, sink, pool](const auto& g) {
          return detail::traced_traversal(
              g, root, "native-bu", sink, pool,
              [&g](bfs::BfsState& s, obs::LevelEvent* e) {
                detail::step_bottom_up(g, s, e);
              });
        },
        sg);
  };
}

ScenarioBfsEngine make_scenario_hybrid_engine(core::HybridPolicy policy,
                                              obs::TraceSink* sink,
                                              bfs::StatePool* pool) {
  policy.validate();
  return [policy, sink, pool](const graph::ScenarioGraph& sg,
                              graph::vid_t root) {
    return std::visit(
        [root, &policy, sink, pool](const auto& g) {
          return detail::traced_traversal(
              g, root, "native-hybrid", sink, pool,
              [&g, &policy](bfs::BfsState& s, obs::LevelEvent* e) {
                detail::step_hybrid(g, policy, s, e);
              });
        },
        sg);
  };
}

BenchmarkResult run_scenario_benchmark(const graph::ScenarioGraph& g,
                                       const ScenarioBfsEngine& engine,
                                       const RunnerOptions& opts) {
  if (opts.batch_mode == BatchMode::kMsBfs) {
    throw std::invalid_argument(
        "run_scenario_benchmark: batch mode 'msbfs' is CSR-only (the "
        "bit-parallel lane kernel reads CSR rows); use serial or "
        "parallel_roots");
  }
  const std::vector<graph::vid_t> roots = resolve_scenario_roots(g, opts);
  const std::size_t total = roots.size();
  std::vector<Slot> slots(total);

  const auto eval_root = [&](std::size_t i) {
    Slot& slot = slots[i];
    const graph::vid_t root = roots[i];
    const auto t0 = detail::EngineClock::now();
    TimedBfs t = engine(g, root);
    slot.engine_seconds = detail::seconds_since(t0);
    slot.run.root = root;
    slot.run.seconds = t.seconds;
    slot.run.reached = t.result.reached;
    slot.run.edges = t.result.edges_in_component;
    if (opts.validate) {
      const auto v0 = detail::EngineClock::now();
      const bfs::ValidationReport report =
          validate_scenario(g, root, t.result);
      slot.validate_seconds = detail::seconds_since(v0);
      slot.run.valid = report.ok;
    }
    if (slot.run.valid && t.seconds > 0.0) {
      slot.run.teps =
          static_cast<double>(t.result.edges_in_component) / t.seconds;
    }
  };

  if (opts.batch_mode == BatchMode::kParallelRoots) {
    // Threads fill disjoint slots; exceptions are ferried out (OpenMP
    // regions must not leak them) and rethrown once, after the join.
    std::exception_ptr first_error;
    std::mutex error_mu;
    const auto count = static_cast<std::int64_t>(total);
    // omp-lint: allow(shared-write) first_error is assigned under
    //           error_mu; eval_root writes only its own slot
#pragma omp parallel for schedule(dynamic, 1)
    for (std::int64_t i = 0; i < count; ++i) {
      try {
        eval_root(static_cast<std::size_t>(i));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  } else {
    for (std::size_t i = 0; i < total; ++i) eval_root(i);
  }

  // Deterministic merge, in root order, on the calling thread — the
  // only place the metrics registry and the TEPS list are touched.
  BenchmarkResult out;
  out.runs.reserve(total);
  std::vector<double> teps;
  for (const Slot& slot : slots) {
    if (opts.metrics != nullptr) {
      opts.metrics->record_seconds("runner.engine_seconds",
                                   slot.engine_seconds);
      opts.metrics->add("runner.roots");
      opts.metrics->add("runner.vertices_reached", slot.run.reached);
      if (opts.validate) {
        opts.metrics->record_seconds("runner.validate_seconds",
                                     slot.validate_seconds);
      }
    }
    if (!slot.run.valid) {
      ++out.validation_failures;
      if (opts.metrics != nullptr) {
        opts.metrics->add("runner.validation_failures");
      }
    }
    if (slot.run.valid && slot.run.seconds > 0.0) {
      teps.push_back(slot.run.teps);
    }
    out.runs.push_back(slot.run);
  }
  if (teps.empty()) {
    throw std::runtime_error(
        "run_scenario_benchmark: no valid timed runs to aggregate");
  }
  out.stats = compute_teps_stats(teps);
  return out;
}

}  // namespace bfsx::graph500
