#include "core/tuner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/prng.h"

namespace bfsx::core {

std::vector<double> SwitchCandidates::log_spaced(double lo, double hi,
                                                 int count) {
  if (lo <= 0 || hi < lo || count < 1) {
    throw std::invalid_argument("log_spaced: bad range");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  const double step =
      count > 1 ? std::log(hi / lo) / static_cast<double>(count - 1) : 0.0;
  for (int i = 0; i < count; ++i) {
    out.push_back(lo * std::exp(step * i));
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

SwitchCandidates SwitchCandidates::paper_grid() {
  return {log_spaced(1.0, 300.0, 50), log_spaced(1.0, 300.0, 20)};
}

SwitchCandidates SwitchCandidates::coarse_grid() {
  return {log_spaced(1.0, 300.0, 10), log_spaced(1.0, 300.0, 6)};
}

namespace {

template <typename CostFn>
CandidateSweep sweep_impl(const SwitchCandidates& candidates, CostFn&& cost) {
  if (candidates.size() == 0) {
    throw std::invalid_argument("sweep: empty candidate grid");
  }
  CandidateSweep sweep;
  sweep.seconds.reserve(candidates.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double s = cost(candidates.at(i));
    sweep.seconds.push_back(s);
    sum += s;
    if (s < sweep.seconds[sweep.best_index]) sweep.best_index = i;
    if (s > sweep.seconds[sweep.worst_index]) sweep.worst_index = i;
  }
  sweep.mean_seconds = sum / static_cast<double>(candidates.size());
  return sweep;
}

}  // namespace

CandidateSweep sweep_single(const LevelTrace& trace, const sim::ArchSpec& arch,
                            const SwitchCandidates& candidates) {
  return sweep_impl(candidates, [&](const HybridPolicy& p) {
    return replay_single(trace, arch, p);
  });
}

CandidateSweep sweep_cross(const LevelTrace& trace, const sim::ArchSpec& host,
                           const sim::ArchSpec& accel,
                           const sim::InterconnectSpec& link,
                           const SwitchCandidates& candidates,
                           const HybridPolicy& accel_policy) {
  return sweep_impl(candidates, [&](const HybridPolicy& p) {
    return replay_cross(trace, host, accel, link, p, accel_policy);
  });
}

CandidateSweep sweep_single_multi(std::span<const LevelTrace> traces,
                                  const sim::ArchSpec& arch,
                                  const SwitchCandidates& candidates) {
  if (traces.empty()) {
    throw std::invalid_argument("sweep_single_multi: no traces");
  }
  return sweep_impl(candidates, [&](const HybridPolicy& p) {
    double total = 0.0;
    for (const LevelTrace& t : traces) total += replay_single(t, arch, p);
    return total;
  });
}

CandidateSweep sweep_cross_multi(std::span<const LevelTrace> traces,
                                 const sim::ArchSpec& host,
                                 const sim::ArchSpec& accel,
                                 const sim::InterconnectSpec& link,
                                 const SwitchCandidates& candidates,
                                 const HybridPolicy& accel_policy) {
  if (traces.empty()) {
    throw std::invalid_argument("sweep_cross_multi: no traces");
  }
  return sweep_impl(candidates, [&](const HybridPolicy& p) {
    double total = 0.0;
    for (const LevelTrace& t : traces) {
      total += replay_cross(t, host, accel, link, p, accel_policy);
    }
    return total;
  });
}

TunedPolicy pick_best(const CandidateSweep& sweep,
                      const SwitchCandidates& candidates) {
  return {candidates.at(sweep.best_index), sweep.best_seconds()};
}

TunedPolicy pick_random(const CandidateSweep& sweep,
                        const SwitchCandidates& candidates,
                        std::uint64_t seed) {
  graph::Xoshiro256ss rng(seed);
  const auto i = static_cast<std::size_t>(
      rng.next_bounded(static_cast<std::uint64_t>(candidates.size())));
  return {candidates.at(i), sweep.seconds[i]};
}

}  // namespace bfsx::core
