// Offline training pipeline (paper Fig. 6, right side).
//
// step 1: for each (graph, td-arch, bu-arch) configuration, run the
//         instrumented traversal once, then price every candidate
//         switching point by trace replay and keep the best (the
//         paper's exhaustive search, made affordable — DESIGN.md §5.1);
// step 2: build the Fig. 7 sample from graph + architecture info, with
//         the best M (resp. N) as target;
// step 3: fit one SVR per target on the collected samples.
#pragma once

#include <vector>

#include "core/predictor.h"
#include "core/time_predictor.h"
#include "core/tuner.h"
#include "graph/rmat.h"
#include "ml/dataset.h"

namespace bfsx::core {

/// One architecture pairing: where top-down runs and where bottom-up
/// runs. Same spec on both sides = single-architecture combination.
struct ArchPair {
  sim::ArchSpec td;
  sim::ArchSpec bu;

  [[nodiscard]] bool is_cross() const { return td.name != bu.name; }
};

struct TrainerConfig {
  std::vector<graph::RmatParams> graphs;
  std::vector<ArchPair> arch_pairs;
  sim::InterconnectSpec link;
  SwitchCandidates candidates = SwitchCandidates::paper_grid();
  /// Root used for the per-configuration instrumented traversal.
  std::uint64_t root_seed = 42;
  /// Label graphs across OpenMP workers (`trainer --batch=parallel`).
  /// Each graph's generate/build/trace/label chain is independent;
  /// per-graph samples are collected into indexed slots and folded in
  /// graph order, so the produced datasets are bit-identical to the
  /// serial pass for every OMP_NUM_THREADS.
  bool parallel_labeling = false;
  ml::SvrParams svr;
};

/// ~140 samples at container-friendly scales (SCALE 11-14), mirroring
/// the paper's 140-sample training set: 3 scales x 3 edgefactors x
/// 2 Kronecker parameter sets x 2 seeds x 4 architecture pairs.
[[nodiscard]] TrainerConfig default_trainer_config();

struct TrainingData {
  ml::Dataset m_data;  // target: best M
  ml::Dataset n_data;  // target: best N
  /// target: log10(seconds) of the tuned combination — fuels the
  /// TimePredictor extension (accelerator auto-selection).
  ml::Dataset t_data;
};

/// Fig. 6 steps 1-2: the expensive exhaustive-search labelling pass.
[[nodiscard]] TrainingData generate_training_data(const TrainerConfig& cfg);

/// Fig. 6 step 3.
[[nodiscard]] SwitchPredictor train_predictor(const TrainingData& data,
                                              const ml::SvrParams& svr = {});

/// Fits the runtime model on the same labelled data (see
/// core/time_predictor.h).
[[nodiscard]] TimePredictor train_time_predictor(const TrainingData& data,
                                                 const ml::SvrParams& svr = {});

/// Labels one configuration: the exhaustively-best policy for
/// traversing `trace` with top-down on `pair.td` / bottom-up on
/// `pair.bu`. For a cross pair the accelerator-internal policy is
/// tuned first (on `pair.bu` alone) and held fixed, matching how
/// Algorithm 3 composes its two predictions.
[[nodiscard]] TunedPolicy label_configuration(const LevelTrace& trace,
                                              const ArchPair& pair,
                                              const sim::InterconnectSpec& link,
                                              const SwitchCandidates& candidates);

}  // namespace bfsx::core
