// Switching-point selection strategies — the four methods the paper
// compares in Fig. 8 (Random, Average, Regression, Exhaustive) plus the
// candidate grid they draw from.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/level_trace.h"

namespace bfsx::core {

/// The candidate (M, N) grid. The paper searches M in [1, 300]
/// (Section III-C extends Beamer's [1, 30]) and evaluates "1,000
/// possible cases" per traversal in Fig. 8.
struct SwitchCandidates {
  std::vector<double> m_values;
  std::vector<double> n_values;

  [[nodiscard]] std::size_t size() const noexcept {
    return m_values.size() * n_values.size();
  }
  [[nodiscard]] HybridPolicy at(std::size_t index) const {
    return {m_values[index / n_values.size()],
            n_values[index % n_values.size()]};
  }

  /// 50 log-spaced M in [1, 300] x 20 log-spaced N in [1, 300] =
  /// 1,000 candidates, the Fig. 8 setup.
  static SwitchCandidates paper_grid();

  /// A coarse 10 x 6 grid for quick tests.
  static SwitchCandidates coarse_grid();

  /// `count` log-spaced values in [lo, hi], deduplicated and sorted.
  static std::vector<double> log_spaced(double lo, double hi, int count);
};

/// How one policy choice performed, in modelled seconds.
struct TunedPolicy {
  HybridPolicy policy;
  double seconds = 0.0;
};

/// Every candidate priced against a trace: the raw material for the
/// Random / Average / Exhaustive comparison. Entry i corresponds to
/// candidates.at(i).
struct CandidateSweep {
  std::vector<double> seconds;
  std::size_t best_index = 0;
  std::size_t worst_index = 0;
  double mean_seconds = 0.0;

  [[nodiscard]] double best_seconds() const { return seconds[best_index]; }
  [[nodiscard]] double worst_seconds() const { return seconds[worst_index]; }
};

/// Prices every candidate for the *single-architecture* combination.
[[nodiscard]] CandidateSweep sweep_single(const LevelTrace& trace,
                                          const sim::ArchSpec& arch,
                                          const SwitchCandidates& candidates);

/// Prices every candidate (M1, N1) for the *cross-architecture*
/// combination, holding the accelerator-internal policy fixed (the two
/// policies are tuned/predicted independently, per Algorithm 3 lines
/// 1-2).
[[nodiscard]] CandidateSweep sweep_cross(const LevelTrace& trace,
                                         const sim::ArchSpec& host,
                                         const sim::ArchSpec& accel,
                                         const sim::InterconnectSpec& link,
                                         const SwitchCandidates& candidates,
                                         const HybridPolicy& accel_policy);

/// Multi-root variants: price each candidate by the SUM over several
/// traces of the same graph (different roots). The Graph 500 protocol
/// times 64 roots per graph, and the best expected policy is not
/// necessarily the best policy of any single root — root eccentricity
/// shifts where the frontier peaks.
[[nodiscard]] CandidateSweep sweep_single_multi(
    std::span<const LevelTrace> traces, const sim::ArchSpec& arch,
    const SwitchCandidates& candidates);

[[nodiscard]] CandidateSweep sweep_cross_multi(
    std::span<const LevelTrace> traces, const sim::ArchSpec& host,
    const sim::ArchSpec& accel, const sim::InterconnectSpec& link,
    const SwitchCandidates& candidates, const HybridPolicy& accel_policy);

/// Exhaustive search (the paper's hybrid-oracle): best candidate of a
/// sweep. This is the training-label generator and the Fig. 8
/// "Exhaustive" bar.
[[nodiscard]] TunedPolicy pick_best(const CandidateSweep& sweep,
                                    const SwitchCandidates& candidates);

/// Uniform random pick (Fig. 8 "Random"), deterministic under `seed`.
[[nodiscard]] TunedPolicy pick_random(const CandidateSweep& sweep,
                                      const SwitchCandidates& candidates,
                                      std::uint64_t seed);

}  // namespace bfsx::core
