// Runtime switching-point predictor (the paper's on-line stage, Fig. 6
// left): two SVR models — one for M, one for N ("We will only
// illustrate how to get the best M. The best N can be obtained the same
// way", Section III) — queried with the Fig. 7 feature vector.
#pragma once

#include <iosfwd>
#include <string>

#include "core/feature.h"
#include "core/hybrid_policy.h"
#include "ml/svr.h"

namespace bfsx::core {

class SwitchPredictor {
 public:
  SwitchPredictor(ml::SvrModel m_model, ml::SvrModel n_model)
      : m_model_(std::move(m_model)), n_model_(std::move(n_model)) {}

  /// Predicts the best (M, N) for traversing a graph with features `gf`
  /// using top-down on `td_arch` and bottom-up on `bu_arch`. The raw
  /// SVR outputs are clamped into the paper's search range [1, 300] so
  /// an extrapolating model can never produce an invalid policy.
  [[nodiscard]] HybridPolicy predict(const GraphFeatures& gf,
                                     const sim::ArchSpec& td_arch,
                                     const sim::ArchSpec& bu_arch) const;

  /// Single-architecture convenience: td and bu on the same platform.
  [[nodiscard]] HybridPolicy predict(const GraphFeatures& gf,
                                     const sim::ArchSpec& arch) const {
    return predict(gf, arch, arch);
  }

  void save(std::ostream& os) const;
  static SwitchPredictor load(std::istream& is);

  void save_file(const std::string& path) const;
  static SwitchPredictor load_file(const std::string& path);

  [[nodiscard]] const ml::SvrModel& m_model() const noexcept {
    return m_model_;
  }
  [[nodiscard]] const ml::SvrModel& n_model() const noexcept {
    return n_model_;
  }

 private:
  ml::SvrModel m_model_;
  ml::SvrModel n_model_;
};

/// Clamp range shared by predictor and tuner grids.
inline constexpr double kMinSwitchKnob = 1.0;
inline constexpr double kMaxSwitchKnob = 300.0;

}  // namespace bfsx::core
