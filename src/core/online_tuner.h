// Online switching-point tuner — the trial-and-error alternative the
// paper compares against, made usable.
//
// The paper dismisses manual trial-and-error ("the best switching point
// needs to be searched manually from thousands of possible cases") and
// uses regression instead. For workloads that traverse the *same* graph
// from many roots (the Graph 500 protocol itself, or repeated analytics
// queries), there is a middle ground: spend the first traversals
// probing the candidate space, then exploit the best-so-far. This
// module implements that successive-halving style tuner both as an
// honest baseline for the regression approach (bench_fig8 shows the
// regression needs zero warm-up traversals) and as a practical tool
// when no trained model is available.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tuner.h"

namespace bfsx::core {

struct OnlineTunerOptions {
  /// Candidates evaluated per refinement round.
  int probes_per_round = 8;
  /// Rounds of zooming-in (each shrinks the (M, N) box around the
  /// incumbent by `shrink`).
  int rounds = 3;
  double shrink = 0.35;
  std::uint64_t seed = 1;
};

/// Successively refines (M, N) against a pricing oracle. The oracle is
/// any function HybridPolicy -> modelled/measured seconds: pass a
/// LevelTrace replay for simulated devices, or a wall-clock lambda that
/// really runs traversals for native tuning.
class OnlineTuner {
 public:
  explicit OnlineTuner(OnlineTunerOptions opts = {});

  /// Runs the probe schedule and returns the best policy found along
  /// with its cost. `oracle(policy)` must be deterministic for the
  /// bookkeeping to be meaningful (average repeated runs if noisy).
  template <typename Oracle>
  TunedPolicy tune(Oracle&& oracle) {
    reset();
    while (!done()) {
      const HybridPolicy p = next_probe();
      record(p, oracle(p));
    }
    return best();
  }

  // ---- incremental interface (probe-between-real-traversals use) ----
  void reset();
  [[nodiscard]] bool done() const noexcept;
  /// The next candidate the schedule wants priced.
  [[nodiscard]] HybridPolicy next_probe();
  /// Reports the cost of the policy returned by the last next_probe().
  void record(const HybridPolicy& policy, double seconds);
  [[nodiscard]] TunedPolicy best() const;
  [[nodiscard]] int probes_used() const noexcept { return probes_used_; }

 private:
  void advance_round();

  OnlineTunerOptions opts_;
  double lo_m_ = 1.0, hi_m_ = 300.0;
  double lo_n_ = 1.0, hi_n_ = 300.0;
  int round_ = 0;
  int probe_in_round_ = 0;
  int probes_used_ = 0;
  std::uint64_t rng_state_ = 0;
  TunedPolicy best_{HybridPolicy{14, 24}, 0.0};
  bool have_best_ = false;
};

}  // namespace bfsx::core
