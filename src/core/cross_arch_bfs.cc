#include "core/cross_arch_bfs.h"

#include "bfs/frontier.h"
#include "core/trace_emit.h"

namespace bfsx::core {
namespace {

CombinationRun run_cross_impl(const graph::CsrGraph& g, graph::vid_t root,
                              const sim::Device& host,
                              const sim::Device& accel,
                              const sim::InterconnectSpec& link,
                              const HybridPolicy& handoff_policy,
                              const HybridPolicy* accel_policy,
                              obs::TraceSink* sink) {
  handoff_policy.validate();
  if (accel_policy != nullptr) accel_policy->validate();

  CombinationRun run;
  obs::RunEvent trace = trace_begin_run(
      sink, accel_policy != nullptr ? "cross" : "cross-bu", g, root);
  bfs::BfsState state(g, root);
  bool on_accel = false;
  bfs::Direction prev = bfs::Direction::kTopDown;
  bool first = true;

  while (!state.frontier_empty()) {
    const graph::eid_t e_cq = bfs::frontier_out_edges(g, state.frontier_queue);
    const auto v_cq = static_cast<graph::vid_t>(state.frontier_queue.size());

    const sim::Device* device = nullptr;
    bfs::Direction dir = bfs::Direction::kTopDown;
    if (!on_accel) {
      dir = handoff_policy.decide(e_cq, v_cq, g.num_edges(), g.num_vertices());
      if (dir == bfs::Direction::kTopDown) {
        device = &host;
      } else {
        // Algorithm 3 line 11: permanent handoff to the accelerator.
        on_accel = true;
        const double xfer =
            sim::transfer_seconds(link, sim::handoff_bytes(g.num_vertices()));
        run.transfer_seconds += xfer;
        run.seconds += xfer;
        if (sink != nullptr) {
          obs::LevelEvent handoff;
          handoff.kind = obs::LevelEvent::Kind::kHandoff;
          handoff.level = state.current_level;
          handoff.device = std::string(accel.name());
          handoff.frontier_vertices = v_cq;
          handoff.frontier_edges = e_cq;
          handoff.comm_seconds = xfer;
          sink->on_level(handoff);
        }
      }
    }
    if (on_accel) {
      device = &accel;
      dir = accel_policy != nullptr
                ? accel_policy->decide(e_cq, v_cq, g.num_edges(),
                                       g.num_vertices())
                : bfs::Direction::kBottomUp;
    }

    const sim::LevelOutcome out = dir == bfs::Direction::kTopDown
                                      ? device->run_top_down_level(g, state)
                                      : device->run_bottom_up_level(g, state);
    if (!first && dir != prev) ++run.direction_switches;
    prev = dir;
    first = false;
    run.seconds += out.seconds;
    if (sink != nullptr) {
      sink->on_level(trace_level(out, std::string(device->name())));
    }
    run.levels.push_back({out, std::string(device->name())});
  }
  run.result = std::move(state).take_result(g);
  trace_end_run(sink, std::move(trace), run.result, run.seconds,
                run.transfer_seconds,
                static_cast<std::int32_t>(run.levels.size()),
                run.direction_switches);
  return run;
}

}  // namespace

CombinationRun run_cross_arch(const graph::CsrGraph& g, graph::vid_t root,
                              const sim::Device& host,
                              const sim::Device& accel,
                              const sim::InterconnectSpec& link,
                              const HybridPolicy& handoff_policy,
                              const HybridPolicy& accel_policy,
                              obs::TraceSink* sink) {
  return run_cross_impl(g, root, host, accel, link, handoff_policy,
                        &accel_policy, sink);
}

CombinationRun run_cross_arch_bu_only(const graph::CsrGraph& g,
                                      graph::vid_t root,
                                      const sim::Device& host,
                                      const sim::Device& accel,
                                      const sim::InterconnectSpec& link,
                                      const HybridPolicy& handoff_policy,
                                      obs::TraceSink* sink) {
  return run_cross_impl(g, root, host, accel, link, handoff_policy, nullptr,
                        sink);
}

}  // namespace bfsx::core
