// Runtime *performance* prediction — an extension beyond the paper.
//
// The paper predicts the best switching point but still assumes the
// accelerator is chosen by hand (it evaluates GPU vs MIC pairwise and
// reports which wins). With a second regression — same Fig. 7 features,
// target = log10 of the tuned combination's runtime — the system can
// rank candidate device pairings at runtime and pick the accelerator
// itself. The log target keeps the SVR's epsilon tube meaningful across
// the ~4 orders of magnitude of traversal times.
#pragma once

#include <iosfwd>
#include <string>

#include "core/feature.h"
#include "ml/svr.h"

namespace bfsx::core {

class TimePredictor {
 public:
  explicit TimePredictor(ml::SvrModel model) : model_(std::move(model)) {}

  /// Predicted seconds of the tuned combination that runs top-down on
  /// `td_arch` and bottom-up on `bu_arch` over a graph with features
  /// `gf`. Cross pairs include the interconnect cost in the labels.
  [[nodiscard]] double predict_seconds(const GraphFeatures& gf,
                                       const sim::ArchSpec& td_arch,
                                       const sim::ArchSpec& bu_arch) const;

  void save(std::ostream& os) const;
  static TimePredictor load(std::istream& is);

 private:
  ml::SvrModel model_;  // predicts log10(seconds)
};

}  // namespace bfsx::core
