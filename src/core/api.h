// Library front door: the paper's complete pipeline as two calls.
//
//   SwitchPredictor predictor = train_predictor(           // offline, once
//       generate_training_data(default_trainer_config()));
//   CombinationRun run = run_adaptive(g, root, features,   // online, per BFS
//                                     machine, predictor);
//
// run_adaptive is Algorithm 3 end to end: predict (M1, N1) from
// (graph, host, accelerator), predict (M2, N2) from
// (graph, accelerator, accelerator), then execute the
// cross-architecture combination with those policies.
#pragma once

#include "core/cross_arch_bfs.h"
#include "core/predictor.h"
#include "core/trainer.h"
#include "sim/machine.h"

namespace bfsx::core {

/// Algorithm 3 with regression-predicted switching points, on
/// `machine`'s host + first accelerator.
[[nodiscard]] CombinationRun run_adaptive(const graph::CsrGraph& g,
                                          graph::vid_t root,
                                          const GraphFeatures& features,
                                          const sim::Machine& machine,
                                          const SwitchPredictor& predictor,
                                          obs::TraceSink* sink = nullptr);

/// Single-architecture adaptive combination (the paper's CPUCB/GPUCB/
/// MICCB rows, with the switching point predicted instead of hand-tuned).
[[nodiscard]] CombinationRun run_adaptive_single(
    const graph::CsrGraph& g, graph::vid_t root,
    const GraphFeatures& features, const sim::Device& device,
    const SwitchPredictor& predictor, obs::TraceSink* sink = nullptr);

/// Extension beyond the paper: rank the machine's accelerators by
/// predicted runtime (TimePredictor) and return the index of the best
/// one for this graph. Throws std::invalid_argument when the machine
/// has no accelerators.
[[nodiscard]] std::size_t select_accelerator(const GraphFeatures& features,
                                             const sim::Machine& machine,
                                             const TimePredictor& times);

/// Algorithm 3 with the accelerator ALSO chosen at runtime: predict the
/// runtime of each (host, accelerator) pairing, pick the winner, then
/// run the adaptive cross-architecture combination on it.
[[nodiscard]] CombinationRun run_adaptive_auto(const graph::CsrGraph& g,
                                               graph::vid_t root,
                                               const GraphFeatures& features,
                                               const sim::Machine& machine,
                                               const SwitchPredictor& predictor,
                                               const TimePredictor& times,
                                               obs::TraceSink* sink = nullptr);

}  // namespace bfsx::core
