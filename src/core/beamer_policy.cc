#include "core/beamer_policy.h"

#include <stdexcept>

namespace bfsx::core {

void BeamerPolicy::validate() const {
  if (alpha <= 0.0 || beta <= 0.0) {
    throw std::invalid_argument("BeamerPolicy: alpha and beta must be > 0");
  }
}

}  // namespace bfsx::core
