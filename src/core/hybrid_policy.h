// The M/N switching rule (paper Fig. 4).
//
// "When the number of edges in CQ (|E|cq) is less than |E|/M and the
// number of vertices in CQ (|V|cq) is less than |V|/N, BFS switches to
// top-down. Otherwise, it switches to bottom-up."
#pragma once

#include <stdexcept>

#include "bfs/state.h"
#include "graph/types.h"

namespace bfsx::core {

struct HybridPolicy {
  /// Edge-ratio knob: top-down requires |E|cq < |E|/M. Larger M makes
  /// the policy flee to bottom-up earlier.
  double m = 14.0;
  /// Vertex-ratio knob: top-down also requires |V|cq < |V|/N.
  double n = 24.0;

  /// The switch test, evaluated once per level.
  [[nodiscard]] bfs::Direction decide(graph::eid_t frontier_edges,
                                      graph::vid_t frontier_vertices,
                                      graph::eid_t total_edges,
                                      graph::vid_t total_vertices) const {
    const bool td =
        static_cast<double>(frontier_edges) <
            static_cast<double>(total_edges) / m &&
        static_cast<double>(frontier_vertices) <
            static_cast<double>(total_vertices) / n;
    return td ? bfs::Direction::kTopDown : bfs::Direction::kBottomUp;
  }

  /// Throws std::invalid_argument unless both knobs are >= 1 (M, N < 1
  /// would demand a frontier larger than the whole graph).
  void validate() const {
    if (m < 1.0 || n < 1.0) {
      throw std::invalid_argument("HybridPolicy: M and N must be >= 1");
    }
  }

  friend bool operator==(const HybridPolicy&, const HybridPolicy&) = default;
};

/// Policies that degenerate to a single direction, used to express the
/// paper's pure-TD / pure-BU rows through the same machinery.
[[nodiscard]] constexpr HybridPolicy always_top_down() noexcept {
  // |E|cq < |E| and |V|cq < |V| always hold mid-traversal with M=N=1.
  return {1.0, 1.0};
}
[[nodiscard]] constexpr HybridPolicy always_bottom_up() noexcept {
  // Thresholds below one edge/vertex can never be met.
  return {1e18, 1e18};
}

}  // namespace bfsx::core
