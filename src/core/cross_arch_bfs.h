// Cross-architecture combination executor — the paper's Algorithm 3 and
// headline contribution ("the first to combine top-down and bottom-up
// across different architectures").
//
// Phase 1: the host runs top-down while `handoff_policy` still selects
// top-down (small frontier: the CPU's fat cores and low per-level
// overhead win, Table IV levels 1-2).
// Phase 2: at the first bottom-up trigger, the frontier and visited
// bitmaps cross the interconnect and the accelerator finishes the
// traversal, choosing per level between bottom-up and top-down with
// `accel_policy` — bottom-up through the fat middle, top-down again for
// the tiny last levels (the CPUTD+GPUCB column of Table IV). Control
// never returns to the host: the paper found switching back is
// "meaningless" because the GPU already wins small compute-dense
// levels (Section IV).
#pragma once

#include "core/adaptive_bfs.h"
#include "sim/machine.h"

namespace bfsx::core {

/// Runs Algorithm 3 on host + accelerator over a link. `sink`
/// (optional, non-owning) observes the traversal as engine "cross";
/// the host→accelerator frontier shipment is emitted as an explicit
/// handoff event carrying the modelled wire time.
[[nodiscard]] CombinationRun run_cross_arch(
    const graph::CsrGraph& g, graph::vid_t root, const sim::Device& host,
    const sim::Device& accel, const sim::InterconnectSpec& link,
    const HybridPolicy& handoff_policy, const HybridPolicy& accel_policy,
    obs::TraceSink* sink = nullptr);

/// The paper's intermediate variant CPUTD+GPUBU (Table IV, column 7):
/// host top-down for the early levels, then pure bottom-up on the
/// accelerator to the end — no switch-back to top-down. Traced as
/// "cross-bu".
[[nodiscard]] CombinationRun run_cross_arch_bu_only(
    const graph::CsrGraph& g, graph::vid_t root, const sim::Device& host,
    const sim::Device& accel, const sim::InterconnectSpec& link,
    const HybridPolicy& handoff_policy, obs::TraceSink* sink = nullptr);

}  // namespace bfsx::core
