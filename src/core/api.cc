#include "core/api.h"

#include <stdexcept>

namespace bfsx::core {

CombinationRun run_adaptive(const graph::CsrGraph& g, graph::vid_t root,
                            const GraphFeatures& features,
                            const sim::Machine& machine,
                            const SwitchPredictor& predictor,
                            obs::TraceSink* sink) {
  const sim::Device& host = machine.host();
  const sim::Device& accel = machine.accelerator(0);
  // Algorithm 3 lines 1-2: the two independent predictions.
  const HybridPolicy handoff =
      predictor.predict(features, host.spec(), accel.spec());
  const HybridPolicy on_accel =
      predictor.predict(features, accel.spec(), accel.spec());
  return run_cross_arch(g, root, host, accel, machine.link(), handoff,
                        on_accel, sink);
}

std::size_t select_accelerator(const GraphFeatures& features,
                               const sim::Machine& machine,
                               const TimePredictor& times) {
  if (machine.num_accelerators() == 0) {
    throw std::invalid_argument("select_accelerator: no accelerators");
  }
  std::size_t best = 0;
  double best_seconds = 0.0;
  for (std::size_t i = 0; i < machine.num_accelerators(); ++i) {
    // The cross pairing runs top-down on the host, bottom-up (mostly)
    // on accelerator i — exactly the feature layout of Fig. 7.
    const double s = times.predict_seconds(
        features, machine.host().spec(), machine.accelerator(i).spec());
    if (i == 0 || s < best_seconds) {
      best = i;
      best_seconds = s;
    }
  }
  return best;
}

CombinationRun run_adaptive_auto(const graph::CsrGraph& g, graph::vid_t root,
                                 const GraphFeatures& features,
                                 const sim::Machine& machine,
                                 const SwitchPredictor& predictor,
                                 const TimePredictor& times,
                                 obs::TraceSink* sink) {
  const std::size_t pick = select_accelerator(features, machine, times);
  const sim::Device& host = machine.host();
  const sim::Device& accel = machine.accelerator(pick);
  const HybridPolicy handoff =
      predictor.predict(features, host.spec(), accel.spec());
  const HybridPolicy on_accel =
      predictor.predict(features, accel.spec(), accel.spec());
  return run_cross_arch(g, root, host, accel, machine.link(), handoff,
                        on_accel, sink);
}

CombinationRun run_adaptive_single(const graph::CsrGraph& g,
                                   graph::vid_t root,
                                   const GraphFeatures& features,
                                   const sim::Device& device,
                                   const SwitchPredictor& predictor,
                            obs::TraceSink* sink) {
  const HybridPolicy policy = predictor.predict(features, device.spec());
  return run_combination(g, root, device, policy);
}

}  // namespace bfsx::core
