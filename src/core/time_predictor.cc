#include "core/time_predictor.h"

#include <cmath>

#include "ml/model_io.h"

namespace bfsx::core {

double TimePredictor::predict_seconds(const GraphFeatures& gf,
                                      const sim::ArchSpec& td_arch,
                                      const sim::ArchSpec& bu_arch) const {
  const std::vector<double> sample = build_sample(gf, td_arch, bu_arch);
  return std::pow(10.0, model_.predict(sample));
}

void TimePredictor::save(std::ostream& os) const {
  ml::save_svr(os, model_);
}

TimePredictor TimePredictor::load(std::istream& is) {
  return TimePredictor(ml::load_svr(is));
}

}  // namespace bfsx::core
