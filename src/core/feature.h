// Training-sample construction (paper Fig. 7).
//
// Each sample concatenates:
//   graph information      — V, E (in millions), and the Kronecker
//                            construction parameters A, B, C, D;
//   top-down architecture  — peak performance P1, L1 cache size, memory
//                            bandwidth B1 of the platform running
//                            top-down;
//   bottom-up architecture — P2, L2(cache L1 size), B2 of the platform
//                            running bottom-up.
// "Arch-TD_i and Arch-BU_i are the same if top-down and bottom-up are
// on the same architecture" (Section III-D).
#pragma once

#include <array>
#include <vector>

#include "graph/csr.h"
#include "graph/rmat.h"
#include "sim/arch.h"

namespace bfsx::core {

struct GraphFeatures {
  double vertices_millions = 0;
  double edges_millions = 0;  // directed (CSR) edges, matching |E| in the rule
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
};

/// Features straight from generator parameters (offline training path).
[[nodiscard]] GraphFeatures features_from_rmat(const graph::RmatParams& p);

/// Features from a built graph plus known construction parameters
/// (online path: V and E are read off the CSR, A-D from metadata).
[[nodiscard]] GraphFeatures features_from_graph(const graph::CsrGraph& g,
                                                double a, double b, double c,
                                                double d);

inline constexpr std::size_t kNumFeatures = 12;

/// Assembles the 12-feature sample of Fig. 7:
/// [V, E, A, B, C, D, P1, L1_1, B1, P2, L1_2, B2].
[[nodiscard]] std::vector<double> build_sample(const GraphFeatures& gf,
                                               const sim::ArchSpec& td_arch,
                                               const sim::ArchSpec& bu_arch);

/// Column names, index-aligned with build_sample (logging/debugging).
[[nodiscard]] std::array<const char*, kNumFeatures> feature_names();

}  // namespace bfsx::core
