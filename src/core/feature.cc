#include "core/feature.h"

namespace bfsx::core {

GraphFeatures features_from_rmat(const graph::RmatParams& p) {
  GraphFeatures f;
  f.vertices_millions = static_cast<double>(p.num_vertices()) / 1e6;
  // The generator draws num_edges() directed edges; after symmetrise +
  // dedup the CSR holds roughly twice that. Using the generator count
  // keeps offline and online features consistent to within dedup noise.
  f.edges_millions = 2.0 * static_cast<double>(p.num_edges()) / 1e6;
  f.a = p.a;
  f.b = p.b;
  f.c = p.c;
  f.d = p.d;
  return f;
}

GraphFeatures features_from_graph(const graph::CsrGraph& g, double a,
                                  double b, double c, double d) {
  GraphFeatures f;
  f.vertices_millions = static_cast<double>(g.num_vertices()) / 1e6;
  f.edges_millions = static_cast<double>(g.num_edges()) / 1e6;
  f.a = a;
  f.b = b;
  f.c = c;
  f.d = d;
  return f;
}

std::vector<double> build_sample(const GraphFeatures& gf,
                                 const sim::ArchSpec& td_arch,
                                 const sim::ArchSpec& bu_arch) {
  return {
      gf.vertices_millions,
      gf.edges_millions,
      gf.a,
      gf.b,
      gf.c,
      gf.d,
      td_arch.peak_sp_gflops,
      td_arch.l1_kb,
      td_arch.bw_measured_gbps,
      bu_arch.peak_sp_gflops,
      bu_arch.l1_kb,
      bu_arch.bw_measured_gbps,
  };
}

std::array<const char*, kNumFeatures> feature_names() {
  return {"V_millions", "E_millions", "A",  "B",  "C",  "D",
          "P1_gflops",  "L1_kb",      "B1", "P2", "L2", "B2"};
}

}  // namespace bfsx::core
