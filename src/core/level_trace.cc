#include "core/level_trace.h"

#include "bfs/bottomup.h"
#include "bfs/frontier.h"
#include "bfs/topdown.h"

namespace bfsx::core {

LevelTrace build_level_trace(const graph::CsrGraph& g, graph::vid_t root) {
  LevelTrace trace;
  trace.num_vertices = g.num_vertices();
  trace.num_edges = g.num_edges();

  bfs::BfsState state(g, root);
  while (!state.frontier_empty()) {
    TraceLevel lvl;
    lvl.level = state.current_level;
    lvl.frontier_vertices = static_cast<graph::vid_t>(state.frontier_queue.size());
    lvl.frontier_edges = bfs::frontier_out_edges(g, state.frontier_queue);

    const bfs::BottomUpStats probe = bfs::bottom_up_probe(g, state);
    lvl.bu_edges_hit = probe.edges_scanned_hit;
    lvl.bu_edges_miss = probe.edges_scanned_miss;

    const bfs::TopDownStats advanced = bfs::top_down_step(g, state);
    lvl.next_vertices = advanced.next_vertices;
    trace.levels.push_back(lvl);
  }
  return trace;
}

namespace {

double level_cost(const TraceLevel& lvl, const LevelTrace& trace,
                  const sim::ArchSpec& arch, bfs::Direction dir) {
  if (dir == bfs::Direction::kTopDown) {
    return sim::top_down_level_seconds(arch, lvl.frontier_edges);
  }
  return sim::bottom_up_level_seconds(arch, trace.num_vertices,
                                      lvl.bu_edges_hit, lvl.bu_edges_miss);
}

}  // namespace

double replay_pure(const LevelTrace& trace, const sim::ArchSpec& arch,
                   bfs::Direction direction) {
  double seconds = 0.0;
  for (const TraceLevel& lvl : trace.levels) {
    seconds += level_cost(lvl, trace, arch, direction);
  }
  return seconds;
}

double replay_single(const LevelTrace& trace, const sim::ArchSpec& arch,
                     const HybridPolicy& policy) {
  policy.validate();
  double seconds = 0.0;
  for (const TraceLevel& lvl : trace.levels) {
    const bfs::Direction dir =
        policy.decide(lvl.frontier_edges, lvl.frontier_vertices,
                      trace.num_edges, trace.num_vertices);
    seconds += level_cost(lvl, trace, arch, dir);
  }
  return seconds;
}

double replay_beamer(const LevelTrace& trace, const sim::ArchSpec& arch,
                     const BeamerPolicy& policy) {
  policy.validate();
  double seconds = 0.0;
  graph::eid_t explored = 0;  // out-edges of all visited levels so far
  bfs::Direction prev = bfs::Direction::kTopDown;
  for (const TraceLevel& lvl : trace.levels) {
    explored += lvl.frontier_edges;
    const graph::eid_t unexplored = trace.num_edges - explored;
    const bfs::Direction dir =
        policy.decide(lvl.frontier_edges, unexplored, lvl.frontier_vertices,
                      trace.num_vertices, prev);
    seconds += level_cost(lvl, trace, arch, dir);
    prev = dir;
  }
  return seconds;
}

double replay_cross(const LevelTrace& trace, const sim::ArchSpec& host,
                    const sim::ArchSpec& accel,
                    const sim::InterconnectSpec& link,
                    const HybridPolicy& handoff_policy,
                    const HybridPolicy& accel_policy) {
  handoff_policy.validate();
  accel_policy.validate();
  double seconds = 0.0;
  bool on_accel = false;
  for (const TraceLevel& lvl : trace.levels) {
    if (!on_accel) {
      const bfs::Direction dir =
          handoff_policy.decide(lvl.frontier_edges, lvl.frontier_vertices,
                                trace.num_edges, trace.num_vertices);
      if (dir == bfs::Direction::kTopDown) {
        seconds += level_cost(lvl, trace, host, bfs::Direction::kTopDown);
        continue;
      }
      // Algorithm 3, line 11: leave the host for good; ship the
      // frontier + visited bitmaps across the link.
      on_accel = true;
      seconds +=
          sim::transfer_seconds(link, sim::handoff_bytes(trace.num_vertices));
    }
    const bfs::Direction dir =
        accel_policy.decide(lvl.frontier_edges, lvl.frontier_vertices,
                            trace.num_edges, trace.num_vertices);
    seconds += level_cost(lvl, trace, accel, dir);
  }
  return seconds;
}

}  // namespace bfsx::core
