// Beamer's original alpha/beta switching heuristic (Beamer, Asanović,
// Patterson, "Direction-Optimizing Breadth-First Search", SC'12 —
// the paper's reference [4] and the rule its M/N variant descends
// from).
//
// Unlike the M/N rule — stateless thresholds on |E|cq and |V|cq against
// graph totals — Beamer's heuristic is *stateful*:
//   while top-down:   switch to bottom-up when m_f > m_u / alpha
//   while bottom-up:  switch to top-down when n_f < n / beta
// where m_f = edges out of the frontier (|E|cq), m_u = edges incident
// to still-unvisited vertices, n_f = frontier vertex count, n = |V|.
// m_u shrinks as the traversal proceeds, so the same m_f can trigger
// the switch late in one traversal and not at all in another.
//
// Implemented here as a comparator: the tuners can price alpha/beta
// against M/N on identical traces (bench_ablation_policy_rule), which
// quantifies what the paper's reformulation gains or loses.
#pragma once

#include "bfs/state.h"
#include "graph/types.h"

namespace bfsx::core {

struct BeamerPolicy {
  /// Top-down -> bottom-up trigger (Beamer's tuned default is 14).
  double alpha = 14.0;
  /// Bottom-up -> top-down trigger (Beamer's tuned default is 24).
  double beta = 24.0;

  /// One stateful decision. `previous` is the direction the traversal
  /// used for the last level (top-down for the first level, matching
  /// Beamer's implementation).
  [[nodiscard]] bfs::Direction decide(graph::eid_t frontier_edges,
                                      graph::eid_t unexplored_edges,
                                      graph::vid_t frontier_vertices,
                                      graph::vid_t total_vertices,
                                      bfs::Direction previous) const {
    if (previous == bfs::Direction::kTopDown) {
      const bool go_bottom_up =
          static_cast<double>(frontier_edges) >
          static_cast<double>(unexplored_edges) / alpha;
      return go_bottom_up ? bfs::Direction::kBottomUp
                          : bfs::Direction::kTopDown;
    }
    const bool back_to_top_down =
        static_cast<double>(frontier_vertices) <
        static_cast<double>(total_vertices) / beta;
    return back_to_top_down ? bfs::Direction::kTopDown
                            : bfs::Direction::kBottomUp;
  }

  void validate() const;

  friend bool operator==(const BeamerPolicy&, const BeamerPolicy&) = default;
};

}  // namespace bfsx::core
