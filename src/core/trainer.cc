#include "core/trainer.h"

#include <cmath>
#include <cstdint>
#include <utility>

#include "graph/builder.h"
#include "graph/graph_stats.h"

namespace bfsx::core {

TrainerConfig default_trainer_config() {
  TrainerConfig cfg;

  struct Abcd {
    double a, b, c, d;
  };
  const Abcd kron_sets[] = {
      {0.57, 0.19, 0.19, 0.05},  // the paper's Graph 500 setting
      {0.45, 0.25, 0.20, 0.10},  // milder skew
  };
  for (int scale : {11, 12, 13}) {
    for (int ef : {8, 16, 32}) {
      for (const Abcd& k : kron_sets) {
        for (std::uint64_t seed : {11ULL, 29ULL}) {
          graph::RmatParams p;
          p.scale = scale;
          p.edgefactor = ef;
          p.a = k.a;
          p.b = k.b;
          p.c = k.c;
          p.d = k.d;
          p.seed = seed;
          cfg.graphs.push_back(p);
        }
      }
    }
  }

  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const sim::ArchSpec mic = sim::make_knights_corner_mic();
  cfg.arch_pairs = {
      {cpu, cpu},  // CPUCB
      {gpu, gpu},  // GPUCB
      {mic, mic},  // MICCB
      {cpu, gpu},  // the cross-architecture handoff pair of Algorithm 3
      {cpu, mic},  // the MIC-accelerated variant (Fig. 9's comparison)
  };
  // 36 graphs x 5 pairs = 180 samples, a shade above the paper's
  // "N = 140" regime so the accelerator auto-selection extension sees
  // both (host, accelerator) pairings in training.
  return cfg;
}

TunedPolicy label_configuration(const LevelTrace& trace, const ArchPair& pair,
                                const sim::InterconnectSpec& link,
                                const SwitchCandidates& candidates) {
  if (!pair.is_cross()) {
    return pick_best(sweep_single(trace, pair.td, candidates), candidates);
  }
  // Cross pair: fix the accelerator-internal policy at its own optimum,
  // then search the handoff policy (Algorithm 3 tunes (M2, N2) with
  // (GI, GPUI, GPUI) and (M1, N1) with (GI, CPUI, GPUI)).
  const TunedPolicy inner =
      pick_best(sweep_single(trace, pair.bu, candidates), candidates);
  return pick_best(
      sweep_cross(trace, pair.td, pair.bu, link, candidates, inner.policy),
      candidates);
}

namespace {

/// One labelled (graph, arch-pair) sample before dataset insertion.
struct LabelledRow {
  std::vector<double> sample;
  double m = 0.0;
  double n = 0.0;
  double log_seconds = 0.0;
};

/// The per-graph unit of work: generate, build, trace once, then label
/// every architecture pair against that trace. Self-contained, so
/// graphs can be processed in any order (or concurrently) and the rows
/// reassembled deterministically by graph index.
std::vector<LabelledRow> label_graph(const graph::RmatParams& params,
                                     const TrainerConfig& cfg) {
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(params));
  const std::vector<graph::vid_t> roots =
      graph::sample_roots(g, 1, cfg.root_seed);
  const LevelTrace trace = build_level_trace(g, roots.front());
  const GraphFeatures gf = features_from_rmat(params);

  std::vector<LabelledRow> rows;
  rows.reserve(cfg.arch_pairs.size());
  for (const ArchPair& pair : cfg.arch_pairs) {
    const TunedPolicy best =
        label_configuration(trace, pair, cfg.link, cfg.candidates);
    LabelledRow row;
    row.sample = build_sample(gf, pair.td, pair.bu);
    row.m = best.policy.m;
    row.n = best.policy.n;
    row.log_seconds = std::log10(best.seconds);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

TrainingData generate_training_data(const TrainerConfig& cfg) {
  const auto num_graphs = static_cast<std::int64_t>(cfg.graphs.size());
  std::vector<std::vector<LabelledRow>> per_graph(
      static_cast<std::size_t>(num_graphs));

  if (cfg.parallel_labeling) {
    // Each iteration writes only its own slot; the graph build and the
    // kernels it calls parallelise internally, but nested regions
    // serialise under an active outer team, so the per-graph results —
    // deterministic by design at any thread count — are unchanged.
    // omp-lint: allow(shared-write) per_graph slots are disjoint per
    //           iteration (indexed by the loop variable)
#pragma omp parallel for schedule(dynamic, 1)
    for (std::int64_t gi = 0; gi < num_graphs; ++gi) {
      per_graph[static_cast<std::size_t>(gi)] =
          label_graph(cfg.graphs[static_cast<std::size_t>(gi)], cfg);
    }
  } else {
    for (std::int64_t gi = 0; gi < num_graphs; ++gi) {
      per_graph[static_cast<std::size_t>(gi)] =
          label_graph(cfg.graphs[static_cast<std::size_t>(gi)], cfg);
    }
  }

  // Fold in (graph, arch-pair) order: the datasets are row-for-row
  // identical to the serial pass regardless of completion order.
  TrainingData data;
  for (std::vector<LabelledRow>& rows : per_graph) {
    for (LabelledRow& row : rows) {
      data.m_data.add(row.sample, row.m);
      data.n_data.add(row.sample, row.n);
      data.t_data.add(std::move(row.sample), row.log_seconds);
    }
  }
  return data;
}

SwitchPredictor train_predictor(const TrainingData& data,
                                const ml::SvrParams& svr) {
  ml::SvrModel m_model = ml::SvrModel::fit(data.m_data, svr);
  ml::SvrModel n_model = ml::SvrModel::fit(data.n_data, svr);
  return SwitchPredictor(std::move(m_model), std::move(n_model));
}

TimePredictor train_time_predictor(const TrainingData& data,
                                   const ml::SvrParams& svr) {
  return TimePredictor(ml::SvrModel::fit(data.t_data, svr));
}

}  // namespace bfsx::core
