#include "core/trainer.h"

#include <cmath>

#include "graph/builder.h"
#include "graph/graph_stats.h"

namespace bfsx::core {

TrainerConfig default_trainer_config() {
  TrainerConfig cfg;

  struct Abcd {
    double a, b, c, d;
  };
  const Abcd kron_sets[] = {
      {0.57, 0.19, 0.19, 0.05},  // the paper's Graph 500 setting
      {0.45, 0.25, 0.20, 0.10},  // milder skew
  };
  for (int scale : {11, 12, 13}) {
    for (int ef : {8, 16, 32}) {
      for (const Abcd& k : kron_sets) {
        for (std::uint64_t seed : {11ULL, 29ULL}) {
          graph::RmatParams p;
          p.scale = scale;
          p.edgefactor = ef;
          p.a = k.a;
          p.b = k.b;
          p.c = k.c;
          p.d = k.d;
          p.seed = seed;
          cfg.graphs.push_back(p);
        }
      }
    }
  }

  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const sim::ArchSpec mic = sim::make_knights_corner_mic();
  cfg.arch_pairs = {
      {cpu, cpu},  // CPUCB
      {gpu, gpu},  // GPUCB
      {mic, mic},  // MICCB
      {cpu, gpu},  // the cross-architecture handoff pair of Algorithm 3
      {cpu, mic},  // the MIC-accelerated variant (Fig. 9's comparison)
  };
  // 36 graphs x 5 pairs = 180 samples, a shade above the paper's
  // "N = 140" regime so the accelerator auto-selection extension sees
  // both (host, accelerator) pairings in training.
  return cfg;
}

TunedPolicy label_configuration(const LevelTrace& trace, const ArchPair& pair,
                                const sim::InterconnectSpec& link,
                                const SwitchCandidates& candidates) {
  if (!pair.is_cross()) {
    return pick_best(sweep_single(trace, pair.td, candidates), candidates);
  }
  // Cross pair: fix the accelerator-internal policy at its own optimum,
  // then search the handoff policy (Algorithm 3 tunes (M2, N2) with
  // (GI, GPUI, GPUI) and (M1, N1) with (GI, CPUI, GPUI)).
  const TunedPolicy inner =
      pick_best(sweep_single(trace, pair.bu, candidates), candidates);
  return pick_best(
      sweep_cross(trace, pair.td, pair.bu, link, candidates, inner.policy),
      candidates);
}

TrainingData generate_training_data(const TrainerConfig& cfg) {
  TrainingData data;
  for (const graph::RmatParams& params : cfg.graphs) {
    const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(params));
    const std::vector<graph::vid_t> roots =
        graph::sample_roots(g, 1, cfg.root_seed);
    const LevelTrace trace = build_level_trace(g, roots.front());
    const GraphFeatures gf = features_from_rmat(params);

    for (const ArchPair& pair : cfg.arch_pairs) {
      const TunedPolicy best =
          label_configuration(trace, pair, cfg.link, cfg.candidates);
      const std::vector<double> sample = build_sample(gf, pair.td, pair.bu);
      data.m_data.add(sample, best.policy.m);
      data.n_data.add(sample, best.policy.n);
      data.t_data.add(sample, std::log10(best.seconds));
    }
  }
  return data;
}

SwitchPredictor train_predictor(const TrainingData& data,
                                const ml::SvrParams& svr) {
  ml::SvrModel m_model = ml::SvrModel::fit(data.m_data, svr);
  ml::SvrModel n_model = ml::SvrModel::fit(data.n_data, svr);
  return SwitchPredictor(std::move(m_model), std::move(n_model));
}

TimePredictor train_time_predictor(const TrainingData& data,
                                   const ml::SvrParams& svr) {
  return TimePredictor(ml::SvrModel::fit(data.t_data, svr));
}

}  // namespace bfsx::core
