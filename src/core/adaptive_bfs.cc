#include "core/adaptive_bfs.h"

#include "bfs/frontier.h"
#include "core/trace_emit.h"

namespace bfsx::core {

CombinationRun run_combination(const graph::CsrGraph& g, graph::vid_t root,
                               const sim::Device& device,
                               const HybridPolicy& policy,
                               obs::TraceSink* sink) {
  policy.validate();
  CombinationRun run;
  obs::RunEvent trace = trace_begin_run(sink, "hybrid", g, root);
  bfs::BfsState state(g, root);
  bfs::Direction prev = bfs::Direction::kTopDown;
  bool first = true;
  while (!state.frontier_empty()) {
    const graph::eid_t e_cq = bfs::frontier_out_edges(g, state.frontier_queue);
    const auto v_cq = static_cast<graph::vid_t>(state.frontier_queue.size());
    const bfs::Direction dir =
        policy.decide(e_cq, v_cq, g.num_edges(), g.num_vertices());
    const sim::LevelOutcome out = dir == bfs::Direction::kTopDown
                                      ? device.run_top_down_level(g, state)
                                      : device.run_bottom_up_level(g, state);
    if (!first && dir != prev) ++run.direction_switches;
    prev = dir;
    first = false;
    run.seconds += out.seconds;
    if (sink != nullptr) {
      sink->on_level(trace_level(out, std::string(device.name())));
    }
    run.levels.push_back({out, std::string(device.name())});
  }
  run.result = std::move(state).take_result(g);
  trace_end_run(sink, std::move(trace), run.result, run.seconds, 0.0,
                static_cast<std::int32_t>(run.levels.size()),
                run.direction_switches);
  return run;
}

CombinationRun run_combination_beamer(const graph::CsrGraph& g,
                                      graph::vid_t root,
                                      const sim::Device& device,
                                      const BeamerPolicy& policy,
                                      obs::TraceSink* sink) {
  policy.validate();
  CombinationRun run;
  obs::RunEvent trace = trace_begin_run(sink, "beamer", g, root);
  bfs::BfsState state(g, root);
  bfs::Direction prev = bfs::Direction::kTopDown;
  graph::eid_t explored = 0;
  bool first = true;
  while (!state.frontier_empty()) {
    const graph::eid_t e_cq = bfs::frontier_out_edges(g, state.frontier_queue);
    explored += e_cq;
    const auto v_cq = static_cast<graph::vid_t>(state.frontier_queue.size());
    const bfs::Direction dir = policy.decide(
        e_cq, g.num_edges() - explored, v_cq, g.num_vertices(), prev);
    const sim::LevelOutcome out = dir == bfs::Direction::kTopDown
                                      ? device.run_top_down_level(g, state)
                                      : device.run_bottom_up_level(g, state);
    if (!first && dir != prev) ++run.direction_switches;
    prev = dir;
    first = false;
    run.seconds += out.seconds;
    if (sink != nullptr) {
      sink->on_level(trace_level(out, std::string(device.name())));
    }
    run.levels.push_back({out, std::string(device.name())});
  }
  run.result = std::move(state).take_result(g);
  trace_end_run(sink, std::move(trace), run.result, run.seconds, 0.0,
                static_cast<std::int32_t>(run.levels.size()),
                run.direction_switches);
  return run;
}

CombinationRun run_pure(const graph::CsrGraph& g, graph::vid_t root,
                        const sim::Device& device, bfs::Direction direction,
                        obs::TraceSink* sink) {
  CombinationRun run;
  obs::RunEvent trace = trace_begin_run(
      sink, direction == bfs::Direction::kTopDown ? "td" : "bu", g, root);
  bfs::BfsState state(g, root);
  while (!state.frontier_empty()) {
    const sim::LevelOutcome out =
        direction == bfs::Direction::kTopDown
            ? device.run_top_down_level(g, state)
            : device.run_bottom_up_level(g, state);
    run.seconds += out.seconds;
    if (sink != nullptr) {
      sink->on_level(trace_level(out, std::string(device.name())));
    }
    run.levels.push_back({out, std::string(device.name())});
  }
  run.result = std::move(state).take_result(g);
  trace_end_run(sink, std::move(trace), run.result, run.seconds, 0.0,
                static_cast<std::int32_t>(run.levels.size()),
                run.direction_switches);
  return run;
}

}  // namespace bfsx::core
