#include "core/adaptive_bfs.h"

#include "bfs/frontier.h"

namespace bfsx::core {

CombinationRun run_combination(const graph::CsrGraph& g, graph::vid_t root,
                               const sim::Device& device,
                               const HybridPolicy& policy) {
  policy.validate();
  CombinationRun run;
  bfs::BfsState state(g, root);
  bfs::Direction prev = bfs::Direction::kTopDown;
  bool first = true;
  while (!state.frontier_empty()) {
    const graph::eid_t e_cq = bfs::frontier_out_edges(g, state.frontier_queue);
    const auto v_cq = static_cast<graph::vid_t>(state.frontier_queue.size());
    const bfs::Direction dir =
        policy.decide(e_cq, v_cq, g.num_edges(), g.num_vertices());
    const sim::LevelOutcome out = dir == bfs::Direction::kTopDown
                                      ? device.run_top_down_level(g, state)
                                      : device.run_bottom_up_level(g, state);
    if (!first && dir != prev) ++run.direction_switches;
    prev = dir;
    first = false;
    run.seconds += out.seconds;
    run.levels.push_back({out, std::string(device.name())});
  }
  run.result = std::move(state).take_result(g);
  return run;
}

CombinationRun run_combination_beamer(const graph::CsrGraph& g,
                                      graph::vid_t root,
                                      const sim::Device& device,
                                      const BeamerPolicy& policy) {
  policy.validate();
  CombinationRun run;
  bfs::BfsState state(g, root);
  bfs::Direction prev = bfs::Direction::kTopDown;
  graph::eid_t explored = 0;
  bool first = true;
  while (!state.frontier_empty()) {
    const graph::eid_t e_cq = bfs::frontier_out_edges(g, state.frontier_queue);
    explored += e_cq;
    const auto v_cq = static_cast<graph::vid_t>(state.frontier_queue.size());
    const bfs::Direction dir = policy.decide(
        e_cq, g.num_edges() - explored, v_cq, g.num_vertices(), prev);
    const sim::LevelOutcome out = dir == bfs::Direction::kTopDown
                                      ? device.run_top_down_level(g, state)
                                      : device.run_bottom_up_level(g, state);
    if (!first && dir != prev) ++run.direction_switches;
    prev = dir;
    first = false;
    run.seconds += out.seconds;
    run.levels.push_back({out, std::string(device.name())});
  }
  run.result = std::move(state).take_result(g);
  return run;
}

CombinationRun run_pure(const graph::CsrGraph& g, graph::vid_t root,
                        const sim::Device& device, bfs::Direction direction) {
  CombinationRun run;
  bfs::BfsState state(g, root);
  while (!state.frontier_empty()) {
    const sim::LevelOutcome out =
        direction == bfs::Direction::kTopDown
            ? device.run_top_down_level(g, state)
            : device.run_bottom_up_level(g, state);
    run.seconds += out.seconds;
    run.levels.push_back({out, std::string(device.name())});
  }
  run.result = std::move(state).take_result(g);
  return run;
}

}  // namespace bfsx::core
