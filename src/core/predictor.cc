#include "core/predictor.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "ml/model_io.h"

namespace bfsx::core {

HybridPolicy SwitchPredictor::predict(const GraphFeatures& gf,
                                      const sim::ArchSpec& td_arch,
                                      const sim::ArchSpec& bu_arch) const {
  const std::vector<double> sample = build_sample(gf, td_arch, bu_arch);
  HybridPolicy policy;
  policy.m = std::clamp(m_model_.predict(sample), kMinSwitchKnob,
                        kMaxSwitchKnob);
  policy.n = std::clamp(n_model_.predict(sample), kMinSwitchKnob,
                        kMaxSwitchKnob);
  return policy;
}

void SwitchPredictor::save(std::ostream& os) const {
  ml::save_svr(os, m_model_);
  ml::save_svr(os, n_model_);
}

SwitchPredictor SwitchPredictor::load(std::istream& is) {
  ml::SvrModel m = ml::load_svr(is);
  ml::SvrModel n = ml::load_svr(is);
  return SwitchPredictor(std::move(m), std::move(n));
}

void SwitchPredictor::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("SwitchPredictor::save_file: cannot open " +
                             path);
  }
  save(os);
}

SwitchPredictor SwitchPredictor::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("SwitchPredictor::load_file: cannot open " +
                             path);
  }
  return load(is);
}

}  // namespace bfsx::core
