// LevelTrace: one traversal's complete per-level work profile, plus
// O(levels) replay of any switching policy against any architecture.
//
// Why this exists (DESIGN.md §5.1): the paper's oracle ("hybrid-oracle",
// exhaustive search) needs the runtime of a BFS under ~1,000 candidate
// switching points. Re-running the BFS per candidate costs 1,000x the
// traversal — the exact reason the paper says exhaustive search "can
// not be used at runtime". But the *work counters* of every level are
// policy-independent:
//   * the level sets (and hence |V|cq, |E|cq per level) are a property
//     of the graph and root only — both directions discover the same
//     level sets;
//   * the bottom-up hit/miss scan counts at level L depend only on the
//     visited set after level L-1, which again is policy-independent.
// So one instrumented traversal that records both directions' counters
// at every level lets us price any policy by summing per-level model
// costs. The replay is exact with respect to the cost model, which
// tests verify by comparing against actually-executed combinations.
#pragma once

#include <cstdint>
#include <vector>

#include "bfs/state.h"
#include "core/beamer_policy.h"
#include "core/hybrid_policy.h"
#include "sim/cost_model.h"

namespace bfsx::core {

struct TraceLevel {
  std::int32_t level = 0;           // level being expanded
  graph::vid_t frontier_vertices = 0;  // |V|cq
  graph::eid_t frontier_edges = 0;     // |E|cq
  graph::eid_t bu_edges_hit = 0;       // what a BU pass would scan (hits)
  graph::eid_t bu_edges_miss = 0;      // ... and in failed searches
  graph::vid_t next_vertices = 0;
};

struct LevelTrace {
  graph::vid_t num_vertices = 0;
  graph::eid_t num_edges = 0;  // directed edge count (CSR entries)
  std::vector<TraceLevel> levels;

  [[nodiscard]] std::int32_t depth() const noexcept {
    return static_cast<std::int32_t>(levels.size());
  }
};

/// Runs one instrumented traversal from `root` and records both
/// directions' exact work at every level (top-down advances the state;
/// bottom-up is probed without mutation). Costs roughly one traversal
/// of each direction.
[[nodiscard]] LevelTrace build_level_trace(const graph::CsrGraph& g,
                                           graph::vid_t root);

/// Modelled total seconds of a pure single-direction run on `arch`.
[[nodiscard]] double replay_pure(const LevelTrace& trace,
                                 const sim::ArchSpec& arch,
                                 bfs::Direction direction);

/// Modelled total seconds of the single-architecture combination
/// (paper Section IV's CPUCB / GPUCB / MICCB) under `policy`.
[[nodiscard]] double replay_single(const LevelTrace& trace,
                                   const sim::ArchSpec& arch,
                                   const HybridPolicy& policy);

/// Modelled total seconds of the single-architecture combination under
/// Beamer's stateful alpha/beta rule (core/beamer_policy.h). The
/// unexplored-edge count m_u at each level is reconstructed from the
/// trace's |E|cq prefix sums.
[[nodiscard]] double replay_beamer(const LevelTrace& trace,
                                   const sim::ArchSpec& arch,
                                   const BeamerPolicy& policy);

/// Modelled total seconds of the cross-architecture combination
/// (Algorithm 3): the host runs top-down while `handoff_policy` still
/// selects top-down; at the first bottom-up trigger the frontier is
/// shipped over `link` and the rest of the traversal runs on `accel`
/// under `accel_policy` (which may switch back to top-down for the
/// final levels — the CPUTD+GPUCB variant). Algorithm 3 never returns
/// to the host.
[[nodiscard]] double replay_cross(const LevelTrace& trace,
                                  const sim::ArchSpec& host,
                                  const sim::ArchSpec& accel,
                                  const sim::InterconnectSpec& link,
                                  const HybridPolicy& handoff_policy,
                                  const HybridPolicy& accel_policy);

}  // namespace bfsx::core
