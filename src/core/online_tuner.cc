#include "core/online_tuner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/prng.h"

namespace bfsx::core {

OnlineTuner::OnlineTuner(OnlineTunerOptions opts) : opts_(opts) {
  if (opts_.probes_per_round < 2 || opts_.rounds < 1 || opts_.shrink <= 0 ||
      opts_.shrink >= 1) {
    throw std::invalid_argument("OnlineTuner: bad options");
  }
  reset();
}

void OnlineTuner::reset() {
  lo_m_ = lo_n_ = 1.0;
  hi_m_ = hi_n_ = 300.0;
  round_ = 0;
  probe_in_round_ = 0;
  probes_used_ = 0;
  rng_state_ = opts_.seed;
  have_best_ = false;
}

bool OnlineTuner::done() const noexcept { return round_ >= opts_.rounds; }

HybridPolicy OnlineTuner::next_probe() {
  if (done()) throw std::logic_error("OnlineTuner: schedule exhausted");
  // Low-discrepancy-ish draws: SplitMix keyed by (seed, round, probe)
  // in log space over the current box.
  graph::SplitMix64 sm(rng_state_ + 1099511628211ULL *
                                        static_cast<std::uint64_t>(
                                            probe_in_round_ + 31 * round_));
  const double u =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  const double v =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  HybridPolicy p;
  p.m = lo_m_ * std::exp(u * std::log(hi_m_ / lo_m_));
  p.n = lo_n_ * std::exp(v * std::log(hi_n_ / lo_n_));
  return p;
}

void OnlineTuner::record(const HybridPolicy& policy, double seconds) {
  if (done()) throw std::logic_error("OnlineTuner: record after done");
  if (!(seconds >= 0) || !std::isfinite(seconds)) {
    throw std::invalid_argument("OnlineTuner: bad cost");
  }
  if (!have_best_ || seconds < best_.seconds) {
    best_ = {policy, seconds};
    have_best_ = true;
  }
  ++probes_used_;
  if (++probe_in_round_ >= opts_.probes_per_round) advance_round();
}

void OnlineTuner::advance_round() {
  probe_in_round_ = 0;
  ++round_;
  if (done() || !have_best_) return;
  // Shrink the box (log-space) around the incumbent, clamped to the
  // global [1, 300] range.
  const double span_m = std::log(hi_m_ / lo_m_) * opts_.shrink / 2.0;
  const double span_n = std::log(hi_n_ / lo_n_) * opts_.shrink / 2.0;
  lo_m_ = std::max(1.0, best_.policy.m * std::exp(-span_m));
  hi_m_ = std::min(300.0, best_.policy.m * std::exp(span_m));
  lo_n_ = std::max(1.0, best_.policy.n * std::exp(-span_n));
  hi_n_ = std::min(300.0, best_.policy.n * std::exp(span_n));
}

TunedPolicy OnlineTuner::best() const {
  if (!have_best_) throw std::logic_error("OnlineTuner: no probes recorded");
  return best_;
}

}  // namespace bfsx::core
