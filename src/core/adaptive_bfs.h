// Single-architecture combination executor: the paper's CPUCB / GPUCB /
// MICCB — one device, per-level direction chosen by the M/N policy.
#pragma once

#include <string>
#include <vector>

#include "core/beamer_policy.h"
#include "core/hybrid_policy.h"
#include "obs/sink.h"
#include "sim/device.h"

namespace bfsx::core {

/// One executed level with the device it ran on (single-arch runs have
/// one device throughout; cross-arch runs mix).
struct ExecutedLevel {
  sim::LevelOutcome outcome;
  std::string device;
};

struct CombinationRun {
  bfs::BfsResult result;
  double seconds = 0.0;            // total modelled time
  double transfer_seconds = 0.0;   // interconnect share (cross-arch only)
  std::vector<ExecutedLevel> levels;
  int direction_switches = 0;

  /// TEPS over the reached component at the modelled time.
  [[nodiscard]] double teps() const {
    return seconds > 0
               ? static_cast<double>(result.edges_in_component) / seconds
               : 0.0;
  }
};

/// Runs the combination of Algorithms 1 and 2 on one device, switching
/// by `policy` each level (paper Section II-B / Fig. 4), and returns
/// the full per-level account. `sink` (optional, non-owning) observes
/// the traversal as engine "hybrid".
[[nodiscard]] CombinationRun run_combination(const graph::CsrGraph& g,
                                             graph::vid_t root,
                                             const sim::Device& device,
                                             const HybridPolicy& policy,
                                             obs::TraceSink* sink = nullptr);

/// Pure-direction runs through the same reporting path (the paper's
/// GPUTD/GPUBU/... columns of Table IV). Traced as "td" / "bu".
[[nodiscard]] CombinationRun run_pure(const graph::CsrGraph& g,
                                      graph::vid_t root,
                                      const sim::Device& device,
                                      bfs::Direction direction,
                                      obs::TraceSink* sink = nullptr);

/// The same combination under Beamer's stateful alpha/beta rule
/// (core/beamer_policy.h) — the SC'12 baseline the paper's M/N rule
/// reformulates. Tracks the unexplored-edge count live. Traced as
/// "beamer".
[[nodiscard]] CombinationRun run_combination_beamer(
    const graph::CsrGraph& g, graph::vid_t root, const sim::Device& device,
    const BeamerPolicy& policy, obs::TraceSink* sink = nullptr);

}  // namespace bfsx::core
