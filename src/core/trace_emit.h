// Adapters from the executors' internal records (sim::LevelOutcome,
// CombinationRun totals) to the unified obs:: trace events. Shared by
// the single-arch, cross-arch, and Graph 500 sim engines so every
// family serializes byte-identical counters for identical work.
#pragma once

#include <string>
#include <utility>

#include "graph/csr.h"
#include "obs/sink.h"
#include "sim/device.h"

namespace bfsx::core {

/// Builds the identity half of a RunEvent and emits run_begin when a
/// sink is attached. The returned event is reused for run_end once the
/// totals are known. `G` is anything reporting num_vertices()/
/// num_edges() — CsrGraph or any EdgeCountedView (graph/view.h).
template <typename G>
inline obs::RunEvent trace_begin_run(obs::TraceSink* sink, std::string engine,
                                     const G& g, graph::vid_t root) {
  obs::RunEvent e;
  e.engine = std::move(engine);
  e.root = root;
  e.num_vertices = g.num_vertices();
  e.num_edges = g.num_edges();
  if (sink != nullptr) sink->on_run_begin(e);
  return e;
}

/// Fills the totals of `e` from the finished run and emits run_end.
inline void trace_end_run(obs::TraceSink* sink, obs::RunEvent e,
                          const bfs::BfsResult& result, double seconds,
                          double comm_seconds, std::int32_t depth,
                          int direction_switches) {
  if (sink == nullptr) return;
  e.seconds = seconds;
  e.comm_seconds = comm_seconds;
  e.compute_seconds = seconds - comm_seconds;
  e.depth = depth;
  e.reached = result.reached;
  e.edges_in_component = result.edges_in_component;
  e.direction_switches = direction_switches;
  sink->on_run_end(e);
}

/// One executed level on a simulated device, verbatim.
inline obs::LevelEvent trace_level(const sim::LevelOutcome& out,
                                   std::string device) {
  obs::LevelEvent e;
  e.level = out.level;
  e.direction = out.direction;
  e.device = std::move(device);
  e.frontier_vertices = out.frontier_vertices;
  e.frontier_edges = out.frontier_edges;
  e.bu_edges_hit = out.bu_edges_hit;
  e.bu_edges_miss = out.bu_edges_miss;
  e.next_vertices = out.next_vertices;
  e.compute_seconds = out.seconds;
  return e;
}

}  // namespace bfsx::core
