// Contract-check tiers for the whole library.
//
// Three tiers, from cheapest to most thorough:
//
//   BFSX_CHECK(cond)       always on, every build type. For O(1)
//                          preconditions on API boundaries (sizes,
//                          ranges, structural sentinels). Budget: the
//                          sum of all BFSX_CHECK sites must stay under
//                          2% of the scale-14 ingest+traverse path
//                          (bench_build_pipeline emits the measured
//                          overhead as `check_overhead_pct`).
//   BFSX_DCHECK(cond)      debug builds only (also on under paranoid).
//                          For checks too hot for release but cheap
//                          enough for development loops.
//   BFSX_PARANOID(stmt;)   compiled only with -DBFSX_PARANOID=ON. For
//                          O(V+E) structural validators wired into the
//                          code they guard (CSR symmetry, BFS state
//                          invariants between level steps).
//
// Failures throw check::ContractViolation carrying the failed
// expression, file:line, and any streamed context:
//
//   BFSX_CHECK(!offsets.empty()) << "CSR needs at least one offset";
//   BFSX_CHECK_EQ(offsets.back(), targets.size());
//
// The comparison forms (BFSX_CHECK_EQ/NE/LT/LE/GT/GE) print both
// operand values. Operands may be re-evaluated on the failure path, so
// keep side effects out of check arguments.
//
// check::checks_enabled() is a process-wide kill switch whose only
// sanctioned user is bench_build_pipeline's checks-on/checks-off A/B
// measurement; production code must never toggle it.
#pragma once

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>

namespace bfsx::check {

/// Thrown by every failing contract macro. logic_error: a contract
/// violation is a bug in the caller or in this library, never an
/// environmental condition worth retrying.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {

inline std::atomic<bool> g_checks_enabled{true};

class Failer {
 public:
  Failer(const char* kind, const char* expr, const char* file, int line) {
    stream_ << kind << " failed: " << expr << " [" << file << ":" << line
            << "]";
  }
  Failer(const Failer&) = delete;
  Failer& operator=(const Failer&) = delete;

  /// Throws at the end of the full check expression, after the caller
  /// streamed its context. Only ever constructed on a failed check, so
  /// the throwing destructor cannot fire during unwinding.
  ~Failer() noexcept(false) { throw ContractViolation(stream_.str()); }

  std::ostringstream& stream() noexcept { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Lets a streaming expression terminate a void ternary branch
/// (operator& binds looser than operator<<).
struct Voidify {
  void operator&(std::ostream&) const noexcept {}
};

}  // namespace detail

/// Whether BFSX_CHECK / BFSX_DCHECK / BFSX_PARANOID sites evaluate.
/// Defaults to true for the process lifetime.
inline bool checks_enabled() noexcept {
  // mem-order: relaxed — process-wide kill-switch; no data is guarded
  // by the flag, a check site that reads a momentarily stale value just
  // evaluates (or skips) one redundant predicate.
  return detail::g_checks_enabled.load(std::memory_order_relaxed);
}

/// RAII off-switch for overhead measurement (bench_build_pipeline).
/// Not thread-safe against concurrent scopes; never nest across
/// threads.
class ScopedDisableChecks {
 public:
  // mem-order: relaxed — same kill-switch contract as checks_enabled():
  // the flag carries no payload, and the class is documented
  // single-threaded, so the seq_cst default would buy fences for an
  // ordering nobody observes.
  ScopedDisableChecks() noexcept
      : previous_(detail::g_checks_enabled.exchange(
            false, std::memory_order_relaxed)) {}
  ~ScopedDisableChecks() {
    // mem-order: relaxed — restore mirrors the exchange above.
    detail::g_checks_enabled.store(previous_, std::memory_order_relaxed);
  }
  ScopedDisableChecks(const ScopedDisableChecks&) = delete;
  ScopedDisableChecks& operator=(const ScopedDisableChecks&) = delete;

 private:
  bool previous_;
};

}  // namespace bfsx::check

#define BFSX_CHECK_LIKELY_(x) __builtin_expect(!!(x), 1)

#define BFSX_CHECK_IMPL_(kind, cond)                                     \
  (!::bfsx::check::checks_enabled() || BFSX_CHECK_LIKELY_(cond))         \
      ? (void)0                                                          \
      : ::bfsx::check::detail::Voidify() &                               \
            ::bfsx::check::detail::Failer(kind, #cond, __FILE__,         \
                                          __LINE__)                      \
                .stream()

#define BFSX_CHECK_OP_IMPL_(kind, a, b, op)                              \
  (!::bfsx::check::checks_enabled() || BFSX_CHECK_LIKELY_((a)op(b)))     \
      ? (void)0                                                          \
      : ::bfsx::check::detail::Voidify() &                               \
            ::bfsx::check::detail::Failer(kind, #a " " #op " " #b,       \
                                          __FILE__, __LINE__)            \
                    .stream()                                            \
                << " (" << (a) << " vs " << (b) << ")"

// ---- Tier 1: always on -------------------------------------------------
#define BFSX_CHECK(cond) BFSX_CHECK_IMPL_("BFSX_CHECK", cond)
#define BFSX_CHECK_EQ(a, b) BFSX_CHECK_OP_IMPL_("BFSX_CHECK_EQ", a, b, ==)
#define BFSX_CHECK_NE(a, b) BFSX_CHECK_OP_IMPL_("BFSX_CHECK_NE", a, b, !=)
#define BFSX_CHECK_LT(a, b) BFSX_CHECK_OP_IMPL_("BFSX_CHECK_LT", a, b, <)
#define BFSX_CHECK_LE(a, b) BFSX_CHECK_OP_IMPL_("BFSX_CHECK_LE", a, b, <=)
#define BFSX_CHECK_GT(a, b) BFSX_CHECK_OP_IMPL_("BFSX_CHECK_GT", a, b, >)
#define BFSX_CHECK_GE(a, b) BFSX_CHECK_OP_IMPL_("BFSX_CHECK_GE", a, b, >=)

// ---- Tier 2: debug builds (and paranoid builds) ------------------------
#if !defined(NDEBUG) || defined(BFSX_PARANOID_ENABLED)
#define BFSX_DCHECK_ACTIVE 1
#define BFSX_DCHECK(cond) BFSX_CHECK_IMPL_("BFSX_DCHECK", cond)
#define BFSX_DCHECK_EQ(a, b) BFSX_CHECK_OP_IMPL_("BFSX_DCHECK_EQ", a, b, ==)
#define BFSX_DCHECK_NE(a, b) BFSX_CHECK_OP_IMPL_("BFSX_DCHECK_NE", a, b, !=)
#define BFSX_DCHECK_LT(a, b) BFSX_CHECK_OP_IMPL_("BFSX_DCHECK_LT", a, b, <)
#define BFSX_DCHECK_LE(a, b) BFSX_CHECK_OP_IMPL_("BFSX_DCHECK_LE", a, b, <=)
#define BFSX_DCHECK_GT(a, b) BFSX_CHECK_OP_IMPL_("BFSX_DCHECK_GT", a, b, >)
#define BFSX_DCHECK_GE(a, b) BFSX_CHECK_OP_IMPL_("BFSX_DCHECK_GE", a, b, >=)
#else
#define BFSX_DCHECK_ACTIVE 0
#define BFSX_DCHECK_NOOP_(...) \
  do {                         \
  } while (false)
#define BFSX_DCHECK(cond) BFSX_DCHECK_NOOP_()
#define BFSX_DCHECK_EQ(a, b) BFSX_DCHECK_NOOP_()
#define BFSX_DCHECK_NE(a, b) BFSX_DCHECK_NOOP_()
#define BFSX_DCHECK_LT(a, b) BFSX_DCHECK_NOOP_()
#define BFSX_DCHECK_LE(a, b) BFSX_DCHECK_NOOP_()
#define BFSX_DCHECK_GT(a, b) BFSX_DCHECK_NOOP_()
#define BFSX_DCHECK_GE(a, b) BFSX_DCHECK_NOOP_()
#endif

// ---- Tier 3: paranoid structural validators ----------------------------
// Executes `stmt` (typically a call into a check/*.h validator) only in
// -DBFSX_PARANOID=ON builds. The statement must be side-effect free
// with respect to the guarded algorithm.
#if defined(BFSX_PARANOID_ENABLED)
#define BFSX_PARANOID_ACTIVE 1
#define BFSX_PARANOID(...)                       \
  do {                                           \
    if (::bfsx::check::checks_enabled()) {       \
      __VA_ARGS__;                               \
    }                                            \
  } while (false)
#else
#define BFSX_PARANOID_ACTIVE 0
#define BFSX_PARANOID(...) \
  do {                     \
  } while (false)
#endif
