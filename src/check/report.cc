#include "check/report.h"

#include "check/contract.h"

namespace bfsx::check {

void CheckReport::fail(std::string message) {
  ++total_failures_;
  if (failures_.size() < max_failures_) {
    failures_.push_back(std::move(message));
  }
}

std::string CheckReport::to_string() const {
  if (ok()) return "ok";
  std::ostringstream os;
  os << total_failures_ << " failure(s):";
  for (std::size_t i = 0; i < failures_.size(); ++i) {
    os << "\n  [" << (i + 1) << "] " << failures_[i];
  }
  if (total_failures_ > failures_.size()) {
    os << "\n  (" << (total_failures_ - failures_.size())
       << " more dropped past the cap of " << max_failures_ << ")";
  }
  return os.str();
}

void CheckReport::throw_if_failed(const std::string& context) const {
  if (!ok()) {
    throw ContractViolation(context + ": " + to_string());
  }
}

}  // namespace bfsx::check
