// Cross-engine counter agreement.
//
// The paper's headline correctness claim (Fig. 4, Table IV) is that
// |V|cq and |E|cq per level are properties of the graph and root alone:
// every engine — top-down, bottom-up, hybrid, reference, distributed —
// must report bit-equal counters at every level, for every thread
// count. This checker makes the claim mechanical. It is deliberately
// independent of any engine type: callers adapt their per-level logs
// into LevelCounters rows (bfs::to_level_counters for TraversalLog),
// so tests, the CLI's --paranoid mode, and future engines can all
// reuse it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/report.h"

namespace bfsx::check {

/// One level's paper counters, engine-agnostic. 64-bit signed so any
/// engine's native counter types widen losslessly.
struct LevelCounters {
  std::int64_t level = 0;
  std::int64_t frontier_vertices = 0;  // |V|cq
  std::int64_t frontier_edges = 0;     // |E|cq
  std::int64_t next_vertices = 0;      // |V| discovered into level+1

  friend bool operator==(const LevelCounters&, const LevelCounters&) = default;
};

/// Appends a numbered failure for every level where `a` and `b`
/// disagree (depth mismatch, then per-level field mismatches), naming
/// the engines. Returns true when the traces agree.
bool compare_level_counters(const std::vector<LevelCounters>& a,
                            const std::vector<LevelCounters>& b,
                            const std::string& name_a,
                            const std::string& name_b, CheckReport& report);

/// Convenience wrapper: collects a fresh report and throws
/// ContractViolation on disagreement.
void require_counter_agreement(const std::vector<LevelCounters>& a,
                               const std::vector<LevelCounters>& b,
                               const std::string& name_a,
                               const std::string& name_b);

}  // namespace bfsx::check
