#include "check/agreement.h"

#include <algorithm>

namespace bfsx::check {
namespace {

void diff_field(const std::string& name_a, const std::string& name_b,
                std::int64_t level, const char* field, std::int64_t va,
                std::int64_t vb, CheckReport& report) {
  if (va == vb || !report.wants_more()) return;
  report.failf() << "level " << level << ": " << field << " disagrees ("
                 << name_a << "=" << va << ", " << name_b << "=" << vb << ")";
}

}  // namespace

bool compare_level_counters(const std::vector<LevelCounters>& a,
                            const std::vector<LevelCounters>& b,
                            const std::string& name_a,
                            const std::string& name_b, CheckReport& report) {
  const std::size_t before = report.total_failures();
  if (a.size() != b.size()) {
    report.failf() << "depth disagrees (" << name_a << "=" << a.size()
                   << " levels, " << name_b << "=" << b.size() << " levels)";
  }
  const std::size_t depth = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < depth && report.wants_more(); ++i) {
    diff_field(name_a, name_b, a[i].level, "level id", a[i].level, b[i].level,
               report);
    diff_field(name_a, name_b, a[i].level, "|V|cq", a[i].frontier_vertices,
               b[i].frontier_vertices, report);
    diff_field(name_a, name_b, a[i].level, "|E|cq", a[i].frontier_edges,
               b[i].frontier_edges, report);
    diff_field(name_a, name_b, a[i].level, "next_vertices", a[i].next_vertices,
               b[i].next_vertices, report);
  }
  return report.total_failures() == before;
}

void require_counter_agreement(const std::vector<LevelCounters>& a,
                               const std::vector<LevelCounters>& b,
                               const std::string& name_a,
                               const std::string& name_b) {
  CheckReport report;
  compare_level_counters(a, b, name_a, name_b, report);
  report.throw_if_failed("counter agreement " + name_a + " vs " + name_b);
}

}  // namespace bfsx::check
