// CheckReport: multi-failure collector for structural validators.
//
// Validators used to stop at the first inconsistency, which hides the
// shape of a corruption (one flipped word in a bitmap corrupts many
// vertices in a recognisable pattern; a truncated scatter corrupts a
// contiguous offset range). Every validator in this library therefore
// appends *numbered* failures to a CheckReport, capped at a fixed K so
// a totally corrupt structure cannot produce gigabytes of diagnostics;
// failures past the cap are still counted.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

namespace bfsx::check {

class CheckReport {
 public:
  /// Default failure cap; enough to show a corruption pattern without
  /// flooding fuzz-test logs.
  static constexpr std::size_t kDefaultMaxFailures = 16;

  explicit CheckReport(std::size_t max_failures = kDefaultMaxFailures)
      : max_failures_(max_failures) {}

  [[nodiscard]] bool ok() const noexcept { return total_failures_ == 0; }
  explicit operator bool() const noexcept { return ok(); }

  /// Failures recorded (including any dropped past the cap).
  [[nodiscard]] std::size_t total_failures() const noexcept {
    return total_failures_;
  }

  /// The retained failure messages, at most `max_failures()` of them.
  [[nodiscard]] const std::vector<std::string>& failures() const noexcept {
    return failures_;
  }

  [[nodiscard]] std::size_t max_failures() const noexcept {
    return max_failures_;
  }

  /// True while the report can still retain messages; validators use
  /// this to stop scanning once further failures would be dropped.
  [[nodiscard]] bool wants_more() const noexcept {
    return failures_.size() < max_failures_;
  }

  /// Records one failure (kept only if under the cap).
  void fail(std::string message);

  /// Stream-style failure entry: report.failf() << "vertex " << v;
  /// The message is recorded when the returned proxy is destroyed.
  class Failf {
   public:
    explicit Failf(CheckReport& report) : report_(report) {}
    Failf(const Failf&) = delete;
    Failf& operator=(const Failf&) = delete;
    ~Failf() { report_.fail(stream_.str()); }
    template <typename T>
    Failf& operator<<(const T& value) {
      stream_ << value;
      return *this;
    }

   private:
    CheckReport& report_;
    std::ostringstream stream_;
  };
  [[nodiscard]] Failf failf() { return Failf(*this); }

  /// "ok" or "N failure(s):\n  [1] ...\n  [2] ... (M more dropped)".
  [[nodiscard]] std::string to_string() const;

  /// Throws check::ContractViolation("<context>: " + to_string()) when
  /// any failure was recorded.
  void throw_if_failed(const std::string& context) const;

 private:
  std::size_t max_failures_;
  std::size_t total_failures_ = 0;
  std::vector<std::string> failures_;
};

}  // namespace bfsx::check
