#include "ml/svr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace bfsx::ml {
namespace {

constexpr double kTau = 1e-12;  // floor for the 2nd-order denominator

/// The 2n-variable SMO solver state. Index t < n is the alpha block
/// (label +1), t >= n the alpha* block (label -1); both reference
/// training sample t % n.
class SmoSolver {
 public:
  SmoSolver(const Dataset& z, const KernelParams& kernel,
            const SvrParams& params)
      : n_(z.size()), params_(params) {
    // Dense base kernel matrix K_ij; n is small (the paper trains on
    // 140 samples), so O(n^2) storage is the right trade.
    k_.assign(n_ * n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = i; j < n_; ++j) {
        const double v = kernel_eval(kernel, z.x[i], z.x[j]);
        k_[i * n_ + j] = v;
        k_[j * n_ + i] = v;
      }
    }
    alpha_.assign(2 * n_, 0.0);
    // Linear term p_t and gradient G = Q alpha + p; alpha = 0 initially.
    grad_.resize(2 * n_);
    for (std::size_t t = 0; t < 2 * n_; ++t) {
      const double y = z.y[t % n_];
      grad_[t] = (t < n_) ? params.epsilon - y : params.epsilon + y;
    }
  }

  [[nodiscard]] double label(std::size_t t) const noexcept {
    return t < n_ ? 1.0 : -1.0;
  }
  [[nodiscard]] double q(std::size_t t, std::size_t s) const noexcept {
    return label(t) * label(s) * k_[(t % n_) * n_ + (s % n_)];
  }

  /// Runs SMO to convergence or the iteration cap.
  SvrTrainInfo solve() {
    SvrTrainInfo info;
    for (long it = 0; it < params_.max_iterations; ++it) {
      const auto [i, j, gap] = select_working_set();
      if (gap < params_.tolerance) {
        info.converged = true;
        info.iterations = it;
        return info;
      }
      update_pair(i, j);
    }
    info.iterations = params_.max_iterations;
    return info;
  }

  /// beta_i = alpha_i - alpha*_i per training sample.
  [[nodiscard]] std::vector<double> betas() const {
    std::vector<double> beta(n_);
    for (std::size_t i = 0; i < n_; ++i) beta[i] = alpha_[i] - alpha_[n_ + i];
    return beta;
  }

  /// Bias from the KKT conditions. At a free variable t the optimality
  /// condition pins b = -s_t G_t exactly (for the alpha block this reads
  /// f(x_i) = y_i - eps, for the alpha* block f(x_i) = y_i + eps);
  /// average over all free variables. With none free, b is only
  /// bracketed by the up/low sets — take the midpoint, as LIBSVM does.
  [[nodiscard]] double bias() const {
    double sum = 0.0;
    int free_count = 0;
    double gmax = -std::numeric_limits<double>::infinity();
    double gmin = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < 2 * n_; ++t) {
      const double yg = -label(t) * grad_[t];
      if (alpha_[t] > 0.0 && alpha_[t] < params_.c) {
        sum += yg;
        ++free_count;
      }
      if (in_up_set(t)) gmax = std::max(gmax, yg);
      if (in_low_set(t)) gmin = std::min(gmin, yg);
    }
    if (free_count > 0) return sum / free_count;
    return (gmax + gmin) / 2.0;
  }

 private:
  [[nodiscard]] bool in_up_set(std::size_t t) const noexcept {
    // Can increase s_t * alpha_t: (+1 block below C) or (-1 block above 0).
    return (t < n_) ? alpha_[t] < params_.c : alpha_[t] > 0.0;
  }
  [[nodiscard]] bool in_low_set(std::size_t t) const noexcept {
    return (t < n_) ? alpha_[t] > 0.0 : alpha_[t] < params_.c;
  }

  /// Maximal violating pair (WSS1): i maximises -s G over the up set,
  /// j minimises it over the low set; gap is the KKT violation.
  [[nodiscard]] std::tuple<std::size_t, std::size_t, double>
  select_working_set() const {
    double gmax = -std::numeric_limits<double>::infinity();
    double gmin = std::numeric_limits<double>::infinity();
    std::size_t i = 0;
    std::size_t j = 0;
    for (std::size_t t = 0; t < 2 * n_; ++t) {
      const double v = -label(t) * grad_[t];
      if (in_up_set(t) && v > gmax) {
        gmax = v;
        i = t;
      }
      if (in_low_set(t) && v < gmin) {
        gmin = v;
        j = t;
      }
    }
    return {i, j, gmax - gmin};
  }

  /// Analytic two-variable subproblem (LIBSVM's update, specialised to
  /// the two label-sign cases), then an incremental gradient refresh.
  void update_pair(std::size_t i, std::size_t j) {
    const double c = params_.c;
    const double old_ai = alpha_[i];
    const double old_aj = alpha_[j];

    if (label(i) != label(j)) {
      double quad = q(i, i) + q(j, j) + 2.0 * k_[(i % n_) * n_ + (j % n_)];
      if (quad <= 0) quad = kTau;
      const double delta = (-grad_[i] - grad_[j]) / quad;
      const double diff = alpha_[i] - alpha_[j];
      alpha_[i] += delta;
      alpha_[j] += delta;
      if (diff > 0) {
        if (alpha_[j] < 0) {
          alpha_[j] = 0;
          alpha_[i] = diff;
        }
        if (alpha_[i] > c) {
          alpha_[i] = c;
          alpha_[j] = c - diff;
        }
      } else {
        if (alpha_[i] < 0) {
          alpha_[i] = 0;
          alpha_[j] = -diff;
        }
        if (alpha_[j] > c) {
          alpha_[j] = c;
          alpha_[i] = c + diff;
        }
      }
    } else {
      double quad = q(i, i) + q(j, j) - 2.0 * k_[(i % n_) * n_ + (j % n_)];
      if (quad <= 0) quad = kTau;
      const double delta = (grad_[i] - grad_[j]) / quad;
      const double sum = alpha_[i] + alpha_[j];
      alpha_[i] -= delta;
      alpha_[j] += delta;
      if (sum > c) {
        if (alpha_[i] > c) {
          alpha_[i] = c;
          alpha_[j] = sum - c;
        }
        if (alpha_[j] > c) {
          alpha_[j] = c;
          alpha_[i] = sum - c;
        }
      } else {
        if (alpha_[j] < 0) {
          alpha_[j] = 0;
          alpha_[i] = sum;
        }
        if (alpha_[i] < 0) {
          alpha_[i] = 0;
          alpha_[j] = sum;
        }
      }
    }

    const double dai = alpha_[i] - old_ai;
    const double daj = alpha_[j] - old_aj;
    if (dai == 0.0 && daj == 0.0) return;
    for (std::size_t t = 0; t < 2 * n_; ++t) {
      grad_[t] += q(t, i) * dai + q(t, j) * daj;
    }
  }

  std::size_t n_;
  SvrParams params_;
  std::vector<double> k_;      // base kernel matrix, n x n
  std::vector<double> alpha_;  // 2n variables
  std::vector<double> grad_;   // 2n gradient
};

}  // namespace

SvrModel SvrModel::fit(const Dataset& data, const SvrParams& params,
                       SvrTrainInfo* info) {
  data.validate();
  if (data.size() == 0) throw std::invalid_argument("SvrModel::fit: empty");
  if (params.c <= 0) throw std::invalid_argument("SvrModel::fit: C <= 0");
  if (params.epsilon < 0) {
    throw std::invalid_argument("SvrModel::fit: epsilon < 0");
  }

  SvrModel model;
  model.standardizer_ = Standardizer::fit(data);
  model.kernel_ = params.kernel;
  if (model.kernel_.gamma <= 0) {
    model.kernel_.gamma = 1.0 / static_cast<double>(data.num_features());
  }

  Dataset z = model.standardizer_.transform_all(data);

  // Centre/scale targets so epsilon is in units of target stddev.
  double mean = 0.0;
  for (double yv : z.y) mean += yv;
  mean /= static_cast<double>(z.size());
  double var = 0.0;
  for (double yv : z.y) var += (yv - mean) * (yv - mean);
  var /= static_cast<double>(z.size());
  const double scale = var > 1e-24 ? std::sqrt(var) : 1.0;
  for (double& yv : z.y) yv = (yv - mean) / scale;
  model.y_mean_ = mean;
  model.y_scale_ = scale;

  SmoSolver solver(z, model.kernel_, params);
  SvrTrainInfo local_info = solver.solve();
  model.bias_ = solver.bias();

  const std::vector<double> beta = solver.betas();
  for (std::size_t i = 0; i < z.size(); ++i) {
    if (std::abs(beta[i]) > 1e-12) {
      model.sv_.push_back(z.x[i]);
      model.coef_.push_back(beta[i]);
    }
  }
  local_info.support_vectors = static_cast<int>(model.sv_.size());
  if (info != nullptr) *info = local_info;
  return model;
}

double SvrModel::predict(std::span<const double> sample) const {
  const std::vector<double> z = standardizer_.transform(sample);
  double f = bias_;
  for (std::size_t i = 0; i < sv_.size(); ++i) {
    f += coef_[i] * kernel_eval(kernel_, sv_[i], z);
  }
  return f * y_scale_ + y_mean_;
}

SvrModel::Parts SvrModel::to_parts() const {
  Parts p;
  p.kernel = kernel_;
  p.feature_means = standardizer_.means();
  p.feature_stddevs = standardizer_.stddevs();
  p.y_mean = y_mean_;
  p.y_scale = y_scale_;
  p.bias = bias_;
  p.support_vectors = sv_;
  p.coefficients = coef_;
  return p;
}

SvrModel SvrModel::from_parts(Parts parts) {
  if (parts.support_vectors.size() != parts.coefficients.size()) {
    throw std::invalid_argument("SvrModel::from_parts: SV/coef mismatch");
  }
  SvrModel m;
  m.standardizer_ = Standardizer::from_moments(std::move(parts.feature_means),
                                               std::move(parts.feature_stddevs));
  m.kernel_ = parts.kernel;
  m.y_mean_ = parts.y_mean;
  m.y_scale_ = parts.y_scale;
  m.bias_ = parts.bias;
  m.sv_ = std::move(parts.support_vectors);
  m.coef_ = std::move(parts.coefficients);
  return m;
}

}  // namespace bfsx::ml
