#include "ml/metrics.h"

#include <cmath>
#include <stdexcept>

namespace bfsx::ml {
namespace {

void check(std::span<const double> truth, std::span<const double> pred) {
  if (truth.size() != pred.size()) {
    throw std::invalid_argument("metrics: size mismatch");
  }
  if (truth.empty()) throw std::invalid_argument("metrics: empty input");
}

}  // namespace

double mean_squared_error(std::span<const double> truth,
                          std::span<const double> pred) {
  check(truth, pred);
  double sum = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    sum += d * d;
  }
  return sum / static_cast<double>(truth.size());
}

double mean_absolute_error(std::span<const double> truth,
                           std::span<const double> pred) {
  check(truth, pred);
  double sum = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    sum += std::abs(truth[i] - pred[i]);
  }
  return sum / static_cast<double>(truth.size());
}

double r_squared(std::span<const double> truth, std::span<const double> pred) {
  check(truth, pred);
  double mean = 0.0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot < 1e-300) return ss_res < 1e-300 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace bfsx::ml
