#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <stdexcept>
#include <vector>

namespace bfsx::ml {
namespace {

struct Split {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;  // variance*count reduction
};

double mean_of(const Dataset& d, const std::vector<std::size_t>& idx) {
  double sum = 0;
  for (std::size_t i : idx) sum += d.y[i];
  return sum / static_cast<double>(idx.size());
}

double sse_of(const Dataset& d, const std::vector<std::size_t>& idx) {
  const double mu = mean_of(d, idx);
  double sse = 0;
  for (std::size_t i : idx) sse += (d.y[i] - mu) * (d.y[i] - mu);
  return sse;
}

/// Best axis-aligned split of `idx` by exhaustive scan: sort by each
/// feature, sweep split points between distinct values, track the SSE
/// reduction with prefix sums.
Split best_split(const Dataset& d, const std::vector<std::size_t>& idx) {
  Split best;
  const double parent_sse = sse_of(d, idx);
  const std::size_t n = idx.size();
  std::vector<std::size_t> order(idx);
  for (std::size_t f = 0; f < d.num_features(); ++f) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return d.x[a][f] < d.x[b][f];
    });
    double left_sum = 0;
    double left_sq = 0;
    double total_sum = 0;
    double total_sq = 0;
    for (std::size_t i : order) {
      total_sum += d.y[i];
      total_sq += d.y[i] * d.y[i];
    }
    for (std::size_t k = 0; k + 1 < n; ++k) {
      const double y = d.y[order[k]];
      left_sum += y;
      left_sq += y * y;
      // Only split between distinct feature values.
      if (d.x[order[k]][f] == d.x[order[k + 1]][f]) continue;
      const auto nl = static_cast<double>(k + 1);
      const auto nr = static_cast<double>(n - k - 1);
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse_l = left_sq - left_sum * left_sum / nl;
      const double sse_r = right_sq - right_sum * right_sum / nr;
      const double gain = parent_sse - sse_l - sse_r;
      if (gain > best.gain) {
        best.feature = static_cast<int>(f);
        best.threshold = (d.x[order[k]][f] + d.x[order[k + 1]][f]) / 2.0;
        best.gain = gain;
      }
    }
  }
  // Normalise the acceptance test against the parent variance.
  if (best.feature >= 0 && parent_sse > 0 &&
      best.gain < 0) {  // numerical safety; gain is >= 0 by construction
    best.feature = -1;
  }
  return best;
}

}  // namespace

TreeModel TreeModel::fit(const Dataset& data, const TreeParams& params) {
  data.validate();
  if (data.size() == 0) throw std::invalid_argument("TreeModel::fit: empty");
  if (params.max_depth < 1 || params.min_samples_split < 2) {
    throw std::invalid_argument("TreeModel::fit: bad params");
  }

  // Recursive builder over index subsets.
  struct Builder {
    const Dataset& d;
    const TreeParams& p;

    std::unique_ptr<Node> build(std::vector<std::size_t> idx, int depth) {
      auto node = std::make_unique<Node>();
      node->value = mean_of(d, idx);
      if (depth >= p.max_depth ||
          idx.size() < static_cast<std::size_t>(p.min_samples_split)) {
        return node;
      }
      const double parent_sse = sse_of(d, idx);
      const Split split = best_split(d, idx);
      if (split.feature < 0 ||
          split.gain < p.min_gain_fraction * std::max(parent_sse, 1e-300)) {
        return node;
      }
      std::vector<std::size_t> left;
      std::vector<std::size_t> right;
      for (std::size_t i : idx) {
        (d.x[i][static_cast<std::size_t>(split.feature)] <= split.threshold
             ? left
             : right)
            .push_back(i);
      }
      if (left.empty() || right.empty()) return node;  // degenerate
      node->feature = split.feature;
      node->threshold = split.threshold;
      node->left = build(std::move(left), depth + 1);
      node->right = build(std::move(right), depth + 1);
      return node;
    }
  };

  std::vector<std::size_t> all(data.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Builder builder{data, params};
  return TreeModel(builder.build(std::move(all), 0));
}

double TreeModel::predict(std::span<const double> sample) const {
  const Node* node = root_.get();
  while (node->feature >= 0) {
    if (static_cast<std::size_t>(node->feature) >= sample.size()) {
      throw std::invalid_argument("TreeModel::predict: sample too narrow");
    }
    node = sample[static_cast<std::size_t>(node->feature)] <= node->threshold
               ? node->left.get()
               : node->right.get();
  }
  return node->value;
}

int TreeModel::num_nodes() const noexcept {
  // Iterative DFS to avoid recursion in a noexcept accessor.
  int count = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++count;
    if (node->feature >= 0) {
      stack.push_back(node->left.get());
      stack.push_back(node->right.get());
    }
  }
  return count;
}

int TreeModel::depth() const noexcept {
  int max_depth = 0;
  std::vector<std::pair<const Node*, int>> stack = {{root_.get(), 1}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    if (node->feature >= 0) {
      stack.emplace_back(node->left.get(), depth + 1);
      stack.emplace_back(node->right.get(), depth + 1);
    }
  }
  return max_depth;
}

}  // namespace bfsx::ml
