// k-fold cross-validation and SVR hyper-parameter grid search.
//
// The paper notes "the prediction accuracy will be higher with more
// training samples" but fixes (C, epsilon, gamma) by hand. This module
// closes that loop: pick the hyper-parameters that minimise k-fold CV
// error, the standard LIBSVM recipe.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ml/dataset.h"
#include "ml/svr.h"

namespace bfsx::ml {

/// A model factory: fit on a training fold, return a predictor bound to
/// that fold. Used so CV works for any regressor kind.
using ModelFactory =
    std::function<std::function<double(std::span<const double>)>(
        const Dataset&)>;

/// Mean-squared k-fold cross-validation error of `factory` on `data`.
/// Folds are contiguous slices of a deterministic shuffle under `seed`.
/// Throws std::invalid_argument for k < 2 or k > |data|.
[[nodiscard]] double k_fold_mse(const Dataset& data, const ModelFactory& factory,
                                int k, std::uint64_t seed = 17);

struct SvrGrid {
  std::vector<double> c_values = {1.0, 10.0, 100.0};
  std::vector<double> epsilon_values = {0.01, 0.1, 0.3};
  /// gamma <= 0 entries mean "1 / num_features" (the LIBSVM default).
  std::vector<double> gamma_values = {-1.0, 0.1, 1.0};
};

struct SvrSearchResult {
  SvrParams best;
  double best_mse = 0.0;
  int evaluated = 0;
};

/// Exhaustive grid search over SVR hyper-parameters by k-fold CV.
[[nodiscard]] SvrSearchResult tune_svr(const Dataset& data,
                                       const SvrGrid& grid = {}, int k = 5,
                                       std::uint64_t seed = 17);

}  // namespace bfsx::ml
