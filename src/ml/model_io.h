// Plain-text model persistence.
//
// Implements the paper's "generating a model ... is a one-time cost.
// Once we have a model, it can be used for different BFS traversals at
// runtime" (Section III-D): the offline trainer saves models here and
// the runtime predictor loads them back.
//
// Format: a tagged line-oriented text file, stable across versions:
//   bfsx-model v1 <kind>
//   <kind-specific sections>
#pragma once

#include <iosfwd>
#include <string>

#include "ml/linreg.h"
#include "ml/svr.h"

namespace bfsx::ml {

void save_svr(std::ostream& os, const SvrModel& model);
[[nodiscard]] SvrModel load_svr(std::istream& is);

void save_ridge(std::ostream& os, const RidgeModel& model);
[[nodiscard]] RidgeModel load_ridge(std::istream& is);

/// File-path conveniences; throw std::runtime_error on I/O failure.
void save_svr_file(const std::string& path, const SvrModel& model);
[[nodiscard]] SvrModel load_svr_file(const std::string& path);

}  // namespace bfsx::ml
