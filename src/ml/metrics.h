// Regression quality metrics.
#pragma once

#include <span>

namespace bfsx::ml {

/// Mean squared error. Throws on size mismatch or empty input.
[[nodiscard]] double mean_squared_error(std::span<const double> truth,
                                        std::span<const double> pred);

/// Mean absolute error.
[[nodiscard]] double mean_absolute_error(std::span<const double> truth,
                                         std::span<const double> pred);

/// Coefficient of determination R^2 (1 = perfect; 0 = no better than
/// predicting the mean; can be negative).
[[nodiscard]] double r_squared(std::span<const double> truth,
                               std::span<const double> pred);

}  // namespace bfsx::ml
