// CART-style regression tree.
//
// The paper picks SVM over "other regression approaches" (Section
// II-C) for parallel-friendliness and small-sample accuracy. This tree
// is the classic alternative: axis-aligned variance-minimising splits,
// depth- and leaf-size-limited. It completes the model zoo (ridge =
// linear, k-NN = memorising, SVR = kernel, tree = partitioning) so the
// choice can be *measured* on the actual switching-point dataset
// (tests/test_ml_tree.cc does exactly that).
#pragma once

#include <memory>

#include "ml/dataset.h"
#include "ml/regressor.h"

namespace bfsx::ml {

struct TreeParams {
  int max_depth = 8;
  /// A node with fewer samples becomes a leaf.
  int min_samples_split = 4;
  /// Stop when the variance improvement of the best split falls below
  /// this fraction of the node's variance.
  double min_gain_fraction = 1e-3;
};

class TreeModel final : public Regressor {
 public:
  static TreeModel fit(const Dataset& data, const TreeParams& params = {});

  [[nodiscard]] double predict(std::span<const double> sample) const override;
  [[nodiscard]] const char* kind() const noexcept override { return "tree"; }

  /// Total node count (diagnostics; 1 = a single leaf).
  [[nodiscard]] int num_nodes() const noexcept;
  [[nodiscard]] int depth() const noexcept;

 private:
  struct Node {
    // Leaf when feature < 0.
    int feature = -1;
    double threshold = 0.0;
    double value = 0.0;  // leaf prediction
    std::unique_ptr<Node> left;   // sample[feature] <= threshold
    std::unique_ptr<Node> right;  // sample[feature] >  threshold
  };

  explicit TreeModel(std::unique_ptr<Node> root) : root_(std::move(root)) {}

  std::unique_ptr<Node> root_;
};

}  // namespace bfsx::ml
