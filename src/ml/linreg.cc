#include "ml/linreg.h"

#include <cmath>
#include <stdexcept>

namespace bfsx::ml {

std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b,
                              std::size_t n) {
  if (a.size() != n * n || b.size() != n) {
    throw std::invalid_argument("solve_spd: shape mismatch");
  }
  // In-place Cholesky: A = L L^T, lower triangle of `a` becomes L.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    if (diag <= 0.0) {
      throw std::runtime_error("solve_spd: matrix not positive definite");
    }
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) v -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = v / ljj;
    }
  }
  // Forward substitution: L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= a[i * n + k] * b[k];
    b[i] = v / a[i * n + i];
  }
  // Back substitution: L^T x = z.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double v = b[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= a[k * n + i] * b[k];
    b[i] = v / a[i * n + i];
  }
  return b;
}

RidgeModel RidgeModel::fit(const Dataset& data, const RidgeParams& params) {
  data.validate();
  if (data.size() == 0) throw std::invalid_argument("RidgeModel::fit: empty");
  if (params.lambda < 0) {
    throw std::invalid_argument("RidgeModel::fit: negative lambda");
  }
  Standardizer standardizer = Standardizer::fit(data);
  const Dataset z = standardizer.transform_all(data);
  const std::size_t d = z.num_features();
  const std::size_t n = z.size();

  // Standardised features have zero mean, so the intercept decouples:
  // b = mean(y), and weights solve (X^T X + lambda I) w = X^T (y - b).
  double intercept = 0.0;
  for (double yv : z.y) intercept += yv;
  intercept /= static_cast<double>(n);

  std::vector<double> xtx(d * d, 0.0);
  std::vector<double> xty(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& row = z.x[i];
    const double resid = z.y[i] - intercept;
    for (std::size_t p = 0; p < d; ++p) {
      xty[p] += row[p] * resid;
      for (std::size_t q = p; q < d; ++q) xtx[p * d + q] += row[p] * row[q];
    }
  }
  for (std::size_t p = 0; p < d; ++p) {
    for (std::size_t q = 0; q < p; ++q) xtx[p * d + q] = xtx[q * d + p];
    xtx[p * d + p] += params.lambda + 1e-10;  // jitter keeps Cholesky stable
  }
  std::vector<double> w = solve_spd(std::move(xtx), std::move(xty), d);
  return RidgeModel(std::move(standardizer), std::move(w), intercept);
}

double RidgeModel::predict(std::span<const double> sample) const {
  const std::vector<double> z = standardizer_.transform(sample);
  double out = intercept_;
  for (std::size_t j = 0; j < z.size(); ++j) out += weights_[j] * z[j];
  return out;
}

RidgeModel RidgeModel::from_parts(Standardizer standardizer,
                                  std::vector<double> weights,
                                  double intercept) {
  return RidgeModel(std::move(standardizer), std::move(weights), intercept);
}

}  // namespace bfsx::ml
