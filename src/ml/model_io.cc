#include "ml/model_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bfsx::ml {
namespace {

constexpr const char* kMagic = "bfsx-model";
constexpr const char* kVersion = "v1";

void write_vector(std::ostream& os, const std::vector<double>& v) {
  os << v.size();
  for (double x : v) os << ' ' << x;
  os << '\n';
}

std::vector<double> read_vector(std::istream& is) {
  std::size_t n = 0;
  if (!(is >> n)) throw std::runtime_error("model_io: truncated vector");
  std::vector<double> v(n);
  for (double& x : v) {
    if (!(is >> x)) throw std::runtime_error("model_io: truncated vector");
  }
  return v;
}

void expect_header(std::istream& is, const std::string& want_kind) {
  std::string magic;
  std::string version;
  std::string kind;
  if (!(is >> magic >> version >> kind) || magic != kMagic ||
      version != kVersion) {
    throw std::runtime_error("model_io: bad header");
  }
  if (kind != want_kind) {
    throw std::runtime_error("model_io: expected kind '" + want_kind +
                             "', found '" + kind + "'");
  }
}

}  // namespace

void save_svr(std::ostream& os, const SvrModel& model) {
  const SvrModel::Parts p = model.to_parts();
  os.precision(17);
  os << kMagic << ' ' << kVersion << " svr\n";
  os << (p.kernel.type == KernelType::kRbf ? "rbf" : "linear") << ' '
     << p.kernel.gamma << '\n';
  write_vector(os, p.feature_means);
  write_vector(os, p.feature_stddevs);
  os << p.y_mean << ' ' << p.y_scale << ' ' << p.bias << '\n';
  os << p.support_vectors.size() << '\n';
  for (std::size_t i = 0; i < p.support_vectors.size(); ++i) {
    os << p.coefficients[i];
    for (double x : p.support_vectors[i]) os << ' ' << x;
    os << '\n';
  }
  if (!os) throw std::runtime_error("save_svr: write failure");
}

SvrModel load_svr(std::istream& is) {
  expect_header(is, "svr");
  SvrModel::Parts p;
  std::string ktype;
  if (!(is >> ktype >> p.kernel.gamma)) {
    throw std::runtime_error("load_svr: bad kernel line");
  }
  if (ktype == "rbf") {
    p.kernel.type = KernelType::kRbf;
  } else if (ktype == "linear") {
    p.kernel.type = KernelType::kLinear;
  } else {
    throw std::runtime_error("load_svr: unknown kernel '" + ktype + "'");
  }
  p.feature_means = read_vector(is);
  p.feature_stddevs = read_vector(is);
  if (!(is >> p.y_mean >> p.y_scale >> p.bias)) {
    throw std::runtime_error("load_svr: bad target moments");
  }
  std::size_t nsv = 0;
  if (!(is >> nsv)) throw std::runtime_error("load_svr: bad SV count");
  const std::size_t dim = p.feature_means.size();
  p.coefficients.resize(nsv);
  p.support_vectors.assign(nsv, std::vector<double>(dim));
  for (std::size_t i = 0; i < nsv; ++i) {
    if (!(is >> p.coefficients[i])) {
      throw std::runtime_error("load_svr: truncated SV");
    }
    for (double& x : p.support_vectors[i]) {
      if (!(is >> x)) throw std::runtime_error("load_svr: truncated SV");
    }
  }
  return SvrModel::from_parts(std::move(p));
}

void save_ridge(std::ostream& os, const RidgeModel& model) {
  os.precision(17);
  os << kMagic << ' ' << kVersion << " ridge\n";
  write_vector(os, model.standardizer().means());
  write_vector(os, model.standardizer().stddevs());
  write_vector(os, model.weights());
  os << model.intercept() << '\n';
  if (!os) throw std::runtime_error("save_ridge: write failure");
}

RidgeModel load_ridge(std::istream& is) {
  expect_header(is, "ridge");
  std::vector<double> means = read_vector(is);
  std::vector<double> stddevs = read_vector(is);
  std::vector<double> weights = read_vector(is);
  double intercept = 0.0;
  if (!(is >> intercept)) throw std::runtime_error("load_ridge: truncated");
  return RidgeModel::from_parts(
      Standardizer::from_moments(std::move(means), std::move(stddevs)),
      std::move(weights), intercept);
}

void save_svr_file(const std::string& path, const SvrModel& model) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_svr_file: cannot open " + path);
  save_svr(os, model);
}

SvrModel load_svr_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_svr_file: cannot open " + path);
  return load_svr(is);
}

}  // namespace bfsx::ml
