// Training data containers and feature standardisation.
//
// Mirrors the paper's Section II-C setup: a dataset is n samples
// X_i (feature vectors) with one target value y_i each; a model is fit
// on it offline and queried online (paper Fig. 6).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace bfsx::ml {

struct Dataset {
  /// Row-major samples; every row has the same width.
  std::vector<std::vector<double>> x;
  std::vector<double> y;

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  [[nodiscard]] std::size_t num_features() const {
    return x.empty() ? 0 : x.front().size();
  }

  void add(std::vector<double> features, double target);

  /// Throws std::invalid_argument when rows are ragged or |x| != |y|.
  void validate() const;
};

/// Per-feature affine map to zero mean / unit variance. SVR with an RBF
/// kernel is scale-sensitive; the paper's features span six orders of
/// magnitude (vertex counts vs. Kronecker probabilities), so training
/// without this would let |V| dominate the kernel.
class Standardizer {
 public:
  /// Learns mean/stddev per column. Constant columns get stddev 1 so
  /// they standardise to exactly zero instead of dividing by zero.
  static Standardizer fit(const Dataset& data);

  [[nodiscard]] std::vector<double> transform(
      std::span<const double> sample) const;

  [[nodiscard]] Dataset transform_all(const Dataset& data) const;

  [[nodiscard]] const std::vector<double>& means() const noexcept {
    return mean_;
  }
  [[nodiscard]] const std::vector<double>& stddevs() const noexcept {
    return stddev_;
  }

  /// Reconstructs a standardizer from stored statistics (model loading).
  static Standardizer from_moments(std::vector<double> means,
                                   std::vector<double> stddevs);

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

/// Deterministic split into train/test by shuffling with `seed` and
/// cutting at `train_fraction`.
struct SplitResult {
  Dataset train;
  Dataset test;
};
[[nodiscard]] SplitResult train_test_split(const Dataset& data,
                                           double train_fraction,
                                           std::uint64_t seed);

/// CSV persistence: one row per sample, features then target last.
void write_csv(std::ostream& os, const Dataset& data);
[[nodiscard]] Dataset read_csv(std::istream& is);

}  // namespace bfsx::ml
