#include "ml/kernel.h"

#include <cmath>
#include <stdexcept>

namespace bfsx::ml {

double kernel_eval(const KernelParams& params, std::span<const double> u,
                   std::span<const double> v) {
  if (u.size() != v.size()) {
    throw std::invalid_argument("kernel_eval: dimension mismatch");
  }
  switch (params.type) {
    case KernelType::kLinear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < u.size(); ++i) dot += u[i] * v[i];
      return dot;
    }
    case KernelType::kRbf: {
      double dist2 = 0.0;
      for (std::size_t i = 0; i < u.size(); ++i) {
        const double d = u[i] - v[i];
        dist2 += d * d;
      }
      return std::exp(-params.gamma * dist2);
    }
  }
  throw std::logic_error("kernel_eval: unknown kernel type");
}

}  // namespace bfsx::ml
