// k-nearest-neighbours regression.
//
// The simplest possible "memorise the training set" baseline; useful in
// tests (it must be beaten by SVR on smooth targets and is exact on
// duplicated training points) and as a sanity check that the feature
// standardisation is behaving.
#pragma once

#include "ml/dataset.h"
#include "ml/regressor.h"

namespace bfsx::ml {

struct KnnParams {
  int k = 3;
  /// Weight neighbours by inverse distance instead of uniformly.
  bool distance_weighted = true;
};

class KnnModel final : public Regressor {
 public:
  static KnnModel fit(const Dataset& data, const KnnParams& params = {});

  [[nodiscard]] double predict(std::span<const double> sample) const override;
  [[nodiscard]] const char* kind() const noexcept override { return "knn"; }

 private:
  KnnModel(Standardizer s, Dataset z, KnnParams p)
      : standardizer_(std::move(s)), train_(std::move(z)), params_(p) {}

  Standardizer standardizer_;
  Dataset train_;  // standardised copy of the training set
  KnnParams params_;
};

}  // namespace bfsx::ml
