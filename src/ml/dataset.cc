#include "ml/dataset.h"

#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "graph/prng.h"

namespace bfsx::ml {

void Dataset::add(std::vector<double> features, double target) {
  if (!x.empty() && features.size() != x.front().size()) {
    throw std::invalid_argument("Dataset::add: inconsistent feature width");
  }
  x.push_back(std::move(features));
  y.push_back(target);
}

void Dataset::validate() const {
  if (x.size() != y.size()) {
    throw std::invalid_argument("Dataset: |x| != |y|");
  }
  for (const auto& row : x) {
    if (row.size() != x.front().size()) {
      throw std::invalid_argument("Dataset: ragged rows");
    }
  }
}

Standardizer Standardizer::fit(const Dataset& data) {
  data.validate();
  if (data.size() == 0) {
    throw std::invalid_argument("Standardizer::fit: empty dataset");
  }
  const std::size_t d = data.num_features();
  const auto n = static_cast<double>(data.size());
  Standardizer s;
  s.mean_.assign(d, 0.0);
  s.stddev_.assign(d, 0.0);
  for (const auto& row : data.x) {
    for (std::size_t j = 0; j < d; ++j) s.mean_[j] += row[j];
  }
  for (std::size_t j = 0; j < d; ++j) s.mean_[j] /= n;
  for (const auto& row : data.x) {
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = row[j] - s.mean_[j];
      s.stddev_[j] += diff * diff;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    s.stddev_[j] = std::sqrt(s.stddev_[j] / n);
    if (s.stddev_[j] < 1e-12) s.stddev_[j] = 1.0;  // constant column
  }
  return s;
}

std::vector<double> Standardizer::transform(
    std::span<const double> sample) const {
  if (sample.size() != mean_.size()) {
    throw std::invalid_argument("Standardizer::transform: width mismatch");
  }
  std::vector<double> out(sample.size());
  for (std::size_t j = 0; j < sample.size(); ++j) {
    out[j] = (sample[j] - mean_[j]) / stddev_[j];
  }
  return out;
}

Dataset Standardizer::transform_all(const Dataset& data) const {
  Dataset out;
  out.y = data.y;
  out.x.reserve(data.size());
  for (const auto& row : data.x) out.x.push_back(transform(row));
  return out;
}

Standardizer Standardizer::from_moments(std::vector<double> means,
                                        std::vector<double> stddevs) {
  if (means.size() != stddevs.size()) {
    throw std::invalid_argument("Standardizer::from_moments: size mismatch");
  }
  Standardizer s;
  s.mean_ = std::move(means);
  s.stddev_ = std::move(stddevs);
  return s;
}

SplitResult train_test_split(const Dataset& data, double train_fraction,
                             std::uint64_t seed) {
  data.validate();
  if (train_fraction < 0.0 || train_fraction > 1.0) {
    throw std::invalid_argument("train_test_split: fraction out of [0,1]");
  }
  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  graph::Xoshiro256ss rng(seed);
  for (std::size_t i = idx.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.next_bounded(i));
    std::swap(idx[i - 1], idx[j]);
  }
  const auto cut = static_cast<std::size_t>(
      train_fraction * static_cast<double>(data.size()));
  SplitResult r;
  for (std::size_t k = 0; k < idx.size(); ++k) {
    auto& dst = (k < cut) ? r.train : r.test;
    dst.add(data.x[idx[k]], data.y[idx[k]]);
  }
  return r;
}

void write_csv(std::ostream& os, const Dataset& data) {
  data.validate();
  os.precision(17);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (double v : data.x[i]) os << v << ',';
    os << data.y[i] << '\n';
  }
}

Dataset read_csv(std::istream& is) {
  Dataset data;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<double> fields;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      fields.push_back(std::stod(cell));
    }
    if (fields.empty()) continue;
    const double target = fields.back();
    fields.pop_back();
    data.add(std::move(fields), target);
  }
  data.validate();
  return data;
}

}  // namespace bfsx::ml
