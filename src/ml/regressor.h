// Common interface for the regression models. The core module only
// sees this interface, so any of ridge / k-NN / SVR can back the
// switching-point predictor.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace bfsx::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Predicts the target for one raw (unstandardised) sample.
  [[nodiscard]] virtual double predict(std::span<const double> sample) const = 0;

  /// Human-readable model kind ("svr-rbf", "ridge", ...).
  [[nodiscard]] virtual const char* kind() const noexcept = 0;

  [[nodiscard]] std::vector<double> predict_all(const Dataset& data) const {
    std::vector<double> out;
    out.reserve(data.size());
    for (const auto& row : data.x) out.push_back(predict(row));
    return out;
  }
};

}  // namespace bfsx::ml
