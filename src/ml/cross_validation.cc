#include "ml/cross_validation.h"

#include <memory>
#include <numeric>
#include <stdexcept>

#include "graph/prng.h"
#include "ml/metrics.h"

namespace bfsx::ml {

double k_fold_mse(const Dataset& data, const ModelFactory& factory, int k,
                  std::uint64_t seed) {
  data.validate();
  if (k < 2 || static_cast<std::size_t>(k) > data.size()) {
    throw std::invalid_argument("k_fold_mse: k out of [2, |data|]");
  }
  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  graph::Xoshiro256ss rng(seed);
  for (std::size_t i = idx.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.next_bounded(i));
    std::swap(idx[i - 1], idx[j]);
  }

  double se_sum = 0.0;
  std::size_t n_eval = 0;
  for (int fold = 0; fold < k; ++fold) {
    Dataset train;
    Dataset test;
    for (std::size_t i = 0; i < idx.size(); ++i) {
      const bool held_out =
          static_cast<int>(i * static_cast<std::size_t>(k) / idx.size()) ==
          fold;
      (held_out ? test : train).add(data.x[idx[i]], data.y[idx[i]]);
    }
    if (test.size() == 0 || train.size() == 0) continue;
    const auto predict = factory(train);
    for (std::size_t i = 0; i < test.size(); ++i) {
      const double err = predict(test.x[i]) - test.y[i];
      se_sum += err * err;
      ++n_eval;
    }
  }
  if (n_eval == 0) throw std::logic_error("k_fold_mse: no evaluations");
  return se_sum / static_cast<double>(n_eval);
}

SvrSearchResult tune_svr(const Dataset& data, const SvrGrid& grid, int k,
                         std::uint64_t seed) {
  if (grid.c_values.empty() || grid.epsilon_values.empty() ||
      grid.gamma_values.empty()) {
    throw std::invalid_argument("tune_svr: empty grid");
  }
  SvrSearchResult result;
  bool first = true;
  for (double c : grid.c_values) {
    for (double eps : grid.epsilon_values) {
      for (double gamma : grid.gamma_values) {
        SvrParams params;
        params.c = c;
        params.epsilon = eps;
        params.kernel.gamma = gamma;
        const double mse = k_fold_mse(
            data,
            [&params](const Dataset& train) {
              // Shared fitted model per fold; the lambda copy keeps it
              // alive for the returned predictor.
              auto model = std::make_shared<SvrModel>(
                  SvrModel::fit(train, params));
              return [model](std::span<const double> x) {
                return model->predict(x);
              };
            },
            k, seed);
        ++result.evaluated;
        if (first || mse < result.best_mse) {
          result.best = params;
          result.best_mse = mse;
          first = false;
        }
      }
    }
  }
  return result;
}

}  // namespace bfsx::ml
