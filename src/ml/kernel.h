// Kernel functions for SVR.
#pragma once

#include <span>

namespace bfsx::ml {

enum class KernelType { kLinear, kRbf };

struct KernelParams {
  KernelType type = KernelType::kRbf;
  /// RBF width: k(u, v) = exp(-gamma * ||u - v||^2). The LIBSVM default
  /// is 1/num_features, which the trainer applies when gamma <= 0.
  double gamma = -1.0;
};

/// Evaluates the kernel on two equal-length vectors.
[[nodiscard]] double kernel_eval(const KernelParams& params,
                                 std::span<const double> u,
                                 std::span<const double> v);

}  // namespace bfsx::ml
