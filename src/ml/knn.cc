#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bfsx::ml {

KnnModel KnnModel::fit(const Dataset& data, const KnnParams& params) {
  data.validate();
  if (data.size() == 0) throw std::invalid_argument("KnnModel::fit: empty");
  if (params.k < 1) throw std::invalid_argument("KnnModel::fit: k < 1");
  Standardizer s = Standardizer::fit(data);
  Dataset z = s.transform_all(data);
  return KnnModel(std::move(s), std::move(z), params);
}

double KnnModel::predict(std::span<const double> sample) const {
  const std::vector<double> q = standardizer_.transform(sample);
  const std::size_t k =
      std::min(static_cast<std::size_t>(params_.k), train_.size());

  // (distance^2, target) pairs; partial sort up to k.
  std::vector<std::pair<double, double>> dist;
  dist.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < q.size(); ++j) {
      const double d = q[j] - train_.x[i][j];
      d2 += d * d;
    }
    dist.emplace_back(d2, train_.y[i]);
  }
  std::partial_sort(dist.begin(),
                    dist.begin() + static_cast<std::ptrdiff_t>(k), dist.end());

  if (!params_.distance_weighted) {
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) sum += dist[i].second;
    return sum / static_cast<double>(k);
  }
  // Inverse-distance weights; an exact match short-circuits.
  double wsum = 0.0;
  double vsum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = std::sqrt(dist[i].first);
    if (d < 1e-12) return dist[i].second;
    const double w = 1.0 / d;
    wsum += w;
    vsum += w * dist[i].second;
  }
  return vsum / wsum;
}

}  // namespace bfsx::ml
