// Ridge (L2-regularised linear) regression via the normal equations.
//
// Serves two purposes: a baseline the SVR must beat in tests, and the
// ablation point "what if the paper had used a plain linear model"
// (Section III-C argues the >10-parameter feature space is too complex
// for a hand-built formula; a linear model is the cheapest automatic
// one).
#pragma once

#include "ml/dataset.h"
#include "ml/regressor.h"

namespace bfsx::ml {

struct RidgeParams {
  /// L2 penalty on the weights (not the intercept). 0 = ordinary least
  /// squares; small positive values keep the normal equations well
  /// conditioned on nearly collinear features.
  double lambda = 1e-3;
};

class RidgeModel final : public Regressor {
 public:
  /// Fits on raw samples; standardisation is handled internally.
  static RidgeModel fit(const Dataset& data, const RidgeParams& params = {});

  [[nodiscard]] double predict(std::span<const double> sample) const override;
  [[nodiscard]] const char* kind() const noexcept override { return "ridge"; }

  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }
  [[nodiscard]] const Standardizer& standardizer() const noexcept {
    return standardizer_;
  }

  /// Reassembles a fitted model from stored parts (model loading).
  static RidgeModel from_parts(Standardizer standardizer,
                               std::vector<double> weights, double intercept);

 private:
  RidgeModel(Standardizer s, std::vector<double> w, double b)
      : standardizer_(std::move(s)), weights_(std::move(w)), intercept_(b) {}

  Standardizer standardizer_;
  std::vector<double> weights_;  // in standardised feature space
  double intercept_ = 0.0;
};

/// Solves the symmetric positive-definite system A x = b in place by
/// Cholesky factorisation. Exposed for reuse and direct testing.
/// Throws std::runtime_error when A is not positive definite.
[[nodiscard]] std::vector<double> solve_spd(std::vector<double> a,
                                            std::vector<double> b,
                                            std::size_t n);

}  // namespace bfsx::ml
