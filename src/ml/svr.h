// ε-Support Vector Regression trained by Sequential Minimal
// Optimization — a from-scratch replacement for the LIBSVM dependency
// the paper uses ("we use Support Vector Machine regression ...
// A practical open-source SVM can be found in [10]", Section II-C).
//
// Formulation (the standard LIBSVM one): with training pairs (x_i, y_i),
// i < n, solve over alpha, alpha* in [0, C]^n
//
//   min 1/2 (a-a*)^T K (a-a*) + eps * sum(a+a*) - y^T (a-a*)
//   s.t. sum(a - a*) = 0
//
// mapped onto a single 2n-variable QP with labels s_t = +1 (t<n, the
// alpha block) and s_t = -1 (t>=n, the alpha* block). SMO repeatedly
// picks the maximal-violating pair under the equality constraint and
// solves the two-variable subproblem analytically.
#pragma once

#include "ml/dataset.h"
#include "ml/kernel.h"
#include "ml/regressor.h"

namespace bfsx::ml {

struct SvrParams {
  KernelParams kernel;
  /// Box constraint: larger C fits tighter, risks overfitting.
  double c = 10.0;
  /// Width of the no-penalty tube around the regression surface.
  double epsilon = 0.1;
  /// KKT violation tolerance for convergence.
  double tolerance = 1e-3;
  /// Hard cap on SMO iterations (pair updates).
  long max_iterations = 200'000;
};

/// Training diagnostics, useful in tests and logs.
struct SvrTrainInfo {
  long iterations = 0;
  bool converged = false;
  int support_vectors = 0;
};

class SvrModel final : public Regressor {
 public:
  /// Fits on raw samples; standardisation of features is internal.
  /// Targets are also centred/scaled internally so `epsilon` acts on a
  /// unit-variance target — one less hyper-parameter to retune per
  /// problem. `info`, when non-null, receives training diagnostics.
  static SvrModel fit(const Dataset& data, const SvrParams& params = {},
                      SvrTrainInfo* info = nullptr);

  [[nodiscard]] double predict(std::span<const double> sample) const override;
  [[nodiscard]] const char* kind() const noexcept override {
    return kernel_.type == KernelType::kRbf ? "svr-rbf" : "svr-linear";
  }

  [[nodiscard]] int num_support_vectors() const noexcept {
    return static_cast<int>(sv_.size());
  }

  // ---- serialisation support (see model_io.h) ------------------------
  struct Parts {
    KernelParams kernel;
    std::vector<double> feature_means;
    std::vector<double> feature_stddevs;
    double y_mean = 0.0;
    double y_scale = 1.0;
    double bias = 0.0;
    std::vector<std::vector<double>> support_vectors;  // standardised
    std::vector<double> coefficients;                  // beta_i
  };
  [[nodiscard]] Parts to_parts() const;
  static SvrModel from_parts(Parts parts);

 private:
  SvrModel() = default;

  Standardizer standardizer_{Standardizer::from_moments({}, {})};
  KernelParams kernel_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
  double bias_ = 0.0;
  std::vector<std::vector<double>> sv_;  // standardised support vectors
  std::vector<double> coef_;             // beta_i = alpha_i - alpha*_i
};

}  // namespace bfsx::ml
