// Textual ArchSpec configuration.
//
// Lets users model their *own* devices without recompiling: an ArchSpec
// is described as comma-separated key=value pairs, e.g.
//
//   "name=MyGPU,clock_ghz=1.4,peak_sp_gflops=9000,l1_kb=128,"
//   "bw_measured_gbps=700,cores=80,level_overhead_us=20,"
//   "td_edge_ns=0.3,td_fill_penalty_edges=5e7,td_fill_scale_edges=5e6,"
//   "bu_vertex_ns=0.05,bu_edge_hit_ns=0.02,bu_edge_miss_ns=0.4"
//
// Unset keys inherit from a base preset (default: the paper's CPU), so
// a one-key tweak like "base=gpu,bu_edge_miss_ns=0.5" is enough for
// what-if studies — exactly what bench_ablation_costmodel does in code.
#pragma once

#include <string>
#include <string_view>

#include "sim/arch.h"

namespace bfsx::sim {

/// Parses the key=value description. Recognised keys: `base`
/// (cpu|gpu|mic), `name`, and every numeric ArchSpec field by its
/// member name. Throws std::invalid_argument on unknown keys or
/// unparsable values.
[[nodiscard]] ArchSpec parse_arch_spec(std::string_view text);

/// Inverse of parse_arch_spec: a full key=value rendering (no `base`).
[[nodiscard]] std::string format_arch_spec(const ArchSpec& spec);

}  // namespace bfsx::sim
