// An N-device simulated cluster joined by an all-to-all interconnect —
// the hardware shape distributed BFS (src/dist) runs on.
//
// Machine (machine.h) models the paper's single node: one host, a few
// accelerators, one PCIe link crossed by a single frontier handoff.
// Cluster generalizes that contract to N peer devices that exchange
// data *every superstep*, so it also owns the bulk-synchronous
// communication cost model:
//
//   t_i  = (P-1) * latency + (bytes sent by i + bytes received by i) / BW
//   step = max_i t_i
//
// the alpha-beta model of Pan et al. (GPU-cluster BFS): every device
// posts a message to each peer (empty or not — that is what an
// MPI_Alltoall costs), pays bandwidth for its own traffic, and the
// superstep barrier means the slowest device gates the step.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/cost_model.h"
#include "sim/device.h"

namespace bfsx::sim {

class Cluster {
 public:
  /// Throws std::invalid_argument when `devices` is empty.
  Cluster(std::vector<Device> devices, InterconnectSpec interconnect);

  /// N identical devices on one interconnect.
  [[nodiscard]] static Cluster homogeneous(const ArchSpec& spec, int n,
                                           InterconnectSpec interconnect = {});

  [[nodiscard]] std::size_t num_devices() const noexcept {
    return devices_.size();
  }
  [[nodiscard]] const Device& device(std::size_t i) const {
    if (i >= devices_.size()) {
      throw std::out_of_range("Cluster: no such device");
    }
    return devices_[i];
  }
  [[nodiscard]] const std::vector<Device>& devices() const noexcept {
    return devices_;
  }
  [[nodiscard]] const InterconnectSpec& interconnect() const noexcept {
    return interconnect_;
  }

  /// Modelled seconds for one bulk-synchronous all-to-all exchange.
  /// `bytes[i][j]` is what device i ships to device j (diagonal
  /// ignored). Returns 0 for a single-device cluster: there is no one
  /// to talk to.
  [[nodiscard]] double exchange_seconds(
      const std::vector<std::vector<std::size_t>>& bytes) const;

  /// Convenience overload: device i ships `bytes_out[i]` in total,
  /// spread evenly over the other P-1 peers (the shape of a frontier
  /// bitmap allgather, where every peer gets the same slice).
  [[nodiscard]] double exchange_seconds(
      std::span<const std::size_t> bytes_out) const;

  /// Modelled seconds to allreduce one small per-device record (the
  /// aggregated |E|cq / |V|cq counters the direction rule consumes):
  /// a ceil(log2 P)-deep reduction tree of latency-bound messages.
  [[nodiscard]] double allreduce_seconds(std::size_t bytes) const;

 private:
  std::vector<Device> devices_;
  InterconnectSpec interconnect_;
};

/// An 8-way cluster of the paper's CPU nodes over a 4x-PCIe-class
/// fabric; the stock configuration of the scaling study.
[[nodiscard]] Cluster make_paper_cluster(int n);

}  // namespace bfsx::sim
