#include "sim/device.h"

#include "bfs/frontier.h"

namespace bfsx::sim {

LevelOutcome Device::run_top_down_level(const graph::CsrGraph& g,
                                        bfs::BfsState& state) const {
  LevelOutcome out;
  out.direction = bfs::Direction::kTopDown;
  out.level = state.current_level;
  const bfs::TopDownStats s = bfs::top_down_step(g, state);
  out.frontier_vertices = s.frontier_vertices;
  out.frontier_edges = s.frontier_edges;
  out.next_vertices = s.next_vertices;
  out.seconds = top_down_level_seconds(spec_, s.frontier_edges);
  return out;
}

LevelOutcome Device::run_bottom_up_level(const graph::CsrGraph& g,
                                         bfs::BfsState& state) const {
  LevelOutcome out;
  out.direction = bfs::Direction::kBottomUp;
  out.level = state.current_level;
  out.frontier_vertices = static_cast<graph::vid_t>(state.frontier_queue.size());
  out.frontier_edges = bfs::frontier_out_edges(g, state.frontier_queue);
  const bfs::BottomUpStats s = bfs::bottom_up_step(g, state);
  out.bu_edges_hit = s.edges_scanned_hit;
  out.bu_edges_miss = s.edges_scanned_miss;
  out.next_vertices = s.next_vertices;
  out.seconds = bottom_up_level_seconds(spec_, g.num_vertices(),
                                        s.edges_scanned_hit,
                                        s.edges_scanned_miss);
  return out;
}

}  // namespace bfsx::sim
