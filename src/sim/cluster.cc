#include "sim/cluster.h"

#include <algorithm>
#include <cmath>

namespace bfsx::sim {

namespace {
constexpr double kUsToS = 1e-6;
}  // namespace

Cluster::Cluster(std::vector<Device> devices, InterconnectSpec interconnect)
    : devices_(std::move(devices)), interconnect_(std::move(interconnect)) {
  if (devices_.empty()) {
    throw std::invalid_argument("Cluster: need at least one device");
  }
}

Cluster Cluster::homogeneous(const ArchSpec& spec, int n,
                             InterconnectSpec interconnect) {
  if (n < 1) {
    throw std::invalid_argument("Cluster: need at least one device");
  }
  std::vector<Device> devices;
  devices.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) devices.emplace_back(spec);
  return {std::move(devices), std::move(interconnect)};
}

double Cluster::exchange_seconds(
    const std::vector<std::vector<std::size_t>>& bytes) const {
  const std::size_t p = devices_.size();
  if (p < 2) return 0.0;
  if (bytes.size() != p) {
    throw std::invalid_argument("Cluster::exchange_seconds: need one row "
                                "of byte counts per device");
  }
  const double latency =
      static_cast<double>(p - 1) * interconnect_.latency_us * kUsToS;
  double worst = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    if (bytes[i].size() != p) {
      throw std::invalid_argument("Cluster::exchange_seconds: byte matrix "
                                  "must be P x P");
    }
    std::size_t traffic = 0;  // sent + received by device i
    for (std::size_t j = 0; j < p; ++j) {
      if (j == i) continue;
      traffic += bytes[i][j] + bytes[j][i];
    }
    const double t = latency + static_cast<double>(traffic) /
                                   (interconnect_.bandwidth_gbps * 1e9);
    worst = std::max(worst, t);
  }
  return worst;
}

double Cluster::exchange_seconds(std::span<const std::size_t> bytes_out) const {
  const std::size_t p = devices_.size();
  if (p < 2) return 0.0;
  if (bytes_out.size() != p) {
    throw std::invalid_argument("Cluster::exchange_seconds: need one byte "
                                "count per device");
  }
  std::size_t total = 0;
  for (const std::size_t b : bytes_out) total += b;
  const double latency =
      static_cast<double>(p - 1) * interconnect_.latency_us * kUsToS;
  double worst = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    // Even spread: i receives everyone else's slice in full.
    const std::size_t traffic = bytes_out[i] + (total - bytes_out[i]);
    const double t = latency + static_cast<double>(traffic) /
                                   (interconnect_.bandwidth_gbps * 1e9);
    worst = std::max(worst, t);
  }
  return worst;
}

double Cluster::allreduce_seconds(std::size_t bytes) const {
  const std::size_t p = devices_.size();
  if (p < 2) return 0.0;
  const double depth =
      std::ceil(std::log2(static_cast<double>(p)));
  return depth * (interconnect_.latency_us * kUsToS +
                  static_cast<double>(bytes) /
                      (interconnect_.bandwidth_gbps * 1e9));
}

Cluster make_paper_cluster(int n) {
  InterconnectSpec fabric;
  fabric.name = "node-fabric";
  fabric.latency_us = 4.0;
  fabric.bandwidth_gbps = 24.0;
  return Cluster::homogeneous(make_sandy_bridge_cpu(), n, fabric);
}

}  // namespace bfsx::sim
