// A simulated device: executes BFS level steps *functionally* on the
// host while charging modelled time from its ArchSpec. This is the
// stand-in for the paper's physical CPU / GPU / MIC (DESIGN.md §2).
#pragma once

#include <string_view>
#include <utility>

#include "bfs/bottomup.h"
#include "bfs/state.h"
#include "bfs/topdown.h"
#include "sim/arch.h"
#include "sim/cost_model.h"

namespace bfsx::sim {

/// Everything one executed level produced: direction, modelled time,
/// and the exact work counters behind that time.
struct LevelOutcome {
  bfs::Direction direction = bfs::Direction::kTopDown;
  std::int32_t level = 0;        // the level that was expanded
  double seconds = 0.0;          // modelled device time
  graph::vid_t frontier_vertices = 0;
  graph::eid_t frontier_edges = 0;
  graph::eid_t bu_edges_hit = 0;   // bottom-up only
  graph::eid_t bu_edges_miss = 0;  // bottom-up only
  graph::vid_t next_vertices = 0;
};

class Device {
 public:
  explicit Device(ArchSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const ArchSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::string_view name() const noexcept { return spec_.name; }

  /// Expands one level top-down (Algorithm 1 body) and returns the
  /// modelled cost of doing so on this device.
  LevelOutcome run_top_down_level(const graph::CsrGraph& g,
                                  bfs::BfsState& state) const;

  /// Expands one level bottom-up (Algorithm 2 body), ditto.
  LevelOutcome run_bottom_up_level(const graph::CsrGraph& g,
                                   bfs::BfsState& state) const;

  /// Modelled cost of a top-down level with the given frontier, without
  /// executing it (used by trace replay).
  [[nodiscard]] double top_down_cost(graph::eid_t frontier_edges) const {
    return top_down_level_seconds(spec_, frontier_edges);
  }

  /// Ditto for bottom-up.
  [[nodiscard]] double bottom_up_cost(graph::vid_t total_vertices,
                                      graph::eid_t hit_edges,
                                      graph::eid_t miss_edges) const {
    return bottom_up_level_seconds(spec_, total_vertices, hit_edges,
                                   miss_edges);
  }

 private:
  ArchSpec spec_;
};

}  // namespace bfsx::sim
