// Roofline-style balance analysis (paper Section III-B, Equation 2).
//
// RCMB — Ratio of Computation to Memory Bandwidth — is a platform's
// balance point: how many flops it can afford per byte moved. An
// algorithm whose arithmetic intensity (RCMA, see bfs/spmv.h) sits
// below the RCMB is memory-bound on that platform; the paper uses the
// gap (BFS RCMA ~0.5 vs MIC RCMB 12.7) to explain why raw peak GFLOPS
// do not predict BFS performance.
#pragma once

#include <string>

#include "sim/arch.h"

namespace bfsx::sim {

/// Equation (2). The paper's formula says theoretical bandwidth, but
/// its Table II RCMB column (7.52 / 12.70 / 21.01 SP) is computed from
/// the *measured* bandwidth row — we follow the table.
/// `single_precision` selects the SP or DP row.
[[nodiscard]] double rcmb(const ArchSpec& arch, bool single_precision);

/// How many times below the platform's balance point an algorithm of
/// intensity `algorithm_rcma` sits. > 1 means memory-bound; BFS lands
/// at 15-40x on the paper's Table II hardware.
[[nodiscard]] double memory_bound_factor(double algorithm_rcma,
                                         const ArchSpec& arch,
                                         bool single_precision);

/// Attainable GFLOPS for intensity `rcma` under a hard roofline:
/// min(peak, rcma * measured_bandwidth).
[[nodiscard]] double roofline_gflops(const ArchSpec& arch, double rcma,
                                     bool single_precision);

/// One-line verdict ("memory-bound by 25.4x on KeplerK20xGPU").
[[nodiscard]] std::string describe_balance(double algorithm_rcma,
                                           const ArchSpec& arch,
                                           bool single_precision);

}  // namespace bfsx::sim
