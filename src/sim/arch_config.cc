#include "sim/arch_config.h"

#include <algorithm>
#include <charconv>
#include <utility>
#include <vector>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

namespace bfsx::sim {
namespace {

using Setter = void (*)(ArchSpec&, double);

const std::map<std::string, Setter, std::less<>>& numeric_setters() {
  static const std::map<std::string, Setter, std::less<>> table = {
      {"clock_ghz", [](ArchSpec& a, double v) { a.clock_ghz = v; }},
      {"peak_sp_gflops", [](ArchSpec& a, double v) { a.peak_sp_gflops = v; }},
      {"peak_dp_gflops", [](ArchSpec& a, double v) { a.peak_dp_gflops = v; }},
      {"l1_kb", [](ArchSpec& a, double v) { a.l1_kb = v; }},
      {"l2_kb", [](ArchSpec& a, double v) { a.l2_kb = v; }},
      {"l3_mb", [](ArchSpec& a, double v) { a.l3_mb = v; }},
      {"bw_theoretical_gbps",
       [](ArchSpec& a, double v) { a.bw_theoretical_gbps = v; }},
      {"bw_measured_gbps",
       [](ArchSpec& a, double v) { a.bw_measured_gbps = v; }},
      {"cores", [](ArchSpec& a, double v) { a.cores = static_cast<int>(v); }},
      {"level_overhead_us",
       [](ArchSpec& a, double v) { a.level_overhead_us = v; }},
      {"td_edge_ns", [](ArchSpec& a, double v) { a.td_edge_ns = v; }},
      {"td_fill_penalty_edges",
       [](ArchSpec& a, double v) { a.td_fill_penalty_edges = v; }},
      {"td_fill_scale_edges",
       [](ArchSpec& a, double v) { a.td_fill_scale_edges = v; }},
      {"bu_vertex_ns", [](ArchSpec& a, double v) { a.bu_vertex_ns = v; }},
      {"bu_edge_hit_ns", [](ArchSpec& a, double v) { a.bu_edge_hit_ns = v; }},
      {"bu_edge_miss_ns",
       [](ArchSpec& a, double v) { a.bu_edge_miss_ns = v; }},
  };
  return table;
}

double parse_number(std::string_view key, std::string_view value) {
  // std::from_chars for doubles is incomplete on some libstdc++
  // versions for scientific notation; strtod on a bounded copy is
  // portable and validates the full token.
  const std::string copy(value);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0') {
    throw std::invalid_argument("parse_arch_spec: bad number for '" +
                                std::string(key) + "': '" + copy + "'");
  }
  return v;
}

ArchSpec base_by_name(std::string_view name) {
  if (name == "cpu") return make_sandy_bridge_cpu();
  if (name == "gpu") return make_kepler_gpu();
  if (name == "mic") return make_knights_corner_mic();
  throw std::invalid_argument("parse_arch_spec: unknown base '" +
                              std::string(name) + "' (cpu|gpu|mic)");
}

}  // namespace

ArchSpec parse_arch_spec(std::string_view text) {
  // First pass: find the base preset (order-independent).
  ArchSpec spec = make_sandy_bridge_cpu();
  spec.name = "custom";

  std::vector<std::pair<std::string_view, std::string_view>> pairs;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view token = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) {
      if (comma == text.size()) break;
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("parse_arch_spec: token without '=': '" +
                                  std::string(token) + "'");
    }
    pairs.emplace_back(token.substr(0, eq), token.substr(eq + 1));
    if (comma == text.size()) break;
  }

  for (const auto& [key, value] : pairs) {
    if (key == "base") {
      const std::string keep_name = spec.name;
      spec = base_by_name(value);
      spec.name = keep_name;
    }
  }
  for (const auto& [key, value] : pairs) {
    if (key == "base") continue;
    if (key == "name") {
      spec.name = std::string(value);
      continue;
    }
    const auto it = numeric_setters().find(key);
    if (it == numeric_setters().end()) {
      throw std::invalid_argument("parse_arch_spec: unknown key '" +
                                  std::string(key) + "'");
    }
    it->second(spec, parse_number(key, value));
  }
  return spec;
}

std::string format_arch_spec(const ArchSpec& s) {
  std::ostringstream os;
  os.precision(12);
  os << "name=" << s.name << ",clock_ghz=" << s.clock_ghz
     << ",peak_sp_gflops=" << s.peak_sp_gflops
     << ",peak_dp_gflops=" << s.peak_dp_gflops << ",l1_kb=" << s.l1_kb
     << ",l2_kb=" << s.l2_kb << ",l3_mb=" << s.l3_mb
     << ",bw_theoretical_gbps=" << s.bw_theoretical_gbps
     << ",bw_measured_gbps=" << s.bw_measured_gbps << ",cores=" << s.cores
     << ",level_overhead_us=" << s.level_overhead_us
     << ",td_edge_ns=" << s.td_edge_ns
     << ",td_fill_penalty_edges=" << s.td_fill_penalty_edges
     << ",td_fill_scale_edges=" << s.td_fill_scale_edges
     << ",bu_vertex_ns=" << s.bu_vertex_ns
     << ",bu_edge_hit_ns=" << s.bu_edge_hit_ns
     << ",bu_edge_miss_ns=" << s.bu_edge_miss_ns;
  return os.str();
}

}  // namespace bfsx::sim
