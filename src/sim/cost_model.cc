#include "sim/cost_model.h"

#include <cmath>
#include <stdexcept>

namespace bfsx::sim {
namespace {

constexpr double kUsToS = 1e-6;
constexpr double kNsToS = 1e-9;

}  // namespace

double top_down_level_seconds(const ArchSpec& arch,
                              graph::eid_t frontier_edges) {
  if (frontier_edges < 0) {
    throw std::invalid_argument("top_down_level_seconds: negative work");
  }
  const double overhead = arch.level_overhead_us * kUsToS;
  const auto w = static_cast<double>(frontier_edges);
  // Saturating-fill model (see ArchSpec::td_fill_penalty_edges): the
  // idle-lane waste ramps from 0 to `penalty` edge-equivalents as the
  // frontier fills the machine. Smooth at w = 0 and linear for large w.
  const double fill = arch.td_fill_penalty_edges *
                      (1.0 - std::exp(-w / arch.td_fill_scale_edges));
  return overhead + (w + fill) * arch.td_edge_ns * kNsToS;
}

double bottom_up_level_seconds(const ArchSpec& arch,
                               graph::vid_t total_vertices,
                               graph::eid_t hit_edges,
                               graph::eid_t miss_edges) {
  if (total_vertices < 0 || hit_edges < 0 || miss_edges < 0) {
    throw std::invalid_argument("bottom_up_level_seconds: negative work");
  }
  const double overhead = arch.level_overhead_us * kUsToS;
  const double sweep =
      static_cast<double>(total_vertices) * arch.bu_vertex_ns * kNsToS;
  const double hits =
      static_cast<double>(hit_edges) * arch.bu_edge_hit_ns * kNsToS;
  const double misses =
      static_cast<double>(miss_edges) * arch.bu_edge_miss_ns * kNsToS;
  return overhead + sweep + hits + misses;
}

double transfer_seconds(const InterconnectSpec& link, std::size_t bytes) {
  return link.latency_us * kUsToS +
         static_cast<double>(bytes) / (link.bandwidth_gbps * 1e9);
}

std::size_t handoff_bytes(graph::vid_t num_vertices) {
  const auto bitmap_bytes =
      (static_cast<std::size_t>(num_vertices) + 7) / 8;
  return 2 * bitmap_bytes;  // frontier bitmap + visited bitmap
}

}  // namespace bfsx::sim
