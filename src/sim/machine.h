// A heterogeneous node: one host device, optional accelerators, and the
// link between them — the hardware shape the paper's Algorithm 3 runs
// on (CPU host + K20x GPU over PCIe, plus a MIC variant).
#pragma once

#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/cost_model.h"
#include "sim/device.h"

namespace bfsx::sim {

class Machine {
 public:
  Machine(Device host, InterconnectSpec link)
      : host_(std::move(host)), link_(std::move(link)) {}

  /// Adds an accelerator; returns its index.
  std::size_t add_accelerator(Device dev) {
    accelerators_.push_back(std::move(dev));
    return accelerators_.size() - 1;
  }

  [[nodiscard]] const Device& host() const noexcept { return host_; }
  [[nodiscard]] const InterconnectSpec& link() const noexcept { return link_; }

  [[nodiscard]] std::size_t num_accelerators() const noexcept {
    return accelerators_.size();
  }

  [[nodiscard]] const Device& accelerator(std::size_t i = 0) const {
    if (i >= accelerators_.size()) {
      throw std::out_of_range("Machine: no such accelerator");
    }
    return accelerators_[i];
  }

  /// Finds a device (host or accelerator) by ArchSpec name.
  [[nodiscard]] const Device& device_by_name(std::string_view name) const;

  /// Modelled cost of one host<->accelerator frontier handoff for a
  /// graph of `num_vertices` vertices.
  [[nodiscard]] double handoff_seconds(graph::vid_t num_vertices) const {
    return transfer_seconds(link_, handoff_bytes(num_vertices));
  }

 private:
  Device host_;
  InterconnectSpec link_;
  std::vector<Device> accelerators_;
};

/// The paper's evaluation node: Sandy Bridge host + Kepler GPU +
/// Knights Corner MIC on a PCIe link.
[[nodiscard]] Machine make_paper_node();

}  // namespace bfsx::sim
