// Architecture descriptors for the three platforms of the paper's
// Table II, plus the calibrated kernel-cost constants that drive the
// per-level performance model (see cost_model.h).
//
// The descriptor fields split in two groups:
//   * catalogue numbers straight from Table II (clock, peak GFLOPS,
//     cache sizes, bandwidths, core count) — these are also the
//     architecture features the regression model consumes (paper
//     Fig. 7: P, L1, B per side);
//   * kernel constants calibrated so the model's per-level times match
//     the shape of the paper's Table IV step-by-step measurements
//     (which device wins at which frontier size, and by what factor).
#pragma once

#include <string>

namespace bfsx::sim {

struct ArchSpec {
  std::string name;

  // ---- Table II catalogue numbers -----------------------------------
  double clock_ghz = 0;
  double peak_sp_gflops = 0;  // single-precision peak (feature "P")
  double peak_dp_gflops = 0;
  double l1_kb = 0;           // per core / per SM (feature "L1")
  double l2_kb = 0;
  double l3_mb = 0;
  double bw_theoretical_gbps = 0;
  double bw_measured_gbps = 0;  // feature "B"
  int cores = 1;                // physical cores (CPU/MIC) or SMs (GPU)

  // ---- Calibrated kernel constants ----------------------------------
  // Fixed cost charged to every level: OpenMP fork/barrier on CPU/MIC,
  // kernel launch + sync on GPU. Dominates tiny-frontier levels, which
  // is why GPUTD wins the last levels (paper Table IV, levels 8-9).
  double level_overhead_us = 0;

  // Asymptotic per-edge cost of the top-down kernel at full device
  // utilisation. Top-down is scatter/atomic bound, so this is far above
  // the sequential-bandwidth cost per byte.
  double td_edge_ns = 0;

  // Parallelism-fill penalty for top-down, in edge-equivalents:
  //   t = overhead + td_edge_ns * (W + P * (1 - exp(-W / S)))
  // where P = td_fill_penalty_edges and S = td_fill_scale_edges. A
  // partially-filled wide machine wastes lanes; the waste grows with
  // the frontier until the device saturates, then flattens at P edge-
  // equivalents. The GPU's P is ~20x the CPU's, encoding Section
  // III-A's parallelism argument and the 11x CPU-over-GPU top-down
  // advantage at small frontiers (Table IV levels 1-2).
  double td_fill_penalty_edges = 0;
  double td_fill_scale_edges = 1;

  // Per-vertex cost of the bottom-up candidate sweep (every level scans
  // all |V| visited bits). This floor is what bottom-up pays even when
  // the frontier is tiny — and why pure bottom-up loses the last levels.
  double bu_vertex_ns = 0;

  // Per scanned in-edge when the scan *succeeds* (parent found, early
  // break): short coalesced prefix reads.
  double bu_edge_hit_ns = 0;

  // Per scanned in-edge when the scan *fails* (whole in-list walked,
  // no frontier hit): cache-hostile and, on the GPU, divergence-bound.
  // GPU miss cost >> CPU miss cost reproduces the paper's 8x GPUBU
  // penalty on level 1 (Table IV) and the RCMB-mismatch discussion of
  // Section III-B.
  double bu_edge_miss_ns = 0;

  /// Returns a copy with the compute throughput scaled to `p` active
  /// cores (edge/vertex costs inflate by cores/p; per-level overhead is
  /// unchanged). Used for the strong/weak scaling study (paper Fig. 10).
  [[nodiscard]] ArchSpec with_cores(int p) const;
};

/// Table II column 1: 8-core Intel Sandy Bridge Xeon.
[[nodiscard]] ArchSpec make_sandy_bridge_cpu();

/// Table II column 2: 61-core Intel Knights Corner Xeon Phi.
[[nodiscard]] ArchSpec make_knights_corner_mic();

/// Table II column 3: NVIDIA Kepler K20x.
[[nodiscard]] ArchSpec make_kepler_gpu();

}  // namespace bfsx::sim
