#include "sim/roofline.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace bfsx::sim {

double rcmb(const ArchSpec& arch, bool single_precision) {
  const double peak =
      single_precision ? arch.peak_sp_gflops : arch.peak_dp_gflops;
  if (arch.bw_measured_gbps <= 0) {
    throw std::invalid_argument("rcmb: missing bandwidth");
  }
  return peak / arch.bw_measured_gbps;
}

double memory_bound_factor(double algorithm_rcma, const ArchSpec& arch,
                           bool single_precision) {
  if (algorithm_rcma <= 0) {
    throw std::invalid_argument("memory_bound_factor: rcma <= 0");
  }
  return rcmb(arch, single_precision) / algorithm_rcma;
}

double roofline_gflops(const ArchSpec& arch, double rcma,
                       bool single_precision) {
  if (rcma <= 0) throw std::invalid_argument("roofline_gflops: rcma <= 0");
  const double peak =
      single_precision ? arch.peak_sp_gflops : arch.peak_dp_gflops;
  return std::min(peak, rcma * arch.bw_measured_gbps);
}

std::string describe_balance(double algorithm_rcma, const ArchSpec& arch,
                             bool single_precision) {
  const double factor =
      memory_bound_factor(algorithm_rcma, arch, single_precision);
  std::ostringstream os;
  os.precision(3);
  if (factor > 1.0) {
    os << "memory-bound by " << factor << "x on " << arch.name;
  } else {
    os << "compute-bound (headroom " << 1.0 / factor << "x) on " << arch.name;
  }
  return os.str();
}

}  // namespace bfsx::sim
