#include "sim/machine.h"

namespace bfsx::sim {

const Device& Machine::device_by_name(std::string_view name) const {
  if (host_.name() == name) return host_;
  for (const Device& d : accelerators_) {
    if (d.name() == name) return d;
  }
  throw std::out_of_range("Machine: unknown device name");
}

Machine make_paper_node() {
  Machine m(Device(make_sandy_bridge_cpu()), InterconnectSpec{});
  m.add_accelerator(Device(make_kepler_gpu()));
  m.add_accelerator(Device(make_knights_corner_mic()));
  return m;
}

}  // namespace bfsx::sim
