#include "sim/arch.h"

#include <stdexcept>

namespace bfsx::sim {

ArchSpec ArchSpec::with_cores(int p) const {
  if (p < 1 || p > cores) {
    throw std::invalid_argument("ArchSpec::with_cores: p out of [1, cores]");
  }
  ArchSpec scaled = *this;
  const double inflate = static_cast<double>(cores) / static_cast<double>(p);
  scaled.cores = p;
  // Work terms slow down proportionally to the removed parallelism;
  // bandwidth available to the kernels shrinks likewise (each core
  // drives a share of the memory controllers). Per-level overhead is a
  // synchronisation cost and stays flat, which is what bends the
  // strong-scaling curve at high core counts (paper Fig. 10a).
  scaled.td_edge_ns *= inflate;
  scaled.bu_vertex_ns *= inflate;
  scaled.bu_edge_hit_ns *= inflate;
  scaled.bu_edge_miss_ns *= inflate;
  // A narrower machine saturates with proportionally less work, and
  // wastes proportionally fewer idle lanes while filling.
  scaled.td_fill_penalty_edges /= inflate;
  scaled.td_fill_scale_edges /= inflate;
  scaled.bw_measured_gbps /= inflate;
  scaled.peak_sp_gflops /= inflate;
  scaled.peak_dp_gflops /= inflate;
  return scaled;
}

// Calibration notes: the kernel constants below were fitted against the
// per-level times of the paper's Table IV (8M-vertex / 128M-edge R-MAT):
//   * level_overhead_us matches the level-1 / level-8 top-down rows,
//     which are pure fixed cost (230us GPU, ~700-780us CPU);
//   * td_edge_ns + the fill penalty match the peak levels 3-4 (~200M
//     frontier edges: 72ms CPU, 262ms GPU) and the small-frontier
//     levels simultaneously;
//   * bu_vertex_ns matches the late-level bottom-up floor (4.9ms CPU,
//     1.47ms GPU for the 8M-vertex sweep);
//   * bu_edge_miss_ns matches the level-1 bottom-up rows, where every
//     unvisited vertex walks its whole in-list and misses (53.7ms CPU,
//     438.9ms GPU over ~256M directed edges);
//   * bu_edge_hit_ns matches the mid levels once floor and overhead are
//     subtracted.
// MIC constants are set from Section V-C's aggregate ratios (CPU 3.3x
// faster overall, ~20x faster serially, slow wide barrier).

ArchSpec make_sandy_bridge_cpu() {
  ArchSpec a;
  a.name = "SandyBridgeCPU";
  a.clock_ghz = 2.00;
  a.peak_dp_gflops = 128;
  a.peak_sp_gflops = 256;
  a.l1_kb = 32;
  a.l2_kb = 256;
  a.l3_mb = 20;
  a.bw_theoretical_gbps = 51.2;
  a.bw_measured_gbps = 34;
  a.cores = 8;
  a.level_overhead_us = 700;
  a.td_edge_ns = 0.36;
  a.td_fill_penalty_edges = 1.5e6;
  a.td_fill_scale_edges = 1.5e6;
  a.bu_vertex_ns = 0.54;
  a.bu_edge_hit_ns = 0.15;
  a.bu_edge_miss_ns = 0.19;
  return a;
}

ArchSpec make_knights_corner_mic() {
  ArchSpec a;
  a.name = "KnightsCornerMIC";
  a.clock_ghz = 1.09;
  a.peak_dp_gflops = 1010;
  a.peak_sp_gflops = 2020;
  a.l1_kb = 32;
  a.l2_kb = 512;
  a.l3_mb = 0;
  a.bw_theoretical_gbps = 352;
  a.bw_measured_gbps = 159;
  a.cores = 61;
  a.level_overhead_us = 2000;
  a.td_edge_ns = 1.1;
  a.td_fill_penalty_edges = 1.0e7;
  a.td_fill_scale_edges = 3.0e6;
  a.bu_vertex_ns = 1.8;
  a.bu_edge_hit_ns = 0.50;
  a.bu_edge_miss_ns = 0.65;
  return a;
}

ArchSpec make_kepler_gpu() {
  ArchSpec a;
  a.name = "KeplerK20xGPU";
  a.clock_ghz = 0.73;
  a.peak_dp_gflops = 1320;
  a.peak_sp_gflops = 3950;
  a.l1_kb = 64;
  a.l2_kb = 1536;
  a.l3_mb = 0;
  a.bw_theoretical_gbps = 250;
  a.bw_measured_gbps = 188;
  a.cores = 2496;
  a.level_overhead_us = 225;
  a.td_edge_ns = 1.15;
  a.td_fill_penalty_edges = 3.0e7;
  a.td_fill_scale_edges = 3.0e6;
  a.bu_vertex_ns = 0.16;
  a.bu_edge_hit_ns = 0.05;
  a.bu_edge_miss_ns = 1.70;
  return a;
}

}  // namespace bfsx::sim
