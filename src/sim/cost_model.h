// Per-level analytic cost model.
//
// Converts the *exact* work counters produced by the functional BFS
// kernels (src/bfs) into modelled wall-clock seconds on a given
// architecture. The model has three ingredients per direction:
//
//   top-down:   t = overhead + W_e * c_td / u(W_e)
//               with utilisation ramp u(W) = W / (W + W_half) — wide
//               devices are starved by small frontiers (paper §III-A);
//
//   bottom-up:  t = overhead + |V| * c_v + H * c_hit + M * c_miss
//               where H/M are the hit/miss scanned-edge counts — the
//               |V| term is the candidate-sweep floor, and failed full
//               scans (M) carry the RCMB-mismatch penalty the paper
//               analyses in §III-B;
//
// with all constants taken from the ArchSpec (see arch.h for the
// calibration story).
#pragma once

#include <cstddef>
#include <string>

#include "graph/types.h"
#include "sim/arch.h"

namespace bfsx::sim {

/// Modelled seconds for one top-down level that traverses
/// `frontier_edges` out-edges.
[[nodiscard]] double top_down_level_seconds(const ArchSpec& arch,
                                            graph::eid_t frontier_edges);

/// Modelled seconds for one bottom-up level over a graph with
/// `total_vertices` vertices, in which successful searches scanned
/// `hit_edges` and failed searches scanned `miss_edges`.
[[nodiscard]] double bottom_up_level_seconds(const ArchSpec& arch,
                                             graph::vid_t total_vertices,
                                             graph::eid_t hit_edges,
                                             graph::eid_t miss_edges);

/// PCIe-style host<->accelerator link (paper Section IV: the
/// cross-architecture combination hands the frontier from CPU to GPU).
struct InterconnectSpec {
  std::string name = "PCIe-gen2-x16";
  double latency_us = 10.0;       // per-transfer fixed cost
  double bandwidth_gbps = 6.0;    // effective, not theoretical
};

/// Modelled seconds to move `bytes` across the link.
[[nodiscard]] double transfer_seconds(const InterconnectSpec& link,
                                      std::size_t bytes);

/// Bytes shipped at a device handoff: the frontier bitmap plus the
/// visited bitmap (V/8 bytes each). Parent/level maps stay sharded per
/// device and are merged once after the traversal, so they are not a
/// per-switch cost.
[[nodiscard]] std::size_t handoff_bytes(graph::vid_t num_vertices);

}  // namespace bfsx::sim
