#include "bfs/drivers.h"

#include <deque>

#include "bfs/bottomup.h"
#include "bfs/topdown.h"

namespace bfsx::bfs {

BfsResult run_top_down(const CsrGraph& g, vid_t root, TraversalLog* log) {
  BfsState state(g, root);
  while (!state.frontier_empty()) {
    const std::int32_t lvl = state.current_level;
    const TopDownStats s = top_down_step(g, state);
    if (log != nullptr) {
      log->levels.push_back({lvl, s.frontier_vertices, s.frontier_edges,
                             /*bottom_up_scanned=*/0, s.next_vertices});
    }
  }
  return std::move(state).take_result(g);
}

BfsResult run_bottom_up(const CsrGraph& g, vid_t root, TraversalLog* log) {
  BfsState state(g, root);
  while (!state.frontier_empty()) {
    const std::int32_t lvl = state.current_level;
    const eid_t cq_edges =
        state.frontier_queue.empty()
            ? 0
            : [&] {
                eid_t total = 0;
                for (vid_t v : state.frontier_queue) total += g.out_degree(v);
                return total;
              }();
    const vid_t cq_vertices = static_cast<vid_t>(state.frontier_queue.size());
    const BottomUpStats s = bottom_up_step(g, state);
    if (log != nullptr) {
      log->levels.push_back(
          {lvl, cq_vertices, cq_edges, s.edges_scanned(), s.next_vertices});
    }
  }
  return std::move(state).take_result(g);
}

BfsResult run_serial(const CsrGraph& g, vid_t root) {
  BfsState state(g, root);
  std::deque<vid_t> queue;
  queue.push_back(root);
  while (!queue.empty()) {
    const vid_t u = queue.front();
    queue.pop_front();
    for (vid_t v : g.out_neighbors(u)) {
      auto& p = state.parent[static_cast<std::size_t>(v)];
      if (p == kNoVertex) {
        p = u;
        state.level[static_cast<std::size_t>(v)] =
            state.level[static_cast<std::size_t>(u)] + 1;
        ++state.reached;
        queue.push_back(v);
      }
    }
  }
  state.frontier_queue.clear();
  return std::move(state).take_result(g);
}

}  // namespace bfsx::bfs
