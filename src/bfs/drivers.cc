#include "bfs/drivers.h"

namespace bfsx::bfs {

BfsResult run_top_down(const CsrGraph& g, vid_t root, TraversalLog* log) {
  return run_top_down(graph::CsrGraphView(g), root, log);
}

BfsResult run_bottom_up(const CsrGraph& g, vid_t root, TraversalLog* log) {
  return run_bottom_up(graph::CsrGraphView(g), root, log);
}

BfsResult run_serial(const CsrGraph& g, vid_t root) {
  return run_serial(graph::CsrGraphView(g), root);
}

}  // namespace bfsx::bfs
