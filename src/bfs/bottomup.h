// Parallel bottom-up BFS level step (paper Algorithm 2, lines 6-13).
#pragma once

#include "bfs/state.h"

namespace bfsx::bfs {

/// Exact work counters for one bottom-up level.
struct BottomUpStats {
  vid_t frontier_vertices = 0;  // |V|cq entering the level
  vid_t unvisited_vertices = 0; // candidates that scanned for a parent
  /// Loop trip count of the candidate scan: the length of the compacted
  /// unvisited list (or n for an unprimed probe's full scan). Strictly
  /// shrinks level over level; the gap to n is exactly the rescan work
  /// the compacted list avoids. Diagnostic only — not a paper counter.
  vid_t candidates = 0;
  /// In-edges examined by vertices that *found* a parent (each scan
  /// breaks at its first frontier hit, Algorithm 2 line 12 — a short,
  /// cache-friendly prefix walk).
  eid_t edges_scanned_hit = 0;
  /// In-edges examined by vertices that walked their whole predecessor
  /// list without finding a frontier member. These full failed scans
  /// dominate the early levels and are what makes bottom-up so
  /// expensive there (97% of GPUBU time in the paper's Table IV).
  eid_t edges_scanned_miss = 0;
  vid_t next_vertices = 0;

  [[nodiscard]] eid_t edges_scanned() const noexcept {
    return edges_scanned_hit + edges_scanned_miss;
  }
};

/// Advances `state` by one level using the bottom-up direction: every
/// unvisited vertex searches its in-neighbours for one that is in the
/// current frontier and adopts it as parent (Algorithm 2 lines 7-12).
/// Parallelised over vertices; no atomics are needed because each
/// candidate vertex is written by exactly one owner thread.
///
/// Zero-rescan: instead of sweeping 0..n every level, the kernel
/// iterates state.unvisited — primed with one full scan on the first
/// bottom-up level, then compacted in place as vertices are discovered —
/// and reuses state.bu_scratch for the next frontier, so steady-state
/// levels neither rescan visited vertices nor allocate. All counters
/// (|V|cq, unvisited, edges-scanned hit/miss, next) are bit-equal to the
/// full-scan kernel's.
BottomUpStats bottom_up_step(const CsrGraph& g, BfsState& state);

/// Counting-only variant: computes exactly the statistics a bottom-up
/// step *would* produce from the current state, without mutating it.
/// LevelTrace (src/core) uses this to record both directions' work at
/// every level in a single traversal, which is what makes exhaustive
/// switching-point search affordable (DESIGN.md §5.1).
[[nodiscard]] BottomUpStats bottom_up_probe(const CsrGraph& g,
                                            const BfsState& state);

}  // namespace bfsx::bfs
