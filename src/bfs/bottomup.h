// Parallel bottom-up BFS level step (paper Algorithm 2, lines 6-13).
//
// Templated over graph::TransposeView (graph/view.h): bottom-up is the
// one direction that needs predecessor enumeration, so only views that
// expose `for_each_in_neighbor` — a materialized transpose, or a
// symmetric view where in == out — can run it. The early-exit protocol
// (callback returns false to stop the scan) is the paper's "adopt the
// first frontier predecessor and break" (Algorithm 2 line 12). The
// historical CsrGraph overloads forward through graph::CsrGraphView.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bfs/frontier.h"
#include "bfs/hub_cache.h"
#include "bfs/mem_tuning.h"
#include "bfs/state.h"
#include "check/contract.h"
#include "graph/view.h"

namespace bfsx::bfs {

/// Exact work counters for one bottom-up level.
struct BottomUpStats {
  vid_t frontier_vertices = 0;  // |V|cq entering the level
  vid_t unvisited_vertices = 0; // candidates that scanned for a parent
  /// Loop trip count of the candidate scan: the length of the compacted
  /// unvisited list (or n for an unprimed probe's full scan). Strictly
  /// shrinks level over level; the gap to n is exactly the rescan work
  /// the compacted list avoids. Diagnostic only — not a paper counter.
  vid_t candidates = 0;
  /// In-edges examined by vertices that *found* a parent (each scan
  /// breaks at its first frontier hit, Algorithm 2 line 12 — a short,
  /// cache-friendly prefix walk).
  eid_t edges_scanned_hit = 0;
  /// In-edges examined by vertices that walked their whole predecessor
  /// list without finding a frontier member. These full failed scans
  /// dominate the early levels and are what makes bottom-up so
  /// expensive there (97% of GPUBU time in the paper's Table IV).
  eid_t edges_scanned_miss = 0;
  vid_t next_vertices = 0;
  /// Hub-cache diagnostics (bfs/hub_cache.h); zero unless the tuning
  /// knob is on. `hub_probes` counts candidates whose hub sub-row was
  /// consulted, `hub_hits` those that found a frontier hub there and
  /// skipped the full-width scan. The hit ratio is the cache's whole
  /// value proposition — bench_mem reports it per level band.
  vid_t hub_probes = 0;
  vid_t hub_hits = 0;

  [[nodiscard]] eid_t edges_scanned() const noexcept {
    return edges_scanned_hit + edges_scanned_miss;
  }
};

namespace detail {

/// Fills state.unvisited with every not-yet-visited vertex in ascending
/// order. Runs once, on the first bottom-up level of a traversal; after
/// that the list is compacted incrementally and 0..n is never rescanned.
/// Parallelised over contiguous vertex chunks whose local buffers are
/// concatenated in chunk order, so the list is ascending for any thread
/// count. Representation-independent: needs only the vertex count.
void prime_unvisited(vid_t num_vertices, BfsState& state);

}  // namespace detail

/// Advances `state` by one level using the bottom-up direction: every
/// unvisited vertex searches its in-neighbours for one that is in the
/// current frontier and adopts it as parent (Algorithm 2 lines 7-12).
/// Parallelised over vertices; no atomics are needed because each
/// candidate vertex is written by exactly one owner thread.
///
/// Zero-rescan: instead of sweeping 0..n every level, the kernel
/// iterates state.unvisited — primed with one full scan on the first
/// bottom-up level, then compacted in place as vertices are discovered —
/// and reuses state.bu_scratch for the next frontier, so steady-state
/// levels neither rescan visited vertices nor allocate. With default
/// tuning, all counters (|V|cq, unvisited, edges-scanned hit/miss,
/// next) are bit-equal to the full-scan kernel's.
///
/// `tuning` (bfs/mem_tuning.h):
///   * prefetch.distance d > 0 on a PrefetchableView prefetches the
///     in-row of unvisited[i + d] while candidate i scans — advisory
///     only, discovery set and counters unchanged.
///   * hub_cache non-null consults the candidate's hub sub-row against
///     an L1-resident k-bit frontier snapshot before the full-width
///     scan. The *discovered* set per level (hence every distance) is
///     identical — a hub in-neighbour is an in-neighbour — but on a hub
///     hit the parent is the first frontier hub (not the first frontier
///     predecessor in row order) and edges_scanned_hit counts the hub
///     ranks examined, so parent maps and scan counters may differ from
///     the stock kernel's. Off by default; the golden trace pins the
///     stock path.
template <graph::TransposeView V>
BottomUpStats bottom_up_step(const V& g, BfsState& state, MemTuning tuning) {
  BottomUpStats stats;
  stats.frontier_vertices = static_cast<vid_t>(state.frontier_queue.size());

  const std::int32_t next_level = state.current_level + 1;
  if (!state.unvisited_primed) detail::prime_unvisited(g.num_vertices(), state);

  const HubCache* hub = tuning.hub_cache;
  if (hub != nullptr) {
    BFSX_CHECK_EQ(hub->num_vertices(), g.num_vertices());
    if (hub->num_hubs() == 0) {
      hub = nullptr;  // degenerate cache: nothing to probe
    } else {
      // One O(k) snapshot per level, outside the parallel scan, so the
      // k-bit map is immutable while threads read it. Per-state storage
      // keeps concurrent traversals sharing one HubCache race-free.
      hub->snapshot_frontier(state.frontier_bitmap, state.hub_bits);
    }
  }

  std::size_t dist = 0;
  if constexpr (graph::PrefetchableView<V>) {
    if (tuning.prefetch.enabled()) {
      dist = static_cast<std::size_t>(tuning.prefetch.distance);
    }
  }
  // Reused scratch; all-zero on entry (constructor + the dirty-word
  // wipe at the end of every step maintain the invariant). A dirty
  // scratch silently resurrects a previous frontier into this level's
  // discoveries, so paranoid builds verify the wipe every step.
  BFSX_PARANOID(BFSX_CHECK(state.bu_scratch.none())
                << "bu_scratch dirty on bottom_up_step entry (first set bit "
                << state.bu_scratch.find_first() << ")");
  BFSX_CHECK_EQ(state.bu_scratch.size(),
                static_cast<std::size_t>(g.num_vertices()));
  Bitmap& next = state.bu_scratch;

  const auto& cand = state.unvisited;
  const std::size_t ncand = cand.size();
  stats.candidates = static_cast<vid_t>(ncand);

  vid_t unvisited = 0;
  eid_t scanned_hit = 0;
  eid_t scanned_miss = 0;
  vid_t found = 0;
  vid_t hub_probes = 0;
  vid_t hub_hits = 0;

#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) \
    reduction(+ : unvisited, scanned_hit, scanned_miss, found, hub_probes, \
                  hub_hits)
#endif
  for (std::size_t i = 0; i < ncand; ++i) {
    const vid_t v = cand[i];
    if constexpr (graph::PrefetchableView<V>) {
      // Pull the in-row of the candidate `dist` slots ahead toward the
      // cache while this one scans; advisory, never changes the scan.
      if (dist > 0 && i + dist < ncand) g.prefetch_in_row(cand[i + dist]);
    }
    // Stragglers an interleaved top-down step visited since the list
    // was last compacted; skipping them here keeps every counter equal
    // to the full 0..n scan's.
    if (state.visited.test(static_cast<std::size_t>(v))) continue;
    ++unvisited;
    if (hub != nullptr) {
      // Probe the candidate's hub in-neighbours against the k-bit
      // snapshot first: a hit resolves the whole scan from one or two
      // L1 lines instead of a random walk over the |V|-bit frontier.
      const std::span<const std::uint16_t> hrow = hub->hub_in_row(v);
      if (!hrow.empty()) {
        ++hub_probes;
        eid_t hwalked = 0;
        vid_t hparent = kNoVertex;
        for (const std::uint16_t r : hrow) {
          ++hwalked;
          if (state.hub_bits.test(static_cast<std::size_t>(r))) {
            hparent = hub->hub(r);
            break;
          }
        }
        if (hparent != kNoVertex) {
          state.parent[static_cast<std::size_t>(v)] = hparent;
          state.level[static_cast<std::size_t>(v)] = next_level;
          next.set_atomic(static_cast<std::size_t>(v));
          ++hub_hits;
          ++found;
          scanned_hit += hwalked;
          continue;
        }
      }
    }
    // Algorithm 2 lines 9-12: scan predecessors, adopt the first one
    // found in the current frontier, then stop (callback returns false).
    eid_t walked = 0;
    bool hit = false;
    g.for_each_in_neighbor(
        v, [&state, &next, &walked, &hit, v, next_level](vid_t u) {
          ++walked;
          if (state.frontier_bitmap.test(static_cast<std::size_t>(u))) {
            state.parent[static_cast<std::size_t>(v)] = u;
            state.level[static_cast<std::size_t>(v)] = next_level;
            next.set_atomic(static_cast<std::size_t>(v));
            hit = true;
            return false;
          }
          return true;
        });
    if (hit) {
      ++found;
      scanned_hit += walked;
    } else {
      scanned_miss += walked;
    }
  }

  // Fold the discoveries into the visited set. Deferring this to after
  // the scan keeps the level semantics exact: a vertex discovered this
  // level must not act as a parent within the same level.
  next.for_each_set([&state](vid_t v) {
    state.visited.set(static_cast<std::size_t>(v));
  });

  // Compact the candidate list in place: drop this level's discoveries
  // and any stragglers. O(|list|), order-preserving, so the next level
  // iterates exactly the still-unvisited vertices.
  std::erase_if(state.unvisited, [&state](vid_t v) {
    return state.visited.test(static_cast<std::size_t>(v));
  });

  stats.unvisited_vertices = unvisited;
  stats.edges_scanned_hit = scanned_hit;
  stats.edges_scanned_miss = scanned_miss;
  stats.next_vertices = found;
  stats.hub_probes = hub_probes;
  stats.hub_hits = hub_hits;
  state.reached += found;
  state.current_level = next_level;
  state.frontier_bitmap.swap(next);
  // `next` (the scratch) now holds the *previous* frontier's bits; the
  // outgoing queue still lists exactly those vertices, so zeroing their
  // words restores the all-clear invariant in O(|frontier|) stores
  // instead of an O(n/64) memset.
  for (vid_t v : state.frontier_queue) {
    next.clear_word(static_cast<std::size_t>(v));
  }
  bitmap_to_queue(state.frontier_bitmap, state.frontier_queue);
  // The wipe above and the compaction must restore every inter-step
  // invariant (scratch all-clear, unvisited exact); state-level
  // validation at each step makes a broken wipe fail here, at its
  // source, instead of levels later.
  BFSX_PARANOID(state.assert_invariants(g.num_vertices()));
  return stats;
}

/// Untuned entry point: default knobs, bit-identical to the historical
/// kernel (the golden-trace test runs through here).
template <graph::TransposeView V>
BottomUpStats bottom_up_step(const V& g, BfsState& state) {
  return bottom_up_step(g, state, MemTuning{});
}

/// Counting-only variant: computes exactly the statistics a bottom-up
/// step *would* produce from the current state, without mutating it.
/// LevelTrace (src/core) uses this to record both directions' work at
/// every level in a single traversal, which is what makes exhaustive
/// switching-point search affordable (DESIGN.md §5.1).
template <graph::TransposeView V>
[[nodiscard]] BottomUpStats bottom_up_probe(const V& g,
                                            const BfsState& state) {
  BottomUpStats stats;
  stats.frontier_vertices = static_cast<vid_t>(state.frontier_queue.size());

  const vid_t n = g.num_vertices();
  vid_t unvisited = 0;
  eid_t scanned_hit = 0;
  eid_t scanned_miss = 0;
  vid_t found = 0;

  // Probe one candidate without mutating anything; reads only shared
  // immutable state, so the counter updates below stay inside the
  // OpenMP reduction scope. walked == -1 flags an already-visited
  // straggler.
  struct Probe {
    eid_t walked;
    bool hit;
  };
  const auto probe_one = [&g, &state](vid_t v) -> Probe {
    if (state.visited.test(static_cast<std::size_t>(v))) return {-1, false};
    eid_t walked = 0;
    bool hit = false;
    g.for_each_in_neighbor(v, [&state, &walked, &hit](vid_t u) {
      ++walked;
      if (state.frontier_bitmap.test(static_cast<std::size_t>(u))) {
        hit = true;
        return false;
      }
      return true;
    });
    return {walked, hit};
  };

  if (state.unvisited_primed) {
    // A bottom-up step already primed the candidate list; probing it
    // (stragglers skip via the visited test) yields the exact counters
    // of a full scan at a fraction of the iterations.
    const auto& cand = state.unvisited;
    const std::size_t ncand = cand.size();
    stats.candidates = static_cast<vid_t>(ncand);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) \
    reduction(+ : unvisited, scanned_hit, scanned_miss, found)
#endif
    for (std::size_t i = 0; i < ncand; ++i) {
      const Probe p = probe_one(cand[i]);
      if (p.walked < 0) continue;
      ++unvisited;
      if (p.hit) {
        ++found;
        scanned_hit += p.walked;
      } else {
        scanned_miss += p.walked;
      }
    }
  } else {
    stats.candidates = n;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) \
    reduction(+ : unvisited, scanned_hit, scanned_miss, found)
#endif
    for (vid_t v = 0; v < n; ++v) {
      const Probe p = probe_one(v);
      if (p.walked < 0) continue;
      ++unvisited;
      if (p.hit) {
        ++found;
        scanned_hit += p.walked;
      } else {
        scanned_miss += p.walked;
      }
    }
  }

  stats.unvisited_vertices = unvisited;
  stats.edges_scanned_hit = scanned_hit;
  stats.edges_scanned_miss = scanned_miss;
  stats.next_vertices = found;
  return stats;
}

/// CSR entry points: forward through the zero-overhead adapter.
BottomUpStats bottom_up_step(const CsrGraph& g, BfsState& state);
BottomUpStats bottom_up_step(const CsrGraph& g, BfsState& state,
                             MemTuning tuning);
[[nodiscard]] BottomUpStats bottom_up_probe(const CsrGraph& g,
                                            const BfsState& state);

}  // namespace bfsx::bfs
