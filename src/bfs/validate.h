// Graph 500-style BFS output validation.
//
// Follows the five checks the Graph 500 specification mandates for
// kernel-2 results, adapted to our parent+level representation:
//   1. the root is its own parent at level 0;
//   2. every reached vertex has a level exactly one greater than its
//      parent's level (tree edges span adjacent levels);
//   3. every tree edge (parent[v], v) exists in the graph;
//   4. every graph edge spans at most one level (|lvl(u)-lvl(v)| <= 1
//      when both ends are reached) — the BFS level map is a valid
//      distance labelling;
//   5. reachability agrees with ground truth: an edge with exactly one
//      reached endpoint would contradict BFS completeness (for the
//      undirected view).
#pragma once

#include <string>
#include <vector>

#include "bfs/state.h"

namespace bfsx::bfs {

/// Validation outcome. Collects up to `kMaxFailures` numbered failures
/// (vertex/edge context per entry) instead of stopping at the first, so
/// fuzz-test diagnostics show the whole corruption pattern — one
/// flipped bitmap word corrupts 64 consecutive vertices, which is
/// unrecognisable from a single-line error.
struct ValidationReport {
  /// Failure cap; past it failures are counted but not retained.
  static constexpr std::size_t kMaxFailures = 16;

  bool ok = true;
  std::string error;                  // first failure, empty when ok
  std::vector<std::string> failures;  // numbered via format()
  std::size_t total_failures = 0;     // including any past the cap

  explicit operator bool() const noexcept { return ok; }

  /// All retained failures as one numbered, line-per-failure string.
  [[nodiscard]] std::string format() const;
};

/// Validates `result` as a BFS tree of `g` rooted at `root`.
/// Runs in O(V + E); safe to call on every test traversal. Structural
/// preconditions (root range, map sizes) abort immediately; per-vertex
/// and per-edge checks continue to the failure cap.
[[nodiscard]] ValidationReport validate_bfs(const CsrGraph& g, vid_t root,
                                            const BfsResult& result);

/// Convenience equality check used in tests: two BFS runs on the same
/// graph/root must produce identical level maps even when parents
/// differ (parents are tie-broken nondeterministically in parallel
/// runs; levels are unique).
[[nodiscard]] bool same_levels(const BfsResult& a, const BfsResult& b);

}  // namespace bfsx::bfs
