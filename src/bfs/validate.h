// Graph 500-style BFS output validation.
//
// Follows the five checks the Graph 500 specification mandates for
// kernel-2 results, adapted to our parent+level representation:
//   1. the root is its own parent at level 0;
//   2. every reached vertex has a level exactly one greater than its
//      parent's level (tree edges span adjacent levels);
//   3. every tree edge (parent[v], v) exists in the graph;
//   4. every graph edge spans at most one level (|lvl(u)-lvl(v)| <= 1
//      when both ends are reached) — the BFS level map is a valid
//      distance labelling;
//   5. reachability agrees with ground truth: an edge with exactly one
//      reached endpoint would contradict BFS completeness (for the
//      undirected view).
#pragma once

#include <string>

#include "bfs/state.h"

namespace bfsx::bfs {

struct ValidationReport {
  bool ok = true;
  std::string error;  // first failure, empty when ok

  explicit operator bool() const noexcept { return ok; }
};

/// Validates `result` as a BFS tree of `g` rooted at `root`.
/// Runs in O(V + E); safe to call on every test traversal.
[[nodiscard]] ValidationReport validate_bfs(const CsrGraph& g, vid_t root,
                                            const BfsResult& result);

/// Convenience equality check used in tests: two BFS runs on the same
/// graph/root must produce identical level maps even when parents
/// differ (parents are tie-broken nondeterministically in parallel
/// runs; levels are unique).
[[nodiscard]] bool same_levels(const BfsResult& a, const BfsResult& b);

}  // namespace bfsx::bfs
