// Graph 500-style BFS output validation.
//
// Follows the five checks the Graph 500 specification mandates for
// kernel-2 results, adapted to our parent+level representation:
//   1. the root is its own parent at level 0;
//   2. every reached vertex has a level exactly one greater than its
//      parent's level (tree edges span adjacent levels);
//   3. every tree edge (parent[v], v) exists in the graph;
//   4. every graph edge spans at most one level (|lvl(u)-lvl(v)| <= 1
//      when both ends are reached) — the BFS level map is a valid
//      distance labelling;
//   5. reachability agrees with ground truth: an edge with exactly one
//      reached endpoint would contradict BFS completeness (for the
//      undirected view).
//
// The validator is a template over graph::GraphView, so implicit-graph
// runs get exactly the same scrutiny as CSR runs. Check 3 uses the
// EdgeQueryView capability (O(log degree) membership) when the view
// offers it and otherwise falls back to a linear out-neighbour scan —
// fine for the bounded-degree implicit views.
#pragma once

#include <string>
#include <vector>

#include "bfs/state.h"
#include "graph/view.h"

namespace bfsx::bfs {

/// Validation outcome. Collects up to `kMaxFailures` numbered failures
/// (vertex/edge context per entry) instead of stopping at the first, so
/// fuzz-test diagnostics show the whole corruption pattern — one
/// flipped bitmap word corrupts 64 consecutive vertices, which is
/// unrecognisable from a single-line error.
struct ValidationReport {
  /// Failure cap; past it failures are counted but not retained.
  static constexpr std::size_t kMaxFailures = 16;

  bool ok = true;
  std::string error;                  // first failure, empty when ok
  std::vector<std::string> failures;  // numbered via format()
  std::size_t total_failures = 0;     // including any past the cap

  explicit operator bool() const noexcept { return ok; }

  /// All retained failures as one numbered, line-per-failure string.
  [[nodiscard]] std::string format() const;
};

namespace detail {

/// Collects numbered failures into a ValidationReport, mirroring
/// check::CheckReport but keeping this module's public struct stable.
class Collector {
 public:
  explicit Collector(ValidationReport& report) : report_(report) {}

  [[nodiscard]] bool wants_more() const noexcept {
    return report_.failures.size() < ValidationReport::kMaxFailures;
  }

  void fail(const std::string& msg) {
    report_.ok = false;
    ++report_.total_failures;
    if (report_.error.empty()) report_.error = msg;
    if (wants_more()) report_.failures.push_back(msg);
  }

 private:
  ValidationReport& report_;
};

[[nodiscard]] std::string vtx(vid_t v);
[[nodiscard]] std::string edge(vid_t u, vid_t v);

/// Check-3 membership test: binary search where the view offers it,
/// linear neighbour scan otherwise.
template <graph::GraphView V>
[[nodiscard]] bool view_has_edge(const V& g, vid_t u, vid_t v) {
  if constexpr (graph::EdgeQueryView<V>) {
    return g.has_edge(u, v);
  } else {
    bool found = false;
    g.for_each_out_neighbor(u, [&found, v](vid_t w) {
      if (w == v) found = true;
    });
    return found;
  }
}

}  // namespace detail

/// Validates `result` as a BFS tree of `g` rooted at `root`.
/// Runs in O(V + E); safe to call on every test traversal. Structural
/// preconditions (root range, map sizes) abort immediately; per-vertex
/// and per-edge checks continue to the failure cap.
template <graph::GraphView V>
[[nodiscard]] ValidationReport validate_bfs(const V& g, vid_t root,
                                            const BfsResult& result) {
  ValidationReport report;
  detail::Collector collect(report);

  // Fatal preconditions: nothing below can index safely without them.
  const vid_t n = g.num_vertices();
  if (root < 0 || root >= n) {
    collect.fail("root out of range");
    return report;
  }
  if (result.parent.size() != static_cast<std::size_t>(n) ||
      result.level.size() != static_cast<std::size_t>(n)) {
    collect.fail("parent/level map size mismatch");
    return report;
  }

  // Check 1: root self-parented at level 0.
  if (result.parent[static_cast<std::size_t>(root)] != root) {
    collect.fail("root is not its own parent");
  }
  if (result.level[static_cast<std::size_t>(root)] != 0) {
    collect.fail("root level is not 0");
  }

  vid_t reached = 0;
  for (vid_t v = 0; v < n && collect.wants_more(); ++v) {
    const vid_t p = result.parent[static_cast<std::size_t>(v)];
    const std::int32_t lv = result.level[static_cast<std::size_t>(v)];
    if ((p == kNoVertex) != (lv < 0)) {
      collect.fail(detail::vtx(v) +
                   ": parent and level disagree about reachability" +
                   " (parent " + std::to_string(p) + ", level " +
                   std::to_string(lv) + ")");
      continue;
    }
    if (p == kNoVertex) continue;
    ++reached;
    if (v == root) continue;
    if (p < 0 || p >= n) {
      collect.fail(detail::vtx(v) + ": parent " + std::to_string(p) +
                   " out of range");
      continue;
    }
    const std::int32_t lp = result.level[static_cast<std::size_t>(p)];
    // Check 2: tree edges span exactly one level.
    if (lp < 0 || lv != lp + 1) {
      collect.fail(detail::vtx(v) + ": level " + std::to_string(lv) +
                   " is not parent " + std::to_string(p) + "'s level " +
                   std::to_string(lp) + " + 1");
    }
    // Check 3: the tree edge must exist (parent -> child in the graph).
    if (!detail::view_has_edge(g, p, v)) {
      collect.fail(detail::vtx(v) + ": tree " + detail::edge(p, v) +
                   " missing from graph");
    }
  }
  // The reached tally is only meaningful if the scan above ran to
  // completion; with the cap hit it would undercount and mislead.
  if (collect.wants_more() && reached != result.reached) {
    collect.fail("reached count " + std::to_string(result.reached) +
                 " does not match parent map (" + std::to_string(reached) +
                 ")");
  }

  // Checks 4 and 5 over every edge.
  const bool symmetric = g.is_symmetric();
  for (vid_t u = 0; u < n && collect.wants_more(); ++u) {
    const std::int32_t lu = result.level[static_cast<std::size_t>(u)];
    bool more = true;
    g.for_each_out_neighbor(
        u, [&collect, &result, &more, lu, symmetric, u](vid_t v) {
          if (!more || !collect.wants_more()) {
            more = false;
            return;
          }
          const std::int32_t lv = result.level[static_cast<std::size_t>(v)];
          if (lu >= 0 && lv >= 0) {
            // An out-edge (u, v) relaxes v, so lv <= lu + 1 always. The
            // reverse bound lu <= lv + 1 needs the mirror edge (v, u) and
            // therefore only holds on symmetric graphs — a directed back
            // edge may legally jump many levels up the tree.
            if (lv - lu > 1 || (symmetric && lu - lv > 1)) {
              collect.fail(detail::edge(u, v) +
                           " spans more than one level (" +
                           std::to_string(lu) + " vs " + std::to_string(lv) +
                           ")");
            }
          } else if (lu >= 0 && lv < 0) {
            // A reached vertex with an unreached out-neighbour means the
            // BFS stopped early (for directed graphs only the out
            // direction is conclusive).
            collect.fail(detail::edge(u, v) +
                         " leaves the traversed region (level " +
                         std::to_string(lu) + " -> unreached)");
          }
        });
  }
  return report;
}

/// CSR entry point: forwards through the zero-overhead adapter (which
/// restores the binary-search tree-edge check).
[[nodiscard]] ValidationReport validate_bfs(const CsrGraph& g, vid_t root,
                                            const BfsResult& result);

/// Convenience equality check used in tests: two BFS runs on the same
/// graph/root must produce identical level maps even when parents
/// differ (parents are tie-broken nondeterministically in parallel
/// runs; levels are unique).
[[nodiscard]] bool same_levels(const BfsResult& a, const BfsResult& b);

}  // namespace bfsx::bfs
