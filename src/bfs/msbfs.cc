#include "bfs/msbfs.h"

#include "graph/view.h"

namespace bfsx::bfs {

// The kernel itself is the HybridView template in the header (so delta
// and compressed epochs traverse it unchanged); this translation unit
// pins down the one instantiation every CSR caller shares.
MsBfsResult ms_bfs(const graph::CsrGraph& g,
                   std::span<const graph::vid_t> roots,
                   const MsBfsOptions& opts) {
  return ms_bfs(graph::CsrGraphView(g), roots, opts);
}

}  // namespace bfsx::bfs
