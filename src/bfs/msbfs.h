// Bit-parallel multi-source BFS (MS-BFS).
//
// The Graph 500 protocol (kernel 2) and the offline trainer both run
// *many* BFS roots over one graph. Traversing them one at a time walks
// the whole edge set once per root; MS-BFS walks it once per *level*
// for up to 64 roots at a time by packing one traversal lane per bit of
// a std::uint64_t. Per vertex the kernel keeps a 64-lane visited mask
// and frontier mask; a single AND/ANDN word op advances all lanes of an
// edge at once ("The More the Merrier: Efficient Multi-Source Graph
// Traversal", Then et al., VLDB 2015 — referenced via PAPERS.md's
// frontier-reuse line of work).
//
// Lane semantics are exactly 64 independent level-synchronous BFSs:
// per-lane distances are bit-equal to reference_bfs, and the per-lane
// |V|cq / |E|cq counters match the single-source LevelTrace, so the
// paper's M/N switching rule stays exact per root. Parents are valid
// BFS parents; like the single-source parallel kernels they are
// tie-broken nondeterministically under top-down races (levels never
// are).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bfs/state.h"

namespace bfsx::bfs {

/// Lane capacity of one MS-BFS pass: one traversal per bit of the
/// per-vertex std::uint64_t masks.
inline constexpr int kMsBfsMaxLanes = 64;

struct MsBfsOptions {
  enum class Mode {
    kAuto,      ///< M/N rule on the aggregate (union) frontier per level
    kTopDown,   ///< force top-down every level
    kBottomUp,  ///< force bottom-up every level
  };
  Mode mode = Mode::kAuto;
  /// The paper's switching knobs, applied to the union frontier: run
  /// top-down while |E|cq < |E|/M and |V|cq < |V|/N. The union is the
  /// work a level actually does (each active vertex is expanded once
  /// regardless of how many lanes it carries).
  double m = 14.0;
  double n = 24.0;
};

/// Per-lane per-level work counters — the same quantities LevelTrace
/// records for a single-source traversal, extracted from the lane masks.
struct MsLaneLevel {
  std::int32_t level = 0;
  graph::vid_t frontier_vertices = 0;  // |V|cq for this lane
  graph::eid_t frontier_edges = 0;     // |E|cq for this lane
  graph::vid_t next_vertices = 0;
};

/// Union-frontier record of one executed level: the counters the
/// direction decision saw and the direction it chose.
struct MsUnionLevel {
  std::int32_t level = 0;
  Direction direction = Direction::kTopDown;
  graph::vid_t frontier_vertices = 0;  // distinct active vertices
  graph::eid_t frontier_edges = 0;     // out-edges of the union frontier
  graph::vid_t next_vertices = 0;      // distinct vertices discovered
};

struct MsBfsResult {
  /// One full BfsResult per requested root, in request order. Duplicate
  /// roots yield independent (identical-level) lanes.
  std::vector<BfsResult> per_root;
  /// lane_levels[i] holds root i's per-level counters; a lane stops
  /// contributing entries once its own frontier empties, exactly like a
  /// single-source traversal's level log.
  std::vector<std::vector<MsLaneLevel>> lane_levels;
  /// Union-frontier summary of every executed level.
  std::vector<MsUnionLevel> levels;
  std::int32_t depth = 0;  // union depth: levels executed by the batch
  int direction_switches = 0;
};

/// Traverses up to kMsBfsMaxLanes roots simultaneously. Throws
/// std::invalid_argument on an empty or oversized batch or an
/// out-of-range root. Levels, counters, and reached/edge totals are
/// bit-identical for every OMP_NUM_THREADS.
[[nodiscard]] MsBfsResult ms_bfs(const graph::CsrGraph& g,
                                 std::span<const graph::vid_t> roots,
                                 const MsBfsOptions& opts = {});

}  // namespace bfsx::bfs
