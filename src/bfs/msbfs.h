// Bit-parallel multi-source BFS (MS-BFS).
//
// The Graph 500 protocol (kernel 2) and the offline trainer both run
// *many* BFS roots over one graph. Traversing them one at a time walks
// the whole edge set once per root; MS-BFS walks it once per *level*
// for up to 64 roots at a time by packing one traversal lane per bit of
// a std::uint64_t. Per vertex the kernel keeps a 64-lane visited mask
// and frontier mask; a single AND/ANDN word op advances all lanes of an
// edge at once ("The More the Merrier: Efficient Multi-Source Graph
// Traversal", Then et al., VLDB 2015 — referenced via PAPERS.md's
// frontier-reuse line of work).
//
// Lane semantics are exactly 64 independent level-synchronous BFSs:
// per-lane distances are bit-equal to reference_bfs, and the per-lane
// |V|cq / |E|cq counters match the single-source LevelTrace, so the
// paper's M/N switching rule stays exact per root. Parents are valid
// BFS parents; like the single-source parallel kernels they are
// tie-broken nondeterministically under top-down races (levels never
// are).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bfs/state.h"
#include "check/contract.h"
#include "graph/view.h"

namespace bfsx::bfs {

/// Lane capacity of one MS-BFS pass: one traversal per bit of the
/// per-vertex std::uint64_t masks.
inline constexpr int kMsBfsMaxLanes = 64;

struct MsBfsOptions {
  enum class Mode {
    kAuto,      ///< M/N rule on the aggregate (union) frontier per level
    kTopDown,   ///< force top-down every level
    kBottomUp,  ///< force bottom-up every level
  };
  Mode mode = Mode::kAuto;
  /// The paper's switching knobs, applied to the union frontier: run
  /// top-down while |E|cq < |E|/M and |V|cq < |V|/N. The union is the
  /// work a level actually does (each active vertex is expanded once
  /// regardless of how many lanes it carries).
  double m = 14.0;
  double n = 24.0;
};

/// Per-lane per-level work counters — the same quantities LevelTrace
/// records for a single-source traversal, extracted from the lane masks.
struct MsLaneLevel {
  std::int32_t level = 0;
  graph::vid_t frontier_vertices = 0;  // |V|cq for this lane
  graph::eid_t frontier_edges = 0;     // |E|cq for this lane
  graph::vid_t next_vertices = 0;
};

/// Union-frontier record of one executed level: the counters the
/// direction decision saw and the direction it chose.
struct MsUnionLevel {
  std::int32_t level = 0;
  Direction direction = Direction::kTopDown;
  graph::vid_t frontier_vertices = 0;  // distinct active vertices
  graph::eid_t frontier_edges = 0;     // out-edges of the union frontier
  graph::vid_t next_vertices = 0;      // distinct vertices discovered
};

struct MsBfsResult {
  /// One full BfsResult per requested root, in request order. Duplicate
  /// roots yield independent (identical-level) lanes.
  std::vector<BfsResult> per_root;
  /// lane_levels[i] holds root i's per-level counters; a lane stops
  /// contributing entries once its own frontier empties, exactly like a
  /// single-source traversal's level log.
  std::vector<std::vector<MsLaneLevel>> lane_levels;
  /// Union-frontier summary of every executed level.
  std::vector<MsUnionLevel> levels;
  std::int32_t depth = 0;  // union depth: levels executed by the batch
  int direction_switches = 0;
};

namespace detail {

/// Per-pass working set. Lane l of every mask word is root l's
/// traversal; `seen` is the 64-lane visited map, `visit` the current
/// frontier, `visit_next` the one under construction. Parent/level
/// pointers index straight into the caller-visible per-root results so
/// discovery writes the final maps with no extraction pass.
struct MsLaneState {
  std::vector<std::uint64_t> seen;
  std::vector<std::uint64_t> visit;
  std::vector<std::uint64_t> visit_next;
  std::vector<graph::vid_t*> parent;  // parent[l] = per_root[l].parent.data()
  std::vector<std::int32_t*> level;   // level[l] = per_root[l].level.data()
  std::uint64_t full = 0;             // mask of the lanes in use
};

/// Expands the union frontier top-down. Threads race to claim lanes of
/// a neighbour with one fetch_or on its `seen` word; the winner of each
/// bit — and only the winner — writes that lane's parent/level entry,
/// so the stores are per-(lane, vertex) exclusive. Which thread wins is
/// schedule-dependent, but *whether* a lane is claimed at this level is
/// not: a lane bit is claimable iff some frontier vertex carries it,
/// which is fixed before the step starts. Levels and counters are
/// therefore thread-count invariant (parents tie-break like the
/// single-source top-down kernel).
template <graph::GraphView V>
void ms_top_down_step(const V& g, const std::vector<graph::vid_t>& active,
                      MsLaneState& s, std::int32_t next_level) {
  const auto count = static_cast<std::int64_t>(active.size());
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t i = 0; i < count; ++i) {
    const graph::vid_t v = active[static_cast<std::size_t>(i)];
    const std::uint64_t mask = s.visit[static_cast<std::size_t>(v)];
    g.for_each_out_neighbor(v, [&](graph::vid_t w) {
      const auto wi = static_cast<std::size_t>(w);
      std::atomic_ref<std::uint64_t> seen_w(s.seen[wi]);
      // mem-order: relaxed — advisory pre-filter only; a stale load can
      // merely let a lane through to the fetch_or below, which
      // re-validates, so no ordering is consumed from this read.
      std::uint64_t cand = mask & ~seen_w.load(std::memory_order_relaxed);
      if (cand == 0) return;  // stale-load misses retry via fetch_or
      // mem-order: relaxed — the RMW's atomicity elects one winner per
      // lane bit; the winner's parent/level stores are read by other
      // threads only after the parallel-for's implicit barrier, which
      // already sequences them (no acquire/release needed).
      const std::uint64_t old =
          seen_w.fetch_or(cand, std::memory_order_relaxed);
      std::uint64_t won = cand & ~old;
      if (won == 0) return;
      // mem-order: relaxed — independent bit accumulation; visit_next
      // is only swapped into the read role after the level barrier.
      std::atomic_ref<std::uint64_t>(s.visit_next[wi])
          .fetch_or(won, std::memory_order_relaxed);
      while (won != 0) {
        const int l = std::countr_zero(won);
        won &= won - 1;
        s.parent[static_cast<std::size_t>(l)][wi] = v;
        s.level[static_cast<std::size_t>(l)][wi] = next_level;
      }
    });
  }
}

/// Expands bottom-up: every not-fully-seen candidate scans its
/// in-neighbours and adopts, per still-missing lane, the first one
/// carrying that lane's frontier bit. Each iteration owns its candidate
/// exclusively — `seen`/`visit_next` writes need no atomics, and with
/// the in-adjacency enumerated in the view's deterministic (sorted)
/// order the chosen parents are fully deterministic.
template <graph::TransposeView V>
void ms_bottom_up_step(const V& g,
                       const std::vector<graph::vid_t>& candidates,
                       MsLaneState& s, std::int32_t next_level) {
  const auto count = static_cast<std::int64_t>(candidates.size());
#pragma omp parallel for schedule(dynamic, 1024)
  for (std::int64_t i = 0; i < count; ++i) {
    const graph::vid_t w = candidates[static_cast<std::size_t>(i)];
    const auto wi = static_cast<std::size_t>(w);
    std::uint64_t rem = s.full & ~s.seen[wi];
    if (rem == 0) continue;  // straggler a previous level completed
    std::uint64_t acc = 0;
    g.for_each_in_neighbor(w, [&](graph::vid_t u) {
      std::uint64_t got = s.visit[static_cast<std::size_t>(u)] & rem;
      if (got == 0) return true;
      acc |= got;
      rem &= ~got;
      while (got != 0) {
        const int l = std::countr_zero(got);
        got &= got - 1;
        s.parent[static_cast<std::size_t>(l)][wi] = u;
        s.level[static_cast<std::size_t>(l)][wi] = next_level;
      }
      return rem != 0;  // all lanes adopted: stop the scan early
    });
    if (acc != 0) {
      s.visit_next[wi] = acc;
      s.seen[wi] |= acc;
    }
  }
}

}  // namespace detail

/// Traverses up to kMsBfsMaxLanes roots simultaneously over any
/// HybridView (CSR via the adapter overload below, delta-CSR epochs,
/// compressed CSR). Throws std::invalid_argument on an empty or
/// oversized batch or an out-of-range root. Levels, counters, and
/// reached/edge totals are bit-identical for every OMP_NUM_THREADS —
/// and, for views enumerating identical sorted adjacency, across
/// representations.
template <graph::HybridView V>
[[nodiscard]] MsBfsResult ms_bfs(const V& g,
                                 std::span<const graph::vid_t> roots,
                                 const MsBfsOptions& opts = {}) {
  using graph::eid_t;
  using graph::vid_t;

  const vid_t n = g.num_vertices();
  const auto lanes = static_cast<int>(roots.size());
  if (lanes < 1 || lanes > kMsBfsMaxLanes) {
    throw std::invalid_argument("ms_bfs: batch of " +
                                std::to_string(roots.size()) +
                                " roots (want 1.." +
                                std::to_string(kMsBfsMaxLanes) + ")");
  }
  for (const vid_t r : roots) {
    if (r < 0 || r >= n) {
      throw std::invalid_argument("ms_bfs: root " + std::to_string(r) +
                                  " out of range [0, " + std::to_string(n) +
                                  ")");
    }
  }
  BFSX_CHECK(opts.m > 0.0 && opts.n > 0.0)
      << "ms_bfs: switching parameters must be positive (M = " << opts.m
      << ", N = " << opts.n << ")";

  const auto nn = static_cast<std::size_t>(n);
  MsBfsResult out;
  out.per_root.resize(static_cast<std::size_t>(lanes));
  out.lane_levels.resize(static_cast<std::size_t>(lanes));

  detail::MsLaneState s;
  s.seen.assign(nn, 0);
  s.visit.assign(nn, 0);
  s.visit_next.assign(nn, 0);
  s.parent.resize(static_cast<std::size_t>(lanes));
  s.level.resize(static_cast<std::size_t>(lanes));
  s.full = lanes == kMsBfsMaxLanes ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << lanes) - 1;

  for (int l = 0; l < lanes; ++l) {
    auto& r = out.per_root[static_cast<std::size_t>(l)];
    r.parent.assign(nn, kNoVertex);
    r.level.assign(nn, -1);
    s.parent[static_cast<std::size_t>(l)] = r.parent.data();
    s.level[static_cast<std::size_t>(l)] = r.level.data();
    const auto ri =
        static_cast<std::size_t>(roots[static_cast<std::size_t>(l)]);
    r.parent[ri] = static_cast<vid_t>(ri);
    r.level[ri] = 0;
    s.seen[ri] |= std::uint64_t{1} << l;
    s.visit[ri] |= std::uint64_t{1} << l;
  }

  // Union frontier as a vertex list. Duplicate roots share one entry —
  // their lanes simply ride the same mask bits' word.
  std::vector<vid_t> active(roots.begin(), roots.end());
  std::sort(active.begin(), active.end());
  active.erase(std::unique(active.begin(), active.end()), active.end());

  // Bottom-up candidate list: vertices some lane has not seen yet.
  // Primed lazily on the first bottom-up level, then compacted like the
  // single-source kernel's zero-rescan list.
  std::vector<vid_t> candidates;
  bool candidates_primed = false;

  std::array<vid_t, kMsBfsMaxLanes> lane_vcq{};
  std::array<eid_t, kMsBfsMaxLanes> lane_ecq{};
  bool have_prev_dir = false;
  Direction prev_dir = Direction::kTopDown;

  while (!active.empty()) {
    // Per-lane |V|cq / |E|cq and the union |E|cq, all read off the
    // frontier masks before the step runs — the same quantities a
    // single-source LevelTrace records per root.
    lane_vcq.fill(0);
    lane_ecq.fill(0);
    eid_t union_ecq = 0;
    for (const vid_t v : active) {
      const eid_t deg = g.out_degree(v);
      union_ecq += deg;
      std::uint64_t bits = s.visit[static_cast<std::size_t>(v)];
      while (bits != 0) {
        const int l = std::countr_zero(bits);
        bits &= bits - 1;
        lane_vcq[static_cast<std::size_t>(l)] += 1;
        lane_ecq[static_cast<std::size_t>(l)] += deg;
      }
    }
    for (int l = 0; l < lanes; ++l) {
      if (lane_vcq[static_cast<std::size_t>(l)] == 0) continue;
      out.lane_levels[static_cast<std::size_t>(l)].push_back(
          {out.depth, lane_vcq[static_cast<std::size_t>(l)],
           lane_ecq[static_cast<std::size_t>(l)], 0});
    }

    Direction dir = Direction::kTopDown;
    switch (opts.mode) {
      case MsBfsOptions::Mode::kTopDown:
        break;
      case MsBfsOptions::Mode::kBottomUp:
        dir = Direction::kBottomUp;
        break;
      case MsBfsOptions::Mode::kAuto:
        // The paper's M/N rule on the union frontier: it is the union,
        // not any single lane, that the batched step will expand.
        if (!(static_cast<double>(union_ecq) <
                  static_cast<double>(g.num_edges()) / opts.m &&
              static_cast<double>(active.size()) <
                  static_cast<double>(n) / opts.n)) {
          dir = Direction::kBottomUp;
        }
        break;
    }
    if (have_prev_dir && dir != prev_dir) ++out.direction_switches;
    have_prev_dir = true;
    prev_dir = dir;

    const std::int32_t next_level = out.depth + 1;
    if (dir == Direction::kTopDown) {
      detail::ms_top_down_step(g, active, s, next_level);
    } else {
      if (!candidates_primed) {
        candidates.clear();
        for (vid_t v = 0; v < n; ++v) {
          if (s.seen[static_cast<std::size_t>(v)] != s.full) {
            candidates.push_back(v);
          }
        }
        candidates_primed = true;
      }
      detail::ms_bottom_up_step(g, candidates, s, next_level);
      std::erase_if(candidates, [&s](vid_t v) {
        return s.seen[static_cast<std::size_t>(v)] == s.full;
      });
    }

    out.levels.push_back({out.depth, dir,
                          static_cast<vid_t>(active.size()), union_ecq, 0});

    s.visit.swap(s.visit_next);
    std::fill(s.visit_next.begin(), s.visit_next.end(), 0);
    active.clear();
    for (vid_t v = 0; v < n; ++v) {
      if (s.visit[static_cast<std::size_t>(v)] != 0) active.push_back(v);
    }
    out.levels.back().next_vertices = static_cast<vid_t>(active.size());
    ++out.depth;
  }

  // A lane's level log is gapless (its frontier never revives), so each
  // entry's discovery count is simply the next entry's frontier size.
  for (auto& log : out.lane_levels) {
    for (std::size_t i = 0; i + 1 < log.size(); ++i) {
      log[i].next_vertices = log[i + 1].frontier_vertices;
    }
  }

  // det: per-lane finalisation writes only lane l's own result slot.
#pragma omp parallel for schedule(static)
  for (int l = 0; l < lanes; ++l) {
    auto& r = out.per_root[static_cast<std::size_t>(l)];
    vid_t reached = 0;
    eid_t directed = 0;
    for (vid_t v = 0; v < n; ++v) {
      if (r.parent[static_cast<std::size_t>(v)] != kNoVertex) {
        ++reached;
        directed += g.out_degree(v);
      }
    }
    r.reached = reached;
    r.edges_in_component = g.is_symmetric() ? directed / 2 : directed;
  }
  return out;
}

/// CSR entry point: forwards through the zero-overhead CsrGraphView
/// adapter — the historical signature every existing caller keeps.
[[nodiscard]] MsBfsResult ms_bfs(const graph::CsrGraph& g,
                                 std::span<const graph::vid_t> roots,
                                 const MsBfsOptions& opts = {});

}  // namespace bfsx::bfs
