// Reusable BfsState pool for multi-root benchmark runs.
//
// graph500::run_benchmark traverses dozens of roots over one graph;
// constructing a BfsState per root reallocates the parent/level maps,
// three bitmaps, and the bottom-up candidate list every time. The pool
// keeps retired states on a freelist and re-arms them with
// BfsState::reset, so steady-state runs allocate nothing per root and
// the peak live-state count equals the number of concurrent workers.
//
// Ownership rules (see DESIGN.md §9):
//   * acquire() transfers exclusive ownership to the returned Lease;
//     the pool never touches a checked-out state.
//   * The Lease returns the state on destruction — including a state
//     whose parent/level vectors were moved out by take_result; reset
//     re-fills them on the next checkout.
//   * acquire()/release are mutex-guarded and safe from concurrent
//     OpenMP workers; the state itself is single-owner, never shared.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "bfs/state.h"

namespace bfsx::bfs {

class StatePool {
 public:
  /// Exclusive handle on a pooled state. Movable; returns the state to
  /// the pool when destroyed.
  class Lease {
   public:
    Lease(StatePool* pool, std::unique_ptr<BfsState> state) noexcept
        : pool_(pool), state_(std::move(state)) {}
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        state_ = std::move(other.state_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] BfsState& operator*() const noexcept { return *state_; }
    [[nodiscard]] BfsState* operator->() const noexcept {
      return state_.get();
    }

   private:
    void release() noexcept;

    StatePool* pool_ = nullptr;
    std::unique_ptr<BfsState> state_;
  };

  StatePool() = default;
  StatePool(const StatePool&) = delete;
  StatePool& operator=(const StatePool&) = delete;

  /// Checks out a state armed for a traversal of an
  /// `num_vertices`-vertex graph from `root`: either a recycled one
  /// (reset, allocations reused) or — when the freelist is empty — a
  /// freshly constructed one. Representation-independent, so the same
  /// pool serves CSR graphs and implicit GraphViews.
  [[nodiscard]] Lease acquire(graph::vid_t num_vertices, graph::vid_t root);

  [[nodiscard]] Lease acquire(const graph::CsrGraph& g, graph::vid_t root) {
    return acquire(g.num_vertices(), root);
  }

  /// States constructed over the pool's lifetime. With W concurrent
  /// workers this settles at <= W however many roots run.
  [[nodiscard]] std::size_t created() const;

  /// States currently parked on the freelist.
  [[nodiscard]] std::size_t idle() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<BfsState>> free_;
  std::size_t created_ = 0;
};

}  // namespace bfsx::bfs
