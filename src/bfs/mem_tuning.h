// Memory-subsystem tuning knobs threaded through the level-step
// kernels. Everything here is off by default, and the defaulted
// MemTuning{} compiles the kernels down to the exact pre-tuning loops —
// the golden-trace test pins that bit-identity.
//
// DESIGN.md §12 documents the choices (prefetch distance, hub-bitmap
// sizing, why the knobs are runtime flags rather than template
// parameters).
#pragma once

namespace bfsx::bfs {

class HubCache;

/// Software-prefetch lookahead for the traversal loops. `distance` is
/// how many iterations ahead the kernels issue `__builtin_prefetch`
/// hints: top-down prefetches the adjacency row of `queue[i + d]` (and
/// the visited-bitmap word of the neighbour `d` slots ahead inside each
/// row); bottom-up prefetches the in-row of `unvisited[i + d]`.
/// 0 disables prefetching entirely — the kernels take the plain loop,
/// not a d=0 degenerate of the prefetching one.
struct PrefetchConfig {
  int distance = 0;

  [[nodiscard]] bool enabled() const noexcept { return distance > 0; }
};

/// Aggregate of the runtime memory-subsystem knobs. Passed by value to
/// the kernels (two pointers wide); the 2-argument kernel overloads
/// forward a default-constructed MemTuning, so untouched call sites are
/// bit-identical to the pre-tuning code path.
struct MemTuning {
  PrefetchConfig prefetch{};
  /// Non-null enables the hub-cached bottom-up probe (bfs/hub_cache.h).
  /// The cache must outlive every traversal using this tuning; it is
  /// immutable and safely shared across concurrent traversals.
  const HubCache* hub_cache = nullptr;
};

}  // namespace bfsx::bfs
