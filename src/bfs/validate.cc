#include "bfs/validate.h"

#include <sstream>

namespace bfsx::bfs {
namespace {

/// Collects numbered failures into a ValidationReport, mirroring
/// check::CheckReport but keeping this module's public struct stable.
class Collector {
 public:
  explicit Collector(ValidationReport& report) : report_(report) {}

  [[nodiscard]] bool wants_more() const noexcept {
    return report_.failures.size() < ValidationReport::kMaxFailures;
  }

  void fail(const std::string& msg) {
    report_.ok = false;
    ++report_.total_failures;
    if (report_.error.empty()) report_.error = msg;
    if (wants_more()) report_.failures.push_back(msg);
  }

 private:
  ValidationReport& report_;
};

std::string vtx(vid_t v) {
  std::ostringstream os;
  os << "vertex " << v;
  return os.str();
}

std::string edge(vid_t u, vid_t v) {
  return "edge (" + std::to_string(u) + "," + std::to_string(v) + ")";
}

}  // namespace

std::string ValidationReport::format() const {
  if (ok) return "ok";
  std::ostringstream os;
  os << total_failures << " failure(s):";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    os << "\n  [" << (i + 1) << "] " << failures[i];
  }
  if (total_failures > failures.size()) {
    os << "\n  (" << (total_failures - failures.size())
       << " more dropped past the cap of " << kMaxFailures << ")";
  }
  return os.str();
}

ValidationReport validate_bfs(const CsrGraph& g, vid_t root,
                              const BfsResult& result) {
  ValidationReport report;
  Collector collect(report);

  // Fatal preconditions: nothing below can index safely without them.
  const vid_t n = g.num_vertices();
  if (root < 0 || root >= n) {
    collect.fail("root out of range");
    return report;
  }
  if (result.parent.size() != static_cast<std::size_t>(n) ||
      result.level.size() != static_cast<std::size_t>(n)) {
    collect.fail("parent/level map size mismatch");
    return report;
  }

  // Check 1: root self-parented at level 0.
  if (result.parent[static_cast<std::size_t>(root)] != root) {
    collect.fail("root is not its own parent");
  }
  if (result.level[static_cast<std::size_t>(root)] != 0) {
    collect.fail("root level is not 0");
  }

  vid_t reached = 0;
  for (vid_t v = 0; v < n && collect.wants_more(); ++v) {
    const vid_t p = result.parent[static_cast<std::size_t>(v)];
    const std::int32_t lv = result.level[static_cast<std::size_t>(v)];
    if ((p == kNoVertex) != (lv < 0)) {
      collect.fail(vtx(v) + ": parent and level disagree about reachability" +
                   " (parent " + std::to_string(p) + ", level " +
                   std::to_string(lv) + ")");
      continue;
    }
    if (p == kNoVertex) continue;
    ++reached;
    if (v == root) continue;
    if (p < 0 || p >= n) {
      collect.fail(vtx(v) + ": parent " + std::to_string(p) +
                   " out of range");
      continue;
    }
    const std::int32_t lp = result.level[static_cast<std::size_t>(p)];
    // Check 2: tree edges span exactly one level.
    if (lp < 0 || lv != lp + 1) {
      collect.fail(vtx(v) + ": level " + std::to_string(lv) +
                   " is not parent " + std::to_string(p) + "'s level " +
                   std::to_string(lp) + " + 1");
    }
    // Check 3: the tree edge must exist (parent -> child in the graph).
    if (!g.has_edge(p, v)) {
      collect.fail(vtx(v) + ": tree " + edge(p, v) + " missing from graph");
    }
  }
  // The reached tally is only meaningful if the scan above ran to
  // completion; with the cap hit it would undercount and mislead.
  if (collect.wants_more() && reached != result.reached) {
    collect.fail("reached count " + std::to_string(result.reached) +
                 " does not match parent map (" + std::to_string(reached) +
                 ")");
  }

  // Checks 4 and 5 over every edge.
  for (vid_t u = 0; u < n && collect.wants_more(); ++u) {
    const std::int32_t lu = result.level[static_cast<std::size_t>(u)];
    for (vid_t v : g.out_neighbors(u)) {
      if (!collect.wants_more()) break;
      const std::int32_t lv = result.level[static_cast<std::size_t>(v)];
      if (lu >= 0 && lv >= 0) {
        // An out-edge (u, v) relaxes v, so lv <= lu + 1 always. The
        // reverse bound lu <= lv + 1 needs the mirror edge (v, u) and
        // therefore only holds on symmetric graphs — a directed back
        // edge may legally jump many levels up the tree.
        if (lv - lu > 1 || (g.is_symmetric() && lu - lv > 1)) {
          collect.fail(edge(u, v) + " spans more than one level (" +
                       std::to_string(lu) + " vs " + std::to_string(lv) + ")");
        }
      } else if (lu >= 0 && lv < 0) {
        // A reached vertex with an unreached out-neighbour means the BFS
        // stopped early (for directed graphs only the out direction is
        // conclusive).
        collect.fail(edge(u, v) + " leaves the traversed region (level " +
                     std::to_string(lu) + " -> unreached)");
      }
    }
  }
  return report;
}

bool same_levels(const BfsResult& a, const BfsResult& b) {
  return a.level == b.level;
}

}  // namespace bfsx::bfs
