#include "bfs/validate.h"

#include <sstream>

namespace bfsx::bfs {
namespace detail {

std::string vtx(vid_t v) {
  std::ostringstream os;
  os << "vertex " << v;
  return os.str();
}

std::string edge(vid_t u, vid_t v) {
  return "edge (" + std::to_string(u) + "," + std::to_string(v) + ")";
}

}  // namespace detail

std::string ValidationReport::format() const {
  if (ok) return "ok";
  std::ostringstream os;
  os << total_failures << " failure(s):";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    os << "\n  [" << (i + 1) << "] " << failures[i];
  }
  if (total_failures > failures.size()) {
    os << "\n  (" << (total_failures - failures.size())
       << " more dropped past the cap of " << kMaxFailures << ")";
  }
  return os.str();
}

ValidationReport validate_bfs(const CsrGraph& g, vid_t root,
                              const BfsResult& result) {
  return validate_bfs(graph::CsrGraphView(g), root, result);
}

bool same_levels(const BfsResult& a, const BfsResult& b) {
  return a.level == b.level;
}

}  // namespace bfsx::bfs
