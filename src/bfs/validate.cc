#include "bfs/validate.h"

#include <sstream>

namespace bfsx::bfs {
namespace {

ValidationReport fail(const std::string& msg) { return {false, msg}; }

std::string vtx(vid_t v) {
  std::ostringstream os;
  os << "vertex " << v;
  return os.str();
}

}  // namespace

ValidationReport validate_bfs(const CsrGraph& g, vid_t root,
                              const BfsResult& result) {
  const vid_t n = g.num_vertices();
  if (root < 0 || root >= n) return fail("root out of range");
  if (result.parent.size() != static_cast<std::size_t>(n) ||
      result.level.size() != static_cast<std::size_t>(n)) {
    return fail("parent/level map size mismatch");
  }

  // Check 1: root self-parented at level 0.
  if (result.parent[static_cast<std::size_t>(root)] != root) {
    return fail("root is not its own parent");
  }
  if (result.level[static_cast<std::size_t>(root)] != 0) {
    return fail("root level is not 0");
  }

  vid_t reached = 0;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t p = result.parent[static_cast<std::size_t>(v)];
    const std::int32_t lv = result.level[static_cast<std::size_t>(v)];
    if ((p == kNoVertex) != (lv < 0)) {
      return fail(vtx(v) + ": parent and level disagree about reachability");
    }
    if (p == kNoVertex) continue;
    ++reached;
    if (v == root) continue;
    if (p < 0 || p >= n) return fail(vtx(v) + ": parent out of range");
    const std::int32_t lp = result.level[static_cast<std::size_t>(p)];
    // Check 2: tree edges span exactly one level.
    if (lp < 0 || lv != lp + 1) {
      return fail(vtx(v) + ": level is not parent's level + 1");
    }
    // Check 3: the tree edge must exist (parent -> child in the graph).
    if (!g.has_edge(p, v)) {
      return fail(vtx(v) + ": tree edge missing from graph");
    }
  }
  if (reached != result.reached) {
    return fail("reached count does not match parent map");
  }

  // Checks 4 and 5 over every edge.
  for (vid_t u = 0; u < n; ++u) {
    const std::int32_t lu = result.level[static_cast<std::size_t>(u)];
    for (vid_t v : g.out_neighbors(u)) {
      const std::int32_t lv = result.level[static_cast<std::size_t>(v)];
      if (lu >= 0 && lv >= 0) {
        // An out-edge (u, v) relaxes v, so lv <= lu + 1 always. The
        // reverse bound lu <= lv + 1 needs the mirror edge (v, u) and
        // therefore only holds on symmetric graphs — a directed back
        // edge may legally jump many levels up the tree.
        if (lv - lu > 1 || (g.is_symmetric() && lu - lv > 1)) {
          return fail("edge (" + std::to_string(u) + "," + std::to_string(v) +
                      ") spans more than one level");
        }
      } else if (lu >= 0 && lv < 0) {
        // A reached vertex with an unreached out-neighbour means the BFS
        // stopped early (for directed graphs only the out direction is
        // conclusive).
        return fail("edge (" + std::to_string(u) + "," + std::to_string(v) +
                    ") leaves the traversed region");
      }
    }
  }
  return {};
}

bool same_levels(const BfsResult& a, const BfsResult& b) {
  return a.level == b.level;
}

}  // namespace bfsx::bfs
