// Frontier bookkeeping helpers: queue<->bitmap conversion and the two
// quantities the switching rule tests every level, |V|cq and |E|cq.
#pragma once

#include <vector>

#include "graph/bitmap.h"
#include "graph/csr.h"
#include "graph/types.h"
#include "graph/view.h"

namespace bfsx::bfs {

/// Rebuilds `bitmap` to contain exactly the vertices in `queue`.
void queue_to_bitmap(const std::vector<graph::vid_t>& queue,
                     graph::Bitmap& bitmap);

/// Rebuilds `queue` (ascending order) from the set bits of `bitmap`.
void bitmap_to_queue(const graph::Bitmap& bitmap,
                     std::vector<graph::vid_t>& queue);

/// |E|cq: the number of out-edges hanging off the frontier — what
/// top-down will traverse this level, and the left operand of the
/// paper's `|E|cq < |E|/M` switch test.
[[nodiscard]] graph::eid_t frontier_out_edges(
    const graph::CsrGraph& g, const std::vector<graph::vid_t>& queue);

/// View overload of the |E|cq tally; same degree sum over any
/// graph::GraphView.
template <graph::GraphView V>
[[nodiscard]] graph::eid_t frontier_out_edges(
    const V& g, const std::vector<graph::vid_t>& queue) {
  graph::eid_t total = 0;
  for (graph::vid_t v : queue) total += g.out_degree(v);
  return total;
}

}  // namespace bfsx::bfs
