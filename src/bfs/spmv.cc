#include "bfs/spmv.h"

#include <stdexcept>

namespace bfsx::bfs {

void spmv_level(const CsrGraph& g, const std::vector<std::uint8_t>& x,
                std::vector<std::int32_t>& y) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  if (x.size() != n) throw std::invalid_argument("spmv_level: |x| != |V|");
  y.assign(n, 0);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024)
#endif
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    std::int32_t sum = 0;
    for (vid_t u : g.in_neighbors(v)) {
      sum += x[static_cast<std::size_t>(u)];
    }
    y[static_cast<std::size_t>(v)] = sum;
  }
}

BfsResult run_spmv_bfs(const CsrGraph& g, vid_t root) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  if (root < 0 || static_cast<std::size_t>(root) >= n) {
    throw std::out_of_range("run_spmv_bfs: root out of range");
  }
  BfsResult r;
  r.parent.assign(n, kNoVertex);
  r.level.assign(n, -1);
  r.parent[static_cast<std::size_t>(root)] = root;
  r.level[static_cast<std::size_t>(root)] = 0;
  r.reached = 1;

  std::vector<std::uint8_t> x(n, 0);
  x[static_cast<std::size_t>(root)] = 1;
  std::vector<std::int32_t> y;
  std::int32_t level = 0;
  bool any = true;
  while (any) {
    spmv_level(g, x, y);
    ++level;
    any = false;
    std::vector<std::uint8_t> next(n, 0);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (y[vi] == 0 || r.level[vi] >= 0) continue;
      // Deterministic parent: the smallest in-neighbour on the frontier.
      for (vid_t u : g.in_neighbors(v)) {
        if (x[static_cast<std::size_t>(u)] != 0) {
          r.parent[vi] = u;
          break;
        }
      }
      r.level[vi] = level;
      ++r.reached;
      next[vi] = 1;
      any = true;
    }
    x.swap(next);
  }

  eid_t directed = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (r.parent[static_cast<std::size_t>(v)] != kNoVertex) {
      directed += g.out_degree(v);
    }
  }
  r.edges_in_component = g.is_symmetric() ? directed / 2 : directed;
  return r;
}

double rcma_dense_spmv(std::int64_t n) {
  if (n <= 0) throw std::invalid_argument("rcma_dense_spmv: n <= 0");
  const auto nd = static_cast<double>(n);
  return (nd * (2.0 * nd - 1.0)) / (4.0 * (nd * nd + nd));
}

double rcma_sparse_bfs(std::int64_t n, std::int64_t nnz) {
  if (n <= 0 || nnz <= 0) {
    throw std::invalid_argument("rcma_sparse_bfs: sizes must be positive");
  }
  // Per edge: one accumulate (1 op) over a 4-byte column index plus a
  // 4-byte x element; per row: a 4-byte result store amortised over
  // nnz/n edges.
  const double flops = static_cast<double>(nnz);
  const double bytes = 8.0 * static_cast<double>(nnz) +
                       4.0 * static_cast<double>(n);
  return flops / bytes;
}

}  // namespace bfsx::bfs
