// Parallel top-down BFS level step (paper Algorithm 1, lines 6-13).
#pragma once

#include "bfs/state.h"

namespace bfsx::bfs {

/// Exact work counters for one top-down level. These are the inputs to
/// the architecture cost model and to the switching heuristic.
struct TopDownStats {
  vid_t frontier_vertices = 0;  // |V|cq
  eid_t frontier_edges = 0;     // |E|cq — every one of these is traversed
  vid_t next_vertices = 0;      // |V| of the produced next queue
};

/// Advances `state` by one level using the top-down direction: each
/// frontier vertex tries to claim its unvisited out-neighbours
/// (Algorithm 1 lines 7-12). Parallelised over frontier vertices with
/// OpenMP; discovered vertices are claimed with an atomic test-and-set
/// so each vertex gets exactly one parent.
///
/// On return the state's frontier (queue + bitmap), visited set, parent
/// and level maps, current_level, and reached count are all updated.
TopDownStats top_down_step(const CsrGraph& g, BfsState& state);

}  // namespace bfsx::bfs
