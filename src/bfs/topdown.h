// Parallel top-down BFS level step (paper Algorithm 1, lines 6-13).
//
// The kernel is a template over any graph::GraphView (graph/view.h), so
// the identical loop runs on CSR storage (through graph::CsrGraphView)
// and on implicit successor functions. The historical CsrGraph overload
// below forwards through the adapter, which keeps every existing call
// site source-compatible and makes CSR bit-equality structural rather
// than promised.
//
// Scratch discipline: the per-thread discovery buffers and the merged
// next queue live in BfsState (td_local_next / td_next), so steady-state
// levels perform no allocation — the buffers reach their high-water
// capacity after the widest level and are recycled by the
// queue-swap at the end of each step (test_mem_tuning pins this).
#pragma once

#include <cstddef>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bfs/frontier.h"
#include "bfs/mem_tuning.h"
#include "bfs/state.h"
#include "check/contract.h"
#include "graph/view.h"

namespace bfsx::bfs {

/// Exact work counters for one top-down level. These are the inputs to
/// the architecture cost model and to the switching heuristic.
struct TopDownStats {
  vid_t frontier_vertices = 0;  // |V|cq
  eid_t frontier_edges = 0;     // |E|cq — every one of these is traversed
  vid_t next_vertices = 0;      // |V| of the produced next queue
};

/// Advances `state` by one level using the top-down direction: each
/// frontier vertex tries to claim its unvisited out-neighbours
/// (Algorithm 1 lines 7-12). Parallelised over frontier vertices with
/// OpenMP; discovered vertices are claimed with an atomic test-and-set
/// so each vertex gets exactly one parent.
///
/// `tuning.prefetch` (bfs/mem_tuning.h): with distance d > 0 and a
/// PrefetchableView, each iteration prefetches the adjacency row of
/// queue[i + d] and — inside the row walk — the visited-bitmap word of
/// the neighbour d slots ahead, hiding the two dependent random-access
/// misses of the gather. d == 0 (the default) takes the plain loop;
/// non-prefetchable views compile the hints out entirely. Prefetching
/// never changes which vertices are discovered or in what order.
///
/// On return the state's frontier (queue + bitmap), visited set, parent
/// and level maps, current_level, and reached count are all updated.
template <graph::GraphView V>
TopDownStats top_down_step(const V& g, BfsState& state, MemTuning tuning) {
  TopDownStats stats;
  stats.frontier_vertices = static_cast<vid_t>(state.frontier_queue.size());

  const auto& queue = state.frontier_queue;
  const std::int32_t next_level = state.current_level + 1;
  // |E|cq is accumulated inside the traversal loop (one queue walk)
  // rather than by a frontier_out_edges pre-pass (two queue walks); the
  // reduction makes it exact under any schedule.
  eid_t frontier_edges = 0;

#ifdef _OPENMP
  const int num_threads = omp_get_max_threads();
#else
  const int num_threads = 1;
#endif
  auto& local_next = state.td_local_next;
  if (local_next.size() < static_cast<std::size_t>(num_threads)) {
    local_next.resize(static_cast<std::size_t>(num_threads));
  }
  for (auto& part : local_next) part.clear();  // capacity retained

  std::size_t dist = 0;
  if constexpr (graph::PrefetchableView<V>) {
    if (tuning.prefetch.enabled()) {
      dist = static_cast<std::size_t>(tuning.prefetch.distance);
    }
  }

#ifdef _OPENMP
#pragma omp parallel reduction(+ : frontier_edges)
#endif
  {
#ifdef _OPENMP
    // analyze: allow(nested-chunking) tid only selects this thread's
    // private scratch slot; in a nested 1-thread team tid is 0 and the
    // slot count (omp_get_max_threads, taken outside) stays an upper
    // bound, so no work is partitioned by a stale team size.
    const int tid = omp_get_thread_num();
#else
    const int tid = 0;
#endif
    auto& mine = local_next[static_cast<std::size_t>(tid)];
#ifdef _OPENMP
#pragma omp for schedule(dynamic, 64) nowait
#endif
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const vid_t u = queue[i];
      frontier_edges += g.out_degree(u);
      const auto visit = [&state, &mine, u, next_level](vid_t v) {
        // Algorithm 1 line 9: visited check, fused with the claim so two
        // frontier vertices cannot both adopt v.
        if (state.visited.test_and_set_atomic(static_cast<std::size_t>(v))) {
          state.parent[static_cast<std::size_t>(v)] = u;
          state.level[static_cast<std::size_t>(v)] = next_level;
          mine.push_back(v);
        }
      };
      if constexpr (graph::PrefetchableView<V>) {
        if (dist > 0) {
          // Row-level lookahead: pull queue[i + d]'s adjacency row in
          // while this row is being walked.
          if (i + dist < queue.size()) g.prefetch_out_row(queue[i + dist]);
          // Word-level lookahead inside the row: the visited word of the
          // neighbour d slots ahead, write intent (test_and_set is next).
          g.for_each_out_neighbor_ahead(
              u, static_cast<int>(dist),
              [&state](vid_t w) {
                state.visited.prefetch_write(static_cast<std::size_t>(w));
              },
              visit);
          continue;
        }
      }
      g.for_each_out_neighbor(u, visit);
    }
  }

  stats.frontier_edges = frontier_edges;

  // Merge in thread-id order into the state-owned next queue, then swap
  // it with the frontier: the old frontier's storage becomes the next
  // level's merge target — no allocation once capacities plateau.
  auto& next = state.td_next;
  next.clear();
  std::size_t total = 0;
  for (const auto& part : local_next) total += part.size();
  next.reserve(total);
  for (const auto& part : local_next) {
    next.insert(next.end(), part.begin(), part.end());
  }

  stats.next_vertices = static_cast<vid_t>(next.size());
  state.reached += stats.next_vertices;
  state.current_level = next_level;
  state.frontier_queue.swap(next);
  queue_to_bitmap(state.frontier_queue, state.frontier_bitmap);
  // Catches a lost atomic claim (parent written without the level, a
  // double discovery) at the level it happened, including the straggler
  // bookkeeping this step leaves in a primed bottom-up candidate list.
  BFSX_PARANOID(state.assert_invariants(g.num_vertices()));
  return stats;
}

/// Untuned entry point: default knobs, bit-identical to the historical
/// kernel (the golden-trace test runs through here).
template <graph::GraphView V>
TopDownStats top_down_step(const V& g, BfsState& state) {
  return top_down_step(g, state, MemTuning{});
}

/// CSR entry points: forward through the zero-overhead adapter.
TopDownStats top_down_step(const CsrGraph& g, BfsState& state);
TopDownStats top_down_step(const CsrGraph& g, BfsState& state,
                           MemTuning tuning);

}  // namespace bfsx::bfs
