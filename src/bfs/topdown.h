// Parallel top-down BFS level step (paper Algorithm 1, lines 6-13).
//
// The kernel is a template over any graph::GraphView (graph/view.h), so
// the identical loop runs on CSR storage (through graph::CsrGraphView)
// and on implicit successor functions. The historical CsrGraph overload
// below forwards through the adapter, which keeps every existing call
// site source-compatible and makes CSR bit-equality structural rather
// than promised.
#pragma once

#include <cstddef>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bfs/frontier.h"
#include "bfs/state.h"
#include "check/contract.h"
#include "graph/view.h"

namespace bfsx::bfs {

/// Exact work counters for one top-down level. These are the inputs to
/// the architecture cost model and to the switching heuristic.
struct TopDownStats {
  vid_t frontier_vertices = 0;  // |V|cq
  eid_t frontier_edges = 0;     // |E|cq — every one of these is traversed
  vid_t next_vertices = 0;      // |V| of the produced next queue
};

/// Advances `state` by one level using the top-down direction: each
/// frontier vertex tries to claim its unvisited out-neighbours
/// (Algorithm 1 lines 7-12). Parallelised over frontier vertices with
/// OpenMP; discovered vertices are claimed with an atomic test-and-set
/// so each vertex gets exactly one parent.
///
/// On return the state's frontier (queue + bitmap), visited set, parent
/// and level maps, current_level, and reached count are all updated.
template <graph::GraphView V>
TopDownStats top_down_step(const V& g, BfsState& state) {
  TopDownStats stats;
  stats.frontier_vertices = static_cast<vid_t>(state.frontier_queue.size());

  const auto& queue = state.frontier_queue;
  const std::int32_t next_level = state.current_level + 1;
  // |E|cq is accumulated inside the traversal loop (one queue walk)
  // rather than by a frontier_out_edges pre-pass (two queue walks); the
  // reduction makes it exact under any schedule.
  eid_t frontier_edges = 0;

  std::vector<vid_t> next;
#ifdef _OPENMP
  const int num_threads = omp_get_max_threads();
#else
  const int num_threads = 1;
#endif
  std::vector<std::vector<vid_t>> local_next(
      static_cast<std::size_t>(num_threads));

#ifdef _OPENMP
#pragma omp parallel reduction(+ : frontier_edges)
#endif
  {
#ifdef _OPENMP
    const int tid = omp_get_thread_num();
#else
    const int tid = 0;
#endif
    auto& mine = local_next[static_cast<std::size_t>(tid)];
#ifdef _OPENMP
#pragma omp for schedule(dynamic, 64) nowait
#endif
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const vid_t u = queue[i];
      frontier_edges += g.out_degree(u);
      g.for_each_out_neighbor(u, [&state, &mine, u, next_level](vid_t v) {
        // Algorithm 1 line 9: visited check, fused with the claim so two
        // frontier vertices cannot both adopt v.
        if (state.visited.test_and_set_atomic(static_cast<std::size_t>(v))) {
          state.parent[static_cast<std::size_t>(v)] = u;
          state.level[static_cast<std::size_t>(v)] = next_level;
          mine.push_back(v);
        }
      });
    }
  }

  stats.frontier_edges = frontier_edges;

  std::size_t total = 0;
  for (const auto& part : local_next) total += part.size();
  next.reserve(total);
  for (const auto& part : local_next) {
    next.insert(next.end(), part.begin(), part.end());
  }

  stats.next_vertices = static_cast<vid_t>(next.size());
  state.reached += stats.next_vertices;
  state.current_level = next_level;
  state.frontier_queue = std::move(next);
  queue_to_bitmap(state.frontier_queue, state.frontier_bitmap);
  // Catches a lost atomic claim (parent written without the level, a
  // double discovery) at the level it happened, including the straggler
  // bookkeeping this step leaves in a primed bottom-up candidate list.
  BFSX_PARANOID(state.assert_invariants(g.num_vertices()));
  return stats;
}

/// CSR entry point: forwards through the zero-overhead adapter.
TopDownStats top_down_step(const CsrGraph& g, BfsState& state);

}  // namespace bfsx::bfs
