// BFS as sparse matrix-vector multiplication, and the arithmetic-
// intensity analysis built on it (paper Section III-B).
//
// "BFS can be seen as a specific case of Sparse Matrix Vector
// multiplication. Take y = Ax for example: y is a dense vector that
// represents NQ, A is the adjacency matrix of the graph, and x is a
// dense vector that represents CQ."
//
// This module provides (a) an executable SpMV-style BFS — one
// adjacency-matrix multiply per level — used in tests as yet another
// independent oracle for the level sets, and (b) the RCMA / RCMB
// calculators behind the paper's memory-bound argument.
#pragma once

#include <vector>

#include "bfs/state.h"

namespace bfsx::bfs {

/// One SpMV level: y = A^T x over the boolean semiring-ish counting
/// form. x[v] != 0 marks frontier membership; on return y[v] holds the
/// number of frontier in-neighbours of v (the paper's "y(u) >= 1 means
/// vertex u is in the next queue").
void spmv_level(const CsrGraph& g, const std::vector<std::uint8_t>& x,
                std::vector<std::int32_t>& y);

/// Full BFS via repeated SpMV. Parents are chosen as the smallest
/// frontier in-neighbour (deterministic); levels equal true distances.
[[nodiscard]] BfsResult run_spmv_bfs(const CsrGraph& g, vid_t root);

/// Ratio of Computation to Memory Access of the dense n x n
/// matrix-vector product in the paper's Equation (1):
///   flops = n * (2n - 1), bytes = 4 * (n^2 + n)  ->  ~0.5.
[[nodiscard]] double rcma_dense_spmv(std::int64_t n);

/// RCMA of the *sparse* BFS-as-SpMV step: per traversed edge the kernel
/// does ~1 op and touches ~8 bytes (column index + x entry), matching
/// the paper's conclusion that BFS sits far below every platform's
/// balance point. `nnz` is the traversed edge count.
[[nodiscard]] double rcma_sparse_bfs(std::int64_t n, std::int64_t nnz);

}  // namespace bfsx::bfs
