#include "bfs/boolmap.h"

#include <algorithm>

namespace bfsx::bfs {

std::size_t BoolMap::count() const noexcept {
  std::size_t total = 0;
  for (std::uint8_t b : bytes_) total += b != 0;
  return total;
}

BfsResult run_bottom_up_boolmap(const CsrGraph& g, vid_t root,
                                TraversalLog* log) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  BfsResult r;
  r.parent.assign(n, kNoVertex);
  r.level.assign(n, -1);
  r.parent[static_cast<std::size_t>(root)] = root;
  r.level[static_cast<std::size_t>(root)] = 0;
  r.reached = 1;

  BoolMap frontier(n);
  BoolMap visited(n);
  frontier.set(static_cast<std::size_t>(root));
  visited.set(static_cast<std::size_t>(root));
  vid_t frontier_count = 1;
  std::int32_t level = 0;

  while (frontier_count > 0) {
    const std::int32_t next_level = level + 1;
    BoolMap next(n);
    vid_t found = 0;
    eid_t scanned = 0;
    // |E|cq for the log: out-edges of the current frontier.
    eid_t cq_edges = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (frontier.test(static_cast<std::size_t>(v))) {
        cq_edges += g.out_degree(v);
      }
    }

#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) reduction(+ : found, scanned)
#endif
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (visited.test(static_cast<std::size_t>(v))) continue;
      for (vid_t u : g.in_neighbors(v)) {
        ++scanned;
        if (frontier.test(static_cast<std::size_t>(u))) {
          r.parent[static_cast<std::size_t>(v)] = u;
          r.level[static_cast<std::size_t>(v)] = next_level;
          next.set(static_cast<std::size_t>(v));
          ++found;
          break;
        }
      }
    }
    // Byte writes from the owning thread only, so folding into visited
    // after the scan needs no atomics at all — a bool-map perk.
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (next.test(static_cast<std::size_t>(v))) {
        visited.set(static_cast<std::size_t>(v));
      }
    }
    if (log != nullptr) {
      log->levels.push_back({level, frontier_count, cq_edges, scanned, found});
    }
    r.reached += found;
    frontier.swap(next);
    frontier_count = found;
    level = next_level;
  }

  eid_t directed = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (r.parent[static_cast<std::size_t>(v)] != kNoVertex) {
      directed += g.out_degree(v);
    }
  }
  r.edges_in_component = g.is_symmetric() ? directed / 2 : directed;
  return r;
}

}  // namespace bfsx::bfs
