// Bool-map (byte-per-vertex) frontier representation.
//
// Paper Section V-A: "We use the CSR format to store the graph and
// bit-map or bool-map to store the queue vector." The two
// representations trade memory traffic (bitmap: V/8 bytes per scan)
// against access cost (bool-map: no shift/mask, simpler vectorisation).
// This module provides the bool-map bottom-up traversal so the trade
// can be measured (bench_ablation_frontier_rep) and cross-checked for
// exact equivalence in tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bfs/drivers.h"

namespace bfsx::bfs {

/// Byte-per-vertex set with the Bitmap's interface subset used by the
/// bottom-up kernel.
class BoolMap {
 public:
  BoolMap() = default;
  explicit BoolMap(std::size_t size) : bytes_(size, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] bool test(std::size_t pos) const noexcept {
    return bytes_[pos] != 0;
  }
  void set(std::size_t pos) noexcept { bytes_[pos] = 1; }
  void reset() noexcept { std::fill(bytes_.begin(), bytes_.end(), 0); }
  void swap(BoolMap& other) noexcept { bytes_.swap(other.bytes_); }
  [[nodiscard]] std::size_t count() const noexcept;

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Pure bottom-up traversal using bool-maps for the frontier and the
/// visited set. Produces results identical to run_bottom_up (levels,
/// reached, scan counts); only the memory layout differs.
[[nodiscard]] BfsResult run_bottom_up_boolmap(const CsrGraph& g, vid_t root,
                                              TraversalLog* log = nullptr);

}  // namespace bfsx::bfs
