#include "bfs/bottomup.h"

#include <cstddef>

#include "bfs/frontier.h"

namespace bfsx::bfs {

BottomUpStats bottom_up_step(const CsrGraph& g, BfsState& state) {
  BottomUpStats stats;
  stats.frontier_vertices = static_cast<vid_t>(state.frontier_queue.size());

  const vid_t n = g.num_vertices();
  const std::int32_t next_level = state.current_level + 1;
  Bitmap next(static_cast<std::size_t>(n));

  vid_t unvisited = 0;
  eid_t scanned_hit = 0;
  eid_t scanned_miss = 0;
  vid_t found = 0;

#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) \
    reduction(+ : unvisited, scanned_hit, scanned_miss, found)
#endif
  for (vid_t v = 0; v < n; ++v) {
    if (state.visited.test(static_cast<std::size_t>(v))) continue;
    ++unvisited;
    // Algorithm 2 lines 9-12: scan predecessors, adopt the first one
    // found in the current frontier, then break.
    eid_t walked = 0;
    bool hit = false;
    for (vid_t u : g.in_neighbors(v)) {
      ++walked;
      if (state.frontier_bitmap.test(static_cast<std::size_t>(u))) {
        state.parent[static_cast<std::size_t>(v)] = u;
        state.level[static_cast<std::size_t>(v)] = next_level;
        next.set_atomic(static_cast<std::size_t>(v));
        ++found;
        hit = true;
        break;
      }
    }
    if (hit) {
      scanned_hit += walked;
    } else {
      scanned_miss += walked;
    }
  }

  // Fold the discoveries into the visited set. Deferring this to after
  // the scan keeps the level semantics exact: a vertex discovered this
  // level must not act as a parent within the same level.
  next.for_each_set([&state](vid_t v) {
    state.visited.set(static_cast<std::size_t>(v));
  });

  stats.unvisited_vertices = unvisited;
  stats.edges_scanned_hit = scanned_hit;
  stats.edges_scanned_miss = scanned_miss;
  stats.next_vertices = found;
  state.reached += found;
  state.current_level = next_level;
  state.frontier_bitmap.swap(next);
  bitmap_to_queue(state.frontier_bitmap, state.frontier_queue);
  return stats;
}

BottomUpStats bottom_up_probe(const CsrGraph& g, const BfsState& state) {
  BottomUpStats stats;
  stats.frontier_vertices = static_cast<vid_t>(state.frontier_queue.size());

  const vid_t n = g.num_vertices();
  vid_t unvisited = 0;
  eid_t scanned_hit = 0;
  eid_t scanned_miss = 0;
  vid_t found = 0;

#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) \
    reduction(+ : unvisited, scanned_hit, scanned_miss, found)
#endif
  for (vid_t v = 0; v < n; ++v) {
    if (state.visited.test(static_cast<std::size_t>(v))) continue;
    ++unvisited;
    eid_t walked = 0;
    bool hit = false;
    for (vid_t u : g.in_neighbors(v)) {
      ++walked;
      if (state.frontier_bitmap.test(static_cast<std::size_t>(u))) {
        ++found;
        hit = true;
        break;
      }
    }
    if (hit) {
      scanned_hit += walked;
    } else {
      scanned_miss += walked;
    }
  }

  stats.unvisited_vertices = unvisited;
  stats.edges_scanned_hit = scanned_hit;
  stats.edges_scanned_miss = scanned_miss;
  stats.next_vertices = found;
  return stats;
}

}  // namespace bfsx::bfs
