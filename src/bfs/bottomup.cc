#include "bfs/bottomup.h"

#include <algorithm>
#include <cstddef>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bfs/frontier.h"
#include "check/contract.h"

namespace bfsx::bfs {
namespace {

/// Fills state.unvisited with every not-yet-visited vertex in ascending
/// order. Runs once, on the first bottom-up level of a traversal; after
/// that the list is compacted incrementally and 0..n is never rescanned.
/// Parallelised over contiguous vertex chunks whose local buffers are
/// concatenated in chunk order, so the list is ascending for any thread
/// count.
void prime_unvisited(const CsrGraph& g, BfsState& state) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
#ifdef _OPENMP
  // Chunking by thread id assumes the team has exactly `workers`
  // threads; a nested region runs with 1, so fall back to serial there
  // (see graph/builder.cc's worker_count for the full story).
  const int workers = n >= (std::size_t{1} << 15) && !omp_in_parallel()
                          ? std::max(1, omp_get_max_threads())
                          : 1;
#else
  const int workers = 1;
#endif
  auto& list = state.unvisited;
  list.clear();
  if (workers == 1) {
    list.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
      if (!state.visited.test(v)) list.push_back(static_cast<vid_t>(v));
    }
  } else {
    std::vector<std::vector<vid_t>> local(static_cast<std::size_t>(workers));
    std::vector<std::size_t> start(static_cast<std::size_t>(workers) + 1, 0);
#ifdef _OPENMP
#pragma omp parallel num_threads(workers)
#endif
    {
#ifdef _OPENMP
      const int t = omp_get_thread_num();
#else
      const int t = 0;
#endif
      auto& mine = local[static_cast<std::size_t>(t)];
      const std::size_t lo =
          n * static_cast<std::size_t>(t) / static_cast<std::size_t>(workers);
      const std::size_t hi = n * (static_cast<std::size_t>(t) + 1) /
                             static_cast<std::size_t>(workers);
      mine.reserve(hi - lo);
      for (std::size_t v = lo; v < hi; ++v) {
        if (!state.visited.test(v)) mine.push_back(static_cast<vid_t>(v));
      }
    }
    for (int t = 0; t < workers; ++t) {
      start[static_cast<std::size_t>(t) + 1] =
          start[static_cast<std::size_t>(t)] +
          local[static_cast<std::size_t>(t)].size();
    }
    list.resize(start[static_cast<std::size_t>(workers)]);
#ifdef _OPENMP
#pragma omp parallel num_threads(workers)
#endif
    {
#ifdef _OPENMP
      const int t = omp_get_thread_num();
#else
      const int t = 0;
#endif
      const auto& mine = local[static_cast<std::size_t>(t)];
      std::copy(mine.begin(), mine.end(),
                list.begin() +
                    static_cast<std::ptrdiff_t>(
                        start[static_cast<std::size_t>(t)]));
    }
  }
  state.unvisited_primed = true;
}

}  // namespace

BottomUpStats bottom_up_step(const CsrGraph& g, BfsState& state) {
  BottomUpStats stats;
  stats.frontier_vertices = static_cast<vid_t>(state.frontier_queue.size());

  const std::int32_t next_level = state.current_level + 1;
  if (!state.unvisited_primed) prime_unvisited(g, state);
  // Reused scratch; all-zero on entry (constructor + the dirty-word
  // wipe at the end of every step maintain the invariant). A dirty
  // scratch silently resurrects a previous frontier into this level's
  // discoveries, so paranoid builds verify the wipe every step.
  BFSX_PARANOID(BFSX_CHECK(state.bu_scratch.none())
                << "bu_scratch dirty on bottom_up_step entry (first set bit "
                << state.bu_scratch.find_first() << ")");
  BFSX_CHECK_EQ(state.bu_scratch.size(),
                static_cast<std::size_t>(g.num_vertices()));
  Bitmap& next = state.bu_scratch;

  const auto& cand = state.unvisited;
  const std::size_t ncand = cand.size();
  stats.candidates = static_cast<vid_t>(ncand);

  vid_t unvisited = 0;
  eid_t scanned_hit = 0;
  eid_t scanned_miss = 0;
  vid_t found = 0;

#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) \
    reduction(+ : unvisited, scanned_hit, scanned_miss, found)
#endif
  for (std::size_t i = 0; i < ncand; ++i) {
    const vid_t v = cand[i];
    // Stragglers an interleaved top-down step visited since the list
    // was last compacted; skipping them here keeps every counter equal
    // to the full 0..n scan's.
    if (state.visited.test(static_cast<std::size_t>(v))) continue;
    ++unvisited;
    // Algorithm 2 lines 9-12: scan predecessors, adopt the first one
    // found in the current frontier, then break.
    eid_t walked = 0;
    bool hit = false;
    for (vid_t u : g.in_neighbors(v)) {
      ++walked;
      if (state.frontier_bitmap.test(static_cast<std::size_t>(u))) {
        state.parent[static_cast<std::size_t>(v)] = u;
        state.level[static_cast<std::size_t>(v)] = next_level;
        next.set_atomic(static_cast<std::size_t>(v));
        ++found;
        hit = true;
        break;
      }
    }
    if (hit) {
      scanned_hit += walked;
    } else {
      scanned_miss += walked;
    }
  }

  // Fold the discoveries into the visited set. Deferring this to after
  // the scan keeps the level semantics exact: a vertex discovered this
  // level must not act as a parent within the same level.
  next.for_each_set([&state](vid_t v) {
    state.visited.set(static_cast<std::size_t>(v));
  });

  // Compact the candidate list in place: drop this level's discoveries
  // and any stragglers. O(|list|), order-preserving, so the next level
  // iterates exactly the still-unvisited vertices.
  std::erase_if(state.unvisited, [&state](vid_t v) {
    return state.visited.test(static_cast<std::size_t>(v));
  });

  stats.unvisited_vertices = unvisited;
  stats.edges_scanned_hit = scanned_hit;
  stats.edges_scanned_miss = scanned_miss;
  stats.next_vertices = found;
  state.reached += found;
  state.current_level = next_level;
  state.frontier_bitmap.swap(next);
  // `next` (the scratch) now holds the *previous* frontier's bits; the
  // outgoing queue still lists exactly those vertices, so zeroing their
  // words restores the all-clear invariant in O(|frontier|) stores
  // instead of an O(n/64) memset.
  for (vid_t v : state.frontier_queue) {
    next.clear_word(static_cast<std::size_t>(v));
  }
  bitmap_to_queue(state.frontier_bitmap, state.frontier_queue);
  // The wipe above and the compaction must restore every inter-step
  // invariant (scratch all-clear, unvisited exact); state-level
  // validation at each step makes a broken wipe fail here, at its
  // source, instead of levels later.
  BFSX_PARANOID(state.assert_invariants(g));
  return stats;
}

BottomUpStats bottom_up_probe(const CsrGraph& g, const BfsState& state) {
  BottomUpStats stats;
  stats.frontier_vertices = static_cast<vid_t>(state.frontier_queue.size());

  const vid_t n = g.num_vertices();
  vid_t unvisited = 0;
  eid_t scanned_hit = 0;
  eid_t scanned_miss = 0;
  vid_t found = 0;

  // Probe one candidate without mutating anything; reads only shared
  // immutable state, so the counter updates below stay inside the
  // OpenMP reduction scope. walked == -1 flags an already-visited
  // straggler.
  struct Probe {
    eid_t walked;
    bool hit;
  };
  const auto probe_one = [&g, &state](vid_t v) -> Probe {
    if (state.visited.test(static_cast<std::size_t>(v))) return {-1, false};
    eid_t walked = 0;
    for (vid_t u : g.in_neighbors(v)) {
      ++walked;
      if (state.frontier_bitmap.test(static_cast<std::size_t>(u))) {
        return {walked, true};
      }
    }
    return {walked, false};
  };

  if (state.unvisited_primed) {
    // A bottom-up step already primed the candidate list; probing it
    // (stragglers skip via the visited test) yields the exact counters
    // of a full scan at a fraction of the iterations.
    const auto& cand = state.unvisited;
    const std::size_t ncand = cand.size();
    stats.candidates = static_cast<vid_t>(ncand);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) \
    reduction(+ : unvisited, scanned_hit, scanned_miss, found)
#endif
    for (std::size_t i = 0; i < ncand; ++i) {
      const Probe p = probe_one(cand[i]);
      if (p.walked < 0) continue;
      ++unvisited;
      if (p.hit) {
        ++found;
        scanned_hit += p.walked;
      } else {
        scanned_miss += p.walked;
      }
    }
  } else {
    stats.candidates = n;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) \
    reduction(+ : unvisited, scanned_hit, scanned_miss, found)
#endif
    for (vid_t v = 0; v < n; ++v) {
      const Probe p = probe_one(v);
      if (p.walked < 0) continue;
      ++unvisited;
      if (p.hit) {
        ++found;
        scanned_hit += p.walked;
      } else {
        scanned_miss += p.walked;
      }
    }
  }

  stats.unvisited_vertices = unvisited;
  stats.edges_scanned_hit = scanned_hit;
  stats.edges_scanned_miss = scanned_miss;
  stats.next_vertices = found;
  return stats;
}

}  // namespace bfsx::bfs
