#include "bfs/bottomup.h"

#include <algorithm>
#include <cstddef>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace bfsx::bfs {
namespace detail {

void prime_unvisited(vid_t num_vertices, BfsState& state) {
  const auto n = static_cast<std::size_t>(num_vertices);
#ifdef _OPENMP
  // Chunking by thread id assumes the team has exactly `workers`
  // threads; a nested region runs with 1, so fall back to serial there
  // (see graph/builder.cc's worker_count for the full story).
  const int workers = n >= (std::size_t{1} << 15) && !omp_in_parallel()
                          ? std::max(1, omp_get_max_threads())
                          : 1;
#else
  const int workers = 1;
#endif
  auto& list = state.unvisited;
  list.clear();
  if (workers == 1) {
    // Exactly the vertices not yet visited will be appended, and
    // `reached` equals the visited population (a checked invariant), so
    // this reserve is exact — reserving n would permanently pin ~4|V|
    // bytes of never-used tail on late-switch traversals
    // (test_mem_tuning pins the shrink).
    list.reserve(n - static_cast<std::size_t>(state.reached));
    for (std::size_t v = 0; v < n; ++v) {
      if (!state.visited.test(v)) list.push_back(static_cast<vid_t>(v));
    }
  } else {
    std::vector<std::vector<vid_t>> local(static_cast<std::size_t>(workers));
    std::vector<std::size_t> start(static_cast<std::size_t>(workers) + 1, 0);
#ifdef _OPENMP
#pragma omp parallel num_threads(workers)
#endif
    {
#ifdef _OPENMP
      const int t = omp_get_thread_num();
#else
      const int t = 0;
#endif
      auto& mine = local[static_cast<std::size_t>(t)];
      const std::size_t lo =
          n * static_cast<std::size_t>(t) / static_cast<std::size_t>(workers);
      const std::size_t hi = n * (static_cast<std::size_t>(t) + 1) /
                             static_cast<std::size_t>(workers);
      mine.reserve(hi - lo);
      for (std::size_t v = lo; v < hi; ++v) {
        if (!state.visited.test(v)) mine.push_back(static_cast<vid_t>(v));
      }
    }
    for (int t = 0; t < workers; ++t) {
      start[static_cast<std::size_t>(t) + 1] =
          start[static_cast<std::size_t>(t)] +
          local[static_cast<std::size_t>(t)].size();
    }
    list.resize(start[static_cast<std::size_t>(workers)]);
#ifdef _OPENMP
#pragma omp parallel num_threads(workers)
#endif
    {
#ifdef _OPENMP
      const int t = omp_get_thread_num();
#else
      const int t = 0;
#endif
      const auto& mine = local[static_cast<std::size_t>(t)];
      std::copy(mine.begin(), mine.end(),
                list.begin() +
                    static_cast<std::ptrdiff_t>(
                        start[static_cast<std::size_t>(t)]));
    }
  }
  state.unvisited_primed = true;
}

}  // namespace detail

BottomUpStats bottom_up_step(const CsrGraph& g, BfsState& state) {
  return bottom_up_step(graph::CsrGraphView(g), state);
}

BottomUpStats bottom_up_step(const CsrGraph& g, BfsState& state,
                             MemTuning tuning) {
  return bottom_up_step(graph::CsrGraphView(g), state, tuning);
}

BottomUpStats bottom_up_probe(const CsrGraph& g, const BfsState& state) {
  return bottom_up_probe(graph::CsrGraphView(g), state);
}

}  // namespace bfsx::bfs
