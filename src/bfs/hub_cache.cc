#include "bfs/hub_cache.h"

#include <algorithm>
#include <cstddef>

#include "graph/graph_stats.h"

namespace bfsx::bfs {

HubCache::HubCache(const graph::CsrGraph& g, int k)
    : num_vertices_(g.num_vertices()) {
  const int clamped = std::clamp(k, 0, 65535);  // ranks must fit uint16
  hubs_ = graph::top_out_degree_vertices(g, static_cast<std::size_t>(clamped));

  const auto n = static_cast<std::size_t>(num_vertices_);
  row_offsets_.assign(n + 1, 0);
  if (hubs_.empty()) return;

  // rank_of[v] = v's hub rank, or -1. Dense lookup makes the build one
  // O(E) sweep instead of a binary search per in-edge.
  std::vector<std::int32_t> rank_of(n, -1);
  for (std::size_t r = 0; r < hubs_.size(); ++r) {
    rank_of[static_cast<std::size_t>(hubs_[r])] = static_cast<std::int32_t>(r);
  }

  // Two-phase like the CSR builder: count per-vertex hub in-neighbours,
  // prefix-sum, then write each sub-row at its exact offset — identical
  // layout for any thread count.
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::size_t v = 0; v < n; ++v) {
    graph::eid_t count = 0;
    for (const graph::vid_t u : g.in_neighbors(static_cast<graph::vid_t>(v))) {
      if (rank_of[static_cast<std::size_t>(u)] >= 0) ++count;
    }
    row_offsets_[v + 1] = count;  // per-row size; prefix-summed below
  }
  for (std::size_t v = 0; v < n; ++v) row_offsets_[v + 1] += row_offsets_[v];

  hub_rows_.resize(static_cast<std::size_t>(row_offsets_[n]));
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::size_t v = 0; v < n; ++v) {
    std::uint16_t* out = hub_rows_.data() + row_offsets_[v];
    for (const graph::vid_t u : g.in_neighbors(static_cast<graph::vid_t>(v))) {
      const std::int32_t r = rank_of[static_cast<std::size_t>(u)];
      if (r >= 0) *out++ = static_cast<std::uint16_t>(r);
    }
  }
}

void HubCache::snapshot_frontier(const graph::Bitmap& frontier,
                                 graph::Bitmap& bits) const {
  if (bits.size() != hubs_.size()) {
    bits.resize_and_reset(hubs_.size());
  }
  for (std::size_t r = 0; r < hubs_.size(); ++r) {
    if (frontier.test(static_cast<std::size_t>(hubs_[r]))) {
      bits.set(r);
    } else {
      bits.clear(r);
    }
  }
}

}  // namespace bfsx::bfs
