// Whole-traversal drivers: run a single direction (or the serial
// reference) from root to completion. The hybrid and cross-architecture
// executors live in src/core; these drivers are the pure baselines the
// paper calls GPUTD/GPUBU/CPUTD/CPUBU when bound to a device model.
#pragma once

#include "bfs/state.h"
#include "check/agreement.h"

namespace bfsx::bfs {

/// Per-level record of a full traversal; the raw material for the
/// paper's Figures 1-3 and for LevelTrace (src/core).
struct LevelRecord {
  std::int32_t level = 0;       // level being *expanded* (0 = root level)
  vid_t frontier_vertices = 0;  // |V|cq
  eid_t frontier_edges = 0;     // |E|cq
  eid_t bottom_up_scanned = 0;  // edges a BU pass scanned (0 for TD runs)
  vid_t next_vertices = 0;
};

struct TraversalLog {
  std::vector<LevelRecord> levels;
};

/// Adapts a traversal log into the engine-agnostic counter rows the
/// cross-engine agreement checker (check/agreement.h) compares. The
/// bottom_up_scanned column is direction-specific by design and is
/// deliberately not part of the agreement contract.
[[nodiscard]] inline std::vector<check::LevelCounters> to_level_counters(
    const TraversalLog& log) {
  std::vector<check::LevelCounters> out;
  out.reserve(log.levels.size());
  for (const LevelRecord& r : log.levels) {
    out.push_back({r.level, r.frontier_vertices, r.frontier_edges,
                   r.next_vertices});
  }
  return out;
}

/// Pure top-down traversal (paper Algorithm 1).
BfsResult run_top_down(const CsrGraph& g, vid_t root,
                       TraversalLog* log = nullptr);

/// Pure bottom-up traversal (paper Algorithm 2).
BfsResult run_bottom_up(const CsrGraph& g, vid_t root,
                        TraversalLog* log = nullptr);

/// Textbook serial queue BFS; the oracle all parallel kernels are
/// checked against in tests.
BfsResult run_serial(const CsrGraph& g, vid_t root);

}  // namespace bfsx::bfs
