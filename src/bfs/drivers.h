// Whole-traversal drivers: run a single direction (or the serial
// reference) from root to completion. The hybrid and cross-architecture
// executors live in src/core; these drivers are the pure baselines the
// paper calls GPUTD/GPUBU/CPUTD/CPUBU when bound to a device model.
//
// All three drivers are templates over graph views (graph/view.h):
// run_top_down and run_serial need only out-neighbour enumeration
// (graph::GraphView); run_bottom_up needs predecessor access
// (graph::TransposeView). The CsrGraph overloads forward through the
// zero-overhead adapter.
#pragma once

#include <deque>

#include "bfs/bottomup.h"
#include "bfs/state.h"
#include "bfs/topdown.h"
#include "check/agreement.h"
#include "graph/view.h"

namespace bfsx::bfs {

/// Per-level record of a full traversal; the raw material for the
/// paper's Figures 1-3 and for LevelTrace (src/core).
struct LevelRecord {
  std::int32_t level = 0;       // level being *expanded* (0 = root level)
  vid_t frontier_vertices = 0;  // |V|cq
  eid_t frontier_edges = 0;     // |E|cq
  eid_t bottom_up_scanned = 0;  // edges a BU pass scanned (0 for TD runs)
  vid_t next_vertices = 0;
};

struct TraversalLog {
  std::vector<LevelRecord> levels;
};

/// Adapts a traversal log into the engine-agnostic counter rows the
/// cross-engine agreement checker (check/agreement.h) compares. The
/// bottom_up_scanned column is direction-specific by design and is
/// deliberately not part of the agreement contract.
[[nodiscard]] inline std::vector<check::LevelCounters> to_level_counters(
    const TraversalLog& log) {
  std::vector<check::LevelCounters> out;
  out.reserve(log.levels.size());
  for (const LevelRecord& r : log.levels) {
    out.push_back({r.level, r.frontier_vertices, r.frontier_edges,
                   r.next_vertices});
  }
  return out;
}

/// Pure top-down traversal (paper Algorithm 1).
template <graph::GraphView V>
BfsResult run_top_down(const V& g, vid_t root, TraversalLog* log = nullptr) {
  BfsState state(g.num_vertices(), root);
  while (!state.frontier_empty()) {
    const std::int32_t lvl = state.current_level;
    const TopDownStats s = top_down_step(g, state);
    if (log != nullptr) {
      log->levels.push_back({lvl, s.frontier_vertices, s.frontier_edges,
                             /*bottom_up_scanned=*/0, s.next_vertices});
    }
  }
  return std::move(state).take_result(g);
}

/// Pure bottom-up traversal (paper Algorithm 2).
template <graph::TransposeView V>
BfsResult run_bottom_up(const V& g, vid_t root, TraversalLog* log = nullptr) {
  BfsState state(g.num_vertices(), root);
  while (!state.frontier_empty()) {
    const std::int32_t lvl = state.current_level;
    const eid_t cq_edges =
        state.frontier_queue.empty()
            ? 0
            : frontier_out_edges(g, state.frontier_queue);
    const vid_t cq_vertices = static_cast<vid_t>(state.frontier_queue.size());
    const BottomUpStats s = bottom_up_step(g, state);
    if (log != nullptr) {
      log->levels.push_back(
          {lvl, cq_vertices, cq_edges, s.edges_scanned(), s.next_vertices});
    }
  }
  return std::move(state).take_result(g);
}

/// Textbook serial queue BFS; the oracle all parallel kernels are
/// checked against in tests.
template <graph::GraphView V>
BfsResult run_serial(const V& g, vid_t root) {
  BfsState state(g.num_vertices(), root);
  std::deque<vid_t> queue;
  queue.push_back(root);
  while (!queue.empty()) {
    const vid_t u = queue.front();
    queue.pop_front();
    g.for_each_out_neighbor(u, [&state, &queue, u](vid_t v) {
      auto& p = state.parent[static_cast<std::size_t>(v)];
      if (p == kNoVertex) {
        p = u;
        state.level[static_cast<std::size_t>(v)] =
            state.level[static_cast<std::size_t>(u)] + 1;
        ++state.reached;
        queue.push_back(v);
      }
    });
  }
  state.frontier_queue.clear();
  return std::move(state).take_result(g);
}

/// CSR entry points: forward through the zero-overhead adapter.
BfsResult run_top_down(const CsrGraph& g, vid_t root,
                       TraversalLog* log = nullptr);
BfsResult run_bottom_up(const CsrGraph& g, vid_t root,
                        TraversalLog* log = nullptr);
BfsResult run_serial(const CsrGraph& g, vid_t root);

}  // namespace bfsx::bfs
