// Shared BFS traversal state threaded through the level-step kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "check/contract.h"
#include "check/report.h"
#include "graph/bitmap.h"
#include "graph/csr.h"
#include "graph/types.h"

namespace bfsx::bfs {

using graph::Bitmap;
using graph::CsrGraph;
using graph::eid_t;
using graph::kNoVertex;
using graph::vid_t;

/// The traversal direction pair lives in graph/types.h (shared
/// vocabulary — the trace schema and simulators name it without
/// depending on the kernel layer); re-exported here so kernel code
/// keeps writing bfs::Direction.
using graph::Direction;
using graph::to_string;

/// Final output of a BFS: the paper's predecessor map and level map
/// ("The general output of BFS is a predecessor map and a level map",
/// Section II-A).
struct BfsResult {
  std::vector<vid_t> parent;        // kNoVertex if unreached
  std::vector<std::int32_t> level;  // -1 if unreached
  vid_t reached = 0;                // vertices reached, incl. the root
  /// Undirected edges inside the reached component; the Graph 500 TEPS
  /// numerator.
  eid_t edges_in_component = 0;
};

/// Mutable traversal state. Kernels advance it one level at a time,
/// which is exactly the granularity at which the paper's combination
/// techniques switch direction (and switch devices).
///
/// The state is sized purely by |V|, so the same object serves CSR
/// graphs and implicit GraphViews (graph/view.h); the CsrGraph
/// overloads below are conveniences that extract `num_vertices()`.
struct BfsState {
  /// Sizes the maps for `num_vertices` vertices and arms a traversal
  /// from `root` — the representation-independent core.
  BfsState(vid_t num_vertices, vid_t root) { reset(num_vertices, root); }

  explicit BfsState(const CsrGraph& g, vid_t root) {
    reset(g.num_vertices(), root);
  }

  /// Re-arms the state for a fresh traversal of an `num_vertices`-vertex
  /// graph from `root`, reusing every allocation the previous run left
  /// behind (vector and bitmap capacities, the compacted `unvisited`
  /// list's storage). A reset state is indistinguishable from a freshly
  /// constructed one — this is what lets `StatePool` hand the same
  /// object to run after run. Also valid on a moved-from state
  /// (take_result empties parent/level; assign refills them).
  void reset(vid_t num_vertices, vid_t root);

  void reset(const CsrGraph& g, vid_t root) { reset(g.num_vertices(), root); }

  std::vector<vid_t> parent;
  std::vector<std::int32_t> level;
  Bitmap visited;

  /// Current frontier, kept in *both* representations. Top-down reads
  /// the queue; bottom-up reads the bitmap. Keeping them in sync costs
  /// O(|frontier|) per level and models the queue<->bitmap conversion
  /// the real heterogeneous system performs at each handoff.
  std::vector<vid_t> frontier_queue;
  Bitmap frontier_bitmap;

  /// Bottom-up candidate list: once primed (first bottom-up level) it
  /// holds, in ascending order, a superset of the unvisited vertices —
  /// exact right after a bottom-up step, possibly carrying stragglers
  /// that interleaved top-down steps visited since. bottom_up_step
  /// iterates it instead of rescanning 0..n and compacts it in place
  /// each level; stale entries are skipped via the visited test, so the
  /// kernel counters are identical to a full scan's.
  std::vector<vid_t> unvisited;
  bool unvisited_primed = false;

  /// Scratch next-frontier bitmap reused by bottom_up_step so no level
  /// allocates. Invariant: all-zero between steps (the kernel clears
  /// only the words the previous frontier dirtied).
  Bitmap bu_scratch;

  /// Top-down scratch: per-thread discovery buffers and the merged next
  /// queue, owned by the state so steady-state levels allocate nothing
  /// (mirror of bu_scratch for the other direction). The kernel sizes
  /// td_local_next to the team width on first use, clears the parts
  /// (capacity retained) each level, and swaps td_next with the
  /// frontier queue — after the first few levels every buffer has
  /// reached its high-water capacity and stays there.
  std::vector<std::vector<vid_t>> td_local_next;
  std::vector<vid_t> td_next;

  /// Hub-cache frontier snapshot (bfs/hub_cache.h): bit r set iff hub
  /// rank r is in the current frontier. Rebuilt O(k) per bottom-up
  /// level by HubCache::snapshot_frontier; per-state so concurrent
  /// traversals sharing one immutable HubCache never race. Empty unless
  /// the hub-cache tuning knob is on.
  Bitmap hub_bits;

  std::int32_t current_level = 0;
  vid_t reached = 1;

  [[nodiscard]] bool frontier_empty() const noexcept {
    return frontier_queue.empty();
  }

  /// Paranoid structural validator (BFSX_PARANOID tier; O(V)). Valid
  /// *between* level steps — kernels may transiently break these mid
  /// step. Appends numbered failures to `report`:
  ///   * parent/level/visited agree per vertex (set together, parent in
  ///     range, level <= current_level, tree edges span one level);
  ///   * `reached` equals the visited population count;
  ///   * frontier queue and bitmap hold the same vertex set, all at
  ///     current_level;
  ///   * `bu_scratch` is all-clear (the zero-rescan wipe invariant);
  ///   * once primed, `unvisited` is strictly ascending and a superset
  ///     of the not-yet-visited vertices (stragglers visited by
  ///     interleaved top-down steps are legal leftovers).
  void check_invariants(vid_t num_vertices, check::CheckReport& report) const;

  void check_invariants(const CsrGraph& g, check::CheckReport& report) const {
    check_invariants(g.num_vertices(), report);
  }

  /// Convenience wrapper: throws check::ContractViolation listing every
  /// retained failure.
  void assert_invariants(vid_t num_vertices) const;

  void assert_invariants(const CsrGraph& g) const {
    assert_invariants(g.num_vertices());
  }

  /// Extracts the final result (parent/level maps are moved out).
  /// Works for any graph representation that reports vertex count,
  /// out-degrees, and symmetry — CsrGraph or any GraphView.
  template <typename G>
  [[nodiscard]] BfsResult take_result(const G& g) && {
    BfsResult r;
    r.reached = reached;
    // Count directed edges whose tail is reached; for a symmetric graph
    // halving gives the undirected count Graph 500 uses for TEPS.
    eid_t directed = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (parent[static_cast<std::size_t>(v)] != kNoVertex) {
        directed += g.out_degree(v);
      }
    }
    r.edges_in_component = g.is_symmetric() ? directed / 2 : directed;
    r.parent = std::move(parent);
    r.level = std::move(level);
    return r;
  }
};

}  // namespace bfsx::bfs
