#include "bfs/frontier.h"

#include <algorithm>
#include <cstdint>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace bfsx::bfs {

void queue_to_bitmap(const std::vector<graph::vid_t>& queue,
                     graph::Bitmap& bitmap) {
  bitmap.reset();
  for (graph::vid_t v : queue) bitmap.set(static_cast<std::size_t>(v));
}

void bitmap_to_queue(const graph::Bitmap& bitmap,
                     std::vector<graph::vid_t>& queue) {
  const std::size_t nwords = bitmap.word_count();
#ifdef _OPENMP
  // Each worker decodes a contiguous word range into its own slice of
  // the output (slice starts come from a popcount prefix sum), so the
  // queue is ascending — and bit-identical to the serial decode — for
  // any thread count. The chunking assumes the team really has
  // `workers` threads, which a nested region does not deliver (it runs
  // with 1) — decode serially there.
  const int workers = nwords >= 4096 && !omp_in_parallel()
                          ? std::max(1, omp_get_max_threads())
                          : 1;
  if (workers > 1) {
    const std::uint64_t* words = bitmap.words();
    std::vector<std::size_t> start(static_cast<std::size_t>(workers) + 1, 0);
#pragma omp parallel num_threads(workers)
    {
      const int t = omp_get_thread_num();
      const std::size_t lo = nwords * static_cast<std::size_t>(t) /
                             static_cast<std::size_t>(workers);
      const std::size_t hi = nwords * (static_cast<std::size_t>(t) + 1) /
                             static_cast<std::size_t>(workers);
      std::size_t count = 0;
      for (std::size_t w = lo; w < hi; ++w) {
        count += static_cast<std::size_t>(__builtin_popcountll(words[w]));
      }
      start[static_cast<std::size_t>(t) + 1] = count;
    }
    for (int t = 0; t < workers; ++t) {
      start[static_cast<std::size_t>(t) + 1] +=
          start[static_cast<std::size_t>(t)];
    }
    queue.resize(start[static_cast<std::size_t>(workers)]);
    graph::vid_t* out = queue.data();
#pragma omp parallel num_threads(workers)
    {
      const int t = omp_get_thread_num();
      const std::size_t lo = nwords * static_cast<std::size_t>(t) /
                             static_cast<std::size_t>(workers);
      const std::size_t hi = nwords * (static_cast<std::size_t>(t) + 1) /
                             static_cast<std::size_t>(workers);
      std::size_t w_out = start[static_cast<std::size_t>(t)];
      for (std::size_t w = lo; w < hi; ++w) {
        std::uint64_t word = words[w];
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          out[w_out++] = static_cast<graph::vid_t>(
              (w << 6) + static_cast<std::size_t>(bit));
          word &= word - 1;
        }
      }
    }
    return;
  }
#else
  (void)nwords;
#endif
  queue.clear();
  bitmap.for_each_set([&queue](graph::vid_t v) { queue.push_back(v); });
}

graph::eid_t frontier_out_edges(const graph::CsrGraph& g,
                                const std::vector<graph::vid_t>& queue) {
  graph::eid_t total = 0;
  for (graph::vid_t v : queue) total += g.out_degree(v);
  return total;
}

}  // namespace bfsx::bfs
