#include "bfs/frontier.h"

namespace bfsx::bfs {

void queue_to_bitmap(const std::vector<graph::vid_t>& queue,
                     graph::Bitmap& bitmap) {
  bitmap.reset();
  for (graph::vid_t v : queue) bitmap.set(static_cast<std::size_t>(v));
}

void bitmap_to_queue(const graph::Bitmap& bitmap,
                     std::vector<graph::vid_t>& queue) {
  queue.clear();
  bitmap.for_each_set([&queue](graph::vid_t v) { queue.push_back(v); });
}

graph::eid_t frontier_out_edges(const graph::CsrGraph& g,
                                const std::vector<graph::vid_t>& queue) {
  graph::eid_t total = 0;
  for (graph::vid_t v : queue) total += g.out_degree(v);
  return total;
}

}  // namespace bfsx::bfs
