#include "bfs/state_pool.h"

namespace bfsx::bfs {

void StatePool::Lease::release() noexcept {
  if (pool_ != nullptr && state_ != nullptr) {
    const std::lock_guard<std::mutex> lock(pool_->mu_);
    pool_->free_.push_back(std::move(state_));
  }
  pool_ = nullptr;
  state_ = nullptr;
}

StatePool::Lease StatePool::acquire(graph::vid_t num_vertices,
                                    graph::vid_t root) {
  std::unique_ptr<BfsState> state;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      state = std::move(free_.back());
      free_.pop_back();
    } else {
      ++created_;
    }
  }
  if (state != nullptr) {
    state->reset(num_vertices, root);
  } else {
    state = std::make_unique<BfsState>(num_vertices, root);
  }
  return {this, std::move(state)};
}

std::size_t StatePool::created() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

std::size_t StatePool::idle() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

}  // namespace bfsx::bfs
