#include "bfs/state.h"

namespace bfsx::bfs {

BfsResult BfsState::take_result(const CsrGraph& g) && {
  BfsResult r;
  r.reached = reached;
  // Count directed edges whose tail is reached; for a symmetric graph
  // halving gives the undirected count Graph 500 uses for TEPS.
  eid_t directed = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (parent[static_cast<std::size_t>(v)] != kNoVertex) {
      directed += g.out_degree(v);
    }
  }
  r.edges_in_component = g.is_symmetric() ? directed / 2 : directed;
  r.parent = std::move(parent);
  r.level = std::move(level);
  return r;
}

}  // namespace bfsx::bfs
