#include "bfs/state.h"

#include <algorithm>

#include "check/contract.h"
#include "graph/numa.h"

namespace bfsx::bfs {

void BfsState::reset(vid_t num_vertices, vid_t root) {
  BFSX_CHECK(root >= 0 && root < num_vertices)
      << "BFS root " << root << " out of range [0, " << num_vertices << ")";
  const auto n = static_cast<std::size_t>(num_vertices);
  // Pool-reuse path: same-size maps are refilled with a thread-chunked
  // fill (first-touch-friendly and parallel); the growth path keeps the
  // plain assign, which must reallocate anyway.
  if (parent.size() == n) {
    graph::numa::parallel_fill(parent.data(), n, kNoVertex);
  } else {
    parent.assign(n, kNoVertex);
  }
  if (level.size() == n) {
    graph::numa::parallel_fill(level.data(), n, std::int32_t{-1});
  } else {
    level.assign(n, -1);
  }
  visited.resize_and_reset(n);
  frontier_queue.clear();
  frontier_bitmap.resize_and_reset(n);
  unvisited.clear();
  unvisited_primed = false;
  bu_scratch.resize_and_reset(n);
  for (auto& part : td_local_next) part.clear();
  td_next.clear();
  current_level = 0;
  parent[static_cast<std::size_t>(root)] = root;
  level[static_cast<std::size_t>(root)] = 0;
  visited.set(static_cast<std::size_t>(root));
  frontier_queue.push_back(root);
  frontier_bitmap.set(static_cast<std::size_t>(root));
  reached = 1;
}

void BfsState::check_invariants(vid_t num_vertices,
                                check::CheckReport& report) const {
  const auto n = static_cast<std::size_t>(num_vertices);
  if (parent.size() != n || level.size() != n || visited.size() != n) {
    report.failf() << "map sizes (parent " << parent.size() << ", level "
                   << level.size() << ", visited " << visited.size()
                   << ") do not match |V| = " << n;
    return;  // nothing below can index safely
  }

  // Per-vertex agreement of the three reachability encodings.
  vid_t at_current = 0;
  for (std::size_t v = 0; v < n && report.wants_more(); ++v) {
    const vid_t p = parent[v];
    const std::int32_t lv = level[v];
    if ((p == kNoVertex) != (lv < 0)) {
      report.failf() << "vertex " << v << ": parent (" << p << ") and level ("
                     << lv << ") disagree about reachability";
      continue;
    }
    if (visited.test(v) != (lv >= 0)) {
      report.failf() << "vertex " << v << ": visited bit is "
                     << visited.test(v) << " but level is " << lv;
      continue;
    }
    if (lv < 0) continue;
    if (lv > current_level) {
      report.failf() << "vertex " << v << ": level " << lv
                     << " exceeds current_level " << current_level;
    }
    if (lv == current_level) ++at_current;
    if (p < 0 || static_cast<std::size_t>(p) >= n) {
      report.failf() << "vertex " << v << ": parent " << p
                     << " out of range [0, " << n << ")";
      continue;
    }
    if (static_cast<std::size_t>(p) == v) {
      if (lv != 0) {
        report.failf() << "vertex " << v << ": self-parented at level " << lv
                       << " (only the root, at level 0, may self-parent)";
      }
    } else if (level[static_cast<std::size_t>(p)] != lv - 1) {
      report.failf() << "vertex " << v << ": level " << lv
                     << " is not parent " << p << "'s level "
                     << level[static_cast<std::size_t>(p)] << " + 1";
    }
  }

  const auto visited_count = static_cast<vid_t>(visited.count());
  if (reached != visited_count) {
    report.failf() << "reached = " << reached
                   << " does not match visited population " << visited_count;
  }

  // Frontier: both representations hold exactly the current level set.
  if (frontier_bitmap.size() != n) {
    report.failf() << "frontier bitmap sized " << frontier_bitmap.size()
                   << ", expected " << n;
  } else {
    if (frontier_bitmap.count() != frontier_queue.size()) {
      report.failf() << "frontier queue (" << frontier_queue.size()
                     << " vertices) and bitmap (" << frontier_bitmap.count()
                     << " bits) disagree";
    }
    for (vid_t v : frontier_queue) {
      if (!report.wants_more()) break;
      if (v < 0 || static_cast<std::size_t>(v) >= n) {
        report.failf() << "frontier queue entry " << v << " out of range";
        continue;
      }
      if (!frontier_bitmap.test(static_cast<std::size_t>(v))) {
        report.failf() << "frontier vertex " << v << " missing from bitmap";
      }
      if (level[static_cast<std::size_t>(v)] != current_level) {
        report.failf() << "frontier vertex " << v << " is at level "
                       << level[static_cast<std::size_t>(v)]
                       << ", not current_level " << current_level;
      }
    }
    if (static_cast<vid_t>(frontier_queue.size()) != at_current &&
        report.wants_more()) {
      report.failf() << "frontier holds " << frontier_queue.size()
                     << " vertices but " << at_current << " are at level "
                     << current_level;
    }
  }

  // Zero-rescan invariants from the compacted bottom-up kernel.
  if (!bu_scratch.none()) {
    report.failf() << "bu_scratch dirty between steps (first set bit "
                   << bu_scratch.find_first() << " of "
                   << bu_scratch.count() << ")";
  }
  if (unvisited_primed) {
    for (std::size_t i = 1; i < unvisited.size() && report.wants_more(); ++i) {
      if (unvisited[i - 1] >= unvisited[i]) {
        report.failf() << "unvisited list not strictly ascending at index "
                       << i << " (" << unvisited[i - 1]
                       << " >= " << unvisited[i] << ")";
      }
    }
    // Superset walk: every not-yet-visited vertex must appear. The list
    // is ascending, so one merge pass suffices.
    std::size_t cursor = 0;
    for (std::size_t v = 0; v < n && report.wants_more(); ++v) {
      if (visited.test(v)) continue;
      while (cursor < unvisited.size() &&
             static_cast<std::size_t>(unvisited[cursor]) < v) {
        ++cursor;  // stragglers (already visited) are legal
      }
      if (cursor >= unvisited.size() ||
          static_cast<std::size_t>(unvisited[cursor]) != v) {
        report.failf() << "unvisited vertex " << v
                       << " missing from the candidate list (superset "
                          "invariant broken)";
      }
    }
  }
}

void BfsState::assert_invariants(vid_t num_vertices) const {
  check::CheckReport report;
  check_invariants(num_vertices, report);
  report.throw_if_failed("BfsState::check_invariants");
}

}  // namespace bfsx::bfs
