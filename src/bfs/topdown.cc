#include "bfs/topdown.h"

#include <cstddef>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bfs/frontier.h"
#include "check/contract.h"

namespace bfsx::bfs {

TopDownStats top_down_step(const CsrGraph& g, BfsState& state) {
  TopDownStats stats;
  stats.frontier_vertices = static_cast<vid_t>(state.frontier_queue.size());

  const auto& queue = state.frontier_queue;
  const std::int32_t next_level = state.current_level + 1;
  // |E|cq is accumulated inside the traversal loop (one queue walk)
  // rather than by a frontier_out_edges pre-pass (two queue walks); the
  // reduction makes it exact under any schedule.
  eid_t frontier_edges = 0;

  std::vector<vid_t> next;
#ifdef _OPENMP
  const int num_threads = omp_get_max_threads();
#else
  const int num_threads = 1;
#endif
  std::vector<std::vector<vid_t>> local_next(
      static_cast<std::size_t>(num_threads));

#ifdef _OPENMP
#pragma omp parallel reduction(+ : frontier_edges)
#endif
  {
#ifdef _OPENMP
    const int tid = omp_get_thread_num();
#else
    const int tid = 0;
#endif
    auto& mine = local_next[static_cast<std::size_t>(tid)];
#ifdef _OPENMP
#pragma omp for schedule(dynamic, 64) nowait
#endif
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const vid_t u = queue[i];
      frontier_edges += g.out_degree(u);
      for (vid_t v : g.out_neighbors(u)) {
        // Algorithm 1 line 9: visited check, fused with the claim so two
        // frontier vertices cannot both adopt v.
        if (state.visited.test_and_set_atomic(static_cast<std::size_t>(v))) {
          state.parent[static_cast<std::size_t>(v)] = u;
          state.level[static_cast<std::size_t>(v)] = next_level;
          mine.push_back(v);
        }
      }
    }
  }

  stats.frontier_edges = frontier_edges;

  std::size_t total = 0;
  for (const auto& part : local_next) total += part.size();
  next.reserve(total);
  for (const auto& part : local_next) {
    next.insert(next.end(), part.begin(), part.end());
  }

  stats.next_vertices = static_cast<vid_t>(next.size());
  state.reached += stats.next_vertices;
  state.current_level = next_level;
  state.frontier_queue = std::move(next);
  queue_to_bitmap(state.frontier_queue, state.frontier_bitmap);
  // Catches a lost atomic claim (parent written without the level, a
  // double discovery) at the level it happened, including the straggler
  // bookkeeping this step leaves in a primed bottom-up candidate list.
  BFSX_PARANOID(state.assert_invariants(g));
  return stats;
}

}  // namespace bfsx::bfs
