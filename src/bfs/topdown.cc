#include "bfs/topdown.h"

namespace bfsx::bfs {

TopDownStats top_down_step(const CsrGraph& g, BfsState& state) {
  return top_down_step(graph::CsrGraphView(g), state);
}

TopDownStats top_down_step(const CsrGraph& g, BfsState& state,
                           MemTuning tuning) {
  return top_down_step(graph::CsrGraphView(g), state, tuning);
}

}  // namespace bfsx::bfs
