// Hub-cached bottom-up: a compact, L1-resident frontier bitmap over the
// top-k out-degree vertices ("hubs").
//
// Why it helps: in an R-MAT graph a huge fraction of in-edges point at
// a few hundred hubs, and during the mid-traversal levels (where the
// combination heuristic runs bottom-up) those hubs are almost always in
// the frontier. The stock bottom-up scan discovers that by testing
// `frontier_bitmap[u]` for each in-neighbour u — a random read into an
// |V|-bit map that misses cache constantly. The hub cache instead
// precomputes, per vertex, the sub-row of its in-neighbours that are
// hubs (as 16-bit ranks) and snapshots the hubs' frontier membership
// into a k-bit side bitmap once per level. A candidate then probes the
// k-bit map — which fits in one or two cache lines for k ≤ 1024 — and
// only falls back to the full-width scan when no hub parent is found.
//
// Exactness: a hub in-neighbour IS an in-neighbour, so the set of
// vertices discovered per level (and therefore every distance/level) is
// identical to the stock kernel's. What may differ is the *parent*
// chosen (a hub instead of the first frontier predecessor in row order)
// and the edges-scanned counters (hub probes are counted separately).
// The flag is off by default; the golden trace runs the stock path.
//
// Structure is immutable after construction and shared by concurrent
// traversals (parallel-roots batches); the per-traversal k-bit snapshot
// lives in BfsState::hub_bits. DESIGN.md §12.2 documents the sizing
// rule.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bitmap.h"
#include "graph/csr.h"
#include "graph/types.h"

namespace bfsx::bfs {

class HubCache {
 public:
  /// Selects the top-`k` out-degree vertices of `g` (ties toward the
  /// smaller id, via graph::top_out_degree_vertices — the same rule the
  /// serve-layer landmark cache uses) and builds the per-vertex hub
  /// in-neighbour sub-rows. `k` is clamped to [0, 65535] so ranks fit
  /// in 16 bits.
  HubCache(const graph::CsrGraph& g, int k);

  [[nodiscard]] std::size_t num_hubs() const noexcept { return hubs_.size(); }
  [[nodiscard]] graph::vid_t num_vertices() const noexcept {
    return num_vertices_;
  }

  /// Hub vertex id for a rank from hub_in_row().
  [[nodiscard]] graph::vid_t hub(std::uint16_t rank) const noexcept {
    return hubs_[rank];
  }

  [[nodiscard]] std::span<const graph::vid_t> hubs() const noexcept {
    return hubs_;
  }

  /// Ranks of v's in-neighbours that are hubs, in in-row order (so the
  /// first frontier hit is the hubbiest-available parent only by row
  /// position, exactly like the full scan restricted to hubs).
  [[nodiscard]] std::span<const std::uint16_t> hub_in_row(
      graph::vid_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    return {hub_rows_.data() + row_offsets_[u],
            static_cast<std::size_t>(row_offsets_[u + 1] - row_offsets_[u])};
  }

  /// Rebuilds `bits` (resized to num_hubs() if needed) as the hubs'
  /// current frontier membership: bit r set iff hubs_[r] is in
  /// `frontier`. O(k); called once per bottom-up level, outside the
  /// parallel region, so the snapshot is immutable during the scan.
  void snapshot_frontier(const graph::Bitmap& frontier,
                         graph::Bitmap& bits) const;

  /// Total ranks stored across all sub-rows (diagnostic; the memory
  /// cost of the cache is 2 bytes per stored rank + 8 bytes/vertex).
  [[nodiscard]] std::size_t total_hub_entries() const noexcept {
    return hub_rows_.size();
  }

 private:
  std::vector<graph::vid_t> hubs_;           // rank -> vertex id
  std::vector<graph::eid_t> row_offsets_;    // n + 1, into hub_rows_
  std::vector<std::uint16_t> hub_rows_;      // per-vertex hub ranks
  graph::vid_t num_vertices_ = 0;
};

}  // namespace bfsx::bfs
