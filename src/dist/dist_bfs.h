// Distributed-memory BFS simulation: N devices, 1D-partitioned graph,
// bulk-synchronous supersteps (Buluç & Beamer; Pan et al.).
//
// Each device owns a contiguous vertex range (graph/partition.h) and
// holds that range's rows. One superstep expands one BFS level:
//
//   1. The per-device frontier counters are allreduced and the *global*
//     direction for the level is chosen by the paper's M/N rule over
//     the aggregated |E|cq / |V|cq (the Buluç–Beamer distributed
//     direction-optimizing switch: every rank takes the same branch).
//   2a. Top-down: every device expands the frontier vertices it owns;
//       discoveries owned elsewhere are sent to their owner as
//       (vertex, parent) pairs in an all-to-all at the end of the step.
//   2b. Bottom-up: the frontier bitmap is allgathered (each device
//       ships its owned slice), then every device scans its own
//       unvisited vertices' in-neighbours against it; discoveries are
//       owned locally, so no pair traffic flows.
//   3. The superstep barrier: compute time is the max over devices,
//     communication is charged by the cluster's alpha-beta model.
//
// Execution is functional — the existing bfs:: kernels advance one
// authoritative global state, so distances and parents are exact by
// construction — while per-device counting passes over the partitioned
// subgraphs split the work counters that drive the modelled time.
#pragma once

#include <cstddef>
#include <vector>

#include "bfs/state.h"
#include "core/hybrid_policy.h"
#include "graph/partition.h"
#include "obs/sink.h"
#include "sim/cluster.h"

namespace bfsx::dist {

/// One executed superstep: the global direction, the BSP time split,
/// and how evenly the compute landed across devices.
struct DistLevelOutcome {
  bfs::Direction direction = bfs::Direction::kTopDown;
  std::int32_t level = 0;        // the level that was expanded
  double compute_seconds = 0.0;  // max over devices (the BSP barrier)
  double comm_seconds = 0.0;     // allreduce + frontier exchange
  /// max/mean of per-device compute seconds; 1.0 is a perfectly even
  /// superstep, P is one device doing all the work.
  double balance = 1.0;
  graph::vid_t frontier_vertices = 0;  // aggregated |V|cq
  graph::eid_t frontier_edges = 0;     // aggregated |E|cq
  /// Aggregated bottom-up scan split (0 for top-down supersteps).
  graph::eid_t bu_edges_hit = 0;
  graph::eid_t bu_edges_miss = 0;
  graph::vid_t next_vertices = 0;
  std::vector<double> device_compute_seconds;  // one entry per device
};

struct DistBfsRun {
  bfs::BfsResult result;
  double seconds = 0.0;          // compute_seconds + comm_seconds
  double compute_seconds = 0.0;  // sum over supersteps of the max
  double comm_seconds = 0.0;
  int direction_switches = 0;
  std::vector<DistLevelOutcome> levels;
  /// Resident bytes of each device's subgraph share.
  std::vector<std::size_t> device_graph_bytes;

  /// TEPS over the reached component at the modelled time (the
  /// Graph 500 figure of merit).
  [[nodiscard]] double teps() const {
    return seconds > 0
               ? static_cast<double>(result.edges_in_component) / seconds
               : 0.0;
  }
};

struct DistBfsOptions {
  /// Direction rule over the aggregated counters. The degenerate
  /// presets (always_top_down / always_bottom_up) express pure runs.
  core::HybridPolicy policy{};
  graph::PartitionStrategy strategy = graph::PartitionStrategy::kBlock;
  /// Optional, non-owning trace consumer. Each superstep is emitted as
  /// one level event (engine "dist") whose comm_seconds and balance
  /// carry the BSP fabric share and compute skew.
  obs::TraceSink* sink = nullptr;
};

/// Runs the BSP distributed BFS from `root` over `cluster` (one
/// partition per device). Throws std::invalid_argument when the graph
/// is empty or the root is out of range.
[[nodiscard]] DistBfsRun run_dist_bfs(const graph::CsrGraph& g,
                                      graph::vid_t root,
                                      const sim::Cluster& cluster,
                                      const DistBfsOptions& opts = {});

}  // namespace bfsx::dist
