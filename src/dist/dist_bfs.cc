#include "dist/dist_bfs.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "bfs/bottomup.h"
#include "bfs/topdown.h"
#include "core/trace_emit.h"

namespace bfsx::dist {
namespace {

using graph::eid_t;
using graph::vid_t;

/// Bytes of one (vertex, parent) discovery pair on the wire.
constexpr std::size_t kPairBytes = 2 * sizeof(vid_t);
/// Bytes of one device's (|V|cq, |E|cq) counter record in the
/// direction allreduce.
constexpr std::size_t kCounterBytes = sizeof(vid_t) + sizeof(eid_t);

std::size_t slice_bytes(vid_t vertices) {
  return (static_cast<std::size_t>(vertices) + 7) / 8;
}

/// Per-device top-down counting pass: splits |V|cq / |E|cq by owner and
/// counts the discovery pairs each device would ship to each peer.
/// Walks the same edges the kernel is about to traverse, exactly like
/// bottom_up_probe does for the single-device trace.
struct TopDownCount {
  std::vector<vid_t> frontier_vertices;   // per device
  std::vector<eid_t> frontier_edges;      // per device
  std::vector<std::vector<std::size_t>> pair_bytes;  // [from][to]
};

TopDownCount count_top_down(const std::vector<graph::LocalSubgraph>& subs,
                            const graph::VertexPartition& part,
                            const bfs::BfsState& state,
                            std::vector<graph::Bitmap>& sent_scratch,
                            std::vector<std::vector<vid_t>>& sent_marks) {
  const auto p = static_cast<std::size_t>(part.num_parts());
  TopDownCount count;
  count.frontier_vertices.assign(p, 0);
  count.frontier_edges.assign(p, 0);
  count.pair_bytes.assign(p, std::vector<std::size_t>(p, 0));

  for (const vid_t u : state.frontier_queue) {
    const auto from = static_cast<std::size_t>(part.owner(u));
    const graph::LocalSubgraph& sub = subs[from];
    ++count.frontier_vertices[from];
    for (const vid_t w : sub.out_neighbors(u)) {
      ++count.frontier_edges[from];
      if (state.visited.test(static_cast<std::size_t>(w))) continue;
      // Sender-side dedup: one pair per (sender, target) per level. The
      // scratch is per sender, so a target discovered by two different
      // devices is charged twice — as it is on a real wire.
      const auto bit = static_cast<std::size_t>(w);
      if (sent_scratch[from].test(bit)) continue;
      sent_scratch[from].set(bit);
      sent_marks[from].push_back(w);
      const auto to = static_cast<std::size_t>(part.owner(w));
      if (to != from) count.pair_bytes[from][to] += kPairBytes;
    }
  }
  for (std::size_t d = 0; d < p; ++d) {
    for (const vid_t w : sent_marks[d]) {
      sent_scratch[d].clear(static_cast<std::size_t>(w));
    }
    sent_marks[d].clear();
  }
  return count;
}

/// Per-device bottom-up counting pass (bottom_up_probe, split by owner).
struct BottomUpCount {
  std::vector<eid_t> hit_edges;
  std::vector<eid_t> miss_edges;
};

BottomUpCount count_bottom_up(const std::vector<graph::LocalSubgraph>& subs,
                              const graph::VertexPartition& part,
                              const bfs::BfsState& state) {
  const auto p = static_cast<std::size_t>(part.num_parts());
  BottomUpCount count;
  count.hit_edges.assign(p, 0);
  count.miss_edges.assign(p, 0);
  for (std::size_t d = 0; d < p; ++d) {
    const graph::LocalSubgraph& sub = subs[d];
    for (vid_t v = sub.first; v < sub.first + sub.num_local; ++v) {
      if (state.visited.test(static_cast<std::size_t>(v))) continue;
      eid_t walked = 0;
      bool hit = false;
      for (const vid_t u : sub.in_neighbors(v)) {
        ++walked;
        if (state.frontier_bitmap.test(static_cast<std::size_t>(u))) {
          hit = true;
          break;
        }
      }
      (hit ? count.hit_edges[d] : count.miss_edges[d]) += walked;
    }
  }
  return count;
}

/// max/mean of the per-device compute times (1.0 when all zero).
double balance_of(const std::vector<double>& seconds) {
  double mx = 0.0;
  double sum = 0.0;
  for (const double s : seconds) {
    mx = std::max(mx, s);
    sum += s;
  }
  if (sum <= 0.0) return 1.0;
  return mx / (sum / static_cast<double>(seconds.size()));
}

}  // namespace

DistBfsRun run_dist_bfs(const graph::CsrGraph& g, vid_t root,
                        const sim::Cluster& cluster,
                        const DistBfsOptions& opts) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("run_dist_bfs: empty graph");
  }
  if (root < 0 || root >= g.num_vertices()) {
    throw std::invalid_argument("run_dist_bfs: root out of range");
  }
  opts.policy.validate();

  const int num_devices = static_cast<int>(cluster.num_devices());
  const graph::VertexPartition part =
      graph::partition_vertices(g, num_devices, opts.strategy);
  std::vector<graph::LocalSubgraph> subs;
  subs.reserve(static_cast<std::size_t>(num_devices));
  for (int p = 0; p < num_devices; ++p) {
    subs.push_back(graph::extract_subgraph(g, part, p));
  }

  DistBfsRun run;
  run.device_graph_bytes.reserve(subs.size());
  for (const graph::LocalSubgraph& sub : subs) {
    run.device_graph_bytes.push_back(sub.memory_footprint_bytes());
  }

  obs::RunEvent trace = core::trace_begin_run(opts.sink, "dist", g, root);
  const std::string cluster_name =
      "cluster[" + std::to_string(cluster.num_devices()) + "]";

  bfs::BfsState state(g, root);
  std::vector<graph::Bitmap> sent_scratch;
  sent_scratch.reserve(cluster.num_devices());
  for (std::size_t d = 0; d < cluster.num_devices(); ++d) {
    sent_scratch.emplace_back(static_cast<std::size_t>(g.num_vertices()));
  }
  std::vector<std::vector<vid_t>> sent_marks(cluster.num_devices());

  bfs::Direction prev_direction = bfs::Direction::kTopDown;
  bool first_level = true;
  while (!state.frontier_empty()) {
    DistLevelOutcome out;
    out.level = state.current_level;
    out.frontier_vertices = static_cast<vid_t>(state.frontier_queue.size());
    out.frontier_edges = 0;
    for (const vid_t u : state.frontier_queue) {
      out.frontier_edges += g.out_degree(u);
    }

    // Superstep step 1: allreduce the counters, take the global branch.
    out.comm_seconds += cluster.allreduce_seconds(kCounterBytes);
    out.direction =
        opts.policy.decide(out.frontier_edges, out.frontier_vertices,
                           g.num_edges(), g.num_vertices());

    out.device_compute_seconds.assign(cluster.num_devices(), 0.0);
    if (out.direction == bfs::Direction::kTopDown) {
      const TopDownCount count =
          count_top_down(subs, part, state, sent_scratch, sent_marks);
      for (std::size_t d = 0; d < cluster.num_devices(); ++d) {
        out.device_compute_seconds[d] =
            cluster.device(d).top_down_cost(count.frontier_edges[d]);
      }
      // Step 2a: ship remote discoveries to their owners.
      out.comm_seconds += cluster.exchange_seconds(count.pair_bytes);
      const bfs::TopDownStats stats = bfs::top_down_step(g, state);
      out.next_vertices = stats.next_vertices;
    } else {
      // Step 2b: allgather the frontier bitmap (each device ships its
      // owned slice), then scan owned candidates against it.
      std::vector<std::size_t> slices(cluster.num_devices());
      for (std::size_t d = 0; d < cluster.num_devices(); ++d) {
        slices[d] = slice_bytes(part.part_size(static_cast<int>(d)));
      }
      out.comm_seconds += cluster.exchange_seconds(slices);
      const BottomUpCount count = count_bottom_up(subs, part, state);
      for (std::size_t d = 0; d < cluster.num_devices(); ++d) {
        out.device_compute_seconds[d] = cluster.device(d).bottom_up_cost(
            part.part_size(static_cast<int>(d)), count.hit_edges[d],
            count.miss_edges[d]);
        out.bu_edges_hit += count.hit_edges[d];
        out.bu_edges_miss += count.miss_edges[d];
      }
      const bfs::BottomUpStats stats = bfs::bottom_up_step(g, state);
      out.next_vertices = stats.next_vertices;
    }

    // Step 3: the barrier — the slowest device gates the superstep.
    out.compute_seconds =
        *std::max_element(out.device_compute_seconds.begin(),
                          out.device_compute_seconds.end());
    out.balance = balance_of(out.device_compute_seconds);

    if (!first_level && out.direction != prev_direction) {
      ++run.direction_switches;
    }
    first_level = false;
    prev_direction = out.direction;

    run.compute_seconds += out.compute_seconds;
    run.comm_seconds += out.comm_seconds;
    if (opts.sink != nullptr) {
      obs::LevelEvent event;
      event.level = out.level;
      event.direction = out.direction;
      event.device = cluster_name;
      event.frontier_vertices = out.frontier_vertices;
      event.frontier_edges = out.frontier_edges;
      event.bu_edges_hit = out.bu_edges_hit;
      event.bu_edges_miss = out.bu_edges_miss;
      event.next_vertices = out.next_vertices;
      event.compute_seconds = out.compute_seconds;
      event.comm_seconds = out.comm_seconds;
      event.balance = out.balance;
      opts.sink->on_level(event);
    }
    run.levels.push_back(std::move(out));
  }

  run.seconds = run.compute_seconds + run.comm_seconds;
  run.result = std::move(state).take_result(g);
  core::trace_end_run(opts.sink, std::move(trace), run.result, run.seconds,
                      run.comm_seconds,
                      static_cast<std::int32_t>(run.levels.size()),
                      run.direction_switches);
  return run;
}

}  // namespace bfsx::dist
