// bfsx — command-line driver for the library.
//
// Subcommands:
//   generate  write an R-MAT edge list to a file (.bel binary or text)
//   bfs       run a BFS engine over a generated or loaded graph and
//             print Graph 500-style statistics
//   tune      exhaustively tune (M, N) for a graph/device pair
//   train     run the offline pipeline and save a predictor model
//   predict   load a model and print the predicted switching points
//   serve     run the concurrent query engine over a workload trace
//
// Run `bfsx help` or any subcommand with no arguments for usage.
// Misspelled subcommands get the same did-you-mean treatment as
// options and engine names (tools::suggest_closest).
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "bfs/drivers.h"
#include "bfs/hub_cache.h"
#include "graph/compressed_csr.h"
#include "check/agreement.h"
#include "check/report.h"
#include "core/api.h"
#include "core/level_trace.h"
#include "core/online_tuner.h"
#include "core/tuner.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/io.h"
#include "graph/partition.h"
#include "graph/reorder.h"
#include "graph/scenario.h"
#include "graph500/engine_registry.h"
#include "graph500/runner.h"
#include "graph500/scenario_engine.h"
#include "obs/percentiles.h"
#include "obs/registry.h"
#include "obs/writers.h"
#include "serve/engine.h"
#include "serve/trace.h"
#include "sim/arch_config.h"
#include "sim/cluster.h"
#include "tools/args.h"

namespace {

using namespace bfsx;
using tools::Args;

/// Option names shared by every graph-consuming subcommand (--graph
/// FILE or R-MAT parameters).
const std::vector<std::string_view> kGraphKeys = {
    "graph", "scale", "edgefactor", "seed", "a", "b", "c", "d"};

std::vector<std::string_view> with_graph_keys(
    std::vector<std::string_view> extra) {
  extra.insert(extra.end(), kGraphKeys.begin(), kGraphKeys.end());
  return extra;
}

graph::RmatParams rmat_from_args(const Args& args) {
  graph::RmatParams p;
  p.scale = args.get_int("scale", 16);
  p.edgefactor = args.get_int("edgefactor", 16);
  p.seed = static_cast<std::uint64_t>(args.get_int("seed", 2014));
  p.a = args.get_double("a", 0.57);
  p.b = args.get_double("b", 0.19);
  p.c = args.get_double("c", 0.19);
  p.d = args.get_double("d", 0.05);
  return p;
}

/// Graph source: --graph FILE loads an edge list; otherwise R-MAT from
/// --scale/--edgefactor/... Kept as an edge list so callers that
/// relabel vertices (--reorder) can permute before building the CSR.
graph::EdgeList load_edges(const Args& args, graph::RmatParams* params_out) {
  if (const auto path = args.get("graph")) {
    std::printf("loading %s ...\n", path->c_str());
    return graph::load_edge_list(*path);
  }
  const graph::RmatParams p = rmat_from_args(args);
  if (params_out != nullptr) *params_out = p;
  std::printf("generating R-MAT scale=%d edgefactor=%d ...\n", p.scale,
              p.edgefactor);
  return graph::generate_rmat(p);
}

graph::CsrGraph load_graph(const Args& args, graph::RmatParams* params_out) {
  return graph::build_csr(load_edges(args, params_out));
}

sim::Device device_from_spec(const std::string& text) {
  if (text == "cpu" || text == "gpu" || text == "mic") {
    return sim::Device{sim::parse_arch_spec("base=" + text + ",name=" + text)};
  }
  return sim::Device{sim::parse_arch_spec(text)};
}

sim::Device device_from_args(const Args& args, const char* key = "device") {
  return device_from_spec(args.get_or(key, "cpu"));
}

/// Cluster source: --cluster names each device, '+'-separated (each
/// element a preset or a full key=value arch spec, e.g. "cpu+cpu+gpu");
/// otherwise --devices N copies of --device. Link knobs:
/// --link-latency-us / --link-gbps.
sim::Cluster cluster_from_args(const Args& args) {
  sim::InterconnectSpec fabric;
  fabric.name = "cluster-fabric";
  fabric.latency_us = args.get_double("link-latency-us", fabric.latency_us);
  fabric.bandwidth_gbps = args.get_double("link-gbps", fabric.bandwidth_gbps);

  std::vector<sim::Device> devices;
  if (const auto list = args.get("cluster")) {
    std::size_t begin = 0;
    while (begin <= list->size()) {
      const std::size_t end = list->find('+', begin);
      const std::string token = list->substr(
          begin, end == std::string::npos ? std::string::npos : end - begin);
      if (!token.empty()) devices.push_back(device_from_spec(token));
      if (end == std::string::npos) break;
      begin = end + 1;
    }
    if (devices.empty()) {
      throw std::invalid_argument("--cluster: no devices in list");
    }
  } else {
    const int ndev = args.get_int("devices", 2);
    if (ndev < 1) throw std::invalid_argument("--devices: need at least 1");
    const sim::Device proto = device_from_args(args);
    devices.assign(static_cast<std::size_t>(ndev), proto);
  }
  return sim::Cluster{std::move(devices), std::move(fabric)};
}

/// --trace-out FILE [--trace-format jsonl|csv] -> a writer sink, or
/// null when tracing is off.
std::unique_ptr<obs::TraceSink> sink_from_args(const Args& args) {
  const auto out = args.get("trace-out");
  if (!out) {
    if (args.has("trace-format")) {
      throw std::invalid_argument("--trace-format requires --trace-out");
    }
    return nullptr;
  }
  const std::string format = args.get_or("trace-format", "jsonl");
  if (format == "jsonl") return std::make_unique<obs::JsonlWriter>(*out);
  if (format == "csv") return std::make_unique<obs::CsvWriter>(*out);
  throw std::invalid_argument("--trace-format: expected jsonl or csv, got '" +
                              format + "'");
}

int cmd_generate(const Args& args) {
  args.check_known(with_graph_keys({"out"}));
  const graph::RmatParams p = rmat_from_args(args);
  const std::string out = args.get_or("out", "graph.bel");
  const graph::EdgeList el = graph::generate_rmat(p);
  graph::save_edge_list(out, el);
  std::printf("wrote %lld edges over %d vertices to %s\n",
              static_cast<long long>(el.num_edges()), el.num_vertices,
              out.c_str());
  return 0;
}

/// bfsx bfs --scenario: the Graph 500 protocol over an implicit graph
/// (grid world or n-puzzle state space) instead of a CSR one. The
/// kernels are the same templated level steps; only representation
/// changes, so the printed statistics are directly comparable with a
/// CSR run of the materialized graph.
int run_scenario_bfs(const Args& args) {
  // Flags that only make sense for materialized CSR graphs get a
  // targeted error before the generic unknown-option check.
  for (const char* key : {"graph", "scale", "edgefactor", "seed", "reorder",
                          "native", "device", "batch-size"}) {
    if (args.has(key)) {
      throw std::invalid_argument(
          std::string("--") + key +
          " cannot be combined with --scenario (implicit graphs are "
          "generated from the scenario spec, not loaded or relabelled)");
    }
  }
  args.check_known({"scenario", "root-state", "engine", "m", "n", "roots",
                    "batch", "metrics", "trace-out", "trace-format"});

  const graph500::BatchMode batch_mode =
      graph500::parse_batch_mode(args.get_or("batch", "serial"));
  if (batch_mode == graph500::BatchMode::kParallelRoots &&
      args.has("trace-out")) {
    throw std::invalid_argument(
        "--batch=parallel_roots cannot be combined with --trace-out: "
        "concurrent roots would interleave their trace events");
  }

  const graph::Scenario scenario = graph::parse_scenario(*args.get("scenario"));
  const auto [nv, ne] = std::visit(
      [](const auto& view) {
        return std::pair{view.num_vertices(), view.num_edges()};
      },
      scenario.graph);
  std::printf("scenario: %s — %d states, %lld directed moves\n",
              scenario.name.c_str(), nv, static_cast<long long>(ne));

  const std::unique_ptr<obs::TraceSink> sink = sink_from_args(args);
  bfs::StatePool pool;

  graph500::EngineConfig cfg;
  cfg.pool = &pool;
  cfg.policy = {args.get_double("m", 14.0), args.get_double("n", 24.0)};
  cfg.sink = sink.get();

  const std::string engine_name = args.get_or("engine", "native-hybrid");
  const graph500::EngineRegistry registry =
      graph500::EngineRegistry::with_builtin_engines();
  const graph500::ScenarioBfsEngine engine =
      registry.make_scenario_engine(engine_name, cfg);
  if (const auto* entry = registry.find(engine_name)) {
    std::printf("engine: %s — %s\n", entry->name.c_str(),
                entry->description.c_str());
  }
  if (batch_mode != graph500::BatchMode::kSerial) {
    std::printf("batch: %s\n", graph500::to_string(batch_mode));
  }

  obs::Registry metrics;
  graph500::RunnerOptions opts;
  opts.num_roots = args.get_int("roots", 8);
  opts.batch_mode = batch_mode;
  if (const auto root_state = args.get("root-state")) {
    // Root named in scenario coordinates ("x,y" / tile list), translated
    // through the view's id mapping — the scenario analogue of the
    // --reorder root translation on CSR graphs.
    opts.roots = {graph::resolve_root_state(scenario.graph, *root_state)};
  }
  if (args.get_bool("metrics", false)) opts.metrics = &metrics;

  const graph500::BenchmarkResult res =
      graph500::run_scenario_benchmark(scenario.graph, engine, opts);
  std::printf("%s", graph500::format_teps_stats(res.stats).c_str());
  std::printf("validation failures: %d / %zu\n", res.validation_failures,
              res.runs.size());
  std::printf("roots (scenario coordinates):");
  for (const graph500::RootRun& run : res.runs) {
    std::printf(" [%s]",
                graph::format_state(scenario.graph, run.root).c_str());
  }
  std::printf("\n");
  if (opts.metrics != nullptr) {
    std::printf("metrics:\n%s", metrics.format().c_str());
  }
  if (const auto out = args.get("trace-out")) {
    std::printf("trace (%s, schema %s) written to %s\n",
                args.get_or("trace-format", "jsonl").c_str(),
                obs::kTraceSchema, out->c_str());
  }
  return res.validation_failures == 0 ? 0 : 1;
}

int cmd_bfs(const Args& args) {
  if (args.has("scenario") || args.has("root-state")) {
    if (!args.has("scenario")) {
      throw std::invalid_argument(
          "--root-state requires --scenario (CSR roots are numeric ids; "
          "use --roots)");
    }
    return run_scenario_bfs(args);
  }
  args.check_known(with_graph_keys(
      {"engine", "device", "host", "m", "n", "m2", "n2", "roots", "native",
       "devices", "partition", "cluster", "link-latency-us", "link-gbps",
       "trace-out", "trace-format", "metrics", "paranoid", "batch",
       "batch-size", "reorder", "prefetch", "hub-cache", "compress"}));

  const graph500::BatchMode batch_mode =
      graph500::parse_batch_mode(args.get_or("batch", "serial"));
  if (batch_mode == graph500::BatchMode::kParallelRoots &&
      args.has("trace-out")) {
    throw std::invalid_argument(
        "--batch=parallel_roots cannot be combined with --trace-out: "
        "concurrent roots would interleave their trace events");
  }

  graph::RmatParams params;
  const graph::EdgeList edges = load_edges(args, &params);
  const int num_roots = args.get_int("roots", 8);

  // --reorder relabels the graph before traversal. Roots are sampled on
  // the *original* labelling (with the runner's default seed) and
  // mapped through the permutation, so a reordered run traverses the
  // same logical roots as an unreordered one; reported roots are
  // translated back below.
  const std::string reorder = args.get_or("reorder", "none");
  graph::Permutation perm;
  std::vector<graph::vid_t> explicit_roots;
  graph::CsrGraph g;
  if (reorder == "none") {
    g = graph::build_csr(edges);
  } else {
    const graph::CsrGraph original = graph::build_csr(edges);
    const std::vector<graph::vid_t> sampled =
        graph::sample_roots(original, num_roots, 500);
    if (reorder == "degree") {
      perm = graph::degree_order(original);
    } else if (reorder == "bfs") {
      perm = graph::bfs_order(original, sampled.front());
    } else {
      throw std::invalid_argument("--reorder: expected degree or bfs, got '" +
                                  reorder + "'");
    }
    g = graph::build_csr(graph::apply_permutation(edges, perm));
    explicit_roots.reserve(sampled.size());
    for (const graph::vid_t r : sampled) {
      explicit_roots.push_back(perm[static_cast<std::size_t>(r)]);
    }
    std::printf("reorder: %s order applied (%zu vertices relabelled)\n",
                reorder.c_str(), perm.size());
  }
  std::printf("graph: %s\n", graph::summarize(g).c_str());

  if (args.get_bool("paranoid", false)) {
    // Runtime tier of the paranoid validators (available even when the
    // library was compiled without -DBFSX_PARANOID=ON): full CSR
    // structural validation, then the paper's cross-engine counter
    // contract — top-down and bottom-up must report bit-equal |V|cq /
    // |E|cq / next at every level (Fig. 4, Table IV).
    g.assert_invariants();
    const graph::vid_t root = graph::sample_roots(g, 1, 7)[0];
    bfs::TraversalLog td_log;
    bfs::TraversalLog bu_log;
    (void)bfs::run_top_down(g, root, &td_log);
    (void)bfs::run_bottom_up(g, root, &bu_log);
    check::require_counter_agreement(bfs::to_level_counters(td_log),
                                     bfs::to_level_counters(bu_log),
                                     "top-down", "bottom-up");
    std::printf(
        "paranoid: CSR invariants ok; TD/BU counters agree over %zu levels "
        "(root %d)\n",
        td_log.levels.size(), root);
  }

  std::string engine_name = args.get_or(
      "engine",
      batch_mode == graph500::BatchMode::kMsBfs ? "msbfs" : "hybrid");
  // Compatibility spelling: `--native --engine td` == `--engine native-td`.
  if (args.get_bool("native", false) &&
      engine_name.rfind("native-", 0) != 0) {
    engine_name = "native-" + engine_name;
  }

  const std::unique_ptr<obs::TraceSink> sink = sink_from_args(args);

  // Pooled states: under --batch=parallel_roots each worker recycles a
  // BfsState instead of reallocating per root (native engines only; the
  // simulated engines model their state).
  bfs::StatePool pool;

  graph500::EngineConfig cfg;
  cfg.pool = &pool;
  cfg.device = device_from_args(args);
  cfg.host = device_from_args(args, "host");
  cfg.policy = {args.get_double("m", 14.0), args.get_double("n", 24.0)};
  cfg.accel_policy = {args.get_double("m2", 14.0),
                      args.get_double("n2", 24.0)};
  cfg.strategy =
      graph::parse_partition_strategy(args.get_or("partition", "block"));
  cfg.sink = sink.get();
  if (engine_name == "dist") {
    cfg.cluster = std::make_shared<const sim::Cluster>(cluster_from_args(args));
  }

  // Memory-subsystem knobs (native engines only; everything else
  // ignores them — DESIGN.md §12). The hub cache and compressed view
  // are built once here and outlive the engine closure below.
  const int prefetch_distance = args.get_int("prefetch", 0);
  if (prefetch_distance < 0) {
    throw std::invalid_argument("--prefetch: distance must be >= 0");
  }
  cfg.tuning.prefetch.distance = prefetch_distance;
  const int hub_k = args.get_int("hub-cache", 0);
  if (hub_k < 0) {
    throw std::invalid_argument("--hub-cache: k must be >= 0");
  }
  std::optional<bfs::HubCache> hub_cache;
  if (hub_k > 0) {
    hub_cache.emplace(g, hub_k);
    cfg.tuning.hub_cache = &*hub_cache;
    std::printf("hub-cache: %zu hubs, %zu cached in-edges\n",
                hub_cache->num_hubs(), hub_cache->total_hub_entries());
  }
  std::optional<graph::CompressedCsrView> compressed;
  if (args.get_bool("compress", false)) {
    compressed.emplace(g);
    cfg.compressed = &*compressed;
    std::printf("compress: %.2fx (%zu -> %zu adjacency bytes)\n",
                compressed->compression_ratio(),
                compressed->uncompressed_bytes(),
                compressed->compressed_bytes());
  }

  const graph500::EngineRegistry registry =
      graph500::EngineRegistry::with_builtin_engines();
  const graph500::BatchBfsEngine engine =
      registry.make_batch_engine(engine_name, cfg);
  if (const auto* entry = registry.find(engine_name)) {
    std::printf("engine: %s — %s\n", entry->name.c_str(),
                entry->description.c_str());
  }
  if (batch_mode != graph500::BatchMode::kSerial) {
    std::printf("batch: %s\n", graph500::to_string(batch_mode));
  }
  if (engine_name == "dist") {
    std::printf("        %zu device(s), %s partition, link %.1fus/%.0fGB/s\n",
                cfg.cluster->num_devices(), graph::to_string(cfg.strategy),
                cfg.cluster->interconnect().latency_us,
                cfg.cluster->interconnect().bandwidth_gbps);
  }

  obs::Registry metrics;
  graph500::RunnerOptions opts;
  opts.num_roots = num_roots;
  opts.roots = explicit_roots;  // non-empty only under --reorder
  opts.batch_mode = batch_mode;
  opts.batch_size = args.get_int("batch-size", 64);
  if (args.get_bool("metrics", false)) opts.metrics = &metrics;

  const graph500::BenchmarkResult res =
      graph500::run_benchmark(g, engine, opts);
  std::printf("%s", graph500::format_teps_stats(res.stats).c_str());
  std::printf("validation failures: %d / %zu\n", res.validation_failures,
              res.runs.size());
  if (!perm.empty()) {
    // Translate each run's root back to the pre-permutation namespace.
    const graph::Permutation inv = graph::invert_permutation(perm);
    std::printf("roots (original ids):");
    for (const graph500::RootRun& run : res.runs) {
      std::printf(" %d", inv[static_cast<std::size_t>(run.root)]);
    }
    std::printf("\n");
  }
  if (opts.metrics != nullptr) {
    std::printf("metrics:\n%s", metrics.format().c_str());
  }
  if (const auto out = args.get("trace-out")) {
    std::printf("trace (%s, schema %s) written to %s\n",
                args.get_or("trace-format", "jsonl").c_str(),
                obs::kTraceSchema, out->c_str());
  }
  return res.validation_failures == 0 ? 0 : 1;
}

int cmd_tune(const Args& args) {
  args.check_known(with_graph_keys({"device"}));
  const graph::CsrGraph g = load_graph(args, nullptr);
  const sim::Device device = device_from_args(args);
  const graph::vid_t root = graph::sample_roots(g, 1, 7)[0];
  const core::LevelTrace trace = core::build_level_trace(g, root);

  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();
  const core::CandidateSweep sweep =
      core::sweep_single(trace, device.spec(), cands);
  const core::TunedPolicy best = core::pick_best(sweep, cands);
  std::printf("exhaustive over %zu candidates: M=%.1f N=%.1f -> %.4f ms "
              "(worst %.4f ms, mean %.4f ms)\n",
              cands.size(), best.policy.m, best.policy.n,
              best.seconds * 1e3, sweep.worst_seconds() * 1e3,
              sweep.mean_seconds * 1e3);

  core::OnlineTuner online;
  const core::TunedPolicy quick = online.tune([&](const core::HybridPolicy& p) {
    return core::replay_single(trace, device.spec(), p);
  });
  std::printf("online tuner (%d probes): M=%.1f N=%.1f -> %.4f ms (%.0f%% of "
              "exhaustive best)\n",
              online.probes_used(), quick.policy.m, quick.policy.n,
              quick.seconds * 1e3, 100.0 * best.seconds / quick.seconds);
  return 0;
}

int cmd_analyze(const Args& args) {
  args.check_known(with_graph_keys({}));
  const graph::CsrGraph g = load_graph(args, nullptr);
  std::printf("%s\n", graph::summarize(g).c_str());

  const graph::ComponentStats comps = graph::compute_components(g);
  std::printf("components: %d (largest %d vertices, representative %d)\n",
              comps.num_components, comps.largest_size,
              comps.largest_representative);

  std::printf("out-degree histogram (log2 buckets):\n");
  const std::vector<graph::vid_t> hist = graph::degree_histogram_log2(g);
  for (std::size_t b = 0; b < hist.size(); ++b) {
    if (hist[b] == 0) continue;
    if (b == 0) {
      std::printf("  deg 0        : %d\n", hist[b]);
    } else {
      std::printf("  deg [%lld, %lld): %d\n", 1LL << (b - 1), 1LL << b,
                  hist[b]);
    }
  }
  return 0;
}

int cmd_trace(const Args& args) {
  args.check_known(with_graph_keys({"root"}));
  const graph::CsrGraph g = load_graph(args, nullptr);
  const graph::vid_t root = static_cast<graph::vid_t>(
      args.get_int("root", graph::sample_roots(g, 1, 7)[0]));
  const core::LevelTrace trace = core::build_level_trace(g, root);
  std::printf("# level trace: root=%d |V|=%d |E|=%lld\n", root,
              trace.num_vertices, static_cast<long long>(trace.num_edges));
  std::printf("level,frontier_vertices,frontier_edges,bu_hit,bu_miss,"
              "next_vertices\n");
  for (const core::TraceLevel& lvl : trace.levels) {
    std::printf("%d,%d,%lld,%lld,%lld,%d\n", lvl.level,
                lvl.frontier_vertices,
                static_cast<long long>(lvl.frontier_edges),
                static_cast<long long>(lvl.bu_edges_hit),
                static_cast<long long>(lvl.bu_edges_miss),
                lvl.next_vertices);
  }
  return 0;
}

int cmd_train(const Args& args) {
  args.check_known({"out", "batch"});
  const std::string out = args.get_or("out", "bfsx_switch_model.txt");
  const std::string batch = args.get_or("batch", "serial");
  if (batch != "serial" && batch != "parallel") {
    throw std::invalid_argument("--batch: expected serial or parallel, got '" +
                                batch + "'");
  }
  core::TrainerConfig cfg = core::default_trainer_config();
  cfg.parallel_labeling = batch == "parallel";
  std::printf("labelling %zu configurations by exhaustive search (%s)...\n",
              cfg.graphs.size() * cfg.arch_pairs.size(),
              cfg.parallel_labeling ? "graphs across OpenMP workers"
                                    : "serial");
  const core::TrainingData data = core::generate_training_data(cfg);
  const core::SwitchPredictor predictor = core::train_predictor(data);
  predictor.save_file(out);
  std::printf("model saved to %s\n", out.c_str());
  return 0;
}

int cmd_predict(const Args& args) {
  args.check_known(with_graph_keys({"model", "td-arch", "bu-arch"}));
  const auto model = args.get("model");
  if (!model) {
    std::fprintf(stderr, "predict: --model FILE is required\n");
    return 2;
  }
  const core::SwitchPredictor predictor =
      core::SwitchPredictor::load_file(*model);
  const graph::RmatParams p = rmat_from_args(args);
  const sim::Device td = device_from_args(args, "td-arch");
  const sim::Device bu = device_from_args(args, "bu-arch");
  const core::HybridPolicy policy =
      predictor.predict(core::features_from_rmat(p), td.spec(), bu.spec());
  std::printf("predicted switching point for scale=%d ef=%d on "
              "TD=%s / BU=%s: M=%.2f N=%.2f\n",
              p.scale, p.edgefactor, std::string(td.name()).c_str(),
              std::string(bu.name()).c_str(), policy.m, policy.n);
  return 0;
}

/// bfsx serve: the query-serving subsystem behind a CLI. Two modes:
/// --make-trace FILE writes a generated workload, --replay FILE runs
/// one against a live engine and prints throughput + latency
/// percentiles. The graph comes from the usual --graph/--scale keys.
int cmd_serve(const Args& args) {
  args.check_known(with_graph_keys(
      {"replay", "make-trace", "queries", "bfs-fraction", "reach-fraction",
       "hot-fraction", "hot-set", "insert-every", "remove-every",
       "publish-every", "trace-seed", "workers", "batch-max", "cache",
       "landmarks", "queue-cap", "fallback-engine", "m", "n", "trace-out",
       "trace-format", "delta", "compact-threshold", "repair", "lockstep",
       "metrics"}));
  const auto make = args.get("make-trace");
  const auto replay = args.get("replay");
  if (make.has_value() == replay.has_value()) {
    throw std::invalid_argument(
        "serve: exactly one of --make-trace FILE or --replay FILE is "
        "required");
  }

  graph::EdgeList edges = load_edges(args, nullptr);

  if (make) {
    const graph::CsrGraph g = graph::build_csr(edges);
    serve::TraceGenOptions topt;
    topt.num_queries = args.get_int("queries", 1000);
    topt.bfs_fraction = args.get_double("bfs-fraction", topt.bfs_fraction);
    topt.reach_fraction =
        args.get_double("reach-fraction", topt.reach_fraction);
    topt.hot_fraction = args.get_double("hot-fraction", topt.hot_fraction);
    topt.hot_set = args.get_int("hot-set", topt.hot_set);
    topt.insert_every = args.get_int("insert-every", 0);
    topt.remove_every = args.get_int("remove-every", 0);
    topt.publish_every = args.get_int("publish-every", 0);
    topt.seed = static_cast<std::uint64_t>(args.get_int("trace-seed", 42));
    const std::vector<serve::TraceOp> ops =
        serve::generate_query_trace(g, topt);
    serve::save_trace_file(ops, *make);
    std::printf("wrote %zu trace ops (%lld queries) to %s\n", ops.size(),
                static_cast<long long>(topt.num_queries), make->c_str());
    return 0;
  }

  const std::vector<serve::TraceOp> ops = serve::load_trace_file(*replay);
  const std::unique_ptr<obs::TraceSink> sink = sink_from_args(args);

  serve::ServeOptions sopt;
  sopt.workers = args.get_int("workers", 2);
  sopt.batch_max = args.get_int("batch-max", 64);
  sopt.cache_enabled = args.get_bool("cache", true);
  sopt.num_landmarks = args.get_int("landmarks", 16);
  sopt.policy = {args.get_double("m", 14.0), args.get_double("n", 24.0)};
  sopt.fallback_engine = args.get_or("fallback-engine", "native-hybrid");
  sopt.delta_publish = args.get_bool("delta", true);
  sopt.compact_threshold =
      args.get_double("compact-threshold", sopt.compact_threshold);
  sopt.repair_cache = args.get_bool("repair", true);
  sopt.sink = sink.get();
  // Default capacity fits the whole trace (the replay client is
  // open-loop); pass an explicit --queue-cap to see backpressure
  // rejections in the summary instead.
  const int cap = args.get_int("queue-cap", 0);
  sopt.queue_capacity =
      cap > 0 ? static_cast<std::size_t>(cap) : std::max(ops.size(), {1});

  serve::QueryEngine engine(std::move(edges), sopt);
  std::printf("serving %zu trace ops: workers=%d batch-max=%d cache=%s "
              "landmarks=%d\n",
              ops.size(), sopt.workers, sopt.batch_max,
              sopt.cache_enabled ? "on" : "off", sopt.num_landmarks);

  const bool lockstep = args.get_bool("lockstep", false);
  const serve::ReplaySummary sum =
      lockstep ? serve::replay_trace_lockstep(engine, ops)
               : serve::replay_trace(engine, ops);
  obs::Registry metrics;
  engine.export_metrics(metrics);
  engine.shutdown();
  const serve::ServeStats st = engine.stats();
  const obs::Percentiles lat = obs::compute_percentiles(sum.latencies);

  std::printf("queries: %lld served, %lld rejected (%lld cache hits)\n",
              static_cast<long long>(sum.served),
              static_cast<long long>(sum.rejected),
              static_cast<long long>(sum.cache_hits));
  std::printf("batching: %lld batched / %lld single over %lld dispatches "
              "(largest tick %lld)\n",
              static_cast<long long>(st.batched_queries),
              static_cast<long long>(st.single_queries),
              static_cast<long long>(st.dispatches),
              static_cast<long long>(st.max_batch));
  if (sum.inserts > 0 || sum.removes > 0 || sum.publishes > 0) {
    std::printf(
        "writes: %lld inserts, %lld removes, %lld publishes "
        "(%lld delta / %lld full; final epoch %llu)\n",
        static_cast<long long>(sum.inserts),
        static_cast<long long>(sum.removes),
        static_cast<long long>(sum.publishes),
        static_cast<long long>(st.delta_publishes),
        static_cast<long long>(st.full_publishes),
        static_cast<unsigned long long>(engine.current_epoch()));
    std::printf("cache re-arms: %lld repaired, %lld rebuilt\n",
                static_cast<long long>(st.cache_repairs),
                static_cast<long long>(st.cache_rebuilds));
  }
  std::printf("throughput: %.0f queries/s over %.3f s\n",
              sum.wall_seconds > 0.0
                  ? static_cast<double>(sum.served) / sum.wall_seconds
                  : 0.0,
              sum.wall_seconds);
  std::printf("latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
              lat.p50 * 1e3, lat.p95 * 1e3, lat.p99 * 1e3, lat.max * 1e3);
  if (args.get_bool("metrics", false)) {
    std::printf("%s", metrics.format().c_str());
  }
  if (const auto out = args.get("trace-out")) {
    std::printf("query events (%s, schema %s) written to %s\n",
                args.get_or("trace-format", "jsonl").c_str(),
                obs::kTraceSchema, out->c_str());
  }
  return 0;
}

int usage() {
  std::printf(
      "bfsx — heuristic cross-architecture BFS (ICPP'14 reproduction)\n\n"
      "usage: bfsx <command> [--option value ...]\n\n"
      "commands:\n"
      "  generate  --scale N --edgefactor E [--seed S --a --b --c --d] --out FILE\n"
      "  bfs       [--graph FILE | --scale N ...] --engine NAME\n"
      "            [--device cpu|gpu|mic|KEY=VAL,...] [--host cpu] [--m M --n N]\n"
      "            [--m2 M --n2 N] [--roots K] [--metrics] [--paranoid]\n"
      "            [--batch serial|parallel_roots|msbfs] [--batch-size 1..64]\n"
      "            [--reorder degree|bfs]\n"
      "            [--prefetch DIST] [--hub-cache K] [--compress]  (native-*)\n"
      "            [--trace-out FILE [--trace-format jsonl|csv]]\n"
      "            dist: [--devices N] [--partition block|balanced]\n"
      "                  [--cluster cpu+cpu+gpu] [--link-latency-us L --link-gbps B]\n"
      "            implicit: --scenario grid:WxH[:conn=4|8][:wall-density=D]\n"
      "                  [:wall-seed=S] | npuzzle:WxH  [--root-state \"x,y\"|tiles]\n"
      "                  (scenario-capable engines: native-td native-bu native-hybrid)\n"
      "  analyze   [--graph FILE | --scale N ...]   degree/component report\n"
      "  trace     [--graph FILE | --scale N ...] [--root R]   level-trace CSV\n"
      "  tune      [--graph FILE | --scale N ...] [--device ...]\n"
      "  train     [--out FILE] [--batch serial|parallel]\n"
      "  predict   --model FILE [--scale N ...] [--td-arch cpu] [--bu-arch gpu]\n"
      "  serve     --make-trace FILE [--queries N] [--hot-fraction F]\n"
      "            [--insert-every K --remove-every K --publish-every K]\n"
      "            [--trace-seed S]\n"
      "            or: --replay FILE [--workers N] [--batch-max 1..64]\n"
      "            [--cache on|off] [--landmarks K] [--queue-cap N]\n"
      "            [--fallback-engine NAME] [--trace-out FILE]\n"
      "            [--delta on|off] [--compact-threshold F] [--repair on|off]\n"
      "            [--lockstep] [--metrics]\n"
      "\nengines (--engine NAME):\n%s"
      "\noptions accept '--key value', '--key=value', and bare boolean "
      "'--flag';\nrepeating or misspelling an option is an error\n",
      graph500::EngineRegistry::with_builtin_engines().describe().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "bfs") return cmd_bfs(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "tune") return cmd_tune(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "predict") return cmd_predict(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "help") return usage();
    static const std::vector<std::string_view> kCommands = {
        "generate", "bfs",   "analyze", "trace", "tune",
        "train",    "predict", "serve",  "help"};
    std::string message = "unknown command '" + cmd + "'";
    if (const std::string_view closest =
            tools::suggest_closest(cmd, kCommands);
        !closest.empty()) {
      message += " (did you mean '" + std::string(closest) + "'?)";
    }
    std::fprintf(stderr, "bfsx: %s\n\n", message.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bfsx %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
