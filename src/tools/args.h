// Strict command-line option parser for the bfsx tool.
//
// Accepts three spellings — `--key value`, `--key=value`, and bare
// boolean `--flag` (a `--key` followed by another option or the end of
// the line) — and fails loudly on everything that used to slip
// through: repeated options, misspelled option names (check_known),
// and trailing garbage in numeric values ("12abc" is an error, not 12).
// Silently absorbing a typo in a long benchmark invocation costs hours
// of wrong measurements; every error here names the offending option
// and value.
#pragma once

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstddef>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace bfsx::tools {

/// Classic O(a*b) edit distance, small strings only (option, engine,
/// and subcommand names).
[[nodiscard]] inline std::size_t edit_distance(std::string_view a,
                                               std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t next_diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = next_diag;
    }
  }
  return row[b.size()];
}

/// The candidate closest to `name` when it is close enough for a
/// did-you-mean hint — within max(2, |name|/3) edits, and strictly
/// cheaper than retyping `name` from scratch — else an empty view.
/// Shared by option names (Args::check_known), engine names
/// (graph500::EngineRegistry), and bfsx subcommands.
[[nodiscard]] inline std::string_view suggest_closest(
    std::string_view name, const std::vector<std::string_view>& candidates) {
  std::string_view closest;
  std::size_t best = name.size();  // suggestions must beat "retype it all"
  for (const std::string_view c : candidates) {
    const std::size_t d = edit_distance(name, c);
    if (d < best || (closest.empty() && d <= best)) {
      closest = c;
      best = d;
    }
  }
  if (closest.empty() || best > std::max<std::size_t>(2, name.size() / 3)) {
    return {};
  }
  return closest;
}

class Args {
 public:
  Args() = default;

  /// Parses argv[first..argc). Throws std::invalid_argument on a
  /// non-`--` token, an empty option name, or a duplicated option.
  /// A `--key` directly followed by another `--option` (or by the end
  /// of the line) is recorded as a bare boolean flag.
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --option, got '" + token + "'");
      }
      token = token.substr(2);
      std::string key;
      std::string value;
      if (const auto eq = token.find('='); eq != std::string::npos) {
        key = token.substr(0, eq);
        value = token.substr(eq + 1);
      } else {
        key = token;
        if (i + 1 >= argc ||
            std::string_view(argv[i + 1]).rfind("--", 0) == 0) {
          // Bare flag: only get_bool may read it.
          value = "true";
          bare_.insert(key);
        } else {
          value = argv[++i];
        }
      }
      if (key.empty()) {
        throw std::invalid_argument("empty option name in '--" + token + "'");
      }
      if (!values_.emplace(key, value).second) {
        throw std::invalid_argument("duplicate option --" + key);
      }
    }
  }

  /// Throws std::invalid_argument if any parsed option is not in
  /// `known`, naming the unknown key (and the closest known one).
  /// Every subcommand calls this so `--scael 20` fails instead of
  /// silently running with the default scale.
  void check_known(const std::vector<std::string_view>& known) const {
    for (const auto& [key, value] : values_) {
      bool ok = false;
      for (const std::string_view k : known) {
        if (key == k) {
          ok = true;
          break;
        }
      }
      if (ok) continue;
      std::string message = "unknown option --" + key;
      if (const std::string_view closest = suggest_closest(key, known);
          !closest.empty()) {
        message += " (did you mean --" + std::string(closest) + "?)";
      }
      throw std::invalid_argument(message);
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    require_value(key);
    return it->second;
  }
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& dflt) const {
    return get(key).value_or(dflt);
  }

  /// Whole-token integer parse: "--scale 12abc" names the option and
  /// value instead of yielding 12.
  [[nodiscard]] int get_int(const std::string& key, int dflt) const {
    const auto v = get(key);
    if (!v) return dflt;
    const char* text = v->c_str();
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE ||
        parsed < INT_MIN || parsed > INT_MAX) {
      throw std::invalid_argument("option --" + key +
                                  ": expected an integer, got '" + *v + "'");
    }
    return static_cast<int>(parsed);
  }

  /// Whole-token floating-point parse, same strictness.
  [[nodiscard]] double get_double(const std::string& key, double dflt) const {
    const auto v = get(key);
    if (!v) return dflt;
    const char* text = v->c_str();
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE) {
      throw std::invalid_argument("option --" + key +
                                  ": expected a number, got '" + *v + "'");
    }
    return parsed;
  }

  /// Boolean option: bare `--flag` is true; otherwise the value must be
  /// one of true/false/1/0/yes/no/on/off.
  [[nodiscard]] bool get_bool(const std::string& key, bool dflt) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    if (bare_.count(key) != 0) return true;
    const std::string& v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
    if (v == "false" || v == "0" || v == "no" || v == "off") return false;
    throw std::invalid_argument("option --" + key +
                                ": expected a boolean, got '" + v + "'");
  }

  /// True when the option appeared at all (with or without a value).
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

 private:
  /// A bare flag has no value to hand out; only get_bool accepts it.
  void require_value(const std::string& key) const {
    if (bare_.count(key) != 0) {
      throw std::invalid_argument("option --" + key +
                                  " needs a value (it was given as a bare "
                                  "flag)");
    }
  }

  std::map<std::string, std::string> values_;
  std::set<std::string> bare_;
};

}  // namespace bfsx::tools
