// Minimal command-line option parser for the bfsx tool.
//
// Accepts both spellings for every option — `--key value` and
// `--key=value` — and rejects a repeated option outright: silently
// letting the last occurrence win hides typos in long benchmark
// invocations.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>

namespace bfsx::tools {

class Args {
 public:
  Args() = default;

  /// Parses argv[first..argc). Throws std::invalid_argument on a
  /// non-`--` token, a missing value, an empty option name, or a
  /// duplicated option.
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --option, got '" + token + "'");
      }
      token = token.substr(2);
      std::string key;
      std::string value;
      if (const auto eq = token.find('='); eq != std::string::npos) {
        key = token.substr(0, eq);
        value = token.substr(eq + 1);
      } else {
        key = token;
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value for --" + key);
        }
        value = argv[++i];
      }
      if (key.empty()) {
        throw std::invalid_argument("empty option name in '--" + token + "'");
      }
      if (!values_.emplace(key, value).second) {
        throw std::invalid_argument("duplicate option --" + key);
      }
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt
                               : std::optional<std::string>(it->second);
  }
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& dflt) const {
    return get(key).value_or(dflt);
  }
  [[nodiscard]] int get_int(const std::string& key, int dflt) const {
    const auto v = get(key);
    return v ? std::stoi(*v) : dflt;
  }
  [[nodiscard]] double get_double(const std::string& key, double dflt) const {
    const auto v = get(key);
    return v ? std::stod(*v) : dflt;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace bfsx::tools
