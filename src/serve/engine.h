// serve::QueryEngine — a long-lived concurrent BFS query engine.
//
// The repo's kernels answer one traversal; this subsystem turns them
// into a server. A resident graph (epoch-snapshotted, see epochs.h)
// takes streams of BFS / distance / reachability queries:
//
//   submit() ── admission ──> bounded queue ──> scheduler tick ──> answer
//                 │  │                             │
//                 │  └ landmark cache: covered     ├ >=2 compatible queries:
//                 │    distance queries answered   │   one bit-parallel MS-BFS
//                 │    at the door, no traversal   │   pass, lanes deduped by
//                 │                                │   source
//                 └ reject-with-reason when the    └ singletons / engine
//                   queue is full (backpressure      overrides: single-source
//                   the caller can see)              dispatch via the
//                                                    EngineRegistry, states
//                                                    leased from a StatePool
//
// Worker threads (std::thread; each may open its own OpenMP team
// inside a kernel) drain the queue in ticks of up to `batch_max`
// compatible queries. Admission, completion, cache hit/miss, and every
// dispatch are reported through obs::TraceSink::on_query; calls are
// serialised by the engine, so any sink works unsynchronised.
//
// Writes: insert_edge / remove_edge buffer, publish_inserts emits the
// next epoch — a DeltaCsr overlay sharing unchanged rows with its base
// when the policy allows (see epochs.h) — and re-arms the landmark
// cache, incrementally when the batch was insert-only (distances only
// decrease, so the old rows relax down; see landmark_cache.h) and from
// scratch when it removed edges. In-flight batches keep serving the
// epoch they pinned — an answer is always bit-equal to reference_bfs
// on its own epoch's graph, never a blend.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bfs/msbfs.h"
#include "bfs/state_pool.h"
#include "core/hybrid_policy.h"
#include "graph500/engine_registry.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "serve/epochs.h"
#include "serve/landmark_cache.h"
#include "serve/query.h"

namespace bfsx::serve {

struct ServeOptions {
  /// Worker threads draining the admission queue.
  int workers = 2;
  /// Admission-queue bound; a submit beyond it rejects kQueueFull.
  std::size_t queue_capacity = 1024;
  /// Queries coalesced per scheduler tick (clamped to [1, 64]).
  /// 1 disables lane batching — every query dispatches single-source,
  /// the "serial" baseline bench_serve compares against.
  int batch_max = bfs::kMsBfsMaxLanes;
  /// Landmark cache on the admission path (rebuilt per epoch).
  bool cache_enabled = true;
  int num_landmarks = 16;
  /// M/N direction rule for both the MS-BFS union frontier and the
  /// single-source fallback engine.
  core::HybridPolicy policy{};
  /// Single-source path for queries without an engine override (and
  /// for ticks that coalesced only one query).
  std::string fallback_engine = "native-hybrid";
  /// Optional, non-owning; must outlive the engine. Receives on_query
  /// stage events (serialised). Per-level run tracing stays off in the
  /// server — concurrent workers would interleave run brackets.
  obs::TraceSink* sink = nullptr;
  /// Construct with the scheduler paused (tests/benches submit a full
  /// workload first, then resume() — guarantees maximal coalescing).
  bool start_paused = false;
  /// Publish policy (epochs.h): delta overlays vs full rebuilds, and
  /// the patched-row fraction at which an overlay folds back flat.
  bool delta_publish = true;
  double compact_threshold = 0.25;
  /// Incremental landmark re-arm after insert-only publishes; false
  /// rebuilds the cache from scratch every publish (the baseline
  /// bench_serve's repair column compares against).
  bool repair_cache = true;
};

/// Monotonic engine counters; snapshot via QueryEngine::stats().
struct ServeStats {
  std::int64_t submitted = 0;         // admitted into the queue
  std::int64_t rejected_full = 0;
  std::int64_t rejected_invalid = 0;  // bad vertex or unknown engine
  std::int64_t rejected_shutdown = 0;
  std::int64_t served = 0;            // completed with an answer
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;      // cacheable but uncovered
  std::int64_t dispatches = 0;        // scheduler ticks that ran
  std::int64_t batched_queries = 0;   // served by an MS-BFS lane
  std::int64_t single_queries = 0;    // served by a single-source engine
  std::int64_t max_batch = 0;         // largest tick
  std::int64_t edges_inserted = 0;
  std::int64_t edges_removed = 0;
  std::int64_t epochs_published = 0;
  std::int64_t delta_publishes = 0;   // epochs published as overlays
  std::int64_t full_publishes = 0;    // epochs folded to a flat CSR
  std::int64_t cache_repairs = 0;     // landmark re-arms done in place
  std::int64_t cache_rebuilds = 0;    // landmark re-arms from scratch
};

class QueryEngine {
 public:
  /// Builds epoch 0 from `edges` and starts the worker pool.
  explicit QueryEngine(graph::EdgeList edges, ServeOptions opts = {});
  ~QueryEngine();  // shutdown(): pending queries reject kShutdown

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Admits `q` or rejects it immediately. Always returns a valid
  /// future: rejected queries resolve at once with ok = false, served
  /// ones when a worker answers. Thread-safe.
  [[nodiscard]] std::future<QueryResult> submit(Query q);

  /// Buffers one edge insertion; invisible until publish_inserts().
  /// Writer side is single-threaded (one control thread), like
  /// GraphEpochs.
  void insert_edge(graph::vid_t u, graph::vid_t v);

  /// Buffers one edge removal; invisible until publish_inserts().
  /// Removing an absent edge is a publish-time no-op. Any removal in a
  /// batch forces the landmark cache to rebuild from scratch (repair
  /// is insert-only).
  void remove_edge(graph::vid_t u, graph::vid_t v);

  /// Publishes buffered writes as the next epoch (delta or flat, per
  /// ServeOptions) and re-arms the landmark cache — repaired in place
  /// for insert-only batches, rebuilt otherwise. Queries already
  /// dispatched keep their pinned epoch. Returns the new epoch id.
  std::uint64_t publish_inserts();

  /// Blocks until the queue is empty and no batch is in flight.
  /// Requires a running (not paused) scheduler.
  void drain();

  /// Pause/resume the scheduler (admission stays open). See
  /// ServeOptions::start_paused.
  void pause();
  void resume();

  /// Stops the scheduler: queued-but-unserved queries resolve with
  /// kShutdown, workers join. Idempotent; the destructor calls it.
  void shutdown();

  /// Epoch and publish health for dashboards: live/retired epoch
  /// counts, pending write-buffer depths, per-kind publish counters,
  /// cumulative repair work, and a log-scale publish-duration
  /// histogram ("serve.publish.le_<bound>" bucket counters plus the
  /// "serve.publish" timer). Counters are written as absolute values
  /// into a caller-owned registry snapshot; the registry is not
  /// thread-safe, so call this from the control thread.
  void export_metrics(obs::Registry& registry) const;

  /// Repair stats of the most recent incremental cache re-arm (zeroes
  /// until one happens).
  [[nodiscard]] RepairStats last_repair() const;

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] std::uint64_t current_epoch() const;
  [[nodiscard]] graph::vid_t num_vertices() const;
  [[nodiscard]] GraphEpochs& epochs() noexcept { return epochs_; }
  [[nodiscard]] const bfs::StatePool& state_pool() const noexcept {
    return pool_;
  }

 private:
  struct Pending {
    Query query;
    std::promise<QueryResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::int64_t id = 0;
  };

  void worker_loop();
  void serve_tick(std::vector<Pending> batch);
  void serve_single(Pending pending, const GraphEpochs::Pin& pin);
  void serve_msbfs(std::vector<Pending> batch, const GraphEpochs::Pin& pin);
  void finish(Pending pending, QueryResult result);
  [[nodiscard]] graph500::BfsEngine single_engine(const std::string& name,
                                                 obs::TraceSink* sink);
  void emit(const obs::QueryEvent& e);
  void rebuild_cache();
  void rearm_cache(const std::vector<graph::Edge>& inserted,
                   bool had_removes, std::uint64_t epoch);

  ServeOptions opts_;
  GraphEpochs epochs_;
  bfs::StatePool pool_;
  graph500::EngineRegistry registry_;

  mutable std::mutex mu_;  // queue_, stats_, cache_, flags
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<Pending> queue_;
  std::shared_ptr<const LandmarkCache> cache_;
  ServeStats stats_;
  RepairStats last_repair_;
  /// Writer-side log of buffered inserts since the last publish —
  /// the seed list for landmark repair. Raw (pre-dedup) is fine:
  /// duplicate seeds relax to no-ops.
  std::vector<graph::Edge> pending_insert_log_;
  bool pending_had_removes_ = false;
  /// Publish-duration histogram: log-scale upper bounds
  /// {1ms, 10ms, 100ms, 1s, 10s, +inf}, counts per bucket.
  std::array<std::int64_t, 6> publish_hist_{};
  double publish_seconds_total_ = 0.0;
  int in_flight_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
  std::int64_t next_id_ = 0;

  std::mutex sink_mu_;  // serialises on_query emission
  std::mutex engines_mu_;
  std::map<std::string, graph500::BfsEngine> engines_;

  std::vector<std::thread> workers_;
};

}  // namespace bfsx::serve
