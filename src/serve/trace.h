// Query traces: a replayable text workload for serve::QueryEngine.
//
// A trace is a line-oriented script, one operation per line:
//
//   bfs <src> [@engine]        full-traversal query
//   dist <src> <dst> [@engine] point-to-point distance query
//   reach <src> <dst> [@engine] reachability query
//   insert <u> <v>             buffer one edge insertion
//   remove <u> <v>             buffer one edge removal
//   publish                    publish buffered writes as a new epoch
//   # ...                      comment (blank lines are skipped)
//
// The optional trailing `@name` token pins an engine override (see
// serve::Query::engine). Traces are the serving subsystem's common
// currency: `bfsx serve --make-trace` generates one, `bfsx serve
// --replay` and bench_serve consume it, and CI replays a generated
// trace as its smoke test.
//
// generate_query_trace skews sources toward a small hot set of
// top-degree vertices — the access pattern of scale-free workloads,
// and the one the landmark cache (same top-degree selection) is built
// to serve.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "serve/query.h"

namespace bfsx::serve {

class QueryEngine;

struct TraceOp {
  enum class Kind { kQuery, kInsert, kRemove, kPublish };
  Kind kind = Kind::kQuery;
  Query query;            ///< kQuery only
  graph::vid_t u = 0;     ///< kInsert / kRemove only
  graph::vid_t v = 0;     ///< kInsert / kRemove only
};

/// Parses a trace; throws std::runtime_error naming the 1-based line
/// on malformed input.
[[nodiscard]] std::vector<TraceOp> load_trace(std::istream& in);
[[nodiscard]] std::vector<TraceOp> load_trace_file(const std::string& path);

/// Writes `ops` in the text format load_trace reads back.
void save_trace(const std::vector<TraceOp>& ops, std::ostream& out);
void save_trace_file(const std::vector<TraceOp>& ops,
                     const std::string& path);

struct TraceGenOptions {
  std::int64_t num_queries = 1000;
  /// Kind mix; the remainder after bfs + reach is distance queries.
  double bfs_fraction = 0.05;
  double reach_fraction = 0.25;
  /// Probability a query's source is drawn from the hot set (the
  /// `hot_set` highest-out-degree vertices) instead of uniformly.
  double hot_fraction = 0.5;
  int hot_set = 16;
  /// Every `insert_every` queries, append one edge insertion between
  /// two existing vertices (0 disables); every `remove_every`, the
  /// removal of an edge the base graph has (so removals actually bite
  /// — removing a random non-edge is a publish-time no-op); every
  /// `publish_every`, a publish op.
  std::int64_t insert_every = 0;
  std::int64_t remove_every = 0;
  std::int64_t publish_every = 0;
  std::uint64_t seed = 42;
};

/// Deterministic workload over `g` (same seed, same trace).
[[nodiscard]] std::vector<TraceOp> generate_query_trace(
    const graph::CsrGraph& g, const TraceGenOptions& opts);

/// One served answer recorded by a lockstep replay, in query
/// submission order. The bfs_checksum folds a kBfs traversal's level
/// map so two replays can be compared cell-for-cell without keeping
/// every map alive.
struct ReplayAnswer {
  bool ok = false;
  QueryKind kind = QueryKind::kDistance;
  std::int32_t distance = -1;
  bool reachable = false;
  std::uint64_t epoch = 0;
  std::uint64_t bfs_checksum = 0;
};

struct ReplaySummary {
  std::int64_t queries = 0;   ///< query ops submitted
  std::int64_t served = 0;    ///< resolved with an answer
  std::int64_t rejected = 0;
  std::int64_t cache_hits = 0;
  std::int64_t inserts = 0;
  std::int64_t removes = 0;
  std::int64_t publishes = 0;
  /// Per-served-query submit-to-answer latency, submission order.
  std::vector<double> latencies;
  /// Lockstep replays only (empty for the open-loop client): every
  /// query's recorded answer, submission order.
  std::vector<ReplayAnswer> answers;
  double wall_seconds = 0.0;
  /// Wall-clock spent inside publish_inserts() calls — the write
  /// path's end-to-end cost (graph publish + landmark re-arm), the
  /// number the churn bench curves.
  double publish_wall_seconds = 0.0;
};

/// Replays `ops` against a live engine: queries are submitted as fast
/// as the admission queue accepts (an open-loop client), insert /
/// remove / publish ops are applied inline from the replay thread, and
/// all futures are collected at the end.
ReplaySummary replay_trace(QueryEngine& engine,
                           const std::vector<TraceOp>& ops);

/// Like replay_trace, but waits for each query's answer before issuing
/// the next op, and records every answer. This pins each query to a
/// deterministic epoch (the open-loop client races publishes, so
/// query-to-epoch assignment is nondeterministic there) — it is how
/// bench_serve proves delta-epoch answers bit-equal to full-rebuild
/// answers over an identical trace. Throughput numbers from a lockstep
/// replay measure latency, not capacity.
ReplaySummary replay_trace_lockstep(QueryEngine& engine,
                                    const std::vector<TraceOp>& ops);

}  // namespace bfsx::serve
