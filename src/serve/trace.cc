#include "serve/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <future>
#include <limits>
#include <span>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "graph/prng.h"
#include "serve/engine.h"

namespace bfsx::serve {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("trace:" + std::to_string(line) + ": " + what);
}

graph::vid_t parse_vertex(const std::string& tok, std::size_t line) {
  std::size_t used = 0;
  long long value = 0;
  try {
    value = std::stoll(tok, &used);
  } catch (const std::exception&) {
    fail(line, "expected a vertex id, got '" + tok + "'");
  }
  if (used != tok.size() || value < 0 ||
      value > std::numeric_limits<graph::vid_t>::max()) {
    fail(line, "vertex id out of range: '" + tok + "'");
  }
  return static_cast<graph::vid_t>(value);
}

}  // namespace

std::vector<TraceOp> load_trace(std::istream& in) {
  std::vector<TraceOp> ops;
  std::string text;
  std::size_t line = 0;
  while (std::getline(in, text)) {
    ++line;
    std::istringstream fields(text);
    std::string verb;
    if (!(fields >> verb) || verb.front() == '#') continue;

    TraceOp op;
    const auto take = [&](const char* what) {
      std::string tok;
      if (!(fields >> tok)) fail(line, std::string("missing ") + what);
      return tok;
    };
    const auto maybe_engine = [&] {
      std::string tok;
      if (fields >> tok) {
        if (tok.front() != '@' || tok.size() < 2) {
          fail(line, "expected @engine, got '" + tok + "'");
        }
        op.query.engine = tok.substr(1);
      }
    };

    if (verb == "bfs") {
      op.query.kind = QueryKind::kBfs;
      op.query.source = parse_vertex(take("source"), line);
      maybe_engine();
    } else if (verb == "dist" || verb == "reach") {
      op.query.kind =
          verb == "dist" ? QueryKind::kDistance : QueryKind::kReachability;
      op.query.source = parse_vertex(take("source"), line);
      op.query.target = parse_vertex(take("target"), line);
      maybe_engine();
    } else if (verb == "insert" || verb == "remove") {
      op.kind = verb == "insert" ? TraceOp::Kind::kInsert
                                 : TraceOp::Kind::kRemove;
      op.u = parse_vertex(take("u"), line);
      op.v = parse_vertex(take("v"), line);
    } else if (verb == "publish") {
      op.kind = TraceOp::Kind::kPublish;
    } else {
      fail(line, "unknown op '" + verb + "'");
    }
    std::string extra;
    if (fields >> extra) fail(line, "trailing token '" + extra + "'");
    ops.push_back(std::move(op));
  }
  return ops;
}

std::vector<TraceOp> load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace: " + path);
  return load_trace(in);
}

void save_trace(const std::vector<TraceOp>& ops, std::ostream& out) {
  for (const TraceOp& op : ops) {
    switch (op.kind) {
      case TraceOp::Kind::kQuery:
        switch (op.query.kind) {
          case QueryKind::kBfs:
            out << "bfs " << op.query.source;
            break;
          case QueryKind::kDistance:
            out << "dist " << op.query.source << ' ' << op.query.target;
            break;
          case QueryKind::kReachability:
            out << "reach " << op.query.source << ' ' << op.query.target;
            break;
        }
        if (!op.query.engine.empty()) out << " @" << op.query.engine;
        out << '\n';
        break;
      case TraceOp::Kind::kInsert:
        out << "insert " << op.u << ' ' << op.v << '\n';
        break;
      case TraceOp::Kind::kRemove:
        out << "remove " << op.u << ' ' << op.v << '\n';
        break;
      case TraceOp::Kind::kPublish:
        out << "publish\n";
        break;
    }
  }
}

void save_trace_file(const std::vector<TraceOp>& ops,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace: " + path);
  save_trace(ops, out);
}

std::vector<TraceOp> generate_query_trace(const graph::CsrGraph& g,
                                          const TraceGenOptions& opts) {
  const graph::vid_t n = g.num_vertices();
  if (n <= 0) throw std::invalid_argument("generate_query_trace: empty graph");

  // The hot set mirrors the landmark cache's selection rule (top
  // out-degree, ties to the smaller id) so a hot-skewed trace actually
  // exercises the cache.
  std::vector<graph::vid_t> order(static_cast<std::size_t>(n));
  for (graph::vid_t v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  const std::size_t hot = std::min(
      static_cast<std::size_t>(std::max(opts.hot_set, 1)), order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(hot),
                    order.end(), [&g](graph::vid_t a, graph::vid_t b) {
                      const graph::eid_t da = g.out_degree(a);
                      const graph::eid_t db = g.out_degree(b);
                      return da != db ? da > db : a < b;
                    });

  graph::Xoshiro256ss rng(opts.seed);
  const auto any_vertex = [&] {
    return static_cast<graph::vid_t>(
        rng.next_bounded(static_cast<std::uint64_t>(n)));
  };
  const auto source_vertex = [&] {
    if (rng.next_double() < opts.hot_fraction) {
      return order[rng.next_bounded(hot)];
    }
    return any_vertex();
  };

  std::vector<TraceOp> ops;
  ops.reserve(static_cast<std::size_t>(opts.num_queries));
  for (std::int64_t i = 0; i < opts.num_queries; ++i) {
    TraceOp op;
    const double mix = rng.next_double();
    if (mix < opts.bfs_fraction) {
      op.query.kind = QueryKind::kBfs;
      op.query.source = source_vertex();
    } else if (mix < opts.bfs_fraction + opts.reach_fraction) {
      op.query.kind = QueryKind::kReachability;
      op.query.source = source_vertex();
      op.query.target = any_vertex();
    } else {
      op.query.kind = QueryKind::kDistance;
      op.query.source = source_vertex();
      op.query.target = any_vertex();
    }
    ops.push_back(std::move(op));

    if (opts.insert_every > 0 && (i + 1) % opts.insert_every == 0) {
      TraceOp ins;
      ins.kind = TraceOp::Kind::kInsert;
      ins.u = any_vertex();
      ins.v = any_vertex();
      ops.push_back(ins);
    }
    if (opts.remove_every > 0 && (i + 1) % opts.remove_every == 0) {
      // Remove a real edge of the base graph so the op has an effect;
      // a handful of draws finds a non-isolated vertex on any graph
      // with edges.
      graph::vid_t u = any_vertex();
      for (int tries = 0; g.out_degree(u) == 0 && tries < 64; ++tries) {
        u = any_vertex();
      }
      if (g.out_degree(u) > 0) {
        const std::span<const graph::vid_t> row = g.out_neighbors(u);
        TraceOp rem;
        rem.kind = TraceOp::Kind::kRemove;
        rem.u = u;
        rem.v = row[rng.next_bounded(row.size())];
        ops.push_back(rem);
      }
    }
    if (opts.publish_every > 0 && (i + 1) % opts.publish_every == 0) {
      TraceOp pub;
      pub.kind = TraceOp::Kind::kPublish;
      ops.push_back(pub);
    }
  }
  return ops;
}

ReplaySummary replay_trace(QueryEngine& engine,
                           const std::vector<TraceOp>& ops) {
  ReplaySummary summary;
  std::vector<std::future<QueryResult>> futures;
  const auto start = std::chrono::steady_clock::now();
  for (const TraceOp& op : ops) {
    switch (op.kind) {
      case TraceOp::Kind::kQuery:
        futures.push_back(engine.submit(op.query));
        ++summary.queries;
        break;
      case TraceOp::Kind::kInsert:
        engine.insert_edge(op.u, op.v);
        ++summary.inserts;
        break;
      case TraceOp::Kind::kRemove:
        engine.remove_edge(op.u, op.v);
        ++summary.removes;
        break;
      case TraceOp::Kind::kPublish: {
        const auto pub_start = std::chrono::steady_clock::now();
        engine.publish_inserts();
        summary.publish_wall_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          pub_start)
                .count();
        ++summary.publishes;
        break;
      }
    }
  }
  for (std::future<QueryResult>& f : futures) {
    const QueryResult r = f.get();
    if (r.ok) {
      ++summary.served;
      if (r.cache_hit) ++summary.cache_hits;
      summary.latencies.push_back(r.latency_seconds);
    } else {
      ++summary.rejected;
    }
  }
  summary.wall_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return summary;
}

ReplaySummary replay_trace_lockstep(QueryEngine& engine,
                                    const std::vector<TraceOp>& ops) {
  ReplaySummary summary;
  const auto start = std::chrono::steady_clock::now();
  for (const TraceOp& op : ops) {
    switch (op.kind) {
      case TraceOp::Kind::kQuery: {
        const QueryResult r = engine.submit(op.query).get();
        ++summary.queries;
        ReplayAnswer a;
        a.ok = r.ok;
        a.kind = r.kind;
        a.epoch = r.epoch;
        if (r.ok) {
          ++summary.served;
          if (r.cache_hit) ++summary.cache_hits;
          summary.latencies.push_back(r.latency_seconds);
          a.distance = r.distance;
          a.reachable = r.reachable;
          if (r.traversal != nullptr) {
            // FNV-1a over the level map: any cell differing between
            // two replays flips the checksum.
            std::uint64_t h = 1469598103934665603ULL;
            for (const std::int32_t level : r.traversal->level) {
              h ^= static_cast<std::uint64_t>(
                  static_cast<std::uint32_t>(level));
              h *= 1099511628211ULL;
            }
            a.bfs_checksum = h;
          }
        } else {
          ++summary.rejected;
        }
        summary.answers.push_back(a);
        break;
      }
      case TraceOp::Kind::kInsert:
        engine.insert_edge(op.u, op.v);
        ++summary.inserts;
        break;
      case TraceOp::Kind::kRemove:
        engine.remove_edge(op.u, op.v);
        ++summary.removes;
        break;
      case TraceOp::Kind::kPublish: {
        const auto pub_start = std::chrono::steady_clock::now();
        engine.publish_inserts();
        summary.publish_wall_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          pub_start)
                .count();
        ++summary.publishes;
        break;
      }
    }
  }
  summary.wall_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return summary;
}

}  // namespace bfsx::serve
