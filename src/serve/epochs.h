// Epoch-based graph snapshots: streaming edge writes that never race
// live queries.
//
// The serving engine keeps one resident graph under concurrent query
// traffic while accepting edge insertions and removals. CSR is the
// wrong structure to mutate in place — every kernel in this repository
// assumes frozen offsets — so writes are decoupled from reads the RCU
// way:
//
//   * readers call pin() and get an immutable EpochGraph plus its
//     epoch id; every answer a batch produces is attributed to that
//     epoch;
//   * the writer buffers ops (buffer_insert / buffer_remove)
//     invisibly, then publish() canonicalises the batch (last-op-wins
//     per directed edge, so duplicate inserts and insert-then-remove
//     pairs never inflate the delta) and emits epoch N+1;
//   * superseded epochs retire (memory freed) as their last pin drops.
//
// Publishing is incremental by default: epoch N+1 is a graph::DeltaCsr
// overlay sharing every unchanged adjacency row with the newest *flat*
// base CSR, so a publish costs O(rows touched since the last
// compaction), not O(V+E). When the overlay's patched-row fraction
// crosses EpochOptions::compact_threshold — or on publish_full(), or
// with delta_publish disabled — the effective adjacency is folded back
// into a flat CSR, reclaiming the storage of removed edges. Both kinds
// of epoch traverse identically (DeltaCsr models HybridView), and a
// delta epoch's traversals are bit-equal to the flat rebuild it
// replaces.
//
// Single writer, many readers: buffer_* / publish must come from one
// thread at a time (the engine's control path); pin() is safe from any
// thread at any moment, including mid-publish.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/csr.h"
#include "graph/delta_csr.h"
#include "graph/edge_list.h"
#include "graph/view.h"

namespace bfsx::serve {

/// One published snapshot: either a flat CSR or a DeltaCsr overlay.
/// Exposes the size/symmetry surface directly; kernels reach the
/// concrete representation through visit(), which hands a generic
/// callable either a CsrGraphView or a const DeltaCsr& — both model
/// HybridView, so one templated kernel body serves both and flat
/// epochs keep their zero-overhead span loops.
class EpochGraph {
 public:
  explicit EpochGraph(std::shared_ptr<const graph::CsrGraph> flat)
      : flat_(std::move(flat)) {}
  explicit EpochGraph(graph::DeltaCsr delta) : delta_(std::move(delta)) {}

  [[nodiscard]] graph::vid_t num_vertices() const noexcept {
    return flat_ != nullptr ? flat_->num_vertices() : delta_->num_vertices();
  }
  [[nodiscard]] graph::eid_t num_edges() const noexcept {
    return flat_ != nullptr ? flat_->num_edges() : delta_->num_edges();
  }
  [[nodiscard]] bool is_symmetric() const noexcept {
    return flat_ != nullptr ? flat_->is_symmetric() : delta_->is_symmetric();
  }

  [[nodiscard]] bool is_delta() const noexcept { return flat_ == nullptr; }
  /// The flat CSR, or nullptr for a delta epoch (callers with
  /// CSR-only machinery — the EngineRegistry's simulated engines —
  /// branch on this).
  [[nodiscard]] const graph::CsrGraph* flat() const noexcept {
    return flat_.get();
  }
  /// The overlay, or nullptr for a flat epoch.
  [[nodiscard]] const graph::DeltaCsr* delta() const noexcept {
    return delta_.has_value() ? &*delta_ : nullptr;
  }

  /// Calls `fn` with the concrete HybridView of this epoch.
  template <typename Fn>
  decltype(auto) visit(Fn&& fn) const {
    if (flat_ != nullptr) return fn(graph::CsrGraphView(*flat_));
    return fn(*delta_);
  }

 private:
  std::shared_ptr<const graph::CsrGraph> flat_;  // null for delta epochs
  std::optional<graph::DeltaCsr> delta_;
};

/// Publish policy knobs, fixed at GraphEpochs construction.
struct EpochOptions {
  /// Applied to every rebuild and every delta overlay. The default
  /// symmetrises, matching the Graph 500 pipeline.
  graph::BuildOptions build{};
  /// false restores the historical behaviour: every publish is a full
  /// O(V+E) rebuild (the bench baseline).
  bool delta_publish = true;
  /// A publish whose overlay would patch at least this fraction of
  /// rows folds into a flat CSR instead. 0 compacts every publish;
  /// > 1 never compacts on its own (publish_full() still forces it).
  double compact_threshold = 0.25;
};

/// What the most recent publish did — the serve layer's metrics feed
/// and the churn bench's cost breakdown.
struct PublishInfo {
  std::uint64_t epoch = 0;
  bool delta = false;      // published as an overlay
  bool compacted = false;  // folded into a flat CSR this publish
  std::size_t raw_ops = 0;  // buffered ops before canonicalisation
  std::size_t applied_inserts = 0;
  std::size_t applied_removes = 0;
  std::size_t deduped_ops = 0;  // dropped by last-op-wins
  /// Of the overlay as applied — kept even when the publish folded,
  /// since the fraction is what tripped the compaction.
  graph::vid_t patched_rows = 0;
  double patched_fraction = 0.0;
  double seconds = 0.0;  // wall-clock of this publish
};

class GraphEpochs {
 public:
  /// RAII reader pin: holds one epoch's graph alive. Movable,
  /// non-copyable; dropping the last pin of a superseded epoch retires
  /// it. The referenced graph is valid for the pin's lifetime.
  class Pin {
   public:
    Pin() = default;
    Pin(GraphEpochs* owner, std::uint64_t epoch,
        const EpochGraph* g) noexcept
        : owner_(owner), epoch_(epoch), graph_(g) {}
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        release();
        owner_ = other.owner_;
        epoch_ = other.epoch_;
        graph_ = other.graph_;
        other.owner_ = nullptr;
        other.graph_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

    [[nodiscard]] const EpochGraph& graph() const noexcept {
      return *graph_;
    }
    [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

   private:
    void release() noexcept;

    GraphEpochs* owner_ = nullptr;
    std::uint64_t epoch_ = 0;
    const EpochGraph* graph_ = nullptr;
  };

  /// Builds epoch 0 (always flat) from `edges`.
  explicit GraphEpochs(graph::EdgeList edges, const EpochOptions& opts = {});
  /// Historical convenience: build options only, default publish
  /// policy.
  GraphEpochs(graph::EdgeList edges, const graph::BuildOptions& build);

  GraphEpochs(const GraphEpochs&) = delete;
  GraphEpochs& operator=(const GraphEpochs&) = delete;

  /// Pins the newest published epoch. Thread-safe.
  [[nodiscard]] Pin pin();

  /// Id of the newest published epoch. Thread-safe.
  [[nodiscard]] std::uint64_t current_epoch() const;

  /// Vertex count of the newest published epoch. Thread-safe.
  [[nodiscard]] graph::vid_t current_num_vertices() const;

  // ---- writer side (one thread at a time) ----

  /// Buffers one directed edge insertion for the next publish;
  /// invisible to readers until then. Endpoints may exceed the current
  /// vertex count — the vertex set grows at publish. Rejects
  /// negatives.
  void buffer_insert(graph::vid_t u, graph::vid_t v);

  /// Buffers one directed edge removal. Removing an edge the graph
  /// does not have is a no-op at publish; within one batch the last op
  /// on an edge wins (insert-then-remove cancels out). Rejects
  /// negatives.
  void buffer_remove(graph::vid_t u, graph::vid_t v);

  /// Insert / remove ops buffered since the last publish (raw counts,
  /// before canonicalisation).
  [[nodiscard]] std::size_t pending_inserts() const;
  [[nodiscard]] std::size_t pending_removes() const;

  /// Canonicalises and applies the buffered ops as the next epoch —
  /// a DeltaCsr overlay when the policy allows, a flat rebuild when it
  /// compacts — and retires every unpinned superseded epoch. Valid
  /// with zero pending ops (publishes an identical graph under a new
  /// id). Returns the new epoch id; last_publish() has the breakdown.
  std::uint64_t publish();

  /// Like publish(), but always folds into a flat CSR regardless of
  /// the patched-row fraction.
  std::uint64_t publish_full();

  /// Breakdown of the most recent publish (epoch 0's construction
  /// counts as a full publish with zero ops).
  [[nodiscard]] PublishInfo last_publish() const;

  // ---- observability ----

  /// Epochs currently retained: the published one plus superseded ones
  /// still pinned by readers.
  [[nodiscard]] std::size_t live_epochs() const;

  /// Superseded epochs whose storage has been reclaimed.
  [[nodiscard]] std::uint64_t retired_epochs() const;

  /// Publishes that emitted an overlay / folded to a flat CSR (the
  /// initial build counts toward full).
  [[nodiscard]] std::uint64_t delta_publishes() const;
  [[nodiscard]] std::uint64_t full_publishes() const;

  [[nodiscard]] const EpochOptions& options() const noexcept {
    return opts_;
  }

 private:
  struct Record {
    std::uint64_t epoch = 0;
    std::unique_ptr<const EpochGraph> graph;
    std::size_t pins = 0;
  };

  struct PendingOp {
    graph::Edge edge;
    bool remove = false;
  };

  std::uint64_t publish_impl(bool force_full);
  void unpin(std::uint64_t epoch) noexcept;

  // Writer-owned; never touched by readers.
  EpochOptions opts_;
  /// The newest *flat* CSR — what every live overlay patches against.
  std::shared_ptr<const graph::CsrGraph> base_;
  std::vector<PendingOp> pending_;
  std::size_t pending_inserts_ = 0;
  std::size_t pending_removes_ = 0;
  PublishInfo last_publish_{};
  std::uint64_t delta_publishes_ = 0;
  std::uint64_t full_publishes_ = 0;

  mutable std::mutex mu_;  // guards records_ / retired_
  std::vector<Record> records_;
  std::uint64_t retired_ = 0;
};

}  // namespace bfsx::serve
