// Epoch-based graph snapshots: streaming edge insertions that never
// race live queries.
//
// The serving engine keeps one resident graph under concurrent query
// traffic while accepting edge insertions. CSR is the wrong structure
// to mutate in place — every kernel in this repository assumes frozen
// offsets — so writes are decoupled from reads the RCU way:
//
//   * readers call pin() and get an immutable CsrGraph plus its epoch
//     id; every answer a batch produces is attributed to that epoch;
//   * the writer buffers insertions (buffer_insert) invisibly, then
//     publish() rebuilds the edge list into a fresh CSR as epoch N+1;
//   * superseded epochs retire (memory freed) as their last pin drops.
//
// Single writer, many readers: buffer_insert/publish must come from
// one thread at a time (the engine's control path); pin() is safe from
// any thread at any moment, including mid-publish. A publish costs one
// O(V+E) rebuild — the price of keeping every traversal kernel
// oblivious to mutation, paid only on the write path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/builder.h"
#include "graph/csr.h"
#include "graph/edge_list.h"

namespace bfsx::serve {

class GraphEpochs {
 public:
  /// RAII reader pin: holds one epoch's graph alive. Movable,
  /// non-copyable; dropping the last pin of a superseded epoch retires
  /// it. The referenced graph is valid for the pin's lifetime.
  class Pin {
   public:
    Pin() = default;
    Pin(GraphEpochs* owner, std::uint64_t epoch,
        const graph::CsrGraph* g) noexcept
        : owner_(owner), epoch_(epoch), graph_(g) {}
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        release();
        owner_ = other.owner_;
        epoch_ = other.epoch_;
        graph_ = other.graph_;
        other.owner_ = nullptr;
        other.graph_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

    [[nodiscard]] const graph::CsrGraph& graph() const noexcept {
      return *graph_;
    }
    [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

   private:
    void release() noexcept;

    GraphEpochs* owner_ = nullptr;
    std::uint64_t epoch_ = 0;
    const graph::CsrGraph* graph_ = nullptr;
  };

  /// Builds epoch 0 from `edges` (kept — every publish rebuilds from
  /// the accumulated list). `opts` applies to every rebuild; the
  /// default symmetrises, matching the Graph 500 pipeline.
  explicit GraphEpochs(graph::EdgeList edges,
                       const graph::BuildOptions& opts = {});

  GraphEpochs(const GraphEpochs&) = delete;
  GraphEpochs& operator=(const GraphEpochs&) = delete;

  /// Pins the newest published epoch. Thread-safe.
  [[nodiscard]] Pin pin();

  /// Id of the newest published epoch. Thread-safe.
  [[nodiscard]] std::uint64_t current_epoch() const;

  /// Vertex count of the newest published epoch. Thread-safe.
  [[nodiscard]] graph::vid_t current_num_vertices() const;

  // ---- writer side (one thread at a time) ----

  /// Buffers one directed edge for the next publish; invisible to
  /// readers until then. Endpoints may exceed the current vertex count
  /// — the vertex set grows at publish. Rejects negatives.
  void buffer_insert(graph::vid_t u, graph::vid_t v);

  /// Insertions buffered since the last publish.
  [[nodiscard]] std::size_t pending_inserts() const;

  /// Folds the buffered insertions into the edge list, rebuilds it as
  /// the next epoch, and retires every unpinned superseded epoch.
  /// Valid with zero pending insertions (publishes an identical graph
  /// under a new id). Returns the new epoch id.
  std::uint64_t publish();

  // ---- observability ----

  /// Epochs currently retained: the published one plus superseded ones
  /// still pinned by readers.
  [[nodiscard]] std::size_t live_epochs() const;

  /// Superseded epochs whose storage has been reclaimed.
  [[nodiscard]] std::uint64_t retired_epochs() const;

 private:
  struct Record {
    std::uint64_t epoch = 0;
    std::unique_ptr<const graph::CsrGraph> graph;
    std::size_t pins = 0;
  };

  void unpin(std::uint64_t epoch) noexcept;

  // Writer-owned; never touched by readers.
  graph::EdgeList edges_;
  graph::BuildOptions build_opts_;
  std::vector<graph::Edge> pending_;

  mutable std::mutex mu_;  // guards records_ / retired_
  std::vector<Record> records_;
  std::uint64_t retired_ = 0;
};

}  // namespace bfsx::serve
