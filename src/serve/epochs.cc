#include "serve/epochs.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace bfsx::serve {

void GraphEpochs::Pin::release() noexcept {
  // analyze: allow(raw-unpin) Pin::release IS the RAII unpin: the one
  // blessed caller. Every other path holds a Pin and funnels through
  // here from its destructor or an explicit release().
  if (owner_ != nullptr) owner_->unpin(epoch_);
  owner_ = nullptr;
  graph_ = nullptr;
}

GraphEpochs::GraphEpochs(graph::EdgeList edges,
                         const graph::BuildOptions& opts)
    : edges_(std::move(edges)), build_opts_(opts) {
  // build_csr consumes its edge list; keep ours for future publishes.
  auto g = std::make_unique<const graph::CsrGraph>(
      graph::build_csr(edges_, build_opts_));
  records_.push_back({0, std::move(g), 0});
}

GraphEpochs::Pin GraphEpochs::pin() {
  const std::lock_guard<std::mutex> lock(mu_);
  Record& current = records_.back();
  ++current.pins;
  return {this, current.epoch, current.graph.get()};
}

std::uint64_t GraphEpochs::current_epoch() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_.back().epoch;
}

graph::vid_t GraphEpochs::current_num_vertices() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_.back().graph->num_vertices();
}

void GraphEpochs::buffer_insert(graph::vid_t u, graph::vid_t v) {
  if (u < 0 || v < 0) {
    throw std::invalid_argument("GraphEpochs: negative vertex in insert (" +
                                std::to_string(u) + ", " + std::to_string(v) +
                                ")");
  }
  pending_.push_back({u, v});
}

std::size_t GraphEpochs::pending_inserts() const { return pending_.size(); }

std::uint64_t GraphEpochs::publish() {
  for (const graph::Edge& e : pending_) {
    edges_.num_vertices =
        std::max({edges_.num_vertices, e.src + 1, e.dst + 1});
    edges_.edges.push_back(e);
  }
  pending_.clear();
  // The rebuild happens outside the lock: readers keep pinning the old
  // epoch while the new CSR is under construction.
  auto fresh = std::make_unique<const graph::CsrGraph>(
      graph::build_csr(edges_, build_opts_));

  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t next = records_.back().epoch + 1;
  records_.push_back({next, std::move(fresh), 0});
  // Retire every superseded, unpinned epoch (the newly published
  // record is last and never considered).
  const auto stale = [&](const Record& r) {
    return r.epoch != next && r.pins == 0;
  };
  const auto removed =
      std::count_if(records_.begin(), records_.end(), stale);
  records_.erase(
      std::remove_if(records_.begin(), records_.end(), stale),
      records_.end());
  retired_ += static_cast<std::uint64_t>(removed);
  return next;
}

std::size_t GraphEpochs::live_epochs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::uint64_t GraphEpochs::retired_epochs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return retired_;
}

void GraphEpochs::unpin(std::uint64_t epoch) noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if (it->epoch != epoch) continue;
    --it->pins;
    // The current epoch stays resident unpinned; a superseded one
    // retires with its last pin.
    if (it->pins == 0 && it->epoch != records_.back().epoch) {
      records_.erase(it);
      ++retired_;
    }
    return;
  }
}

}  // namespace bfsx::serve
