#include "serve/epochs.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

namespace bfsx::serve {
namespace {

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point start) {
  return std::chrono::duration<double>(clock::now() - start).count();
}

std::uint64_t op_key(graph::vid_t u, graph::vid_t v) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

}  // namespace

void GraphEpochs::Pin::release() noexcept {
  // analyze: allow(raw-unpin) Pin::release IS the RAII unpin: the one
  // blessed caller. Every other path holds a Pin and funnels through
  // here from its destructor or an explicit release().
  if (owner_ != nullptr) owner_->unpin(epoch_);
  owner_ = nullptr;
  graph_ = nullptr;
}

GraphEpochs::GraphEpochs(graph::EdgeList edges, const EpochOptions& opts)
    : opts_(opts) {
  const auto start = clock::now();
  base_ = std::make_shared<const graph::CsrGraph>(
      graph::build_csr(std::move(edges), opts_.build));
  records_.push_back({0, std::make_unique<const EpochGraph>(base_), 0});
  ++full_publishes_;
  last_publish_.epoch = 0;
  last_publish_.compacted = true;
  last_publish_.seconds = seconds_since(start);
}

GraphEpochs::GraphEpochs(graph::EdgeList edges,
                         const graph::BuildOptions& build)
    : GraphEpochs(std::move(edges), EpochOptions{.build = build}) {}

GraphEpochs::Pin GraphEpochs::pin() {
  const std::lock_guard<std::mutex> lock(mu_);
  Record& current = records_.back();
  ++current.pins;
  return {this, current.epoch, current.graph.get()};
}

std::uint64_t GraphEpochs::current_epoch() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_.back().epoch;
}

graph::vid_t GraphEpochs::current_num_vertices() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_.back().graph->num_vertices();
}

void GraphEpochs::buffer_insert(graph::vid_t u, graph::vid_t v) {
  if (u < 0 || v < 0) {
    throw std::invalid_argument("GraphEpochs: negative vertex in insert (" +
                                std::to_string(u) + ", " + std::to_string(v) +
                                ")");
  }
  pending_.push_back({{u, v}, /*remove=*/false});
  ++pending_inserts_;
}

void GraphEpochs::buffer_remove(graph::vid_t u, graph::vid_t v) {
  if (u < 0 || v < 0) {
    throw std::invalid_argument("GraphEpochs: negative vertex in remove (" +
                                std::to_string(u) + ", " + std::to_string(v) +
                                ")");
  }
  pending_.push_back({{u, v}, /*remove=*/true});
  ++pending_removes_;
}

std::size_t GraphEpochs::pending_inserts() const { return pending_inserts_; }
std::size_t GraphEpochs::pending_removes() const { return pending_removes_; }

std::uint64_t GraphEpochs::publish() { return publish_impl(false); }
std::uint64_t GraphEpochs::publish_full() { return publish_impl(true); }

std::uint64_t GraphEpochs::publish_impl(bool force_full) {
  const auto start = clock::now();
  PublishInfo info;
  info.raw_ops = pending_.size();

  // Canonicalise: the last op on each directed edge wins. A churn
  // trace that inserts the same edge five times, or inserts then
  // removes it, contributes at most one op — duplicates never inflate
  // the delta's patch count.
  std::unordered_map<std::uint64_t, std::size_t> last;
  last.reserve(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    last[op_key(pending_[i].edge.src, pending_[i].edge.dst)] = i;
  }
  std::vector<graph::Edge> inserts;
  std::vector<graph::Edge> removes;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const PendingOp& op = pending_[i];
    if (last.at(op_key(op.edge.src, op.edge.dst)) != i) continue;
    (op.remove ? removes : inserts).push_back(op.edge);
  }
  pending_.clear();
  pending_inserts_ = 0;
  pending_removes_ = 0;
  info.applied_inserts = inserts.size();
  info.applied_removes = removes.size();
  info.deduped_ops = info.raw_ops - inserts.size() - removes.size();

  // The current record is the one entry unpin() never erases, and
  // publishing is single-writer, so its overlay pointer stays valid
  // for the whole apply without holding the lock.
  const graph::DeltaCsr* prev = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    prev = records_.back().graph->delta();
  }

  graph::DeltaCsr next =
      graph::DeltaCsr::apply(base_, prev, inserts, removes, opts_.build);
  info.patched_rows = next.patched_rows();
  info.patched_fraction = next.patched_fraction();

  const bool fold = force_full || !opts_.delta_publish ||
                    next.patched_fraction() >= opts_.compact_threshold;
  std::unique_ptr<const EpochGraph> fresh;
  if (fold) {
    // Fold the overlay's effective adjacency back into a flat CSR:
    // removed edges' storage is reclaimed here, and the flat graph
    // becomes the base future overlays patch against. The list is
    // already canonical, so the rebuild's symmetrize/dedup passes are
    // idempotent.
    auto flat = std::make_shared<const graph::CsrGraph>(
        graph::build_csr(next.materialize_edges(), opts_.build));
    base_ = flat;
    fresh = std::make_unique<const EpochGraph>(std::move(flat));
    info.compacted = true;
    ++full_publishes_;
  } else {
    fresh = std::make_unique<const EpochGraph>(std::move(next));
    info.delta = true;
    ++delta_publishes_;
  }

  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t next_epoch = records_.back().epoch + 1;
  records_.push_back({next_epoch, std::move(fresh), 0});
  // Retire every superseded, unpinned epoch (the newly published
  // record is last and never considered).
  const auto stale = [&](const Record& r) {
    return r.epoch != next_epoch && r.pins == 0;
  };
  const auto removed = std::count_if(records_.begin(), records_.end(), stale);
  records_.erase(std::remove_if(records_.begin(), records_.end(), stale),
                 records_.end());
  retired_ += static_cast<std::uint64_t>(removed);

  info.epoch = next_epoch;
  info.seconds = seconds_since(start);
  last_publish_ = info;
  return next_epoch;
}

PublishInfo GraphEpochs::last_publish() const { return last_publish_; }

std::uint64_t GraphEpochs::delta_publishes() const { return delta_publishes_; }
std::uint64_t GraphEpochs::full_publishes() const { return full_publishes_; }

std::size_t GraphEpochs::live_epochs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::uint64_t GraphEpochs::retired_epochs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return retired_;
}

void GraphEpochs::unpin(std::uint64_t epoch) noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if (it->epoch != epoch) continue;
    --it->pins;
    // The current epoch stays resident unpinned; a superseded one
    // retires with its last pin.
    if (it->pins == 0 && it->epoch != records_.back().epoch) {
      records_.erase(it);
      ++retired_;
    }
    return;
  }
}

}  // namespace bfsx::serve
