// Query model of the serving subsystem (serve::QueryEngine).
//
// Three query kinds, all answerable from one source-rooted traversal:
// a full BFS (parent + level maps, the library's classic output), a
// point-to-point distance, and a reachability test. Kinds without an
// engine override are *batch-compatible*: the scheduler coalesces them
// into one bit-parallel MS-BFS pass, up to 64 distinct sources per
// tick, because queries sharing an edge walk is the economics that
// makes a BFS server viable (BENCH_msbfs: ~3-6x aggregate TEPS).
// Queries naming an explicit engine fall back to single-source
// dispatch through graph500::EngineRegistry.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "bfs/state.h"
#include "graph/types.h"

namespace bfsx::serve {

enum class QueryKind {
  kBfs,           ///< full traversal: parent + level maps
  kDistance,      ///< level of `target` from `source` (-1 if unreached)
  kReachability,  ///< is `target` in `source`'s component?
};

[[nodiscard]] constexpr const char* to_string(QueryKind k) noexcept {
  switch (k) {
    case QueryKind::kBfs: return "bfs";
    case QueryKind::kDistance: return "dist";
    case QueryKind::kReachability: return "reach";
  }
  return "?";
}

struct Query {
  QueryKind kind = QueryKind::kDistance;
  graph::vid_t source = 0;
  /// Distance / reachability only; ignored by kBfs.
  graph::vid_t target = 0;
  /// Optional engine override (a graph500::EngineRegistry name, e.g.
  /// "native-td"). Non-empty overrides are incompatible with MS-BFS
  /// lane batching and are dispatched alone through the registry.
  std::string engine;
};

/// Why a query was bounced at admission instead of being served.
enum class RejectReason {
  kNone,
  kQueueFull,       ///< bounded admission queue at capacity
  kInvalidVertex,   ///< source/target outside the current epoch's graph
  kUnknownEngine,   ///< engine override names no registered engine
  kShutdown,        ///< engine stopping; queued queries are drained out
};

[[nodiscard]] constexpr const char* to_string(RejectReason r) noexcept {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kInvalidVertex: return "invalid_vertex";
    case RejectReason::kUnknownEngine: return "unknown_engine";
    case RejectReason::kShutdown: return "shutdown";
  }
  return "?";
}

struct QueryResult {
  /// False iff rejected; `reject` then names the reason and every
  /// answer field below is meaningless.
  bool ok = false;
  RejectReason reject = RejectReason::kNone;

  QueryKind kind = QueryKind::kDistance;
  graph::vid_t source = 0;
  graph::vid_t target = 0;

  /// kDistance (and kReachability, as a byproduct): BFS level of
  /// `target`, -1 if unreached.
  std::int32_t distance = -1;
  bool reachable = false;
  /// kBfs only: the full parent/level maps. Shared because duplicate
  /// sources inside one batch are answered by the same MS-BFS lane.
  std::shared_ptr<const bfs::BfsResult> traversal;

  /// The graph epoch this answer was computed on. Concurrent streaming
  /// inserts never bleed into an answer: the whole batch pins one
  /// epoch (see serve::GraphEpochs).
  std::uint64_t epoch = 0;
  /// Answered from the landmark cache, without touching the graph.
  bool cache_hit = false;
  /// Distinct MS-BFS lanes of the pass that served it; 0 when served
  /// by a single-source engine or the cache.
  std::int32_t batch_lanes = 0;
  /// Submit-to-answer wall latency as measured by the engine.
  double latency_seconds = 0.0;
};

}  // namespace bfsx::serve
