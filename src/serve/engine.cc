#include "serve/engine.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "graph500/view_engine.h"

namespace bfsx::serve {
namespace {

using clock = std::chrono::steady_clock;

double seconds_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

QueryResult skeleton(const Query& q) {
  QueryResult r;
  r.kind = q.kind;
  r.source = q.source;
  r.target = q.target;
  return r;
}

/// Fills the answer fields of `r` from a finished traversal of its
/// source. kBfs keeps the whole map; the point queries read one cell.
void fill_answer(QueryResult& r,
                 const std::shared_ptr<const bfs::BfsResult>& traversal) {
  r.ok = true;
  switch (r.kind) {
    case QueryKind::kBfs:
      r.traversal = traversal;
      r.reachable = true;
      r.distance = 0;
      break;
    case QueryKind::kDistance:
    case QueryKind::kReachability:
      r.distance = traversal->level[static_cast<std::size_t>(r.target)];
      r.reachable = r.distance >= 0;
      break;
  }
}

/// Single-source dispatch for epochs without a flat CSR. The override
/// name maps onto its direction family (td / bu / everything-else →
/// M/N hybrid), so a query answered on a delta epoch reports the same
/// distances the named engine would on the flat rebuild; simulated
/// engine timing models don't apply to overlays.
template <typename V>
graph500::TimedBfs run_single_on_view(const V& g, const std::string& name,
                                      graph::vid_t root,
                                      const core::HybridPolicy& policy,
                                      bfs::StatePool* pool) {
  namespace d = graph500::detail;
  if (name == "td" || name.ends_with("-td") || name == "ref") {
    return d::traced_traversal(
        g, root, name.c_str(), nullptr, pool,
        [&g](bfs::BfsState& s, obs::LevelEvent* e) { d::step_top_down(g, s, e); });
  }
  if (name == "bu" || name.ends_with("-bu")) {
    return d::traced_traversal(
        g, root, name.c_str(), nullptr, pool,
        [&g](bfs::BfsState& s, obs::LevelEvent* e) { d::step_bottom_up(g, s, e); });
  }
  return d::traced_traversal(g, root, name.c_str(), nullptr, pool,
                             [&g, &policy](bfs::BfsState& s,
                                           obs::LevelEvent* e) {
                               d::step_hybrid(g, policy, s, e);
                             });
}

/// The publish-duration histogram's log-scale upper bounds (seconds);
/// the last bucket is +inf.
constexpr std::array<double, 5> kPublishBounds = {0.001, 0.01, 0.1, 1.0,
                                                  10.0};

std::size_t publish_bucket(double seconds) {
  for (std::size_t i = 0; i < kPublishBounds.size(); ++i) {
    if (seconds <= kPublishBounds[i]) return i;
  }
  return kPublishBounds.size();
}

}  // namespace

QueryEngine::QueryEngine(graph::EdgeList edges, ServeOptions opts)
    : opts_(std::move(opts)),
      epochs_(std::move(edges),
              EpochOptions{.build = {},
                           .delta_publish = opts_.delta_publish,
                           .compact_threshold = opts_.compact_threshold}),
      registry_(graph500::EngineRegistry::with_builtin_engines()) {
  opts_.workers = std::max(opts_.workers, 1);
  opts_.batch_max = std::clamp(opts_.batch_max, 1, bfs::kMsBfsMaxLanes);
  paused_ = opts_.start_paused;
  rebuild_cache();
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

QueryEngine::~QueryEngine() { shutdown(); }

std::future<QueryResult> QueryEngine::submit(Query q) {
  const auto now = clock::now();
  std::promise<QueryResult> reject_promise;
  std::future<QueryResult> reject_future = reject_promise.get_future();

  const auto reject = [&](RejectReason why) {
    QueryResult r = skeleton(q);
    r.reject = why;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (why == RejectReason::kQueueFull) {
        ++stats_.rejected_full;
      } else if (why == RejectReason::kShutdown) {
        ++stats_.rejected_shutdown;
      } else {
        ++stats_.rejected_invalid;
      }
    }
    obs::QueryEvent e;
    e.stage = obs::QueryEvent::Stage::kReject;
    e.detail = to_string(why);
    emit(e);
    reject_promise.set_value(std::move(r));
    return std::move(reject_future);
  };

  // Admission validation against the newest epoch. Vertex ids only
  // grow across epochs, so an id valid now stays valid for whichever
  // (equal or newer) epoch the batch eventually pins.
  const graph::vid_t n = epochs_.current_num_vertices();
  const bool needs_target = q.kind != QueryKind::kBfs;
  if (q.source < 0 || q.source >= n ||
      (needs_target && (q.target < 0 || q.target >= n))) {
    return reject(RejectReason::kInvalidVertex);
  }
  if (!q.engine.empty() && registry_.find(q.engine) == nullptr) {
    return reject(RejectReason::kUnknownEngine);
  }

  std::int64_t id = 0;
  const QueryKind kind = q.kind;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      lock.unlock();
      return reject(RejectReason::kShutdown);
    }
    // Landmark-cache fast path: a covered distance/reachability query
    // is answered at the door, never entering the queue. The epoch tag
    // guards the rebuild window after a publish — a stale cache is a
    // miss, not a wrong answer.
    const bool cacheable = opts_.cache_enabled && q.engine.empty() &&
                           q.kind != QueryKind::kBfs && cache_ != nullptr &&
                           cache_->epoch() == epochs_.current_epoch();
    if (cacheable) {
      if (const auto hit = cache_->distance(q.source, q.target)) {
        ++stats_.cache_hits;
        ++stats_.served;
        const std::uint64_t epoch = cache_->epoch();
        lock.unlock();
        QueryResult r = skeleton(q);
        r.ok = true;
        r.distance = *hit;
        r.reachable = *hit >= 0;
        r.epoch = epoch;
        r.cache_hit = true;
        r.latency_seconds = seconds_between(now, clock::now());
        obs::QueryEvent e;
        e.stage = obs::QueryEvent::Stage::kCacheHit;
        e.detail = to_string(q.kind);
        e.epoch = epoch;
        emit(e);
        e.stage = obs::QueryEvent::Stage::kComplete;
        e.seconds = r.latency_seconds;
        emit(e);
        reject_promise.set_value(std::move(r));
        return reject_future;
      }
      ++stats_.cache_misses;
    }
    if (queue_.size() >= opts_.queue_capacity) {
      lock.unlock();
      return reject(RejectReason::kQueueFull);
    }
    id = next_id_++;
    Pending p;
    p.query = std::move(q);
    p.promise = std::move(reject_promise);
    p.enqueued = now;
    p.id = id;
    queue_.push_back(std::move(p));
    ++stats_.submitted;
  }
  cv_work_.notify_one();
  obs::QueryEvent e;
  e.stage = obs::QueryEvent::Stage::kEnqueue;
  e.query_id = id;
  e.detail = to_string(kind);
  // Stamp the epoch the query was admitted against; the dispatch /
  // complete events carry the (equal or newer) epoch it was answered
  // on, so a trace shows exactly how admission and service interleave
  // with publishes.
  e.epoch = epochs_.current_epoch();
  emit(e);
  return reject_future;
}

void QueryEngine::insert_edge(graph::vid_t u, graph::vid_t v) {
  epochs_.buffer_insert(u, v);
  const std::lock_guard<std::mutex> lock(mu_);
  pending_insert_log_.push_back({u, v});
  ++stats_.edges_inserted;
}

void QueryEngine::remove_edge(graph::vid_t u, graph::vid_t v) {
  epochs_.buffer_remove(u, v);
  const std::lock_guard<std::mutex> lock(mu_);
  pending_had_removes_ = true;
  ++stats_.edges_removed;
}

std::uint64_t QueryEngine::publish_inserts() {
  std::vector<graph::Edge> inserted;
  bool had_removes = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    inserted.swap(pending_insert_log_);
    had_removes = pending_had_removes_;
    pending_had_removes_ = false;
  }
  const std::uint64_t epoch = epochs_.publish();
  const PublishInfo info = epochs_.last_publish();
  rearm_cache(inserted, had_removes, epoch);
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.epochs_published;
  if (info.delta) {
    ++stats_.delta_publishes;
  } else {
    ++stats_.full_publishes;
  }
  publish_seconds_total_ += info.seconds;
  ++publish_hist_[publish_bucket(info.seconds)];
  return epoch;
}

void QueryEngine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [&] {
    return stopping_ || (queue_.empty() && in_flight_ == 0);
  });
}

void QueryEngine::pause() {
  const std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void QueryEngine::resume() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void QueryEngine::shutdown() {
  std::deque<Pending> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    orphans.swap(queue_);
    stats_.rejected_shutdown += static_cast<std::int64_t>(orphans.size());
  }
  cv_work_.notify_all();
  cv_idle_.notify_all();
  for (Pending& p : orphans) {
    QueryResult r = skeleton(p.query);
    r.reject = RejectReason::kShutdown;
    obs::QueryEvent e;
    e.stage = obs::QueryEvent::Stage::kReject;
    e.query_id = p.id;
    e.detail = to_string(RejectReason::kShutdown);
    emit(e);
    p.promise.set_value(std::move(r));
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

ServeStats QueryEngine::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t QueryEngine::current_epoch() const {
  return epochs_.current_epoch();
}

graph::vid_t QueryEngine::num_vertices() const {
  return epochs_.current_num_vertices();
}

void QueryEngine::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (stopping_) return;  // shutdown() already resolved the queue
      // One scheduler tick: engine-override queries are incompatible
      // with lane batching and go out alone; otherwise coalesce up to
      // batch_max compatible queries into one MS-BFS pass.
      const auto cap = static_cast<std::size_t>(opts_.batch_max);
      if (!queue_.front().query.engine.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      } else {
        while (!queue_.empty() && batch.size() < cap &&
               queue_.front().query.engine.empty()) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
      ++in_flight_;
      ++stats_.dispatches;
      stats_.max_batch =
          std::max(stats_.max_batch, static_cast<std::int64_t>(batch.size()));
    }
    serve_tick(std::move(batch));
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void QueryEngine::serve_tick(std::vector<Pending> batch) {
  // The whole tick answers on one pinned epoch: inserts published
  // while the batch runs target the next epoch and cannot bleed in.
  const GraphEpochs::Pin pin = epochs_.pin();
  if (batch.size() == 1) {
    serve_single(std::move(batch.front()), pin);
  } else {
    serve_msbfs(std::move(batch), pin);
  }
}

void QueryEngine::serve_single(Pending pending, const GraphEpochs::Pin& pin) {
  const std::string name = pending.query.engine.empty()
                               ? opts_.fallback_engine
                               : pending.query.engine;
  obs::QueryEvent e;
  e.stage = obs::QueryEvent::Stage::kDispatch;
  e.detail = name;
  e.epoch = pin.epoch();
  e.batch_size = 1;
  e.lanes = 0;
  emit(e);

  try {
    // Flat epochs take the historical path — the named engine from
    // the registry, simulated families included. Delta epochs have no
    // CSR to hand those closures, so the override runs its direction
    // family directly over the overlay view.
    graph500::TimedBfs timed =
        pin.graph().flat() != nullptr
            ? single_engine(name, nullptr)(*pin.graph().flat(),
                                           pending.query.source)
            : run_single_on_view(*pin.graph().delta(), name,
                                 pending.query.source, opts_.policy, &pool_);
    QueryResult r = skeleton(pending.query);
    r.epoch = pin.epoch();
    fill_answer(r, std::make_shared<const bfs::BfsResult>(
                       std::move(timed.result)));
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.served;
      ++stats_.single_queries;
    }
    finish(std::move(pending), std::move(r));
  } catch (...) {
    pending.promise.set_exception(std::current_exception());
  }
}

void QueryEngine::serve_msbfs(std::vector<Pending> batch,
                              const GraphEpochs::Pin& pin) {
  // Duplicate sources share one traversal lane; the MS-BFS pass runs
  // over the distinct sources only.
  std::unordered_map<graph::vid_t, std::size_t> lane_of;
  std::vector<graph::vid_t> roots;
  for (const Pending& p : batch) {
    if (lane_of.emplace(p.query.source, roots.size()).second) {
      roots.push_back(p.query.source);
    }
  }

  obs::QueryEvent e;
  e.stage = obs::QueryEvent::Stage::kDispatch;
  e.detail = "msbfs";
  e.epoch = pin.epoch();
  e.batch_size = static_cast<std::int32_t>(batch.size());
  e.lanes = static_cast<std::int32_t>(roots.size());
  emit(e);

  bfs::MsBfsOptions mopts;
  mopts.m = opts_.policy.m;
  mopts.n = opts_.policy.n;
  bfs::MsBfsResult pass;
  try {
    pass = pin.graph().visit(
        [&](const auto& g) { return bfs::ms_bfs(g, roots, mopts); });
  } catch (...) {
    for (Pending& p : batch) {
      p.promise.set_exception(std::current_exception());
    }
    return;
  }

  std::vector<std::shared_ptr<const bfs::BfsResult>> lane_result;
  lane_result.reserve(roots.size());
  for (bfs::BfsResult& r : pass.per_root) {
    lane_result.push_back(
        std::make_shared<const bfs::BfsResult>(std::move(r)));
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.served += static_cast<std::int64_t>(batch.size());
    stats_.batched_queries += static_cast<std::int64_t>(batch.size());
  }
  for (Pending& p : batch) {
    QueryResult r = skeleton(p.query);
    r.epoch = pin.epoch();
    r.batch_lanes = static_cast<std::int32_t>(roots.size());
    fill_answer(r, lane_result[lane_of.at(p.query.source)]);
    finish(std::move(p), std::move(r));
  }
}

void QueryEngine::finish(Pending pending, QueryResult result) {
  result.latency_seconds = seconds_between(pending.enqueued, clock::now());
  obs::QueryEvent e;
  e.stage = obs::QueryEvent::Stage::kComplete;
  e.query_id = pending.id;
  e.detail = to_string(result.kind);
  e.epoch = result.epoch;
  e.seconds = result.latency_seconds;
  emit(e);
  pending.promise.set_value(std::move(result));
}

graph500::BfsEngine QueryEngine::single_engine(const std::string& name,
                                               obs::TraceSink* sink) {
  const std::lock_guard<std::mutex> lock(engines_mu_);
  const auto it = engines_.find(name);
  if (it != engines_.end()) return it->second;
  graph500::EngineConfig cfg;
  cfg.policy = opts_.policy;
  cfg.pool = &pool_;
  cfg.sink = sink;
  return engines_.emplace(name, registry_.make_engine(name, cfg))
      .first->second;
}

void QueryEngine::emit(const obs::QueryEvent& e) {
  if (opts_.sink == nullptr) return;
  const std::lock_guard<std::mutex> lock(sink_mu_);
  opts_.sink->on_query(e);
}

void QueryEngine::rebuild_cache() {
  if (!opts_.cache_enabled) return;
  const GraphEpochs::Pin pin = epochs_.pin();
  auto fresh =
      std::make_shared<const LandmarkCache>(pin.graph().visit([&](const auto& g) {
        return LandmarkCache::build(g, pin.epoch(), opts_.num_landmarks);
      }));
  const std::lock_guard<std::mutex> lock(mu_);
  cache_ = std::move(fresh);
  ++stats_.cache_rebuilds;
}

void QueryEngine::rearm_cache(const std::vector<graph::Edge>& inserted,
                              bool had_removes, std::uint64_t epoch) {
  if (!opts_.cache_enabled) return;
  std::shared_ptr<const LandmarkCache> old;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    old = cache_;
  }
  // Repair is sound only for the exact insert-only step from the
  // cache's epoch to this one: removals can grow distances (repair
  // only shrinks them), and an epoch gap means this batch is not the
  // whole difference. Everything else falls back to a full rebuild.
  const bool repairable = opts_.repair_cache && !had_removes &&
                          old != nullptr && old->epoch() + 1 == epoch &&
                          !old->landmarks().empty();
  if (!repairable) {
    rebuild_cache();
    return;
  }
  const GraphEpochs::Pin pin = epochs_.pin();
  RepairStats rs;
  auto fresh =
      std::make_shared<const LandmarkCache>(pin.graph().visit([&](const auto& g) {
        return old->repaired(g, inserted, epoch, &rs);
      }));
  const std::lock_guard<std::mutex> lock(mu_);
  cache_ = std::move(fresh);
  last_repair_ = rs;
  ++stats_.cache_repairs;
}

RepairStats QueryEngine::last_repair() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_repair_;
}

void QueryEngine::export_metrics(obs::Registry& registry) const {
  registry.add("serve.epochs.live",
               static_cast<std::int64_t>(epochs_.live_epochs()));
  registry.add("serve.epochs.retired",
               static_cast<std::int64_t>(epochs_.retired_epochs()));
  registry.add("serve.epochs.pending_inserts",
               static_cast<std::int64_t>(epochs_.pending_inserts()));
  registry.add("serve.epochs.pending_removes",
               static_cast<std::int64_t>(epochs_.pending_removes()));
  const std::lock_guard<std::mutex> lock(mu_);
  registry.add("serve.publish.delta", stats_.delta_publishes);
  registry.add("serve.publish.full", stats_.full_publishes);
  registry.add("serve.cache.repairs", stats_.cache_repairs);
  registry.add("serve.cache.rebuilds", stats_.cache_rebuilds);
  registry.add("serve.cache.repair.seeds",
               static_cast<std::int64_t>(last_repair_.seeds));
  registry.add("serve.cache.repair.relaxed",
               static_cast<std::int64_t>(last_repair_.relaxed));
  registry.record_seconds("serve.publish", publish_seconds_total_);
  constexpr std::array<const char*, 6> kBucketNames = {
      "serve.publish.le_1ms", "serve.publish.le_10ms",
      "serve.publish.le_100ms", "serve.publish.le_1s",
      "serve.publish.le_10s", "serve.publish.le_inf"};
  for (std::size_t i = 0; i < kBucketNames.size(); ++i) {
    registry.add(kBucketNames[i], publish_hist_[i]);
  }
}

}  // namespace bfsx::serve
