#include "serve/landmark_cache.h"

namespace bfsx::serve {

LandmarkCache::LandmarkCache(const graph::CsrGraph& g, std::uint64_t epoch,
                             int num_landmarks)
    : LandmarkCache(build(graph::CsrGraphView(g), epoch, num_landmarks)) {}

bool LandmarkCache::is_landmark(graph::vid_t v) const noexcept {
  return v >= 0 && v < num_vertices_ &&
         lane_of_[static_cast<std::size_t>(v)] >= 0;
}

std::optional<std::int32_t> LandmarkCache::distance(
    graph::vid_t s, graph::vid_t t) const noexcept {
  if (s < 0 || t < 0 || s >= num_vertices_ || t >= num_vertices_) {
    return std::nullopt;
  }
  const auto row = [this](std::int32_t lane, graph::vid_t v) {
    return dist_[static_cast<std::size_t>(lane) *
                     static_cast<std::size_t>(num_vertices_) +
                 static_cast<std::size_t>(v)];
  };
  if (const std::int32_t lane = lane_of_[static_cast<std::size_t>(s)];
      lane >= 0) {
    return row(lane, t);
  }
  // d(t, s) = d(s, t) only when every edge is mirrored.
  if (symmetric_) {
    if (const std::int32_t lane = lane_of_[static_cast<std::size_t>(t)];
        lane >= 0) {
      return row(lane, s);
    }
  }
  return std::nullopt;
}

}  // namespace bfsx::serve
