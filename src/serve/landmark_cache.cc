#include "serve/landmark_cache.h"

#include <algorithm>
#include <utility>

#include "bfs/msbfs.h"
#include "graph/graph_stats.h"

namespace bfsx::serve {

LandmarkCache::LandmarkCache(const graph::CsrGraph& g, std::uint64_t epoch,
                             int num_landmarks)
    : epoch_(epoch),
      symmetric_(g.is_symmetric()),
      num_vertices_(g.num_vertices()) {
  const int k = std::clamp(num_landmarks, 0, bfs::kMsBfsMaxLanes);
  lane_of_.assign(static_cast<std::size_t>(num_vertices_), -1);
  if (k == 0 || num_vertices_ == 0) return;

  // Top-k by out-degree, ties to the smaller id — the shared hub
  // selection (graph_stats.h), also used by the bottom-up hub cache.
  landmarks_ = graph::top_out_degree_vertices(g, static_cast<std::size_t>(k));
  if (landmarks_.empty()) return;

  const bfs::MsBfsResult pass = bfs::ms_bfs(g, landmarks_);
  dist_.resize(landmarks_.size() * static_cast<std::size_t>(num_vertices_));
  for (std::size_t lane = 0; lane < landmarks_.size(); ++lane) {
    lane_of_[static_cast<std::size_t>(landmarks_[lane])] =
        static_cast<std::int32_t>(lane);
    const std::vector<std::int32_t>& level = pass.per_root[lane].level;
    std::copy(level.begin(), level.end(),
              dist_.begin() +
                  static_cast<std::ptrdiff_t>(
                      lane * static_cast<std::size_t>(num_vertices_)));
  }
}

bool LandmarkCache::is_landmark(graph::vid_t v) const noexcept {
  return v >= 0 && v < num_vertices_ &&
         lane_of_[static_cast<std::size_t>(v)] >= 0;
}

std::optional<std::int32_t> LandmarkCache::distance(
    graph::vid_t s, graph::vid_t t) const noexcept {
  if (s < 0 || t < 0 || s >= num_vertices_ || t >= num_vertices_) {
    return std::nullopt;
  }
  const auto row = [this](std::int32_t lane, graph::vid_t v) {
    return dist_[static_cast<std::size_t>(lane) *
                     static_cast<std::size_t>(num_vertices_) +
                 static_cast<std::size_t>(v)];
  };
  if (const std::int32_t lane = lane_of_[static_cast<std::size_t>(s)];
      lane >= 0) {
    return row(lane, t);
  }
  // d(t, s) = d(s, t) only when every edge is mirrored.
  if (symmetric_) {
    if (const std::int32_t lane = lane_of_[static_cast<std::size_t>(t)];
        lane >= 0) {
      return row(lane, s);
    }
  }
  return std::nullopt;
}

}  // namespace bfsx::serve
