// Landmark (hub) distance cache: distance queries answered without
// touching the graph.
//
// Scale-free graphs concentrate traffic on hubs — the same few
// high-degree vertices keep appearing as query sources. One MS-BFS
// pass over the top-k out-degree vertices (k <= 64, one lane each)
// precomputes the full distance row of every hub; a distance query
// whose source is a landmark — or whose target is one, on a symmetric
// graph — is then answered exactly from the table, O(1), no traversal.
// This is deliberately *not* an approximate landmark scheme: outside
// the covered pairs the cache reports a miss and the query proceeds to
// the batch scheduler, so every served answer stays bit-equal to
// reference_bfs.
//
// The cache is immutable after construction (thread-safe reads) and is
// stamped with the graph epoch it was built from; the engine rebuilds
// it after each publish and treats an epoch mismatch as a miss.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace bfsx::serve {

class LandmarkCache {
 public:
  /// Builds the cache over `g` (stamped with `epoch`): selects up to
  /// `num_landmarks` highest-out-degree vertices (ties to the smaller
  /// id, zero-degree vertices excluded), then runs one MS-BFS pass
  /// with one lane per landmark. `num_landmarks` is clamped to
  /// [0, 64]; an empty graph or k = 0 yields an always-miss cache.
  LandmarkCache(const graph::CsrGraph& g, std::uint64_t epoch,
                int num_landmarks);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const std::vector<graph::vid_t>& landmarks() const noexcept {
    return landmarks_;
  }

  /// True iff `v` is one of the selected landmarks.
  [[nodiscard]] bool is_landmark(graph::vid_t v) const noexcept;

  /// Exact BFS distance from `s` to `t` (-1: unreachable) when the
  /// pair is covered — `s` is a landmark, or `t` is one and the graph
  /// was symmetric; std::nullopt on a miss. Out-of-range vertices are
  /// a miss, never an error (the admission path validates ranges).
  [[nodiscard]] std::optional<std::int32_t> distance(
      graph::vid_t s, graph::vid_t t) const noexcept;

 private:
  std::uint64_t epoch_ = 0;
  bool symmetric_ = false;
  graph::vid_t num_vertices_ = 0;
  std::vector<graph::vid_t> landmarks_;
  /// Per vertex: its lane in `dist_`, or -1. Sized num_vertices_.
  std::vector<std::int32_t> lane_of_;
  /// landmarks_.size() rows of num_vertices_ distances, row-major.
  std::vector<std::int32_t> dist_;
};

}  // namespace bfsx::serve
