// Landmark (hub) distance cache: distance queries answered without
// touching the graph.
//
// Scale-free graphs concentrate traffic on hubs — the same few
// high-degree vertices keep appearing as query sources. One MS-BFS
// pass over the top-k out-degree vertices (k <= 64, one lane each)
// precomputes the full distance row of every hub; a distance query
// whose source is a landmark — or whose target is one, on a symmetric
// graph — is then answered exactly from the table, O(1), no traversal.
// This is deliberately *not* an approximate landmark scheme: outside
// the covered pairs the cache reports a miss and the query proceeds to
// the batch scheduler, so every served answer stays bit-equal to
// reference_bfs.
//
// The cache is immutable after construction (thread-safe reads) and is
// stamped with the graph epoch it was built from; the engine re-arms
// it after each publish and treats an epoch mismatch as a miss.
//
// Re-arming is incremental on insert-only publishes: in an unweighted
// graph an edge insertion can only *decrease* distances, so the old
// rows are valid upper bounds and repaired() relaxes them down with a
// label-correcting BFS seeded from the inserted edges' endpoints —
// cost proportional to the vertices whose distance actually changed,
// not k full traversals over |V|. The landmark *set* is kept as-is
// (hub-selection drift is corrected at the next full rebuild, and a
// stale hub choice only costs coverage, never correctness). Removals
// can increase distances, which repair cannot express — the engine
// conservatively rebuilds from scratch on any publish with removes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "bfs/msbfs.h"
#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/graph_stats.h"
#include "graph/types.h"
#include "graph/view.h"

namespace bfsx::serve {

/// What an incremental repair actually did — the proof that its cost
/// scales with affected vertices, not |V|.
struct RepairStats {
  std::size_t lanes = 0;      // landmark rows carried over
  std::size_t seeds = 0;      // endpoints whose distance an insert cut
  std::size_t relaxed = 0;    // queue pops across all lanes
  std::size_t lowered = 0;    // distance cells actually decreased
};

class LandmarkCache {
 public:
  /// Builds the cache over `g` (stamped with `epoch`): selects up to
  /// `num_landmarks` highest-out-degree vertices (ties to the smaller
  /// id, zero-degree vertices excluded), then runs one MS-BFS pass
  /// with one lane per landmark. `num_landmarks` is clamped to
  /// [0, 64]; an empty graph or k = 0 yields an always-miss cache.
  template <graph::HybridView V>
  [[nodiscard]] static LandmarkCache build(const V& g, std::uint64_t epoch,
                                           int num_landmarks) {
    const int k = std::clamp(num_landmarks, 0, bfs::kMsBfsMaxLanes);
    std::vector<graph::vid_t> hubs;
    if (k > 0 && g.num_vertices() > 0) {
      hubs = graph::top_out_degree_vertices(g, static_cast<std::size_t>(k));
    }
    return build_with(g, epoch, std::move(hubs));
  }

  /// Builds the cache from an explicit landmark list (callers own the
  /// selection policy — the repair fuzz tests use this to recompute
  /// with the exact landmark set a repaired cache kept). Out-of-range
  /// or duplicate landmarks are rejected via BFSX MS-BFS root checks.
  template <graph::HybridView V>
  [[nodiscard]] static LandmarkCache build_with(
      const V& g, std::uint64_t epoch, std::vector<graph::vid_t> landmarks) {
    LandmarkCache c;
    c.epoch_ = epoch;
    c.symmetric_ = g.is_symmetric();
    c.num_vertices_ = g.num_vertices();
    c.landmarks_ = std::move(landmarks);
    c.lane_of_.assign(static_cast<std::size_t>(c.num_vertices_), -1);
    if (c.landmarks_.empty()) return c;

    const bfs::MsBfsResult pass = bfs::ms_bfs(g, c.landmarks_);
    const auto n = static_cast<std::size_t>(c.num_vertices_);
    c.dist_.resize(c.landmarks_.size() * n);
    for (std::size_t lane = 0; lane < c.landmarks_.size(); ++lane) {
      c.lane_of_[static_cast<std::size_t>(c.landmarks_[lane])] =
          static_cast<std::int32_t>(lane);
      const std::vector<std::int32_t>& level = pass.per_root[lane].level;
      std::copy(level.begin(), level.end(),
                c.dist_.begin() + static_cast<std::ptrdiff_t>(lane * n));
    }
    return c;
  }

  /// Compatibility entry point for flat CSR callers.
  LandmarkCache(const graph::CsrGraph& g, std::uint64_t epoch,
                int num_landmarks);

  /// A copy of this cache repaired for `g` — the graph of `new_epoch`,
  /// which must differ from this cache's graph by exactly the
  /// *insertion* of `inserts` (directed ops as buffered; mirrored
  /// internally when `g` is symmetric; the vertex set may have grown).
  /// Keeps the same landmark set and relaxes each row down from the
  /// inserted edges, which yields rows identical to build_with(g, …,
  /// landmarks()) — distances only decrease under insertion, so the
  /// old rows are upper bounds the seeded BFS corrects exactly.
  /// Never call this across a publish that removed edges.
  template <graph::HybridView V>
  [[nodiscard]] LandmarkCache repaired(const V& g,
                                       std::span<const graph::Edge> inserts,
                                       std::uint64_t new_epoch,
                                       RepairStats* stats = nullptr) const {
    LandmarkCache c;
    c.epoch_ = new_epoch;
    c.symmetric_ = g.is_symmetric();
    c.num_vertices_ = g.num_vertices();
    c.landmarks_ = landmarks_;
    c.lane_of_.assign(static_cast<std::size_t>(c.num_vertices_), -1);
    RepairStats rs;
    rs.lanes = landmarks_.size();
    if (!landmarks_.empty()) {
      // Re-layout rows for the (possibly grown) vertex count; vertices
      // the old epoch did not have start unreachable, which is exact —
      // before this batch they had no edges at all.
      const auto old_n = static_cast<std::size_t>(num_vertices_);
      const auto new_n = static_cast<std::size_t>(c.num_vertices_);
      c.dist_.assign(landmarks_.size() * new_n, -1);
      for (std::size_t lane = 0; lane < landmarks_.size(); ++lane) {
        c.lane_of_[static_cast<std::size_t>(landmarks_[lane])] =
            static_cast<std::int32_t>(lane);
        std::copy(dist_.begin() + static_cast<std::ptrdiff_t>(lane * old_n),
                  dist_.begin() +
                      static_cast<std::ptrdiff_t>(lane * old_n + old_n),
                  c.dist_.begin() + static_cast<std::ptrdiff_t>(lane * new_n));
      }
      for (std::size_t lane = 0; lane < landmarks_.size(); ++lane) {
        c.repair_lane(g, lane, inserts, rs);
      }
    }
    if (stats != nullptr) *stats = rs;
    return c;
  }

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const std::vector<graph::vid_t>& landmarks() const noexcept {
    return landmarks_;
  }

  /// True iff `v` is one of the selected landmarks.
  [[nodiscard]] bool is_landmark(graph::vid_t v) const noexcept;

  /// Exact BFS distance from `s` to `t` (-1: unreachable) when the
  /// pair is covered — `s` is a landmark, or `t` is one and the graph
  /// was symmetric; std::nullopt on a miss. Out-of-range vertices are
  /// a miss, never an error (the admission path validates ranges).
  [[nodiscard]] std::optional<std::int32_t> distance(
      graph::vid_t s, graph::vid_t t) const noexcept;

 private:
  LandmarkCache() = default;

  /// Label-correcting relaxation of one lane's row: seed every
  /// inserted edge whose head now has a shorter path through its tail,
  /// then propagate the decrease. -1 is +infinity. Exact because
  /// distances are unit-weight and monotonically decreasing under
  /// insertion: every cell ends at min over in-neighbors + 1.
  template <graph::HybridView V>
  void repair_lane(const V& g, std::size_t lane,
                   std::span<const graph::Edge> inserts, RepairStats& rs) {
    const auto n = static_cast<std::size_t>(num_vertices_);
    const std::span<std::int32_t> d(dist_.data() + lane * n, n);
    const auto closer = [&](std::int32_t via, graph::vid_t to) {
      return via >= 0 && (d[static_cast<std::size_t>(to)] < 0 ||
                          d[static_cast<std::size_t>(to)] > via + 1);
    };
    std::deque<graph::vid_t> queue;
    const auto lower = [&](graph::vid_t to, std::int32_t via) {
      d[static_cast<std::size_t>(to)] = via + 1;
      ++rs.lowered;
      queue.push_back(to);
    };
    for (const graph::Edge& e : inserts) {
      if (e.src == e.dst) continue;
      if (closer(d[static_cast<std::size_t>(e.src)], e.dst)) {
        lower(e.dst, d[static_cast<std::size_t>(e.src)]);
        ++rs.seeds;
      }
      if (symmetric_ && closer(d[static_cast<std::size_t>(e.dst)], e.src)) {
        lower(e.src, d[static_cast<std::size_t>(e.dst)]);
        ++rs.seeds;
      }
    }
    while (!queue.empty()) {
      const graph::vid_t w = queue.front();
      queue.pop_front();
      ++rs.relaxed;
      const std::int32_t dw = d[static_cast<std::size_t>(w)];
      g.for_each_out_neighbor(w, [&](graph::vid_t x) {
        if (closer(dw, x)) lower(x, dw);
      });
    }
  }

  std::uint64_t epoch_ = 0;
  bool symmetric_ = false;
  graph::vid_t num_vertices_ = 0;
  std::vector<graph::vid_t> landmarks_;
  /// Per vertex: its lane in `dist_`, or -1. Sized num_vertices_.
  std::vector<std::int32_t> lane_of_;
  /// landmarks_.size() rows of num_vertices_ distances, row-major.
  std::vector<std::int32_t> dist_;
};

}  // namespace bfsx::serve
