// Delta/varint-compressed CSR adjacency, exposed through the GraphView
// concept tiers so the identical templated kernels traverse it.
//
// CSR rows are sorted ascending, so each row is stored as its first
// target followed by successive deltas, every value LEB128-varint
// encoded (7 payload bits per byte, high bit = continuation,
// byte-aligned). R-MAT rows are short and their deltas small — most
// edges shrink from 4 bytes to 1-2 — so the traversal working set
// drops well below the raw targets array and the bottom-up scan
// touches fewer cache lines per candidate. The cost is a sequential
// decode per row, which is why this is a *view* choice measured by
// bench_mem / bench_graphview rather than the default representation.
//
// Capability tiers modelled (graph/view.h): HybridView (both-direction
// enumeration + exact edge count, i.e. everything the M/N drivers
// need) and PrefetchableView (row prefetch hints; the per-neighbour
// lookahead degenerates to plain enumeration because decoded values
// only exist sequentially). has_edge is deliberately not provided —
// a membership probe would decode the whole row, and the validator's
// linear fallback does exactly that anyway.
//
// DESIGN.md §12.3 documents the format; test_compressed_csr holds the
// view to bit-equal traversals against CsrGraphView.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "graph/csr.h"
#include "graph/numa.h"
#include "graph/types.h"
#include "graph/view.h"

namespace bfsx::graph {

namespace detail {

/// LEB128 length of `value` in bytes (1..5 for 32-bit payloads).
[[nodiscard]] constexpr std::size_t varint_size(std::uint32_t value) noexcept {
  std::size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

/// Appends the LEB128 encoding of `value` at `out`; returns the
/// position past the last byte written.
inline std::uint8_t* varint_encode(std::uint8_t* out,
                                   std::uint32_t value) noexcept {
  while (value >= 0x80) {
    *out++ = static_cast<std::uint8_t>(value | 0x80);
    value >>= 7;
  }
  *out++ = static_cast<std::uint8_t>(value);
  return out;
}

/// Decodes one LEB128 value from `in` into `*value`; returns the
/// position past the last byte consumed. Trusts the stream (it is
/// produced by varint_encode in the same process).
inline const std::uint8_t* varint_decode(const std::uint8_t* in,
                                         std::uint32_t* value) noexcept {
  std::uint32_t result = *in & 0x7F;
  int shift = 7;
  while ((*in & 0x80) != 0) {
    ++in;
    result |= static_cast<std::uint32_t>(*in & 0x7F) << shift;
    shift += 7;
  }
  *value = result;
  return in + 1;
}

/// One compressed adjacency side (out- or in-): per-row byte offsets
/// plus the concatenated varint streams. The eid_t row offsets of the
/// source CSR are kept verbatim — O(1) degree and exact edge counts
/// cost 8 bytes/vertex, a rounding error next to the edge payload.
struct CompressedAdjacency {
  EidArray offsets;                   // n + 1, element counts (from CSR)
  numa::vector<std::uint64_t> byte_offsets;  // n + 1, into bytes
  numa::vector<std::uint8_t> bytes;   // delta/varint streams, row-major

  [[nodiscard]] eid_t degree(std::size_t v) const noexcept {
    return offsets[v + 1] - offsets[v];
  }

  /// Decodes row `v`, calling `fn(neighbor)` in ascending order; if
  /// `Fn` returns bool, a false return stops the decode (the bottom-up
  /// early exit).
  template <typename Fn>
  void decode_row(std::size_t v, Fn&& fn) const {
    const eid_t deg = degree(v);
    const std::uint8_t* p = bytes.data() + byte_offsets[v];
    std::uint32_t value = 0;
    for (eid_t i = 0; i < deg; ++i) {
      std::uint32_t delta;
      p = varint_decode(p, &delta);
      value = i == 0 ? delta : value + delta;
      if constexpr (std::is_same_v<decltype(fn(vid_t{})), bool>) {
        if (!fn(static_cast<vid_t>(value))) return;
      } else {
        fn(static_cast<vid_t>(value));
      }
    }
  }
};

}  // namespace detail

/// Read-only compressed snapshot of a CsrGraph's adjacency. Rows must
/// be sorted ascending (the builder's default); the constructor throws
/// std::invalid_argument otherwise. Symmetric graphs share one stream
/// for both directions, exactly like CsrGraph.
class CompressedCsrView {
 public:
  explicit CompressedCsrView(const CsrGraph& g);

  [[nodiscard]] vid_t num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] eid_t num_edges() const noexcept {
    return out_.offsets.empty() ? 0 : out_.offsets.back();
  }
  [[nodiscard]] bool is_symmetric() const noexcept { return symmetric_; }

  [[nodiscard]] eid_t out_degree(vid_t v) const noexcept {
    return out_.degree(static_cast<std::size_t>(v));
  }
  [[nodiscard]] eid_t in_degree(vid_t v) const noexcept {
    return in_side().degree(static_cast<std::size_t>(v));
  }

  template <typename Fn>
  void for_each_out_neighbor(vid_t v, Fn&& fn) const {
    out_.decode_row(static_cast<std::size_t>(v), std::forward<Fn>(fn));
  }

  template <typename Fn>
  void for_each_in_neighbor(vid_t v, Fn&& fn) const {
    in_side().decode_row(static_cast<std::size_t>(v), std::forward<Fn>(fn));
  }

  /// PrefetchableView: pull the byte-offset entry and the head of the
  /// row's varint stream toward the cache.
  void prefetch_out_row(vid_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    __builtin_prefetch(out_.byte_offsets.data() + u + 1, 0, 3);
    __builtin_prefetch(out_.bytes.data() + out_.byte_offsets[u], 0, 3);
  }

  void prefetch_in_row(vid_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    const detail::CompressedAdjacency& in = in_side();
    __builtin_prefetch(in.byte_offsets.data() + u + 1, 0, 3);
    __builtin_prefetch(in.bytes.data() + in.byte_offsets[u], 0, 3);
  }

  /// PrefetchableView: neighbours only exist after sequential decode,
  /// so the lookahead hint is legally skipped (see the concept's
  /// contract) and this is plain enumeration.
  template <typename Pf, typename Fn>
  void for_each_out_neighbor_ahead(vid_t v, int /*distance*/, Pf&& /*pf*/,
                                   Fn&& fn) const {
    for_each_out_neighbor(v, std::forward<Fn>(fn));
  }

  /// Compressed payload bytes (both directions; excludes offsets).
  [[nodiscard]] std::size_t compressed_bytes() const noexcept {
    return out_.bytes.size() + (symmetric_ ? 0 : in_.bytes.size());
  }

  /// Raw bytes the source CSR spends on the same target arrays.
  [[nodiscard]] std::size_t uncompressed_bytes() const noexcept {
    const std::size_t m = static_cast<std::size_t>(num_edges());
    return (symmetric_ ? m : 2 * m) * sizeof(vid_t);
  }

  /// uncompressed / compressed; > 1 means the view shrank the edges.
  [[nodiscard]] double compression_ratio() const noexcept {
    const std::size_t c = compressed_bytes();
    return c == 0 ? 1.0
                  : static_cast<double>(uncompressed_bytes()) /
                        static_cast<double>(c);
  }

 private:
  [[nodiscard]] const detail::CompressedAdjacency& in_side() const noexcept {
    return symmetric_ ? out_ : in_;
  }

  detail::CompressedAdjacency out_;
  detail::CompressedAdjacency in_;  // empty when symmetric_
  vid_t num_vertices_ = 0;
  bool symmetric_ = true;
};

static_assert(HybridView<CompressedCsrView>);
static_assert(PrefetchableView<CompressedCsrView>);

}  // namespace bfsx::graph
