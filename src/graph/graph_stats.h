// Whole-graph statistics: degree distribution, connectivity, and the
// summary numbers that feed regression features and experiment logs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/view.h"

namespace bfsx::graph {

struct DegreeStats {
  eid_t min = 0;
  eid_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// Vertices with out-degree zero. R-MAT graphs have many; Graph 500
  /// requires BFS roots to have at least one edge.
  vid_t isolated = 0;
};

/// Out-degree statistics over all vertices.
[[nodiscard]] DegreeStats compute_degree_stats(const CsrGraph& g);

/// Out-degree histogram in log2 buckets: bucket[i] counts vertices with
/// degree in [2^i, 2^(i+1)); bucket 0 also counts degree-1; a leading
/// entry counts degree-0 vertices. Handy for eyeballing the R-MAT
/// power-law tail.
[[nodiscard]] std::vector<vid_t> degree_histogram_log2(const CsrGraph& g);

struct ComponentStats {
  vid_t num_components = 0;
  vid_t largest_size = 0;
  /// Representative (smallest vertex id) of the largest component —
  /// a safe BFS root that reaches the most vertices.
  vid_t largest_representative = kNoVertex;
};

/// Connected components of the *undirected* view of the graph, found by
/// repeated BFS sweeps. Linear in V + E.
[[nodiscard]] ComponentStats compute_components(const CsrGraph& g);

/// Picks `count` BFS roots with non-zero degree, deterministically under
/// `seed`, emulating the Graph 500 kernel-2 root-sampling rule.
[[nodiscard]] std::vector<vid_t> sample_roots(const CsrGraph& g, int count,
                                              std::uint64_t seed);

/// The (at most) `k` vertices of highest out-degree, ties broken toward
/// the smaller id, zero-degree vertices excluded. Deterministic, so the
/// serve-layer landmark set and the bottom-up hub cache pick identical
/// hubs for the same graph. O(V log k) via partial sort.
[[nodiscard]] std::vector<vid_t> top_out_degree_vertices(const CsrGraph& g,
                                                         std::size_t k);

/// The same hub selection over any GraphView (delta-CSR epochs, grid
/// worlds) — identical degree/tie semantics, so a landmark set chosen
/// on a delta epoch matches one chosen on its flat rebuild.
template <GraphView V>
[[nodiscard]] std::vector<vid_t> top_out_degree_vertices(const V& g,
                                                         std::size_t k) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  const auto hubbier = [&g](vid_t a, vid_t b) {
    const eid_t da = g.out_degree(a);
    const eid_t db = g.out_degree(b);
    return da != db ? da > db : a < b;
  };
  const std::size_t want = std::min(k, static_cast<std::size_t>(n));
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(want),
                    order.end(), hubbier);
  std::vector<vid_t> hubs;
  hubs.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    if (g.out_degree(order[i]) == 0) break;  // only isolated ones left
    hubs.push_back(order[i]);
  }
  return hubs;
}

/// One-line human-readable summary ("|V|=65536 |E|=2097152 deg:…").
[[nodiscard]] std::string summarize(const CsrGraph& g);

}  // namespace bfsx::graph
