// Whole-graph statistics: degree distribution, connectivity, and the
// summary numbers that feed regression features and experiment logs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"

namespace bfsx::graph {

struct DegreeStats {
  eid_t min = 0;
  eid_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// Vertices with out-degree zero. R-MAT graphs have many; Graph 500
  /// requires BFS roots to have at least one edge.
  vid_t isolated = 0;
};

/// Out-degree statistics over all vertices.
[[nodiscard]] DegreeStats compute_degree_stats(const CsrGraph& g);

/// Out-degree histogram in log2 buckets: bucket[i] counts vertices with
/// degree in [2^i, 2^(i+1)); bucket 0 also counts degree-1; a leading
/// entry counts degree-0 vertices. Handy for eyeballing the R-MAT
/// power-law tail.
[[nodiscard]] std::vector<vid_t> degree_histogram_log2(const CsrGraph& g);

struct ComponentStats {
  vid_t num_components = 0;
  vid_t largest_size = 0;
  /// Representative (smallest vertex id) of the largest component —
  /// a safe BFS root that reaches the most vertices.
  vid_t largest_representative = kNoVertex;
};

/// Connected components of the *undirected* view of the graph, found by
/// repeated BFS sweeps. Linear in V + E.
[[nodiscard]] ComponentStats compute_components(const CsrGraph& g);

/// Picks `count` BFS roots with non-zero degree, deterministically under
/// `seed`, emulating the Graph 500 kernel-2 root-sampling rule.
[[nodiscard]] std::vector<vid_t> sample_roots(const CsrGraph& g, int count,
                                              std::uint64_t seed);

/// The (at most) `k` vertices of highest out-degree, ties broken toward
/// the smaller id, zero-degree vertices excluded. Deterministic, so the
/// serve-layer landmark set and the bottom-up hub cache pick identical
/// hubs for the same graph. O(V log k) via partial sort.
[[nodiscard]] std::vector<vid_t> top_out_degree_vertices(const CsrGraph& g,
                                                         std::size_t k);

/// One-line human-readable summary ("|V|=65536 |E|=2097152 deg:…").
[[nodiscard]] std::string summarize(const CsrGraph& g);

}  // namespace bfsx::graph
