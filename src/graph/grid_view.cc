#include "graph/grid_view.h"

#include <limits>
#include <stdexcept>
#include <string>

#include "graph/prng.h"

namespace bfsx::graph {

GridWorld::GridWorld(const GridSpec& spec) : spec_(spec) {
  if (spec.width <= 0 || spec.height <= 0) {
    throw std::invalid_argument("grid: width and height must be positive (" +
                                std::to_string(spec.width) + "x" +
                                std::to_string(spec.height) + ")");
  }
  if (spec.connectivity != 4 && spec.connectivity != 8) {
    throw std::invalid_argument("grid: connectivity must be 4 or 8, got " +
                                std::to_string(spec.connectivity));
  }
  if (!(spec.wall_density >= 0.0) || spec.wall_density >= 1.0) {
    throw std::invalid_argument("grid: wall-density must be in [0, 1), got " +
                                std::to_string(spec.wall_density));
  }
  const auto cells = static_cast<std::int64_t>(spec.width) *
                     static_cast<std::int64_t>(spec.height);
  if (cells > std::numeric_limits<vid_t>::max()) {
    throw std::invalid_argument("grid: " + std::to_string(spec.width) + "x" +
                                std::to_string(spec.height) +
                                " overflows the vertex id space");
  }
  num_cells_ = static_cast<vid_t>(cells);
  walls_.resize_and_reset(static_cast<std::size_t>(num_cells_));
  if (spec.wall_density > 0.0) {
    // One uniform draw per cell in id order: the spec fully determines
    // the wall set, independent of platform or thread count.
    Xoshiro256ss rng(spec.wall_seed);
    for (vid_t v = 0; v < num_cells_; ++v) {
      if (rng.next_double() < spec.wall_density) {
        walls_.set(static_cast<std::size_t>(v));
      }
    }
  }
  // Directed edge count (each undirected adjacency counted once per
  // endpoint), the |E| the M/N switching heuristic divides by.
  eid_t total = 0;
  for (vid_t v = 0; v < num_cells_; ++v) total += out_degree(v);
  num_edges_ = total;
}

}  // namespace bfsx::graph
