#include "graph/rmat.h"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/prng.h"

namespace bfsx::graph {

void RmatParams::validate() const {
  if (scale < 1 || scale > 30) {
    throw std::invalid_argument("RmatParams: scale must be in [1, 30]");
  }
  if (edgefactor <= 0) {
    throw std::invalid_argument("RmatParams: edgefactor must be positive");
  }
  if (a <= 0 || b <= 0 || c <= 0 || d <= 0) {
    throw std::invalid_argument("RmatParams: probabilities must be positive");
  }
  if (std::abs(a + b + c + d - 1.0) > 1e-9) {
    throw std::invalid_argument("RmatParams: a+b+c+d must equal 1");
  }
  if (noise < 0 || noise >= 1) {
    throw std::invalid_argument("RmatParams: noise must be in [0, 1)");
  }
}

namespace {

/// One recursive-descent edge draw. At each of `scale` levels, picks one
/// of the four quadrants with (possibly jittered) probabilities and
/// shifts the (row, col) prefix accordingly.
Edge draw_edge(const RmatParams& p, Xoshiro256ss& rng) {
  std::uint64_t row = 0;
  std::uint64_t col = 0;
  double a = p.a;
  double b = p.b;
  double c = p.c;
  for (int level = 0; level < p.scale; ++level) {
    double la = a;
    double lb = b;
    double lc = c;
    if (p.noise > 0) {
      // Jitter each probability by a symmetric factor in
      // [1-noise, 1+noise], then renormalise. This follows the
      // Graph 500 octave generator's smoothing trick.
      la *= 1.0 + p.noise * (2.0 * rng.next_double() - 1.0);
      lb *= 1.0 + p.noise * (2.0 * rng.next_double() - 1.0);
      lc *= 1.0 + p.noise * (2.0 * rng.next_double() - 1.0);
      double ld = (1.0 - a - b - c) *
                  (1.0 + p.noise * (2.0 * rng.next_double() - 1.0));
      const double sum = la + lb + lc + ld;
      la /= sum;
      lb /= sum;
      lc /= sum;
    }
    const double r = rng.next_double();
    row <<= 1;
    col <<= 1;
    if (r < la) {
      // top-left quadrant: no bits set
    } else if (r < la + lb) {
      col |= 1;  // top-right
    } else if (r < la + lb + lc) {
      row |= 1;  // bottom-left
    } else {
      row |= 1;  // bottom-right
      col |= 1;
    }
  }
  return {static_cast<vid_t>(row), static_cast<vid_t>(col)};
}

/// Deterministic Fisher–Yates permutation of [0, n).
std::vector<vid_t> random_permutation(vid_t n, Xoshiro256ss& rng) {
  std::vector<vid_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), vid_t{0});
  for (std::size_t i = perm.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.next_bounded(static_cast<std::uint64_t>(i)));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace

EdgeList generate_rmat(const RmatParams& params) {
  params.validate();
  Xoshiro256ss rng(params.seed);

  EdgeList el;
  el.num_vertices = params.num_vertices();
  const auto m = static_cast<std::size_t>(params.num_edges());
  el.edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    el.edges.push_back(draw_edge(params, rng));
  }

  if (params.permute_vertices) {
    const std::vector<vid_t> perm = random_permutation(el.num_vertices, rng);
    for (Edge& e : el.edges) {
      e.src = perm[static_cast<std::size_t>(e.src)];
      e.dst = perm[static_cast<std::size_t>(e.dst)];
    }
  }
  return el;
}

}  // namespace bfsx::graph
