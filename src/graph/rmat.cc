#include "graph/rmat.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/prng.h"

namespace bfsx::graph {

void RmatParams::validate() const {
  if (scale < 1 || scale > 30) {
    throw std::invalid_argument("RmatParams: scale must be in [1, 30]");
  }
  if (edgefactor <= 0) {
    throw std::invalid_argument("RmatParams: edgefactor must be positive");
  }
  if (a <= 0 || b <= 0 || c <= 0 || d <= 0) {
    throw std::invalid_argument("RmatParams: probabilities must be positive");
  }
  if (std::abs(a + b + c + d - 1.0) > 1e-9) {
    throw std::invalid_argument("RmatParams: a+b+c+d must equal 1");
  }
  if (noise < 0 || noise >= 1) {
    throw std::invalid_argument("RmatParams: noise must be in [0, 1)");
  }
}

namespace {

/// One recursive-descent edge draw. At each of `scale` levels, picks one
/// of the four quadrants with (possibly jittered) probabilities and
/// shifts the (row, col) prefix accordingly.
Edge draw_edge(const RmatParams& p, Xoshiro256ss& rng) {
  std::uint64_t row = 0;
  std::uint64_t col = 0;
  double a = p.a;
  double b = p.b;
  double c = p.c;
  for (int level = 0; level < p.scale; ++level) {
    double la = a;
    double lb = b;
    double lc = c;
    if (p.noise > 0) {
      // Jitter each probability by a symmetric factor in
      // [1-noise, 1+noise], then renormalise. This follows the
      // Graph 500 octave generator's smoothing trick.
      la *= 1.0 + p.noise * (2.0 * rng.next_double() - 1.0);
      lb *= 1.0 + p.noise * (2.0 * rng.next_double() - 1.0);
      lc *= 1.0 + p.noise * (2.0 * rng.next_double() - 1.0);
      double ld = (1.0 - a - b - c) *
                  (1.0 + p.noise * (2.0 * rng.next_double() - 1.0));
      const double sum = la + lb + lc + ld;
      la /= sum;
      lb /= sum;
      lc /= sum;
    }
    const double r = rng.next_double();
    row <<= 1;
    col <<= 1;
    if (r < la) {
      // top-left quadrant: no bits set
    } else if (r < la + lb) {
      col |= 1;  // top-right
    } else if (r < la + lb + lc) {
      row |= 1;  // bottom-left
    } else {
      row |= 1;  // bottom-right
      col |= 1;
    }
  }
  return {static_cast<vid_t>(row), static_cast<vid_t>(col)};
}

/// Deterministic Fisher–Yates permutation of [0, n).
std::vector<vid_t> random_permutation(vid_t n, Xoshiro256ss& rng) {
  std::vector<vid_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), vid_t{0});
  for (std::size_t i = perm.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.next_bounded(static_cast<std::uint64_t>(i)));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace

EdgeList generate_rmat(const RmatParams& params) {
  params.validate();

  EdgeList el;
  el.num_vertices = params.num_vertices();
  const auto m = static_cast<std::size_t>(params.num_edges());
  el.edges.resize(m);

  // Jump-ahead stream table: block k is drawn from the seed stream
  // advanced by k jumps. The table is built serially (a jump costs ~256
  // state transitions, negligible next to kRmatBlockEdges draws), after
  // which every block is independent of every other — the draw order
  // within the list is fixed by the block layout, not by which worker
  // ran which block, so the result is bit-identical for any thread
  // count, including the serial fallback.
  const std::size_t num_blocks = (m + kRmatBlockEdges - 1) / kRmatBlockEdges;
  std::vector<Xoshiro256ss> streams;
  streams.reserve(num_blocks);
  Xoshiro256ss rng(params.seed);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    streams.push_back(rng);
    rng.jump();
  }
  // One more jump reserves a dedicated permutation stream, positioned
  // the same way no matter how many blocks drew edges.
  Xoshiro256ss perm_rng = rng;

#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t b = 0; b < num_blocks; ++b) {
    Xoshiro256ss local = streams[b];
    const std::size_t begin = b * kRmatBlockEdges;
    const std::size_t end = std::min(begin + kRmatBlockEdges, m);
    for (std::size_t i = begin; i < end; ++i) {
      el.edges[i] = draw_edge(params, local);
    }
  }

  if (params.permute_vertices) {
    const std::vector<vid_t> perm = random_permutation(el.num_vertices, perm_rng);
    Edge* edges = el.edges.data();
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (std::size_t i = 0; i < m; ++i) {
      edges[i].src = perm[static_cast<std::size_t>(edges[i].src)];
      edges[i].dst = perm[static_cast<std::size_t>(edges[i].dst)];
    }
  }
  return el;
}

}  // namespace bfsx::graph
