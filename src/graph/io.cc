#include "graph/io.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bfsx::graph {
namespace {

constexpr char kBinaryMagic[8] = {'B', 'F', 'S', 'X', 'E', 'L', '1', '\n'};

void require(bool ok, const char* msg) {
  if (!ok) throw std::runtime_error(std::string("graph io: ") + msg);
}

}  // namespace

void write_edge_list_text(std::ostream& os, const EdgeList& el) {
  os << "# bfsx edge list\n";
  os << "# vertices: " << el.num_vertices << "\n";
  os << "# edges: " << el.num_edges() << "\n";
  for (const Edge& e : el.edges) os << e.src << ' ' << e.dst << '\n';
  require(static_cast<bool>(os), "text write failure");
}

EdgeList read_edge_list_text(std::istream& is) {
  EdgeList el;
  vid_t declared_vertices = -1;
  vid_t max_seen = -1;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Recognise the "# vertices: N" header, ignore other comments.
      std::istringstream hs(line.substr(1));
      std::string key;
      if (hs >> key && key == "vertices:") {
        long long n = 0;
        if (hs >> n && n >= 0) declared_vertices = static_cast<vid_t>(n);
      }
      continue;
    }
    std::istringstream ls(line);
    long long src = 0;
    long long dst = 0;
    if (!(ls >> src >> dst) || src < 0 || dst < 0) {
      throw std::runtime_error("graph io: malformed line " +
                               std::to_string(lineno) + ": '" + line + "'");
    }
    // Same contract as the binary path: endpoints must fit the declared
    // vertex count. Checked as each line is read so the error can name
    // the offending line.
    if (declared_vertices >= 0 &&
        (src >= declared_vertices || dst >= declared_vertices)) {
      throw std::runtime_error(
          "graph io: line " + std::to_string(lineno) + ": edge (" +
          std::to_string(src) + ", " + std::to_string(dst) +
          ") exceeds declared vertex count " +
          std::to_string(declared_vertices));
    }
    el.add(static_cast<vid_t>(src), static_cast<vid_t>(dst));
    max_seen = std::max({max_seen, static_cast<vid_t>(src),
                         static_cast<vid_t>(dst)});
  }
  el.num_vertices = declared_vertices >= 0 ? declared_vertices : max_seen + 1;
  require(el.num_vertices >= 0, "no vertices");
  // Re-check the whole list: a "# vertices: N" header is also honoured
  // when it appears after edge lines, which the inline check misses.
  for (const Edge& e : el.edges) {
    require(e.src < el.num_vertices && e.dst < el.num_vertices,
            "edge endpoint exceeds declared vertex count");
  }
  return el;
}

void write_edge_list_binary(std::ostream& os, const EdgeList& el) {
  os.write(kBinaryMagic, sizeof(kBinaryMagic));
  const std::int64_t v = el.num_vertices;
  const std::int64_t m = el.num_edges();
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  os.write(reinterpret_cast<const char*>(&m), sizeof(m));
  static_assert(sizeof(Edge) == 2 * sizeof(vid_t),
                "Edge must be two packed vertex ids for binary io");
  os.write(reinterpret_cast<const char*>(el.edges.data()),
           static_cast<std::streamsize>(el.edges.size() * sizeof(Edge)));
  require(static_cast<bool>(os), "binary write failure");
}

EdgeList read_edge_list_binary(std::istream& is) {
  char magic[sizeof(kBinaryMagic)];
  is.read(magic, sizeof(magic));
  require(is.gcount() == sizeof(magic) &&
              std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0,
          "bad binary magic");
  std::int64_t v = 0;
  std::int64_t m = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  is.read(reinterpret_cast<char*>(&m), sizeof(m));
  require(static_cast<bool>(is) && v >= 0 && m >= 0, "bad binary header");
  EdgeList el;
  el.num_vertices = static_cast<vid_t>(v);
  el.edges.resize(static_cast<std::size_t>(m));
  is.read(reinterpret_cast<char*>(el.edges.data()),
          static_cast<std::streamsize>(el.edges.size() * sizeof(Edge)));
  require(is.gcount() ==
              static_cast<std::streamsize>(el.edges.size() * sizeof(Edge)),
          "truncated binary edge data");
  for (const Edge& e : el.edges) {
    require(e.src >= 0 && e.src < el.num_vertices && e.dst >= 0 &&
                e.dst < el.num_vertices,
            "binary edge endpoint out of range");
  }
  return el;
}

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void save_edge_list(const std::string& path, const EdgeList& el) {
  std::ofstream os(path, std::ios::binary);
  require(static_cast<bool>(os), "cannot open file for writing");
  if (has_suffix(path, ".bel")) {
    write_edge_list_binary(os, el);
  } else {
    write_edge_list_text(os, el);
  }
}

EdgeList load_edge_list(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  require(static_cast<bool>(is), "cannot open file for reading");
  return has_suffix(path, ".bel") ? read_edge_list_binary(is)
                                  : read_edge_list_text(is);
}

}  // namespace bfsx::graph
