// Edge-list → CSR construction (Graph 500 "kernel 1").
#pragma once

#include "graph/csr.h"
#include "graph/edge_list.h"

namespace bfsx::graph {

struct BuildOptions {
  /// Insert the reverse of every edge so the graph is undirected.
  /// Graph 500 treats the generated edge list as undirected; both the
  /// paper's top-down and bottom-up kernels rely on this.
  bool symmetrize = true;

  /// Drop (v, v) edges. Self loops add no BFS work but skew degree
  /// statistics; Graph 500 permits removing them.
  bool remove_self_loops = true;

  /// Collapse parallel duplicate edges to one.
  bool deduplicate = true;

  /// Keep adjacency lists sorted ascending (required by
  /// CsrGraph::has_edge and by deterministic traversal order).
  bool sort_neighbors = true;
};

/// Checks every endpoint lies in [0, num_vertices). Parallelised over
/// the edge list; throws std::invalid_argument on a negative vertex
/// count and std::out_of_range naming up to
/// check::CheckReport::kDefaultMaxFailures offending edges (index and
/// endpoints) so diagnostics show the corruption pattern, not just its
/// first symptom. build_csr and build_directed_csr call this
/// themselves — it is exposed so the ingestion bench can time
/// validation apart from construction.
void validate_edge_list(const EdgeList& el);

/// Builds a CSR graph from an edge list. The input list is taken by
/// value because construction permutes it in place (counting sort into
/// buckets); pass std::move when the caller no longer needs it.
/// Construction is parallel (per-thread degree histograms, blocked
/// scatter, per-row sort/dedup) and deterministic: offsets and targets
/// are bit-identical for every OMP_NUM_THREADS, including serial builds.
[[nodiscard]] CsrGraph build_csr(EdgeList edges, const BuildOptions& opts = {});

/// Builds a *directed* CSR (no symmetrisation) with separate in/out
/// adjacency. Used by directed-graph tests and the validator.
[[nodiscard]] CsrGraph build_directed_csr(EdgeList edges,
                                          const BuildOptions& opts = {});

}  // namespace bfsx::graph
