// Fixed-size bitmap used for BFS frontiers and visited sets.
//
// The paper stores the current queue as a bitmap on the bottom-up side
// ("use bitmap for the CQ", Section IV); this is that container. Thread
// safety: set_atomic() / test_and_set_atomic() may race freely from
// OpenMP workers; everything else is single-writer.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/numa.h"
#include "graph/types.h"

namespace bfsx::graph {

class Bitmap {
 public:
  Bitmap() = default;

  /// Creates a bitmap of `size` bits, all cleared.
  explicit Bitmap(std::size_t size);

  /// Number of addressable bits.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Clears every bit (keeps the size).
  void reset() noexcept;

  /// Resizes to `size` bits and clears everything.
  void resize_and_reset(std::size_t size);

  [[nodiscard]] bool test(std::size_t pos) const noexcept {
    return (words_[pos >> 6] >> (pos & 63)) & 1ULL;
  }

  /// Non-atomic set; caller guarantees exclusive access to the word.
  void set(std::size_t pos) noexcept { words_[pos >> 6] |= 1ULL << (pos & 63); }

  /// Non-atomic clear.
  void clear(std::size_t pos) noexcept {
    words_[pos >> 6] &= ~(1ULL << (pos & 63));
  }

  /// Zeroes the whole 64-bit word containing bit `pos`. The bottom-up
  /// kernel uses this to wipe only the dirty words of its scratch
  /// bitmap (one store per frontier vertex instead of an O(n/64) full
  /// reset); callers must own every bit of the word.
  void clear_word(std::size_t pos) noexcept { words_[pos >> 6] = 0; }

  /// Software-prefetch hint for the cache line holding bit `pos`
  /// (read intent). The prefetch kernels (bfs/mem_tuning.h) issue these
  /// a configurable distance ahead of the dependent load.
  void prefetch(std::size_t pos) const noexcept {
    __builtin_prefetch(words_.data() + (pos >> 6), 0, 3);
  }

  /// Prefetch with write intent (the line will be claimed exclusive) —
  /// for bits about to be test_and_set.
  void prefetch_write(std::size_t pos) const noexcept {
    __builtin_prefetch(words_.data() + (pos >> 6), 1, 3);
  }

  /// Atomically sets bit `pos`; safe under concurrent writers.
  void set_atomic(std::size_t pos) noexcept;

  /// Atomically sets bit `pos` and reports whether it was previously
  /// clear (i.e. whether this caller won the race). The BFS top-down
  /// kernel uses this as its visited check-and-claim.
  bool test_and_set_atomic(std::size_t pos) noexcept;

  /// Population count over all bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// True iff no bit is set. O(words); the paranoid validators use it
  /// to assert the bottom-up scratch bitmap's all-clear invariant.
  [[nodiscard]] bool none() const noexcept;

  /// Position of the lowest set bit, or `size()` when none is set.
  /// Lets invariant failures name the offending bit.
  [[nodiscard]] std::size_t find_first() const noexcept;

  /// Calls `fn(vid_t)` for every set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<vid_t>((w << 6) + static_cast<std::size_t>(bit)));
        word &= word - 1;
      }
    }
  }

  /// Swaps contents with another bitmap in O(1).
  void swap(Bitmap& other) noexcept {
    words_.swap(other.words_);
    std::swap(size_, other.size_);
  }

  /// Raw word access for cache-friendly scans (bottom-up kernel).
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return words_.data();
  }
  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }

 private:
  /// First-touch storage: resize_and_reset grows without writing, then
  /// zeroes through numa::parallel_fill, so on multi-node machines the
  /// visited/frontier words land on the nodes of the threads that scan
  /// them (single-node: identical behaviour, plain fill).
  numa::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace bfsx::graph
