#include "graph/partition.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace bfsx::graph {

PartitionStrategy parse_partition_strategy(std::string_view text) {
  if (text == "block") return PartitionStrategy::kBlock;
  if (text == "balanced") return PartitionStrategy::kDegreeBalanced;
  throw std::invalid_argument("unknown partition strategy '" +
                              std::string(text) +
                              "' (expected block|balanced)");
}

VertexPartition::VertexPartition(std::vector<vid_t> starts,
                                 PartitionStrategy strategy)
    : starts_(std::move(starts)), strategy_(strategy) {
  if (starts_.size() < 2 || starts_.front() != 0 ||
      !std::is_sorted(starts_.begin(), starts_.end())) {
    throw std::invalid_argument(
        "VertexPartition: starts must be non-decreasing from 0 with a "
        "final vertex-count sentinel");
  }
}

int VertexPartition::owner(vid_t v) const {
  if (v < 0 || v >= num_vertices()) {
    throw std::out_of_range("VertexPartition::owner: vertex out of range");
  }
  // Last boundary <= v; ties from empty parts resolve to the part whose
  // half-open range actually contains v.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), v);
  return static_cast<int>(it - starts_.begin()) - 1;
}

VertexPartition partition_vertices(const CsrGraph& g, int parts,
                                   PartitionStrategy strategy) {
  if (parts < 1) {
    throw std::invalid_argument("partition_vertices: need at least one part");
  }
  const vid_t n = g.num_vertices();
  std::vector<vid_t> starts(static_cast<std::size_t>(parts) + 1);
  if (strategy == PartitionStrategy::kBlock) {
    // Equal vertex counts; the first n % parts parts take one extra.
    const vid_t base = n / parts;
    const vid_t extra = n % parts;
    vid_t at = 0;
    for (int p = 0; p < parts; ++p) {
      starts[static_cast<std::size_t>(p)] = at;
      at += base + (p < extra ? 1 : 0);
    }
    starts.back() = n;
    return {std::move(starts), strategy};
  }
  // Degree-balanced: put boundary p at the first vertex whose out-degree
  // prefix sum reaches p/parts of the total edge count. The global CSR
  // offsets array *is* that prefix sum.
  const auto& offs = g.out_offsets();
  const eid_t total = g.num_edges();
  for (int p = 0; p <= parts; ++p) {
    const eid_t want =
        static_cast<eid_t>((static_cast<double>(total) * p) /
                           static_cast<double>(parts));
    const auto it = std::lower_bound(offs.begin(), offs.end(), want);
    starts[static_cast<std::size_t>(p)] =
        std::min<vid_t>(n, static_cast<vid_t>(it - offs.begin()));
  }
  starts.front() = 0;
  starts.back() = n;
  // Skew can make consecutive boundaries cross; restore monotonicity.
  for (std::size_t p = 1; p < starts.size(); ++p) {
    starts[p] = std::max(starts[p], starts[p - 1]);
  }
  return {std::move(starts), strategy};
}

eid_t part_out_edges(const CsrGraph& g, const VertexPartition& part, int p) {
  const auto& offs = g.out_offsets();
  if (offs.empty()) return 0;
  return offs[static_cast<std::size_t>(part.end(p))] -
         offs[static_cast<std::size_t>(part.begin(p))];
}

std::size_t LocalSubgraph::memory_footprint_bytes() const noexcept {
  return out_offsets.size() * sizeof(eid_t) +
         out_targets.size() * sizeof(vid_t) +
         in_offsets.size() * sizeof(eid_t) +
         in_targets.size() * sizeof(vid_t);
}

namespace {

/// Copies rows [first, last) of one adjacency into rebased local arrays.
void copy_rows(const EidArray& offs, const VidArray& tgts, vid_t first,
               vid_t last, std::vector<eid_t>& local_offs,
               std::vector<vid_t>& local_tgts) {
  const auto lo = offs[static_cast<std::size_t>(first)];
  const auto hi = offs[static_cast<std::size_t>(last)];
  local_offs.resize(static_cast<std::size_t>(last - first) + 1);
  for (vid_t v = first; v <= last; ++v) {
    local_offs[static_cast<std::size_t>(v - first)] =
        offs[static_cast<std::size_t>(v)] - lo;
  }
  local_tgts.assign(tgts.begin() + lo, tgts.begin() + hi);
}

}  // namespace

LocalSubgraph extract_subgraph(const CsrGraph& g, const VertexPartition& part,
                               int p) {
  if (p < 0 || p >= part.num_parts()) {
    throw std::out_of_range("extract_subgraph: no such part");
  }
  if (part.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument(
        "extract_subgraph: partition drawn over a different graph");
  }
  LocalSubgraph sub;
  sub.first = part.begin(p);
  sub.num_local = part.part_size(p);
  if (g.num_vertices() == 0) {
    sub.out_offsets = {0};
    return sub;
  }
  const vid_t last = part.end(p);
  copy_rows(g.out_offsets(), g.out_targets(), sub.first, last,
            sub.out_offsets, sub.out_targets);
  if (!g.is_symmetric()) {
    copy_rows(g.in_offsets(), g.in_targets(), sub.first, last, sub.in_offsets,
              sub.in_targets);
  }
  return sub;
}

}  // namespace bfsx::graph
