// 1D vertex partitioning of a CsrGraph across N devices.
//
// Distributed BFS in the Buluç–Beamer style assigns each device a
// contiguous range of vertices: the device owns those vertices' rows
// (out- and in-adjacency), expands the part of the frontier it owns,
// and exchanges discoveries with the other owners every superstep
// (see src/dist). Contiguity keeps the owner map O(log P) with no
// per-vertex table and keeps each device's rows a single slice of the
// global CSR.
//
// Two ways to draw the range boundaries:
//   * kBlock           — equal vertex counts per part;
//   * kDegreeBalanced  — boundaries placed on the out-degree prefix sum
//     so each part owns ~|E|/P edges. On skewed (R-MAT) graphs this is
//     the difference between one device holding most of the work and an
//     even superstep (the per-level balance the simulator reports).
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace bfsx::graph {

enum class PartitionStrategy { kBlock, kDegreeBalanced };

[[nodiscard]] constexpr const char* to_string(PartitionStrategy s) noexcept {
  return s == PartitionStrategy::kBlock ? "block" : "balanced";
}

/// Parses "block" / "balanced". Throws std::invalid_argument otherwise.
[[nodiscard]] PartitionStrategy parse_partition_strategy(std::string_view text);

/// A 1D contiguous partition: part p owns the global vertex range
/// [begin(p), end(p)), and the ranges tile [0, num_vertices).
class VertexPartition {
 public:
  /// `starts` must have one entry per part plus a final sentinel equal
  /// to the vertex count, and be non-decreasing from 0 (empty parts are
  /// allowed). Throws std::invalid_argument otherwise.
  VertexPartition(std::vector<vid_t> starts, PartitionStrategy strategy);

  [[nodiscard]] int num_parts() const noexcept {
    return static_cast<int>(starts_.size()) - 1;
  }
  [[nodiscard]] PartitionStrategy strategy() const noexcept {
    return strategy_;
  }
  [[nodiscard]] vid_t num_vertices() const noexcept { return starts_.back(); }

  [[nodiscard]] vid_t begin(int p) const {
    return starts_.at(static_cast<std::size_t>(p));
  }
  [[nodiscard]] vid_t end(int p) const {
    return starts_.at(static_cast<std::size_t>(p) + 1);
  }
  [[nodiscard]] vid_t part_size(int p) const { return end(p) - begin(p); }

  /// Owner map: which part owns global vertex `v`. O(log P).
  [[nodiscard]] int owner(vid_t v) const;

  [[nodiscard]] const std::vector<vid_t>& starts() const noexcept {
    return starts_;
  }

 private:
  std::vector<vid_t> starts_;  // size num_parts + 1
  PartitionStrategy strategy_;
};

/// Draws the part boundaries over `g` for `parts` devices. Throws
/// std::invalid_argument when parts < 1.
[[nodiscard]] VertexPartition partition_vertices(const CsrGraph& g, int parts,
                                                 PartitionStrategy strategy);

/// Out-edges owned by part `p` (the rows of its vertex range) — the
/// top-down work share this part holds.
[[nodiscard]] eid_t part_out_edges(const CsrGraph& g,
                                   const VertexPartition& part, int p);

/// The subgraph one device materialises in its own memory: the owned
/// vertex range's out- and in-rows, offsets rebased to local row 0,
/// targets kept in *global* vertex ids (a frontier exchange ships
/// global ids, so local renumbering would buy nothing here).
struct LocalSubgraph {
  vid_t first = 0;      // global id of local row 0
  vid_t num_local = 0;  // owned vertex count

  std::vector<eid_t> out_offsets;  // size num_local + 1
  std::vector<vid_t> out_targets;  // global ids
  /// In-adjacency; left empty when the source graph is symmetric (the
  /// out arrays then serve both directions, mirroring CsrGraph).
  std::vector<eid_t> in_offsets;
  std::vector<vid_t> in_targets;

  [[nodiscard]] bool owns(vid_t v) const noexcept {
    return v >= first && v < first + num_local;
  }
  [[nodiscard]] eid_t num_out_edges() const noexcept {
    return out_offsets.empty() ? 0 : out_offsets.back();
  }
  [[nodiscard]] eid_t num_in_edges() const noexcept {
    return in_offsets.empty() ? num_out_edges() : in_offsets.back();
  }

  /// Out-neighbours of owned global vertex `v` (global ids).
  [[nodiscard]] std::span<const vid_t> out_neighbors(vid_t v) const noexcept {
    const auto r = static_cast<std::size_t>(v - first);
    return {out_targets.data() + out_offsets[r],
            static_cast<std::size_t>(out_offsets[r + 1] - out_offsets[r])};
  }

  /// In-neighbours of owned global vertex `v` (global ids).
  [[nodiscard]] std::span<const vid_t> in_neighbors(vid_t v) const noexcept {
    const auto& offs = in_offsets.empty() ? out_offsets : in_offsets;
    const auto& tgts = in_offsets.empty() ? out_targets : in_targets;
    const auto r = static_cast<std::size_t>(v - first);
    return {tgts.data() + offs[r],
            static_cast<std::size_t>(offs[r + 1] - offs[r])};
  }

  /// Resident bytes of this device's share of the graph.
  [[nodiscard]] std::size_t memory_footprint_bytes() const noexcept;
};

/// Copies part `p`'s rows out of the global CSR.
[[nodiscard]] LocalSubgraph extract_subgraph(const CsrGraph& g,
                                             const VertexPartition& part,
                                             int p);

}  // namespace bfsx::graph
