// NPuzzleSpace: the sliding-tile n-puzzle as an implicit graph view.
//
// A state is a placement of tiles 1..k-1 and one blank on a
// width x height board; an edge connects states one blank-slide apart.
// This is the `stubbscroll__SOLVER`-style workload ROADMAP item 4 names:
// a state space with no locality, bitpacked states, and a hash-based
// vertex-id mapping instead of a dense coordinate rank.
//
// Encoding: 4 bits per cell, cell i (row-major) in bits [4i, 4i+4),
// value = tile number, 0 = blank — so boards up to 9 cells (3x3, the
// classic 8-puzzle: 181440 reachable states) fit one uint64_t.
//
// Id mapping: construction enumerates the component reachable from the
// canonical solved state with a deterministic serial BFS, assigning
// dense ids in discovery order (id 0 = solved). `states_` maps id ->
// packed state; a hash map gives the reverse direction for successor
// lookup. The enumeration is the one part of the view that is not
// lazy — acceptable for ≤ 9 cells, and it is exactly what makes ids
// dense enough for the kernels' O(|V|) state arrays. Half of all
// permutations are unreachable (odd parity); they simply get no id.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "graph/view.h"

namespace bfsx::graph {

/// Board shape. `width * height` must be in [2, 9].
struct NPuzzleSpec {
  int width = 3;
  int height = 3;
};

class NPuzzleSpace {
 public:
  /// Validates the spec and enumerates the reachable component
  /// (throws std::invalid_argument on a bad shape).
  explicit NPuzzleSpace(const NPuzzleSpec& spec);

  [[nodiscard]] vid_t num_vertices() const noexcept {
    return static_cast<vid_t>(states_.size());
  }
  [[nodiscard]] eid_t num_edges() const noexcept { return num_edges_; }
  /// Every slide is reversible, so the state graph is symmetric and
  /// bottom-up works without a transpose.
  [[nodiscard]] bool is_symmetric() const noexcept { return true; }

  [[nodiscard]] const NPuzzleSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] int cells() const noexcept {
    return spec_.width * spec_.height;
  }

  /// Packed state for a vertex id (ids are dense, [0, num_vertices)).
  [[nodiscard]] std::uint64_t state_of(vid_t v) const {
    return states_[static_cast<std::size_t>(v)];
  }

  /// Vertex id of a packed state, or kNoVertex if the state is not in
  /// the reachable component (wrong parity or malformed).
  [[nodiscard]] vid_t id_of(std::uint64_t state) const {
    const auto it = ids_.find(state);
    return it == ids_.end() ? kNoVertex : it->second;
  }

  /// The canonical solved state (tiles in order, blank last) — id 0.
  [[nodiscard]] std::uint64_t solved_state() const noexcept {
    return solved_;
  }

  [[nodiscard]] eid_t out_degree(vid_t v) const {
    return blank_moves(blank_position(state_of(v)));
  }

  /// Successors in a fixed move order: the tile sliding into the blank
  /// comes from above, the left, the right, then below (blank moves
  /// N, W, E, S). The order is part of the view's contract — per-level
  /// counters depend only on the set, but enumeration order is what
  /// tests pin down.
  template <typename Fn>
  void for_each_out_neighbor(vid_t v, Fn&& fn) const {
    visit_successors(v, [&fn](vid_t w) {
      fn(w);
      return true;
    });
  }

  /// TransposeView protocol: `fn` returns false to stop the scan.
  template <typename Fn>
  void for_each_in_neighbor(vid_t v, Fn&& fn) const {
    visit_successors(v, fn);
  }

  /// Bit extraction helpers (exposed for tests and state formatting).
  [[nodiscard]] int tile_at(std::uint64_t state, int cell) const noexcept {
    return static_cast<int>((state >> (4 * cell)) & 0xF);
  }
  [[nodiscard]] int blank_position(std::uint64_t state) const noexcept {
    const int k = cells();
    for (int c = 0; c < k; ++c) {
      if (tile_at(state, c) == 0) return c;
    }
    return -1;
  }

 private:
  [[nodiscard]] eid_t blank_moves(int blank) const noexcept {
    const int x = blank % spec_.width;
    const int y = blank / spec_.width;
    return (y > 0 ? 1 : 0) + (x > 0 ? 1 : 0) +
           (x + 1 < spec_.width ? 1 : 0) + (y + 1 < spec_.height ? 1 : 0);
  }

  /// Swaps the blank at `blank` with the tile at `cell`.
  [[nodiscard]] std::uint64_t slide(std::uint64_t state, int blank,
                                    int cell) const noexcept {
    const std::uint64_t tile = (state >> (4 * cell)) & 0xF;
    state &= ~(std::uint64_t{0xF} << (4 * cell));  // clear source
    state |= tile << (4 * blank);                  // tile into blank
    return state;
  }

  template <typename Fn>
  void visit_successors(vid_t v, Fn&& fn) const {
    const std::uint64_t s = state_of(v);
    const int blank = blank_position(s);
    const int x = blank % spec_.width;
    const int y = blank / spec_.width;
    // Move order N, W, E, S (blank swaps with that cell).
    if (y > 0 && !fn(ids_.at(slide(s, blank, blank - spec_.width)))) return;
    if (x > 0 && !fn(ids_.at(slide(s, blank, blank - 1)))) return;
    if (x + 1 < spec_.width && !fn(ids_.at(slide(s, blank, blank + 1)))) {
      return;
    }
    if (y + 1 < spec_.height &&
        !fn(ids_.at(slide(s, blank, blank + spec_.width)))) {
      return;
    }
  }

  NPuzzleSpec spec_;
  std::uint64_t solved_ = 0;
  eid_t num_edges_ = 0;
  std::vector<std::uint64_t> states_;        // id -> packed state
  std::unordered_map<std::uint64_t, vid_t> ids_;  // packed state -> id
};

static_assert(HybridView<NPuzzleSpace>);

}  // namespace bfsx::graph
