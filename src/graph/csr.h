// Compressed Sparse Row graph storage.
//
// The paper stores graphs in CSR ("We use the CSR format to store the
// graph", Section V-A). Top-down needs out-adjacency; bottom-up needs
// in-adjacency (an unvisited vertex scans the vertices that point *to*
// it). For the symmetric graphs Graph 500 produces the two are the same
// array and are shared; for directed graphs both are materialised.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "check/report.h"
#include "graph/numa.h"
#include "graph/types.h"

namespace bfsx::graph {

/// CSR adjacency array types. numa::vector so the parallel builder's
/// blocked scatter performs the first touch (pages land on the nodes of
/// the threads that later traverse those rows); interchangeable with
/// std::vector everywhere except the allocator parameter.
using EidArray = numa::vector<eid_t>;
using VidArray = numa::vector<vid_t>;

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds a symmetric graph: `offsets`/`targets` serve as both the
  /// out- and in-adjacency.
  CsrGraph(EidArray offsets, VidArray targets);

  /// Builds a directed graph with distinct out- and in-adjacency.
  CsrGraph(EidArray out_offsets, VidArray out_targets, EidArray in_offsets,
           VidArray in_targets);

  [[nodiscard]] vid_t num_vertices() const noexcept {
    return out_offsets_.empty() ? 0
                                : static_cast<vid_t>(out_offsets_.size() - 1);
  }

  /// Number of *directed* edges stored (for a symmetrised graph this is
  /// twice the undirected edge count).
  [[nodiscard]] eid_t num_edges() const noexcept {
    return out_offsets_.empty() ? 0 : out_offsets_.back();
  }

  [[nodiscard]] bool is_symmetric() const noexcept { return symmetric_; }

  [[nodiscard]] eid_t out_degree(vid_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    return out_offsets_[u + 1] - out_offsets_[u];
  }

  [[nodiscard]] eid_t in_degree(vid_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    return in_offsets()[u + 1] - in_offsets()[u];
  }

  /// Out-neighbours of `v` (successors), sorted ascending.
  [[nodiscard]] std::span<const vid_t> out_neighbors(vid_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    return {out_targets_.data() + out_offsets_[u],
            static_cast<std::size_t>(out_offsets_[u + 1] - out_offsets_[u])};
  }

  /// In-neighbours of `v` (predecessors), sorted ascending.
  [[nodiscard]] std::span<const vid_t> in_neighbors(vid_t v) const noexcept {
    const auto* offs = in_offsets().data();
    const auto* tgts = in_targets().data();
    const auto u = static_cast<std::size_t>(v);
    return {tgts + offs[u], static_cast<std::size_t>(offs[u + 1] - offs[u])};
  }

  /// True iff the directed edge (u, v) exists. O(log degree(u)).
  [[nodiscard]] bool has_edge(vid_t u, vid_t v) const noexcept;

  /// Raw arrays, exposed for kernels that iterate the whole structure.
  [[nodiscard]] const EidArray& out_offsets() const noexcept {
    return out_offsets_;
  }
  [[nodiscard]] const VidArray& out_targets() const noexcept {
    return out_targets_;
  }
  [[nodiscard]] const EidArray& in_offsets() const noexcept {
    return symmetric_ ? out_offsets_ : in_offsets_;
  }
  [[nodiscard]] const VidArray& in_targets() const noexcept {
    return symmetric_ ? out_targets_ : in_targets_;
  }

  /// Approximate resident bytes (used by the cost model for cache terms).
  [[nodiscard]] std::size_t memory_footprint_bytes() const noexcept;

  /// Paranoid structural validator (BFSX_PARANOID tier; O(V + E log d)).
  /// Appends numbered failures to `report`: offset monotonicity and
  /// bounds, target range, per-row sort order (when `expect_sorted`),
  /// out/in mirror-edge symmetry for the shared-adjacency
  /// representation, and out/in transpose consistency for directed
  /// graphs. build_csr wires this behind BFSX_PARANOID; tests and the
  /// CLI's --paranoid flag call it directly.
  void check_invariants(check::CheckReport& report,
                        bool expect_sorted = true) const;

  /// Convenience wrapper: throws check::ContractViolation listing every
  /// retained failure.
  void assert_invariants(bool expect_sorted = true) const;

 private:
  EidArray out_offsets_;
  VidArray out_targets_;
  EidArray in_offsets_;   // empty when symmetric_
  VidArray in_targets_;  // empty when symmetric_
  bool symmetric_ = true;
};

}  // namespace bfsx::graph
