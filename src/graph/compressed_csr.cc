#include "graph/compressed_csr.h"

#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace bfsx::graph {
namespace {

/// Size pass + encode pass over one adjacency side. Two-phase like the
/// parallel CSR builder: per-row byte counts, one prefix sum, then each
/// row encodes at its exact byte offset — output is bit-identical for
/// any thread count, and the parallel encode is the first touch of the
/// byte stream (numa first-touch placement for free).
detail::CompressedAdjacency compress_side(const EidArray& offsets,
                                          const VidArray& targets) {
  detail::CompressedAdjacency adj;
  adj.offsets = offsets;
  const std::size_t n = offsets.empty() ? 0 : offsets.size() - 1;
  adj.byte_offsets.resize(n + 1);
  adj.byte_offsets[0] = 0;

  bool unsorted = false;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) reduction(|| : unsorted)
#endif
  for (std::size_t v = 0; v < n; ++v) {
    const auto lo = static_cast<std::size_t>(offsets[v]);
    const auto hi = static_cast<std::size_t>(offsets[v + 1]);
    std::size_t bytes = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if (i == lo) {
        bytes += detail::varint_size(static_cast<std::uint32_t>(targets[i]));
      } else if (targets[i] < targets[i - 1]) {
        unsorted = true;
      } else {
        bytes += detail::varint_size(
            static_cast<std::uint32_t>(targets[i] - targets[i - 1]));
      }
    }
    adj.byte_offsets[v + 1] = bytes;  // per-row size; prefix-summed below
  }
  if (unsorted) {
    throw std::invalid_argument(
        "CompressedCsrView: adjacency rows must be sorted ascending "
        "(build with sort_neighbors)");
  }
  for (std::size_t v = 0; v < n; ++v) {
    adj.byte_offsets[v + 1] += adj.byte_offsets[v];
  }

  adj.bytes.resize(static_cast<std::size_t>(adj.byte_offsets[n]));
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024)
#endif
  for (std::size_t v = 0; v < n; ++v) {
    const auto lo = static_cast<std::size_t>(offsets[v]);
    const auto hi = static_cast<std::size_t>(offsets[v + 1]);
    // Row v writes exactly [byte_offsets[v], byte_offsets[v+1]) —
    // disjoint from every other row, so any schedule yields the same
    // stream.
    std::uint8_t* p = adj.bytes.data() + adj.byte_offsets[v];
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t value = static_cast<std::uint32_t>(
          i == lo ? targets[i] : targets[i] - targets[i - 1]);
      p = detail::varint_encode(p, value);
    }
  }
  return adj;
}

}  // namespace

CompressedCsrView::CompressedCsrView(const CsrGraph& g)
    : num_vertices_(g.num_vertices()), symmetric_(g.is_symmetric()) {
  out_ = compress_side(g.out_offsets(), g.out_targets());
  if (!symmetric_) {
    in_ = compress_side(g.in_offsets(), g.in_targets());
  }
}

}  // namespace bfsx::graph
