#include "graph/csr.h"

#include <algorithm>
#include <utility>

#include "check/contract.h"

namespace bfsx::graph {
namespace {

/// Shared structural checks over one adjacency (offsets, targets) pair.
/// `side` labels failures "out" or "in".
void check_adjacency(const char* side, const EidArray& offsets,
                     const VidArray& targets, bool expect_sorted,
                     check::CheckReport& report) {
  if (offsets.empty()) {
    report.failf() << side << "-offsets empty (no vertex sentinel)";
    return;
  }
  if (offsets.front() != 0) {
    report.failf() << side << "-offsets[0] = " << offsets.front()
                   << ", expected 0";
  }
  if (offsets.back() != static_cast<eid_t>(targets.size())) {
    report.failf() << side << "-offsets.back() = " << offsets.back()
                   << " does not match |" << side
                   << "-targets| = " << targets.size();
  }
  const auto n = offsets.size() - 1;
  const auto vn = static_cast<vid_t>(n);
  for (std::size_t v = 0; v < n && report.wants_more(); ++v) {
    if (offsets[v + 1] < offsets[v]) {
      report.failf() << side << "-offsets not monotone at vertex " << v << " ("
                     << offsets[v] << " -> " << offsets[v + 1] << ")";
    }
  }
  for (std::size_t i = 0; i < targets.size() && report.wants_more(); ++i) {
    if (targets[i] < 0 || targets[i] >= vn) {
      report.failf() << side << "-targets[" << i << "] = " << targets[i]
                     << " out of range [0, " << vn << ")";
    }
  }
  if (expect_sorted) {
    for (std::size_t v = 0; v < n && report.wants_more(); ++v) {
      const auto lo = static_cast<std::size_t>(offsets[v]);
      const auto hi = static_cast<std::size_t>(offsets[v + 1]);
      if (hi > targets.size() || offsets[v] < 0) continue;  // reported above
      for (std::size_t i = lo + 1; i < hi; ++i) {
        if (targets[i - 1] > targets[i]) {
          report.failf() << side << "-row of vertex " << v
                         << " not sorted ascending at slot " << i << " ("
                         << targets[i - 1] << " > " << targets[i] << ")";
          break;  // one failure per row is enough to show the pattern
        }
      }
    }
  }
}

/// True iff `v` appears in the (offsets, targets) row of `u`; binary
/// search when rows are sorted, linear otherwise.
bool row_contains(const EidArray& offsets,
                  const VidArray& targets, vid_t u, vid_t v,
                  bool sorted) {
  const auto lo = static_cast<std::size_t>(offsets[static_cast<std::size_t>(u)]);
  const auto hi =
      static_cast<std::size_t>(offsets[static_cast<std::size_t>(u) + 1]);
  if (sorted) {
    return std::binary_search(targets.begin() + static_cast<std::ptrdiff_t>(lo),
                              targets.begin() + static_cast<std::ptrdiff_t>(hi),
                              v);
  }
  return std::find(targets.begin() + static_cast<std::ptrdiff_t>(lo),
                   targets.begin() + static_cast<std::ptrdiff_t>(hi),
                   v) != targets.begin() + static_cast<std::ptrdiff_t>(hi);
}

}  // namespace

CsrGraph::CsrGraph(EidArray offsets, VidArray targets)
    : out_offsets_(std::move(offsets)),
      out_targets_(std::move(targets)),
      symmetric_(true) {
  // Promoted from assert(): these guard every subsequent unchecked
  // index into the arrays, so they must hold in release builds too
  // (tier-1 CI runs RelWithDebInfo, where assert compiles out).
  BFSX_CHECK(!out_offsets_.empty())
      << "CSR offsets need at least the terminating sentinel";
  BFSX_CHECK_EQ(out_offsets_.front(), 0);
  BFSX_CHECK_EQ(out_offsets_.back(), static_cast<eid_t>(out_targets_.size()));
}

CsrGraph::CsrGraph(EidArray out_offsets, VidArray out_targets,
                   EidArray in_offsets, VidArray in_targets)
    : out_offsets_(std::move(out_offsets)),
      out_targets_(std::move(out_targets)),
      in_offsets_(std::move(in_offsets)),
      in_targets_(std::move(in_targets)),
      symmetric_(false) {
  BFSX_CHECK(!out_offsets_.empty())
      << "CSR offsets need at least the terminating sentinel";
  BFSX_CHECK_EQ(out_offsets_.front(), 0);
  BFSX_CHECK_EQ(out_offsets_.size(), in_offsets_.size());
  BFSX_CHECK_EQ(out_offsets_.back(), static_cast<eid_t>(out_targets_.size()));
  BFSX_CHECK_EQ(in_offsets_.back(), static_cast<eid_t>(in_targets_.size()));
}

bool CsrGraph::has_edge(vid_t u, vid_t v) const noexcept {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::size_t CsrGraph::memory_footprint_bytes() const noexcept {
  auto bytes = [](const auto& vec) {
    return vec.size() * sizeof(typename std::decay_t<decltype(vec)>::value_type);
  };
  return bytes(out_offsets_) + bytes(out_targets_) + bytes(in_offsets_) +
         bytes(in_targets_);
}

void CsrGraph::check_invariants(check::CheckReport& report,
                                bool expect_sorted) const {
  check_adjacency("out", out_offsets_, out_targets_, expect_sorted, report);
  if (!symmetric_) {
    check_adjacency("in", in_offsets_, in_targets_, expect_sorted, report);
  }
  // Cross-adjacency checks index freely; bail if the basic structure is
  // already broken.
  if (!report.ok()) return;

  const vid_t n = num_vertices();
  if (symmetric_) {
    // Shared adjacency means "undirected": every (u, v) needs its
    // mirror (v, u) in the same array, or bottom-up (which scans the
    // shared array as in-neighbours) silently diverges from top-down.
    for (vid_t u = 0; u < n && report.wants_more(); ++u) {
      for (vid_t v : out_neighbors(u)) {
        if (!row_contains(out_offsets_, out_targets_, v, u, expect_sorted)) {
          report.failf() << "undirected edge (" << u << "," << v
                         << ") has no mirror (" << v << "," << u << ")";
          if (!report.wants_more()) return;
        }
      }
    }
  } else {
    // The in-adjacency must be the exact transpose of the out-adjacency.
    if (in_offsets_.back() != out_offsets_.back()) {
      report.failf() << "directed edge counts disagree (out "
                     << out_offsets_.back() << ", in " << in_offsets_.back()
                     << ")";
      return;
    }
    for (vid_t u = 0; u < n && report.wants_more(); ++u) {
      for (vid_t v : out_neighbors(u)) {
        if (!row_contains(in_offsets_, in_targets_, v, u, expect_sorted)) {
          report.failf() << "out-edge (" << u << "," << v
                         << ") missing from the in-adjacency of " << v;
          if (!report.wants_more()) return;
        }
      }
    }
  }
}

void CsrGraph::assert_invariants(bool expect_sorted) const {
  check::CheckReport report;
  check_invariants(report, expect_sorted);
  report.throw_if_failed("CsrGraph::check_invariants");
}

}  // namespace bfsx::graph
