#include "graph/csr.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace bfsx::graph {

CsrGraph::CsrGraph(std::vector<eid_t> offsets, std::vector<vid_t> targets)
    : out_offsets_(std::move(offsets)),
      out_targets_(std::move(targets)),
      symmetric_(true) {
  assert(!out_offsets_.empty());
  assert(out_offsets_.front() == 0);
  assert(out_offsets_.back() == static_cast<eid_t>(out_targets_.size()));
}

CsrGraph::CsrGraph(std::vector<eid_t> out_offsets,
                   std::vector<vid_t> out_targets,
                   std::vector<eid_t> in_offsets,
                   std::vector<vid_t> in_targets)
    : out_offsets_(std::move(out_offsets)),
      out_targets_(std::move(out_targets)),
      in_offsets_(std::move(in_offsets)),
      in_targets_(std::move(in_targets)),
      symmetric_(false) {
  assert(out_offsets_.size() == in_offsets_.size());
  assert(out_offsets_.back() == static_cast<eid_t>(out_targets_.size()));
  assert(in_offsets_.back() == static_cast<eid_t>(in_targets_.size()));
}

bool CsrGraph::has_edge(vid_t u, vid_t v) const noexcept {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::size_t CsrGraph::memory_footprint_bytes() const noexcept {
  auto bytes = [](const auto& vec) {
    return vec.size() * sizeof(typename std::decay_t<decltype(vec)>::value_type);
  };
  return bytes(out_offsets_) + bytes(out_targets_) + bytes(in_offsets_) +
         bytes(in_targets_);
}

}  // namespace bfsx::graph
