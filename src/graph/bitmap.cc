#include "graph/bitmap.h"

#include <algorithm>
#include <atomic>
#include <bit>

namespace bfsx::graph {

Bitmap::Bitmap(std::size_t size) : size_(size) {
  words_.resize((size + 63) / 64);  // default-init: no touch yet
  numa::parallel_fill(words_.data(), words_.size(), std::uint64_t{0});
}

void Bitmap::reset() noexcept {
  numa::parallel_fill(words_.data(), words_.size(), std::uint64_t{0});
}

void Bitmap::resize_and_reset(std::size_t size) {
  size_ = size;
  // resize leaves new words indeterminate (DefaultInitAllocator); the
  // parallel zero-fill below is the first touch, chunked like the
  // kernels' scans so pages land near their readers.
  words_.resize((size + 63) / 64);
  numa::parallel_fill(words_.data(), words_.size(), std::uint64_t{0});
}

void Bitmap::set_atomic(std::size_t pos) noexcept {
  std::atomic_ref<std::uint64_t> word(words_[pos >> 6]);
  // mem-order: relaxed — the bit itself is the entire message; no other
  // data is published through it, and readers in the same parallel
  // region only act on it after the level-step barrier orders all of
  // these RMWs anyway.
  word.fetch_or(1ULL << (pos & 63), std::memory_order_relaxed);
}

bool Bitmap::test_and_set_atomic(std::size_t pos) noexcept {
  const std::uint64_t mask = 1ULL << (pos & 63);
  std::atomic_ref<std::uint64_t> word(words_[pos >> 6]);
  // mem-order: relaxed — RMW atomicity alone elects exactly one winner
  // per bit; the winner's dependent parent/level stores become visible
  // to other threads only past the OpenMP barrier that ends the level,
  // so no acquire/release pairing is needed here.
  return (word.fetch_or(mask, std::memory_order_relaxed) & mask) == 0;
}

bool Bitmap::none() const noexcept {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

std::size_t Bitmap::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return (w << 6) +
             static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

std::size_t Bitmap::count() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

}  // namespace bfsx::graph
