#include "graph/npuzzle_view.h"

#include <deque>
#include <stdexcept>

namespace bfsx::graph {

NPuzzleSpace::NPuzzleSpace(const NPuzzleSpec& spec) : spec_(spec) {
  if (spec.width < 1 || spec.height < 1) {
    throw std::invalid_argument("npuzzle: board sides must be positive (" +
                                std::to_string(spec.width) + "x" +
                                std::to_string(spec.height) + ")");
  }
  const int k = spec.width * spec.height;
  if (k < 2 || k > 9) {
    // 4 bits per cell in a uint64_t caps the board at 9 cells; 3x3 is
    // already 181440 reachable states, plenty for a test scenario.
    throw std::invalid_argument(
        "npuzzle: board must have 2..9 cells, got " + std::to_string(k) +
        " (" + std::to_string(spec.width) + "x" + std::to_string(spec.height) +
        ")");
  }

  // Canonical solved state: tiles 1..k-1 in cells 0..k-2, blank last.
  solved_ = 0;
  for (int c = 0; c + 1 < k; ++c) {
    solved_ |= static_cast<std::uint64_t>(c + 1) << (4 * c);
  }

  // Deterministic serial BFS from the solved state assigns dense ids in
  // discovery order; the move order inside visit-successors fixes the
  // order within a level, so the id map is identical on every platform.
  states_.push_back(solved_);
  ids_.emplace(solved_, 0);
  std::deque<std::uint64_t> queue{solved_};
  eid_t directed_edges = 0;
  const auto expand = [this, &directed_edges, &queue](std::uint64_t s,
                                                      int blank, int cell) {
    ++directed_edges;
    const std::uint64_t t = slide(s, blank, cell);
    if (ids_.emplace(t, static_cast<vid_t>(states_.size())).second) {
      states_.push_back(t);
      queue.push_back(t);
    }
  };
  while (!queue.empty()) {
    const std::uint64_t s = queue.front();
    queue.pop_front();
    const int blank = blank_position(s);
    const int x = blank % spec_.width;
    const int y = blank / spec_.width;
    if (y > 0) expand(s, blank, blank - spec_.width);
    if (x > 0) expand(s, blank, blank - 1);
    if (x + 1 < spec_.width) expand(s, blank, blank + 1);
    if (y + 1 < spec_.height) expand(s, blank, blank + spec_.width);
  }
  num_edges_ = directed_edges;
}

}  // namespace bfsx::graph
