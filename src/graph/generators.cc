#include "graph/generators.h"

#include <stdexcept>
#include <string>

#include "graph/prng.h"

namespace bfsx::graph {
namespace {

void require_positive(vid_t n, const char* what) {
  if (n <= 0) throw std::invalid_argument(std::string(what) + ": n must be > 0");
}

}  // namespace

EdgeList make_path(vid_t n) {
  require_positive(n, "make_path");
  EdgeList el;
  el.num_vertices = n;
  el.edges.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (vid_t v = 0; v + 1 < n; ++v) el.add(v, v + 1);
  return el;
}

EdgeList make_cycle(vid_t n) {
  require_positive(n, "make_cycle");
  EdgeList el = make_path(n);
  if (n > 2) el.add(n - 1, 0);
  return el;
}

EdgeList make_star(vid_t n) {
  require_positive(n, "make_star");
  EdgeList el;
  el.num_vertices = n;
  el.edges.reserve(static_cast<std::size_t>(n - 1));
  for (vid_t v = 1; v < n; ++v) el.add(0, v);
  return el;
}

EdgeList make_complete(vid_t n) {
  require_positive(n, "make_complete");
  EdgeList el;
  el.num_vertices = n;
  el.edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2);
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v = u + 1; v < n; ++v) el.add(u, v);
  }
  return el;
}

EdgeList make_grid(vid_t rows, vid_t cols) {
  require_positive(rows, "make_grid rows");
  require_positive(cols, "make_grid cols");
  EdgeList el;
  el.num_vertices = rows * cols;
  for (vid_t r = 0; r < rows; ++r) {
    for (vid_t c = 0; c < cols; ++c) {
      const vid_t v = r * cols + c;
      if (c + 1 < cols) el.add(v, v + 1);
      if (r + 1 < rows) el.add(v, v + cols);
    }
  }
  return el;
}

EdgeList make_binary_tree(vid_t n) {
  require_positive(n, "make_binary_tree");
  EdgeList el;
  el.num_vertices = n;
  for (vid_t v = 1; v < n; ++v) el.add((v - 1) / 2, v);
  return el;
}

EdgeList make_two_cliques(vid_t n) {
  require_positive(n, "make_two_cliques");
  if (n % 2 != 0) throw std::invalid_argument("make_two_cliques: n must be even");
  const vid_t half = n / 2;
  EdgeList el;
  el.num_vertices = n;
  for (vid_t base : {vid_t{0}, half}) {
    for (vid_t u = 0; u < half; ++u) {
      for (vid_t v = u + 1; v < half; ++v) el.add(base + u, base + v);
    }
  }
  return el;
}

EdgeList make_erdos_renyi(vid_t n, eid_t m, std::uint64_t seed) {
  require_positive(n, "make_erdos_renyi");
  if (m < 0) throw std::invalid_argument("make_erdos_renyi: m must be >= 0");
  Xoshiro256ss rng(seed);
  EdgeList el;
  el.num_vertices = n;
  el.edges.reserve(static_cast<std::size_t>(m));
  for (eid_t i = 0; i < m; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
    el.add(u, v);
  }
  return el;
}

EdgeList make_lollipop(vid_t clique, vid_t tail) {
  require_positive(clique, "make_lollipop clique");
  if (tail < 0) throw std::invalid_argument("make_lollipop: tail must be >= 0");
  EdgeList el;
  el.num_vertices = clique + tail;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) el.add(u, v);
  }
  // Attach the path at the last clique vertex.
  for (vid_t i = 0; i < tail; ++i) {
    const vid_t from = (i == 0) ? clique - 1 : clique + i - 1;
    el.add(from, clique + i);
  }
  return el;
}

}  // namespace bfsx::graph
