#include "graph/delta_csr.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "check/contract.h"

namespace bfsx::graph {
namespace {

/// Per-row pending writes, gathered before any row is rebuilt.
struct RowOps {
  std::vector<vid_t> adds;
  std::vector<vid_t> dels;
};

using OpsByRow = std::unordered_map<vid_t, RowOps>;

void collect(OpsByRow& rows, vid_t src, vid_t dst, bool remove) {
  RowOps& ops = rows[src];
  (remove ? ops.dels : ops.adds).push_back(dst);
}

/// old ∪ adds ∖ dels, sorted ascending and deduplicated — exactly the
/// row a full build_csr of the updated edge list would produce.
std::vector<vid_t> rebuild_row(std::span<const vid_t> old, RowOps& ops) {
  std::sort(ops.adds.begin(), ops.adds.end());
  ops.adds.erase(std::unique(ops.adds.begin(), ops.adds.end()),
                 ops.adds.end());
  std::sort(ops.dels.begin(), ops.dels.end());

  std::vector<vid_t> merged;
  merged.reserve(old.size() + ops.adds.size());
  std::merge(old.begin(), old.end(), ops.adds.begin(), ops.adds.end(),
             std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  if (!ops.dels.empty()) {
    std::vector<vid_t> kept;
    kept.reserve(merged.size());
    std::set_difference(merged.begin(), merged.end(), ops.dels.begin(),
                        ops.dels.end(), std::back_inserter(kept));
    merged = std::move(kept);
  }
  return merged;
}

}  // namespace

DeltaCsr DeltaCsr::apply(std::shared_ptr<const CsrGraph> base,
                         const DeltaCsr* prev, std::span<const Edge> inserts,
                         std::span<const Edge> removes,
                         const BuildOptions& opts) {
  if (base == nullptr) {
    throw std::invalid_argument("DeltaCsr::apply: null base");
  }
  if (!opts.sort_neighbors || !opts.deduplicate) {
    throw std::invalid_argument(
        "DeltaCsr::apply: delta overlays require canonical rows "
        "(sort_neighbors && deduplicate)");
  }
  if (prev != nullptr && prev->base_.get() != base.get()) {
    throw std::invalid_argument(
        "DeltaCsr::apply: prev overlays a different base");
  }
  const bool symmetric = opts.symmetrize;
  BFSX_CHECK(base->is_symmetric() == symmetric)
      << "DeltaCsr::apply: base symmetry (" << base->is_symmetric()
      << ") disagrees with build options (" << symmetric << ")";

  DeltaCsr out;
  out.base_ = std::move(base);
  out.base_num_vertices_ = out.base_->num_vertices();
  out.symmetric_ = symmetric;
  out.num_vertices_ =
      prev != nullptr ? prev->num_vertices_ : out.base_num_vertices_;
  out.num_edges_ = prev != nullptr ? prev->num_edges_ : out.base_->num_edges();

  // Expand each op the way build_csr's options would, grouped by the
  // row it lands in. The in-side tables are only kept for directed
  // graphs; symmetric overlays alias in_row to out_row.
  OpsByRow out_ops;
  OpsByRow in_ops;
  const auto one_direction = [&](vid_t u, vid_t v, bool remove) {
    collect(out_ops, u, v, remove);
    if (!symmetric) collect(in_ops, v, u, remove);
  };
  const auto one_op = [&](const Edge& e, bool remove) {
    if (e.src < 0 || e.dst < 0) {
      throw std::invalid_argument("DeltaCsr::apply: negative vertex in op (" +
                                  std::to_string(e.src) + ", " +
                                  std::to_string(e.dst) + ")");
    }
    if (e.src == e.dst && opts.remove_self_loops) return;
    if (!remove) {
      out.num_vertices_ =
          std::max({out.num_vertices_, e.src + 1, e.dst + 1});
    }
    one_direction(e.src, e.dst, remove);
    if (symmetric && e.src != e.dst) one_direction(e.dst, e.src, remove);
  };
  for (const Edge& e : inserts) one_op(e, /*remove=*/false);
  for (const Edge& e : removes) one_op(e, /*remove=*/true);

  const auto n = static_cast<std::size_t>(out.num_vertices_);
  out.out_patch_of_.assign(n, -1);
  if (!symmetric) out.in_patch_of_.assign(n, -1);

  // Carry every live patch of the previous overlay forward; rows this
  // batch touches again are rebuilt below from the carried copy.
  const auto carry = [n](const std::vector<std::int32_t>& prev_of,
                         const std::vector<std::vector<vid_t>>& prev_rows,
                         std::vector<std::int32_t>& of,
                         std::vector<std::vector<vid_t>>& rows) {
    const std::size_t prev_n = prev_of.size();
    for (std::size_t v = 0; v < prev_n && v < n; ++v) {
      const std::int32_t p = prev_of[v];
      if (p < 0) continue;
      of[v] = static_cast<std::int32_t>(rows.size());
      rows.push_back(prev_rows[static_cast<std::size_t>(p)]);
    }
  };
  if (prev != nullptr) {
    carry(prev->out_patch_of_, prev->out_rows_, out.out_patch_of_,
          out.out_rows_);
    if (!symmetric) {
      carry(prev->in_patch_of_, prev->in_rows_, out.in_patch_of_,
            out.in_rows_);
    }
  }

  // Edge totals are counted on the out side only (in-rows mirror the
  // same directed edges for a directed graph's transpose).
  const auto patch_side = [&](OpsByRow& by_row,
                              std::vector<std::int32_t>& of,
                              std::vector<std::vector<vid_t>>& rows,
                              bool out_side) {
    // Deterministic rebuild order (iteration order of the hash map is
    // not): sort the touched vertices. The result is order-independent
    // anyway — rows are sets — but determinism keeps patch indices, and
    // therefore memory layout, reproducible.
    std::vector<vid_t> touched;
    touched.reserve(by_row.size());
    for (const auto& [v, ops] : by_row) touched.push_back(v);
    std::sort(touched.begin(), touched.end());

    for (const vid_t v : touched) {
      // Removes never grow the vertex set, so a remove op can name a
      // row past it — there is nothing to delete from (the edge is
      // absent by construction) and no patch table entry to index.
      if (v >= out.num_vertices_) continue;
      const auto vi = static_cast<std::size_t>(v);
      const std::int32_t p = of[vi];
      const std::span<const vid_t> old =
          p >= 0 ? std::span<const vid_t>(rows[static_cast<std::size_t>(p)])
          : v < out.base_num_vertices_
              ? (out_side ? out.base_->out_neighbors(v)
                          : out.base_->in_neighbors(v))
              : std::span<const vid_t>{};
      std::vector<vid_t> fresh = rebuild_row(old, by_row.at(v));
      if (out_side) {
        out.num_edges_ += static_cast<eid_t>(fresh.size()) -
                          static_cast<eid_t>(old.size());
      }
      if (p >= 0) {
        rows[static_cast<std::size_t>(p)] = std::move(fresh);
      } else if (fresh.size() == old.size() &&
                 std::equal(fresh.begin(), fresh.end(), old.begin())) {
        // No-op batch for this row (duplicate insert, remove of an
        // absent edge): don't burn a patch slot on an identical row.
        continue;
      } else {
        of[vi] = static_cast<std::int32_t>(rows.size());
        rows.push_back(std::move(fresh));
      }
    }
  };
  patch_side(out_ops, out.out_patch_of_, out.out_rows_, /*out_side=*/true);
  if (!symmetric) {
    patch_side(in_ops, out.in_patch_of_, out.in_rows_, /*out_side=*/false);
  }
  return out;
}

bool DeltaCsr::has_edge(vid_t u, vid_t v) const noexcept {
  if (u < 0 || v < 0 || u >= num_vertices_ || v >= num_vertices_) {
    return false;
  }
  const std::span<const vid_t> row = out_row(u);
  return std::binary_search(row.begin(), row.end(), v);
}

EdgeList DeltaCsr::materialize_edges() const {
  EdgeList el;
  el.num_vertices = num_vertices_;
  el.edges.reserve(static_cast<std::size_t>(num_edges_));
  for (vid_t v = 0; v < num_vertices_; ++v) {
    for (const vid_t w : out_row(v)) el.add(v, w);
  }
  return el;
}

}  // namespace bfsx::graph
