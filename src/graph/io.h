// Graph serialisation: edge-list text and binary formats.
//
// Text format ("el"): one `src dst` pair per line, '#' comments, a
//   `# vertices: N` header fixing the vertex-id space (otherwise it is
//   max id + 1). Interoperates with SNAP-style edge lists.
// Binary format ("bel"): little-endian, magic "BFSXEL1\n", int64 vertex
//   count, int64 edge count, then (int32 src, int32 dst) pairs. Loads
//   the paper-scale graphs an order of magnitude faster than text.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.h"

namespace bfsx::graph {

/// Writes the text edge list, including the `# vertices:` header.
void write_edge_list_text(std::ostream& os, const EdgeList& el);

/// Parses a text edge list. Throws std::runtime_error on malformed
/// lines or out-of-range endpoints.
[[nodiscard]] EdgeList read_edge_list_text(std::istream& is);

/// Binary round trip.
void write_edge_list_binary(std::ostream& os, const EdgeList& el);
[[nodiscard]] EdgeList read_edge_list_binary(std::istream& is);

/// Path-based conveniences; format picked by extension (".bel" binary,
/// anything else text). Throw std::runtime_error on I/O failure.
void save_edge_list(const std::string& path, const EdgeList& el);
[[nodiscard]] EdgeList load_edge_list(const std::string& path);

}  // namespace bfsx::graph
