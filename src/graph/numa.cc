#include "graph/numa.h"

#include <cstdio>
#include <cstdlib>

namespace bfsx::graph::numa {
namespace {

/// Parses "/sys/devices/system/node/possible" ("0" or "0-3" or
/// "0,2-3"); returns the node count, or 1 on any parse/IO failure.
int probe_num_nodes() noexcept {
  std::FILE* f = std::fopen("/sys/devices/system/node/possible", "r");
  if (f == nullptr) return 1;
  char buf[256];
  const char* line = std::fgets(buf, sizeof buf, f);
  std::fclose(f);
  if (line == nullptr) return 1;
  // Count list entries: each comma-separated token is either a node id
  // or an inclusive range "a-b".
  int count = 0;
  const char* p = buf;
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    const long a = std::strtol(p, &end, 10);
    if (end == p) return 1;
    long b = a;
    p = end;
    if (*p == '-') {
      ++p;
      b = std::strtol(p, &end, 10);
      if (end == p) return 1;
      p = end;
    }
    if (b < a) return 1;
    count += static_cast<int>(b - a + 1);
    if (*p == ',') ++p;
  }
  return count > 0 ? count : 1;
}

}  // namespace

int num_nodes() noexcept {
  static const int nodes = probe_num_nodes();
  return nodes;
}

bool multi_node() noexcept { return num_nodes() > 1; }

}  // namespace bfsx::graph::numa
