// GraphView: the compile-time traversal interface the BFS kernels are
// written against.
//
// The paper's direction-switching machinery only ever needs four things
// from a graph: how many vertices there are, a vertex's out-degree (the
// |E|cq accumulator), out-neighbour enumeration (top-down expansion),
// and — for bottom-up — in-neighbour enumeration with early exit (an
// unvisited vertex scans its predecessors and stops at the first
// frontier hit, Algorithm 2 line 12). Everything else (CSR arrays,
// sortedness, binary-searchable rows) is representation detail. This
// header names that contract as C++20 concepts so the same templated
// kernels run over (a) materialized CSR storage via the zero-overhead
// `CsrGraphView` adapter, and (b) *implicit* graphs whose neighbours
// are generated on the fly (grid worlds, puzzle state spaces —
// graph/grid_view.h, graph/npuzzle_view.h).
//
// Dispatch is entirely compile-time: kernels are instantiated once per
// view type, so the hot loops carry no virtual calls and no function
// pointers. DESIGN.md §11 describes the concept and its capability
// tiers.
#pragma once

#include <concepts>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/prng.h"
#include "graph/types.h"

namespace bfsx::graph {

namespace detail {

/// Archetype out-neighbour consumer used by the concept checks below
/// (lambdas would work in C++20 requires-expressions, but a named
/// functor keeps the diagnostics readable).
struct NeighborSink {
  void operator()(vid_t) const noexcept {}
};

/// Archetype in-neighbour scanner: returns true to continue the scan,
/// false to stop (the bottom-up "found a parent" break).
struct ScanSink {
  bool operator()(vid_t) const noexcept { return true; }
};

}  // namespace detail

/// The minimal surface every traversal kernel needs. `is_symmetric()`
/// is part of the base tier because result extraction (the TEPS
/// numerator) must know whether directed edge counts should be halved.
///
/// `for_each_out_neighbor(v, f)` calls `f(w)` for every out-neighbour w
/// of v, in a deterministic order fixed by the view (CSR: ascending;
/// implicit views: the documented successor order).
template <typename V>
concept GraphView = requires(const V& g, vid_t v, detail::NeighborSink out) {
  { g.num_vertices() } -> std::convertible_to<vid_t>;
  { g.is_symmetric() } -> std::convertible_to<bool>;
  { g.out_degree(v) } -> std::convertible_to<eid_t>;
  g.for_each_out_neighbor(v, out);
};

/// Capability: transpose (in-neighbour) access, required by the
/// bottom-up kernel. `for_each_in_neighbor(v, f)` calls `f(u)` for each
/// in-neighbour u of v in the view's deterministic order and stops as
/// soon as `f` returns false — that early exit is the hit-prefix walk
/// that makes bottom-up cheap on late levels. Symmetric implicit views
/// satisfy this with their out-enumeration (every move is reversible);
/// directed representations need a materialized transpose, which is why
/// CSR keeps separate in-arrays for directed graphs.
template <typename V>
concept TransposeView =
    GraphView<V> && requires(const V& g, vid_t v, detail::ScanSink scan) {
      g.for_each_in_neighbor(v, scan);
    };

/// Capability: exact directed edge count, required by the paper's M/N
/// switching heuristic (|E|cq < |E|/M) and by hybrid/adaptive drivers.
template <typename V>
concept EdgeCountedView = GraphView<V> && requires(const V& g) {
  { g.num_edges() } -> std::convertible_to<eid_t>;
};

/// Capability: O(log degree) membership test, used by the Graph 500
/// validator's tree-edge check. Views without it fall back to a linear
/// neighbour scan (fine for bounded-degree implicit graphs).
template <typename V>
concept EdgeQueryView = GraphView<V> && requires(const V& g, vid_t u, vid_t v) {
  { g.has_edge(u, v) } -> std::convertible_to<bool>;
};

/// Everything the direction-switching drivers need: expansion in both
/// directions plus the M/N inputs.
template <typename V>
concept HybridView = TransposeView<V> && EdgeCountedView<V>;

/// Capability: representation-level software-prefetch hints, consumed
/// by the kernels' PrefetchConfig path (bfs/mem_tuning.h). A view that
/// models it promises:
///   * prefetch_out_row(v) / prefetch_in_row(v) — pull the metadata and
///     the head of v's adjacency row toward the cache, without reading
///     any of it architecturally;
///   * for_each_out_neighbor_ahead(v, d, pf, fn) — enumerate exactly
///     like for_each_out_neighbor(v, fn), additionally calling `pf` on
///     the neighbour `d` slots ahead of the one being visited (so the
///     caller can prefetch per-neighbour side data such as the visited
///     bitmap word). Views whose neighbours are decoded sequentially
///     (CompressedCsrView) may legally skip the pf calls — the hint is
///     advisory and must never change which `fn` calls happen.
/// Implicit views (grid, n-puzzle) generate neighbours arithmetically —
/// nothing to prefetch — and simply do not model this concept; the
/// kernels' `if constexpr` guard compiles the hints out for them.
template <typename V>
concept PrefetchableView =
    GraphView<V> && requires(const V& g, vid_t v, int d,
                             detail::NeighborSink pf, detail::NeighborSink out) {
      g.prefetch_out_row(v);
      g.prefetch_in_row(v);
      g.for_each_out_neighbor_ahead(v, d, pf, out);
    };

/// Zero-overhead adapter presenting a CsrGraph through the GraphView
/// concepts. Holds a pointer only; every accessor forwards to the
/// inline CSR methods, so kernels instantiated for CsrGraphView compile
/// to the same loops as the historical CsrGraph-typed kernels (the
/// bit-equality this is held to is tested in test_graph_view and
/// measured in bench_graphview).
class CsrGraphView {
 public:
  explicit CsrGraphView(const CsrGraph& g) noexcept : g_(&g) {}

  [[nodiscard]] vid_t num_vertices() const noexcept {
    return g_->num_vertices();
  }
  [[nodiscard]] eid_t num_edges() const noexcept { return g_->num_edges(); }
  [[nodiscard]] bool is_symmetric() const noexcept {
    return g_->is_symmetric();
  }
  [[nodiscard]] eid_t out_degree(vid_t v) const noexcept {
    return g_->out_degree(v);
  }
  [[nodiscard]] eid_t in_degree(vid_t v) const noexcept {
    return g_->in_degree(v);
  }
  [[nodiscard]] bool has_edge(vid_t u, vid_t v) const noexcept {
    return g_->has_edge(u, v);
  }

  template <typename Fn>
  void for_each_out_neighbor(vid_t v, Fn&& fn) const {
    for (const vid_t w : g_->out_neighbors(v)) fn(w);
  }

  template <typename Fn>
  void for_each_in_neighbor(vid_t v, Fn&& fn) const {
    for (const vid_t u : g_->in_neighbors(v)) {
      if (!fn(u)) return;
    }
  }

  /// PrefetchableView: pull v's out-row metadata and head toward the
  /// cache. The offsets array is ~1/edgefactor the size of targets and
  /// usually cache-resident, so reading offsets[v] here to form the
  /// targets address rarely stalls; both prefetches are non-binding.
  void prefetch_out_row(vid_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    const eid_t off = g_->out_offsets()[u];
    __builtin_prefetch(g_->out_offsets().data() + u + 1, 0, 3);
    __builtin_prefetch(g_->out_targets().data() + off, 0, 3);
  }

  void prefetch_in_row(vid_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    const eid_t off = g_->in_offsets()[u];
    __builtin_prefetch(g_->in_offsets().data() + u + 1, 0, 3);
    __builtin_prefetch(g_->in_targets().data() + off, 0, 3);
  }

  /// PrefetchableView: enumerate v's out-row, announcing the neighbour
  /// `distance` slots ahead through `pf` so its visited word can be
  /// prefetched before the dependent test_and_set reaches it.
  template <typename Pf, typename Fn>
  void for_each_out_neighbor_ahead(vid_t v, int distance, Pf&& pf,
                                   Fn&& fn) const {
    const std::span<const vid_t> row = g_->out_neighbors(v);
    const auto d = static_cast<std::size_t>(distance);
    const std::size_t len = row.size();
    for (std::size_t j = 0; j < len; ++j) {
      if (j + d < len) pf(row[j + d]);
      fn(row[j]);
    }
  }

  /// The wrapped storage, for callers that need CSR-only features.
  [[nodiscard]] const CsrGraph& csr() const noexcept { return *g_; }

 private:
  const CsrGraph* g_;
};

static_assert(HybridView<CsrGraphView>);
static_assert(EdgeQueryView<CsrGraphView>);
static_assert(PrefetchableView<CsrGraphView>);
// CsrGraph itself deliberately does not model GraphView (it exposes
// spans, not enumerators); kernels keep exact-match CsrGraph overloads
// that forward through the adapter.
static_assert(!GraphView<CsrGraph>);

/// Materializes a view into an explicit directed edge list — the bridge
/// the cross-representation equality tests use: build a CsrGraph from
/// `materialize(view)` and BFS distances must match the implicit run
/// exactly.
template <GraphView V>
[[nodiscard]] EdgeList materialize(const V& g) {
  EdgeList el;
  el.num_vertices = g.num_vertices();
  for (vid_t v = 0; v < el.num_vertices; ++v) {
    g.for_each_out_neighbor(v, [&el, v](vid_t w) { el.add(v, w); });
  }
  return el;
}

/// Graph 500 root sampling over any view: uniform draws, degree-0
/// rejections, identical algorithm (and identical RNG stream) to
/// graph::sample_roots on CSR — the same seed picks the same roots on a
/// view and on its materialized CsrGraph.
template <GraphView V>
[[nodiscard]] std::vector<vid_t> sample_view_roots(const V& g, int count,
                                                   std::uint64_t seed) {
  if (count < 0) {
    throw std::invalid_argument("sample_view_roots: count < 0");
  }
  const vid_t n = g.num_vertices();
  Xoshiro256ss rng(seed);
  std::vector<vid_t> roots;
  roots.reserve(static_cast<std::size_t>(count));
  const std::size_t max_attempts = 64 * static_cast<std::size_t>(count) + 1024;
  std::size_t attempts = 0;
  while (roots.size() < static_cast<std::size_t>(count)) {
    if (++attempts > max_attempts) {
      throw std::runtime_error(
          "sample_view_roots: could not find enough non-isolated vertices");
    }
    const auto v =
        static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
    if (g.out_degree(v) > 0) roots.push_back(v);
  }
  return roots;
}

}  // namespace bfsx::graph
