// Deterministic synthetic graph generators.
//
// These are not in the paper; they exist so tests can assert exact BFS
// results (levels, parent structure, frontier sizes) on graphs whose
// answers are known in closed form, and so examples have small readable
// inputs.
#pragma once

#include <cstdint>

#include "graph/edge_list.h"

namespace bfsx::graph {

/// Path 0–1–2–…–(n-1). BFS from 0 has n levels of exactly one vertex.
[[nodiscard]] EdgeList make_path(vid_t n);

/// Cycle 0–1–…–(n-1)–0.
[[nodiscard]] EdgeList make_cycle(vid_t n);

/// Star: hub 0 connected to spokes 1..n-1. BFS from the hub is two
/// levels; from a spoke, three.
[[nodiscard]] EdgeList make_star(vid_t n);

/// Complete graph K_n. Any BFS is two levels.
[[nodiscard]] EdgeList make_complete(vid_t n);

/// rows × cols 4-neighbour grid; vertex (r, c) has id r*cols + c.
/// BFS levels from a corner follow the Manhattan distance.
[[nodiscard]] EdgeList make_grid(vid_t rows, vid_t cols);

/// Complete binary tree with n vertices, parent(i) = (i-1)/2.
/// BFS from the root has floor(log2(n)) + 1 levels.
[[nodiscard]] EdgeList make_binary_tree(vid_t n);

/// Two disjoint cliques of size n/2 each (n even): exercises
/// unreachable-vertex handling.
[[nodiscard]] EdgeList make_two_cliques(vid_t n);

/// Erdős–Rényi G(n, m): m directed edges drawn uniformly (self loops
/// allowed pre-dedup), deterministic under `seed`.
[[nodiscard]] EdgeList make_erdos_renyi(vid_t n, eid_t m, std::uint64_t seed);

/// "Lollipop": a clique of size k with a path of length n-k attached.
/// Produces a graph whose BFS mixes a dense burst with a long diameter
/// tail — a stress case for switching heuristics.
[[nodiscard]] EdgeList make_lollipop(vid_t clique, vid_t tail);

}  // namespace bfsx::graph
