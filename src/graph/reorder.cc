#include "graph/reorder.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>

#include "graph/bitmap.h"

namespace bfsx::graph {

void validate_permutation(const Permutation& perm, vid_t n) {
  if (perm.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("permutation: wrong size");
  }
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (vid_t target : perm) {
    if (target < 0 || target >= n || seen[static_cast<std::size_t>(target)]) {
      throw std::invalid_argument("permutation: not a bijection");
    }
    seen[static_cast<std::size_t>(target)] = true;
  }
}

Permutation degree_order(const CsrGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> by_degree(static_cast<std::size_t>(n));
  std::iota(by_degree.begin(), by_degree.end(), vid_t{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&g](vid_t a, vid_t b) {
                     return g.out_degree(a) > g.out_degree(b);
                   });
  Permutation perm(static_cast<std::size_t>(n));
  for (std::size_t new_id = 0; new_id < by_degree.size(); ++new_id) {
    perm[static_cast<std::size_t>(by_degree[new_id])] =
        static_cast<vid_t>(new_id);
  }
  return perm;
}

Permutation bfs_order(const CsrGraph& g, vid_t root) {
  const vid_t n = g.num_vertices();
  if (root < 0 || root >= n) {
    throw std::out_of_range("bfs_order: root out of range");
  }
  Permutation perm(static_cast<std::size_t>(n), kNoVertex);
  Bitmap visited(static_cast<std::size_t>(n));
  std::deque<vid_t> queue;
  vid_t next_id = 0;
  visited.set(static_cast<std::size_t>(root));
  queue.push_back(root);
  while (!queue.empty()) {
    const vid_t u = queue.front();
    queue.pop_front();
    perm[static_cast<std::size_t>(u)] = next_id++;
    for (vid_t v : g.out_neighbors(u)) {
      if (!visited.test(static_cast<std::size_t>(v))) {
        visited.set(static_cast<std::size_t>(v));
        queue.push_back(v);
      }
    }
  }
  // Unreached vertices keep their relative order after the reached set.
  for (vid_t v = 0; v < n; ++v) {
    if (perm[static_cast<std::size_t>(v)] == kNoVertex) {
      perm[static_cast<std::size_t>(v)] = next_id++;
    }
  }
  return perm;
}

EdgeList apply_permutation(const EdgeList& el, const Permutation& perm) {
  validate_permutation(perm, el.num_vertices);
  EdgeList out;
  out.num_vertices = el.num_vertices;
  out.edges.reserve(el.edges.size());
  for (const Edge& e : el.edges) {
    out.add(perm[static_cast<std::size_t>(e.src)],
            perm[static_cast<std::size_t>(e.dst)]);
  }
  return out;
}

Permutation invert_permutation(const Permutation& perm) {
  Permutation inv(perm.size());
  for (std::size_t old_id = 0; old_id < perm.size(); ++old_id) {
    inv[static_cast<std::size_t>(perm[old_id])] = static_cast<vid_t>(old_id);
  }
  return inv;
}

}  // namespace bfsx::graph
