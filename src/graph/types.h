// Fundamental integer types shared by every bfsx module.
#pragma once

#include <cstdint>

namespace bfsx::graph {

/// Vertex identifier. 32-bit: graphs up to 2^31-1 vertices (paper uses
/// at most SCALE 26, i.e. 64M vertices).
using vid_t = std::int32_t;

/// Edge identifier / edge count. 64-bit: an R-MAT graph at SCALE 26 with
/// edgefactor 16 already exceeds 2^30 directed edges.
using eid_t = std::int64_t;

/// Sentinel meaning "no parent / unvisited" in predecessor maps
/// (the paper's Pred[v] = -1).
inline constexpr vid_t kNoVertex = -1;

/// The two traversal directions the combination technique switches
/// between (paper Section II). Shared vocabulary: the kernels act on
/// it, the observability schema records it, and the simulators cost
/// it, so it lives with the fundamental types rather than in
/// `bfs/state.h` (which would drag the kernel layer into `src/obs`).
enum class Direction { kTopDown, kBottomUp };

[[nodiscard]] constexpr const char* to_string(Direction d) noexcept {
  return d == Direction::kTopDown ? "TD" : "BU";
}

}  // namespace bfsx::graph
