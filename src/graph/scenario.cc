#include "graph/scenario.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "tools/args.h"

namespace bfsx::graph {
namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string::size_type pos = 0;
  while (true) {
    const auto next = text.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(text.substr(pos));
      return out;
    }
    out.push_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
}

/// Whole-token integer parse, same strictness as tools::Args::get_int:
/// "12abc" is an error, not 12.
int parse_int(const std::string& text, const std::string& what) {
  const char* s = text.c_str();
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument("scenario: " + what +
                                ": expected an integer, got '" + text + "'");
  }
  return static_cast<int>(v);
}

double parse_double(const std::string& text, const std::string& what) {
  const char* s = text.c_str();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument("scenario: " + what +
                                ": expected a number, got '" + text + "'");
  }
  return v;
}

/// "WxH" -> (W, H).
std::pair<int, int> parse_shape(const std::string& token,
                                const std::string& kind) {
  const auto x = token.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= token.size()) {
    throw std::invalid_argument("scenario: " + kind +
                                " needs a WIDTHxHEIGHT shape, got '" + token +
                                "'");
  }
  return {parse_int(token.substr(0, x), kind + " width"),
          parse_int(token.substr(x + 1), kind + " height")};
}

struct KeyValue {
  std::string key;
  std::string value;
};

KeyValue parse_option(const std::string& token,
                      const std::vector<std::string_view>& known) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("scenario: expected key=value, got '" + token +
                                "'");
  }
  KeyValue kv{token.substr(0, eq), token.substr(eq + 1)};
  for (const std::string_view k : known) {
    if (kv.key == k) return kv;
  }
  std::string message = "scenario: unknown option '" + kv.key + "'";
  if (const auto closest = tools::suggest_closest(kv.key, known);
      !closest.empty()) {
    message += " (did you mean '" + std::string(closest) + "'?)";
  }
  throw std::invalid_argument(message);
}

Scenario make_grid(const std::vector<std::string>& parts) {
  if (parts.size() < 2) {
    throw std::invalid_argument(
        "scenario: grid needs a shape, e.g. grid:64x64");
  }
  const auto [w, h] = parse_shape(parts[1], "grid");
  GridSpec spec;
  spec.width = w;
  spec.height = h;
  static const std::vector<std::string_view> known = {"conn", "wall-density",
                                                      "wall-seed"};
  for (std::size_t i = 2; i < parts.size(); ++i) {
    const KeyValue kv = parse_option(parts[i], known);
    if (kv.key == "conn") {
      spec.connectivity = parse_int(kv.value, "conn");
    } else if (kv.key == "wall-density") {
      spec.wall_density = parse_double(kv.value, "wall-density");
    } else {
      spec.wall_seed =
          static_cast<std::uint64_t>(parse_int(kv.value, "wall-seed"));
    }
  }
  std::ostringstream name;
  name << "grid:" << spec.width << "x" << spec.height << ":conn="
       << spec.connectivity << ":wall-density=" << spec.wall_density
       << ":wall-seed=" << spec.wall_seed;
  return {name.str(), ScenarioGraph{GridWorld(spec)}};
}

Scenario make_npuzzle(const std::vector<std::string>& parts) {
  if (parts.size() < 2) {
    throw std::invalid_argument(
        "scenario: npuzzle needs a shape, e.g. npuzzle:3x3");
  }
  if (parts.size() > 2) {
    throw std::invalid_argument("scenario: npuzzle takes no options, got '" +
                                parts[2] + "'");
  }
  const auto [w, h] = parse_shape(parts[1], "npuzzle");
  NPuzzleSpec spec;
  spec.width = w;
  spec.height = h;
  std::ostringstream name;
  name << "npuzzle:" << w << "x" << h;
  return {name.str(), ScenarioGraph{NPuzzleSpace(spec)}};
}

}  // namespace

std::string known_scenarios() { return "grid:WxH[:conn=4|8][:wall-density=D][:wall-seed=S], npuzzle:WxH"; }

Scenario parse_scenario(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  const std::string& kind = parts[0];
  if (kind == "grid") return make_grid(parts);
  if (kind == "npuzzle") return make_npuzzle(parts);
  static const std::vector<std::string_view> kinds = {"grid", "npuzzle"};
  std::string message = "unknown scenario '" + kind + "'";
  if (const auto closest = tools::suggest_closest(kind, kinds);
      !closest.empty()) {
    message += " (did you mean '" + std::string(closest) + "'?)";
  }
  message += "; valid scenarios: " + known_scenarios();
  throw std::invalid_argument(message);
}

vid_t resolve_root_state(const ScenarioGraph& g, const std::string& state) {
  return std::visit(
      [&state](const auto& view) -> vid_t {
        using V = std::decay_t<decltype(view)>;
        const std::vector<std::string> parts = split(state, ',');
        if constexpr (std::is_same_v<V, GridWorld>) {
          if (parts.size() != 2) {
            throw std::invalid_argument(
                "root-state: grid roots are 'x,y', got '" + state + "'");
          }
          const auto x =
              static_cast<vid_t>(parse_int(parts[0], "root-state x"));
          const auto y =
              static_cast<vid_t>(parse_int(parts[1], "root-state y"));
          if (!view.in_bounds(x, y)) {
            throw std::invalid_argument(
                "root-state: cell (" + parts[0] + "," + parts[1] +
                ") is outside the " + std::to_string(view.spec().width) + "x" +
                std::to_string(view.spec().height) + " grid");
          }
          const vid_t v = view.id_of(x, y);
          if (view.is_wall(v)) {
            throw std::invalid_argument("root-state: cell (" + parts[0] + "," +
                                        parts[1] + ") is a wall");
          }
          return v;
        } else {
          const int k = view.cells();
          if (static_cast<int>(parts.size()) != k) {
            throw std::invalid_argument(
                "root-state: npuzzle roots list all " + std::to_string(k) +
                " tiles row-major (blank as 0), got " +
                std::to_string(parts.size()) + " values");
          }
          std::uint64_t packed = 0;
          unsigned seen = 0;
          for (int c = 0; c < k; ++c) {
            const int tile = parse_int(parts[static_cast<std::size_t>(c)],
                                       "root-state tile");
            if (tile < 0 || tile >= k || ((seen >> tile) & 1u) != 0) {
              throw std::invalid_argument(
                  "root-state: '" + state + "' is not a permutation of 0.." +
                  std::to_string(k - 1));
            }
            seen |= 1u << tile;
            packed |= static_cast<std::uint64_t>(tile) << (4 * c);
          }
          const vid_t v = view.id_of(packed);
          if (v == kNoVertex) {
            throw std::invalid_argument(
                "root-state: '" + state +
                "' is not reachable from the solved board (odd permutation "
                "parity)");
          }
          return v;
        }
      },
      g);
}

std::string format_state(const ScenarioGraph& g, vid_t v) {
  return std::visit(
      [v](const auto& view) -> std::string {
        using V = std::decay_t<decltype(view)>;
        if constexpr (std::is_same_v<V, GridWorld>) {
          const auto [x, y] = view.coords_of(v);
          return std::to_string(x) + "," + std::to_string(y);
        } else {
          const std::uint64_t s = view.state_of(v);
          std::string out;
          for (int c = 0; c < view.cells(); ++c) {
            if (c != 0) out += ",";
            out += std::to_string(view.tile_at(s, c));
          }
          return out;
        }
      },
      g);
}

}  // namespace bfsx::graph
