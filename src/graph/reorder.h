// Vertex relabelling / reordering optimisations.
//
// The paper's related work (Section VI) credits Chhugani et al. with
// "vertices rearrangement" as a single-node optimisation: relabelling
// vertices so that hot vertices share cache lines improves both
// directions' locality. This module implements the two classic orders
// and the machinery to apply a permutation to a graph and translate
// BFS results back — useful both as a real optimisation for the native
// engines and as test material (BFS must be permutation-equivariant).
#pragma once

#include <vector>

#include "graph/csr.h"
#include "graph/edge_list.h"

namespace bfsx::graph {

/// new_id = perm[old_id]. A valid permutation is a bijection on
/// [0, num_vertices).
using Permutation = std::vector<vid_t>;

/// Throws std::invalid_argument unless `perm` is a bijection over
/// [0, n).
void validate_permutation(const Permutation& perm, vid_t n);

/// Descending out-degree order: hubs get the smallest ids (and land in
/// the same cache lines / bitmap words). Ties break by old id, so the
/// result is deterministic.
[[nodiscard]] Permutation degree_order(const CsrGraph& g);

/// BFS visit order from `root` (unreached vertices keep relative order
/// after all reached ones): neighbours end up with nearby ids, the
/// poor man's RCM.
[[nodiscard]] Permutation bfs_order(const CsrGraph& g, vid_t root);

/// Applies a permutation to an edge list (endpoint relabelling).
[[nodiscard]] EdgeList apply_permutation(const EdgeList& el,
                                         const Permutation& perm);

/// Translates a vertex id back to the pre-permutation namespace.
[[nodiscard]] Permutation invert_permutation(const Permutation& perm);

}  // namespace bfsx::graph
