// Scenario parsing: the `--scenario` surface that names an implicit
// graph on the command line.
//
// A scenario spec is `kind:shape[:key=value...]`:
//
//   grid:64x64                    4-connected open grid
//   grid:128x96:conn=8            Moore connectivity
//   grid:256x256:wall-density=0.2:wall-seed=7
//   npuzzle:3x3                   the classic 8-puzzle (181440 states)
//
// parse_scenario builds the named view; the result is a std::variant so
// non-template callers (CLI, runner glue) hold either view behind one
// type and std::visit once per traversal — type erasure at whole-run
// granularity, never on the hot path (the visited lambda instantiates
// the templated kernels per concrete view).
#pragma once

#include <string>
#include <variant>

#include "graph/grid_view.h"
#include "graph/npuzzle_view.h"
#include "graph/types.h"

namespace bfsx::graph {

/// Either implicit view, plus the canonical spec string it was parsed
/// from (for traces and error messages).
using ScenarioGraph = std::variant<GridWorld, NPuzzleSpace>;

struct Scenario {
  std::string name;  // canonical spec, e.g. "grid:64x64:conn=4:..."
  ScenarioGraph graph;
};

/// Parses a scenario spec and constructs the view. Throws
/// std::invalid_argument with a did-you-mean hint (tools::suggest_closest)
/// for unknown kinds and unknown grid options.
[[nodiscard]] Scenario parse_scenario(const std::string& spec);

/// The scenario kinds parse_scenario accepts, for usage text.
[[nodiscard]] std::string known_scenarios();

/// Translates a root named in scenario coordinates into a vertex id —
/// the same id-mapping step `--reorder` performs for CSR roots.
/// Grid: "x,y" (must be in bounds and not a wall). N-puzzle: the
/// row-major tile list, blank as 0, e.g. "1,2,3,4,5,6,7,8,0" (must be a
/// permutation in the reachable component). Throws std::invalid_argument
/// otherwise.
[[nodiscard]] vid_t resolve_root_state(const ScenarioGraph& g,
                                       const std::string& state);

/// Renders a vertex id back into scenario coordinates — the inverse of
/// resolve_root_state, used when reporting sampled roots.
[[nodiscard]] std::string format_state(const ScenarioGraph& g, vid_t v);

}  // namespace bfsx::graph
