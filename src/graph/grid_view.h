// GridWorld: an implicit grid-world graph view (graph/view.h).
//
// Vertices are the cells of a width x height grid; edges connect
// 4- or 8-adjacent cells when neither is a wall. Nothing is
// materialized: neighbours are generated from coordinates on the fly,
// so the only storage is one bit per cell for the walls. This is the
// first of the state-space scenarios ROADMAP item 4 calls for — a
// graph whose diameter is O(width + height), the opposite regime from
// the low-diameter R-MAT graphs the paper's heuristic was tuned on.
//
// Id mapping is dense rank: cell (x, y) is vertex y*width + x, walls
// included (a wall is an isolated vertex — degree 0, never enumerated
// as a neighbour). Keeping walls in the id space makes the view
// bit-compatible with its materialized CSR: same |V|, same ids, same
// per-level counters.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "graph/bitmap.h"
#include "graph/types.h"
#include "graph/view.h"

namespace bfsx::graph {

/// Parameters of a grid world. Walls are sampled i.i.d. per cell with
/// probability `wall_density` from a deterministic PRNG stream, so a
/// spec names one exact graph on every platform.
struct GridSpec {
  vid_t width = 0;
  vid_t height = 0;
  int connectivity = 4;  // 4 (von Neumann) or 8 (Moore)
  double wall_density = 0.0;
  std::uint64_t wall_seed = 1;
};

class GridWorld {
 public:
  /// Validates the spec (throws std::invalid_argument) and samples the
  /// wall bitmap; O(cells).
  explicit GridWorld(const GridSpec& spec);

  [[nodiscard]] vid_t num_vertices() const noexcept { return num_cells_; }
  [[nodiscard]] eid_t num_edges() const noexcept { return num_edges_; }
  /// Grid adjacency is mutual, so in == out and bottom-up needs no
  /// transpose.
  [[nodiscard]] bool is_symmetric() const noexcept { return true; }

  [[nodiscard]] const GridSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] vid_t id_of(vid_t x, vid_t y) const noexcept {
    return y * spec_.width + x;
  }
  [[nodiscard]] std::pair<vid_t, vid_t> coords_of(vid_t v) const noexcept {
    return {v % spec_.width, v / spec_.width};
  }
  [[nodiscard]] bool in_bounds(vid_t x, vid_t y) const noexcept {
    return x >= 0 && x < spec_.width && y >= 0 && y < spec_.height;
  }
  [[nodiscard]] bool is_wall(vid_t v) const noexcept {
    return walls_.test(static_cast<std::size_t>(v));
  }

  [[nodiscard]] eid_t out_degree(vid_t v) const noexcept {
    eid_t degree = 0;
    visit_neighbors(v, [&degree](vid_t) {
      ++degree;
      return true;
    });
    return degree;
  }

  /// Neighbours are enumerated in ascending id order (offsets sorted
  /// row-major), matching the sorted rows of a CSR built from
  /// materialize() — traversal order, and therefore serial parents, are
  /// identical on both representations.
  template <typename Fn>
  void for_each_out_neighbor(vid_t v, Fn&& fn) const {
    visit_neighbors(v, [&fn](vid_t w) {
      fn(w);
      return true;
    });
  }

  /// TransposeView protocol: `fn` returns false to stop the scan.
  template <typename Fn>
  void for_each_in_neighbor(vid_t v, Fn&& fn) const {
    visit_neighbors(v, fn);
  }

 private:
  /// Enumerates the live neighbours of `v` in ascending id order;
  /// `fn(w)` returns false to stop early. Walls have no neighbours in
  /// either direction.
  template <typename Fn>
  bool visit_neighbors(vid_t v, Fn&& fn) const {
    if (is_wall(v)) return true;
    const auto [x, y] = coords_of(v);
    const bool diag = spec_.connectivity == 8;
    // Row-major offset order == ascending neighbour ids.
    if (diag && !emit(x - 1, y - 1, fn)) return false;
    if (!emit(x, y - 1, fn)) return false;
    if (diag && !emit(x + 1, y - 1, fn)) return false;
    if (!emit(x - 1, y, fn)) return false;
    if (!emit(x + 1, y, fn)) return false;
    if (diag && !emit(x - 1, y + 1, fn)) return false;
    if (!emit(x, y + 1, fn)) return false;
    if (diag && !emit(x + 1, y + 1, fn)) return false;
    return true;
  }

  template <typename Fn>
  bool emit(vid_t x, vid_t y, Fn&& fn) const {
    if (!in_bounds(x, y)) return true;
    const vid_t w = id_of(x, y);
    if (is_wall(w)) return true;
    return static_cast<bool>(fn(w));
  }

  GridSpec spec_;
  vid_t num_cells_ = 0;
  eid_t num_edges_ = 0;
  Bitmap walls_;
};

static_assert(HybridView<GridWorld>);

}  // namespace bfsx::graph
