#include "graph/graph_stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "graph/bitmap.h"
#include "graph/prng.h"

namespace bfsx::graph {

DegreeStats compute_degree_stats(const CsrGraph& g) {
  DegreeStats s;
  const vid_t n = g.num_vertices();
  if (n == 0) return s;
  s.min = g.out_degree(0);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (vid_t v = 0; v < n; ++v) {
    const eid_t d = g.out_degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    if (d == 0) ++s.isolated;
    const auto dd = static_cast<double>(d);
    sum += dd;
    sum_sq += dd * dd;
  }
  const auto nn = static_cast<double>(n);
  s.mean = sum / nn;
  const double var = std::max(0.0, sum_sq / nn - s.mean * s.mean);
  s.stddev = std::sqrt(var);
  return s;
}

std::vector<vid_t> degree_histogram_log2(const CsrGraph& g) {
  std::vector<vid_t> hist(1, 0);  // hist[0] = degree-0 count
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const eid_t d = g.out_degree(v);
    std::size_t bucket = 0;
    if (d > 0) {
      bucket = static_cast<std::size_t>(
                   std::bit_width(static_cast<std::uint64_t>(d))) ;
      // degree 1 -> bucket 1, degrees 2..3 -> bucket 2, etc.
    }
    if (bucket >= hist.size()) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

ComponentStats compute_components(const CsrGraph& g) {
  ComponentStats cs;
  const vid_t n = g.num_vertices();
  if (n == 0) return cs;
  Bitmap visited(static_cast<std::size_t>(n));
  std::deque<vid_t> queue;
  for (vid_t root = 0; root < n; ++root) {
    if (visited.test(static_cast<std::size_t>(root))) continue;
    ++cs.num_components;
    vid_t size = 0;
    visited.set(static_cast<std::size_t>(root));
    queue.push_back(root);
    while (!queue.empty()) {
      const vid_t u = queue.front();
      queue.pop_front();
      ++size;
      // Undirected view: both edge directions connect components.
      for (vid_t w : g.out_neighbors(u)) {
        if (!visited.test(static_cast<std::size_t>(w))) {
          visited.set(static_cast<std::size_t>(w));
          queue.push_back(w);
        }
      }
      for (vid_t w : g.in_neighbors(u)) {
        if (!visited.test(static_cast<std::size_t>(w))) {
          visited.set(static_cast<std::size_t>(w));
          queue.push_back(w);
        }
      }
    }
    if (size > cs.largest_size) {
      cs.largest_size = size;
      cs.largest_representative = root;
    }
  }
  return cs;
}

std::vector<vid_t> sample_roots(const CsrGraph& g, int count,
                                std::uint64_t seed) {
  if (count < 0) throw std::invalid_argument("sample_roots: count < 0");
  const vid_t n = g.num_vertices();
  Xoshiro256ss rng(seed);
  std::vector<vid_t> roots;
  roots.reserve(static_cast<std::size_t>(count));
  // Graph 500 draws roots uniformly and rejects degree-0 vertices. Bound
  // the rejection loop so a pathological (all-isolated) graph still
  // terminates with a clear error.
  const std::size_t max_attempts =
      64 * static_cast<std::size_t>(count) + 1024;
  std::size_t attempts = 0;
  while (roots.size() < static_cast<std::size_t>(count)) {
    if (++attempts > max_attempts) {
      throw std::runtime_error(
          "sample_roots: could not find enough non-isolated vertices");
    }
    const auto v =
        static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
    if (g.out_degree(v) > 0) roots.push_back(v);
  }
  return roots;
}

std::vector<vid_t> top_out_degree_vertices(const CsrGraph& g,
                                            std::size_t k) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  const auto hubbier = [&g](vid_t a, vid_t b) {
    const eid_t da = g.out_degree(a);
    const eid_t db = g.out_degree(b);
    return da != db ? da > db : a < b;
  };
  const std::size_t want = std::min(k, static_cast<std::size_t>(n));
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(want),
                    order.end(), hubbier);
  std::vector<vid_t> hubs;
  hubs.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    if (g.out_degree(order[i]) == 0) break;  // only isolated ones left
    hubs.push_back(order[i]);
  }
  return hubs;
}

std::string summarize(const CsrGraph& g) {
  const DegreeStats d = compute_degree_stats(g);
  std::ostringstream os;
  os << "|V|=" << g.num_vertices() << " |E|=" << g.num_edges()
     << " deg[min=" << d.min << " max=" << d.max << " mean=" << d.mean
     << " sd=" << d.stddev << "] isolated=" << d.isolated;
  return os.str();
}

}  // namespace bfsx::graph
