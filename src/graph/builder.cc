#include "graph/builder.h"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "check/contract.h"
#include "check/report.h"

namespace bfsx::graph {
namespace {

/// Below this many edges the parallel machinery (per-thread histograms,
/// chunk prefix sums) costs more than it saves; fall back to one worker.
constexpr std::size_t kParallelEdgeThreshold = std::size_t{1} << 14;

int worker_count(std::size_t edges) {
#ifdef _OPENMP
  if (edges < kParallelEdgeThreshold) return 1;
  // The fan-out below chunks work by thread id and assumes the team
  // really has `workers` threads. Inside an enclosing parallel region
  // a nested team gets 1 thread (nesting is off), so chunks past the
  // first would be silently skipped — run serial there instead.
  if (omp_in_parallel()) return 1;
  return std::max(1, omp_get_max_threads());
#else
  (void)edges;
  return 1;
#endif
}

/// [begin, end) of worker t's contiguous chunk over `total` items. The
/// chunk layout is only a work partition: every result below is placed
/// by global item index, so output never depends on the worker count.
constexpr std::size_t chunk_begin(std::size_t total, int t, int workers) {
  return total * static_cast<std::size_t>(t) / static_cast<std::size_t>(workers);
}

struct CsrArrays {
  EidArray offsets;
  VidArray targets;
};

/// Counting-sort the (src → dst) pairs into CSR arrays, then optionally
/// sort/dedup each adjacency row. Parallel three-phase build: per-thread
/// degree histograms over contiguous edge chunks, one merged prefix sum,
/// then a blocked scatter where worker t starts each row at the count
/// contributed by chunks 0..t-1 — edge i always lands at the position
/// the serial loop would give it, so offsets and targets are
/// bit-identical for every thread count.
CsrArrays pack(vid_t n, const std::vector<Edge>& edges, bool by_src,
               const BuildOptions& opts) {
  const auto nu = static_cast<std::size_t>(n);
  const std::size_t m = edges.size();
  const Edge* e = edges.data();
  const int workers = worker_count(m);

  EidArray offsets(nu + 1, 0);
  // Allocated untouched (DefaultInitAllocator): the blocked scatter
  // below performs the first write to every element, so on multi-node
  // machines each page lands on the NUMA node of the worker that owns
  // that edge chunk (first-touch placement; graph/numa.h).
  VidArray targets(m);
  // hist[t][v]: first the number of key-v edges in chunk t, then (after
  // the merge) the number of key-v edges in chunks before t — worker
  // t's starting cursor within row v.
  std::vector<std::vector<eid_t>> hist(static_cast<std::size_t>(workers));

#ifdef _OPENMP
#pragma omp parallel num_threads(workers)
#endif
  {
#ifdef _OPENMP
    const int t = omp_get_thread_num();
#else
    const int t = 0;
#endif
    auto& mine = hist[static_cast<std::size_t>(t)];
    mine.assign(nu, 0);
    const std::size_t lo = chunk_begin(m, t, workers);
    const std::size_t hi = chunk_begin(m, t + 1, workers);
    for (std::size_t i = lo; i < hi; ++i) {
      const vid_t key = by_src ? e[i].src : e[i].dst;
      ++mine[static_cast<std::size_t>(key)];
    }
  }

#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(workers)
#endif
  for (std::size_t v = 0; v < nu; ++v) {
    eid_t run = 0;
    for (auto& h : hist) {
      const eid_t mine = h[v];
      h[v] = run;
      run += mine;
    }
    offsets[v + 1] = run;
  }
  for (std::size_t v = 1; v <= nu; ++v) offsets[v] += offsets[v - 1];

#ifdef _OPENMP
#pragma omp parallel num_threads(workers)
#endif
  {
#ifdef _OPENMP
    const int t = omp_get_thread_num();
#else
    const int t = 0;
#endif
    auto& cursor = hist[static_cast<std::size_t>(t)];
    const std::size_t lo = chunk_begin(m, t, workers);
    const std::size_t hi = chunk_begin(m, t + 1, workers);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto key = static_cast<std::size_t>(by_src ? e[i].src : e[i].dst);
      const vid_t val = by_src ? e[i].dst : e[i].src;
      targets[static_cast<std::size_t>(offsets[key] + cursor[key]++)] = val;
    }
  }

  if (opts.sort_neighbors || opts.deduplicate) {
    EidArray new_offsets(nu + 1, 0);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 256) num_threads(workers)
#endif
    for (std::size_t v = 0; v < nu; ++v) {
      auto* first = targets.data() + offsets[v];
      auto* last = targets.data() + offsets[v + 1];
      std::sort(first, last);
      auto* end = opts.deduplicate ? std::unique(first, last) : last;
      new_offsets[v + 1] = end - first;
    }
    for (std::size_t v = 1; v <= nu; ++v) new_offsets[v] += new_offsets[v - 1];
    const auto total = static_cast<std::size_t>(new_offsets[nu]);
    if (total != m) {
      // Dedup removed something: compact rows into a fresh array (rows
      // move left by varying amounts, so in-place compaction would
      // serialise; a parallel copy into disjoint destinations does not).
      // First touch happens in the parallel row copy below.
      VidArray packed(total);
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(workers)
#endif
      for (std::size_t v = 0; v < nu; ++v) {
        const auto len =
            static_cast<std::size_t>(new_offsets[v + 1] - new_offsets[v]);
        std::copy_n(targets.data() + offsets[v], len,
                    packed.data() + new_offsets[v]);
      }
      targets = std::move(packed);
    }
    offsets = std::move(new_offsets);
  }
  return {std::move(offsets), std::move(targets)};
}

/// Order-preserving parallel filter dropping (v, v) edges: per-chunk
/// survivor counts, a prefix sum over chunks, then a compacting copy
/// into the exact slots the serial erase_if would produce.
void remove_self_loops_parallel(std::vector<Edge>& edges) {
  const std::size_t m = edges.size();
  const int workers = worker_count(m);
  if (workers == 1) {
    std::erase_if(edges, [](const Edge& ed) { return ed.src == ed.dst; });
    return;
  }
  std::vector<std::size_t> kept(static_cast<std::size_t>(workers) + 1, 0);
  const Edge* e = edges.data();
#ifdef _OPENMP
#pragma omp parallel num_threads(workers)
#endif
  {
#ifdef _OPENMP
    const int t = omp_get_thread_num();
#else
    const int t = 0;
#endif
    const std::size_t lo = chunk_begin(m, t, workers);
    const std::size_t hi = chunk_begin(m, t + 1, workers);
    std::size_t count = 0;
    for (std::size_t i = lo; i < hi; ++i) count += (e[i].src != e[i].dst);
    kept[static_cast<std::size_t>(t) + 1] = count;
  }
  for (int t = 0; t < workers; ++t) {
    kept[static_cast<std::size_t>(t) + 1] += kept[static_cast<std::size_t>(t)];
  }
  std::vector<Edge> out(kept[static_cast<std::size_t>(workers)]);
#ifdef _OPENMP
#pragma omp parallel num_threads(workers)
#endif
  {
#ifdef _OPENMP
    const int t = omp_get_thread_num();
#else
    const int t = 0;
#endif
    const std::size_t lo = chunk_begin(m, t, workers);
    const std::size_t hi = chunk_begin(m, t + 1, workers);
    std::size_t w = kept[static_cast<std::size_t>(t)];
    for (std::size_t i = lo; i < hi; ++i) {
      if (e[i].src != e[i].dst) out[w++] = e[i];
    }
  }
  edges = std::move(out);
}

std::vector<Edge> preprocess(EdgeList&& el, bool symmetrize,
                             const BuildOptions& opts) {
  std::vector<Edge> edges = std::move(el.edges);
  if (opts.remove_self_loops) {
    remove_self_loops_parallel(edges);
  }
  if (symmetrize) {
    const std::size_t orig = edges.size();
    edges.resize(orig * 2);
    Edge* e = edges.data();
    const int workers = worker_count(orig);
    // det: mirror i lands at orig + i for any schedule or worker count.
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(workers)
#endif
    for (std::size_t i = 0; i < orig; ++i) {
      e[orig + i] = {e[i].dst, e[i].src};
    }
  }
  return edges;
}

}  // namespace

void validate_edge_list(const EdgeList& el) {
  if (el.num_vertices < 0) {
    throw std::invalid_argument("EdgeList: negative vertex count");
  }
  const vid_t n = el.num_vertices;
  const Edge* e = el.edges.data();
  const std::size_t m = el.edges.size();
  bool bad = false;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(|| : bad) \
    if (m >= kParallelEdgeThreshold)
#endif
  for (std::size_t i = 0; i < m; ++i) {
    bad = bad || e[i].src < 0 || e[i].src >= n || e[i].dst < 0 || e[i].dst >= n;
  }
  if (!bad) return;
  // Error path: rescan serially and collect up to K numbered offenders
  // so fuzz diagnostics show the corruption pattern (a single bad edge
  // reads very differently from a whole corrupt block). The rescan
  // costs one extra pass but only when the input is already rejected.
  check::CheckReport report;
  for (std::size_t i = 0; i < m && report.wants_more(); ++i) {
    if (e[i].src < 0 || e[i].src >= n || e[i].dst < 0 || e[i].dst >= n) {
      report.failf() << "edge[" << i << "] = (" << e[i].src << ", " << e[i].dst
                     << "): endpoint out of range [0, " << n << ")";
    }
  }
  throw std::out_of_range("EdgeList: edge endpoint out of range; " +
                          report.to_string());
}

CsrGraph build_csr(EdgeList el, const BuildOptions& opts) {
  validate_edge_list(el);
  const vid_t n = el.num_vertices;
  std::vector<Edge> edges = preprocess(std::move(el), opts.symmetrize, opts);
  if (!opts.symmetrize) {
    // Caller explicitly opted out of symmetrisation but requested the
    // shared-adjacency constructor; that is only sound if the input is
    // already symmetric, which we cannot cheaply verify — build both
    // directions instead.
    auto out = pack(n, edges, /*by_src=*/true, opts);
    auto in = pack(n, edges, /*by_src=*/false, opts);
    CsrGraph g(std::move(out.offsets), std::move(out.targets),
               std::move(in.offsets), std::move(in.targets));
    BFSX_PARANOID(g.assert_invariants(opts.sort_neighbors));
    return g;
  }
  auto arrays = pack(n, edges, /*by_src=*/true, opts);
  CsrGraph g(std::move(arrays.offsets), std::move(arrays.targets));
  BFSX_PARANOID(g.assert_invariants(opts.sort_neighbors));
  return g;
}

CsrGraph build_directed_csr(EdgeList el, const BuildOptions& opts) {
  validate_edge_list(el);
  const vid_t n = el.num_vertices;
  std::vector<Edge> edges = preprocess(std::move(el), /*symmetrize=*/false, opts);
  auto out = pack(n, edges, /*by_src=*/true, opts);
  auto in = pack(n, edges, /*by_src=*/false, opts);
  CsrGraph g(std::move(out.offsets), std::move(out.targets),
             std::move(in.offsets), std::move(in.targets));
  BFSX_PARANOID(g.assert_invariants(opts.sort_neighbors));
  return g;
}

}  // namespace bfsx::graph
