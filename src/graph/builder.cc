#include "graph/builder.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace bfsx::graph {
namespace {

void validate_input(const EdgeList& el) {
  if (el.num_vertices < 0) {
    throw std::invalid_argument("EdgeList: negative vertex count");
  }
  for (const Edge& e : el.edges) {
    if (e.src < 0 || e.src >= el.num_vertices || e.dst < 0 ||
        e.dst >= el.num_vertices) {
      throw std::out_of_range("EdgeList: edge endpoint out of range");
    }
  }
}

struct CsrArrays {
  std::vector<eid_t> offsets;
  std::vector<vid_t> targets;
};

/// Counting-sort the (src → dst) pairs into CSR arrays, then optionally
/// sort/dedup each adjacency row.
CsrArrays pack(vid_t n, const std::vector<Edge>& edges, bool by_src,
               const BuildOptions& opts) {
  const auto nu = static_cast<std::size_t>(n);
  std::vector<eid_t> offsets(nu + 1, 0);
  for (const Edge& e : edges) {
    const vid_t key = by_src ? e.src : e.dst;
    ++offsets[static_cast<std::size_t>(key) + 1];
  }
  for (std::size_t i = 1; i <= nu; ++i) offsets[i] += offsets[i - 1];

  std::vector<vid_t> targets(edges.size());
  std::vector<eid_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    const vid_t key = by_src ? e.src : e.dst;
    const vid_t val = by_src ? e.dst : e.src;
    targets[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(key)]++)] = val;
  }

  if (opts.sort_neighbors || opts.deduplicate) {
    std::vector<eid_t> new_offsets(nu + 1, 0);
    eid_t write = 0;
    for (std::size_t v = 0; v < nu; ++v) {
      auto* first = targets.data() + offsets[v];
      auto* last = targets.data() + offsets[v + 1];
      std::sort(first, last);
      auto* end = opts.deduplicate ? std::unique(first, last) : last;
      // Compact in place; `write` never overtakes the read cursor.
      for (auto* p = first; p != end; ++p) {
        targets[static_cast<std::size_t>(write++)] = *p;
      }
      new_offsets[v + 1] = write;
    }
    targets.resize(static_cast<std::size_t>(write));
    offsets = std::move(new_offsets);
  }
  return {std::move(offsets), std::move(targets)};
}

std::vector<Edge> preprocess(EdgeList&& el, bool symmetrize,
                             const BuildOptions& opts) {
  std::vector<Edge> edges = std::move(el.edges);
  if (opts.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }
  if (symmetrize) {
    const std::size_t orig = edges.size();
    edges.reserve(orig * 2);
    for (std::size_t i = 0; i < orig; ++i) {
      edges.push_back({edges[i].dst, edges[i].src});
    }
  }
  return edges;
}

}  // namespace

CsrGraph build_csr(EdgeList el, const BuildOptions& opts) {
  validate_input(el);
  const vid_t n = el.num_vertices;
  std::vector<Edge> edges = preprocess(std::move(el), opts.symmetrize, opts);
  if (!opts.symmetrize) {
    // Caller explicitly opted out of symmetrisation but requested the
    // shared-adjacency constructor; that is only sound if the input is
    // already symmetric, which we cannot cheaply verify — build both
    // directions instead.
    auto out = pack(n, edges, /*by_src=*/true, opts);
    auto in = pack(n, edges, /*by_src=*/false, opts);
    return CsrGraph(std::move(out.offsets), std::move(out.targets),
                    std::move(in.offsets), std::move(in.targets));
  }
  auto arrays = pack(n, edges, /*by_src=*/true, opts);
  return CsrGraph(std::move(arrays.offsets), std::move(arrays.targets));
}

CsrGraph build_directed_csr(EdgeList el, const BuildOptions& opts) {
  validate_input(el);
  const vid_t n = el.num_vertices;
  std::vector<Edge> edges = preprocess(std::move(el), /*symmetrize=*/false, opts);
  auto out = pack(n, edges, /*by_src=*/true, opts);
  auto in = pack(n, edges, /*by_src=*/false, opts);
  return CsrGraph(std::move(out.offsets), std::move(out.targets),
                  std::move(in.offsets), std::move(in.targets));
}

}  // namespace bfsx::graph
