// NUMA-aware first-touch placement helpers.
//
// Linux backs freshly mapped pages on the NUMA node of the thread that
// *first writes* them, so an array serially zero-initialised by the
// allocating thread lands entirely on one node and every remote reader
// pays interconnect latency. The fix is structural: allocate without
// touching (DefaultInitAllocator — default-init is a no-op for trivial
// element types), then let the parallel loop that will later scan the
// data perform the first write with the same static chunking
// (parallel_fill, or the builder's blocked scatter). On a single-node
// machine the layout is identical either way and the helpers degrade to
// plain fills — graceful no-op, no libnuma dependency.
//
// DESIGN.md §12.4 documents the policy; bench_mem measures it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace bfsx::graph::numa {

/// Number of online NUMA nodes (from /sys/devices/system/node); 1 when
/// the sysfs probe fails (non-Linux, containers with masked sysfs).
[[nodiscard]] int num_nodes() noexcept;

/// True on machines where first-touch placement can matter. Purely
/// informational — the helpers are correct (and cheap) either way.
[[nodiscard]] bool multi_node() noexcept;

/// Allocator that default-initialises instead of value-initialising:
/// for trivial element types `vector(n)` / `resize(n)` allocate without
/// writing, so no page is touched until real data lands. Explicit
/// constructor arguments still forward normally.
template <typename T>
struct DefaultInitAllocator : std::allocator<T> {
  using std::allocator<T>::allocator;

  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };

  template <typename U>
  void construct(U* p) noexcept(noexcept(::new (static_cast<void*>(p)) U)) {
    ::new (static_cast<void*>(p)) U;  // default-init: no store for trivial U
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

/// A std::vector whose untouched tail stays unmapped until first write.
/// Element reads before the owner's fill/scatter are indeterminate —
/// only code that provably writes before reading (counting-sort
/// scatters, parallel_fill) should resize one.
template <typename T>
using vector = std::vector<T, DefaultInitAllocator<T>>;

/// Below this many elements a parallel fill costs more than it saves.
inline constexpr std::size_t kParallelFillThreshold = std::size_t{1} << 16;

/// Fills [data, data+n) with `value`, first-touching pages from the
/// worker threads in contiguous static chunks — the same chunk map the
/// traversal kernels' static schedules use, so pages land near their
/// readers. Falls back to a serial fill for small n, without OpenMP, or
/// inside an enclosing parallel region (a nested team has 1 thread and
/// thread-id chunking would skip work; see graph/builder.cc).
template <typename T>
void parallel_fill(T* data, std::size_t n, T value) {
#ifdef _OPENMP
  if (n >= kParallelFillThreshold && !omp_in_parallel()) {
    const int workers = std::max(1, omp_get_max_threads());
#pragma omp parallel num_threads(workers)
    {
      const int t = omp_get_thread_num();
      // det: chunk [lo, hi) is a pure index partition; every element is
      // written exactly once with the same value for any worker count.
      const std::size_t lo =
          n * static_cast<std::size_t>(t) / static_cast<std::size_t>(workers);
      const std::size_t hi = n * (static_cast<std::size_t>(t) + 1) /
                             static_cast<std::size_t>(workers);
      std::fill(data + lo, data + hi, value);
    }
    return;
  }
#endif
  std::fill(data, data + n, value);
}

}  // namespace bfsx::graph::numa
