// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (R-MAT generation, random tuner,
// dataset shuffles) draw from these generators so that every test and
// bench is reproducible bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>

namespace bfsx::graph {

/// SplitMix64: tiny, fast, passes BigCrush. Used both directly and to
/// seed Xoshiro256ss state from a single 64-bit seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna: the workhorse generator.
class Xoshiro256ss {
 public:
  /// Seeds the four state words through SplitMix64 as the authors
  /// recommend, so even seed=0 yields a well-mixed state.
  explicit constexpr Xoshiro256ss(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias
  /// (Lemire's multiply-shift rejection method).
  std::uint64_t next_bounded(std::uint64_t bound) noexcept;

  /// Jump function: advances the state by 2^128 steps. Calling jump() k
  /// times on copies of one generator yields k non-overlapping streams,
  /// used to give each worker thread an independent sequence.
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace bfsx::graph
