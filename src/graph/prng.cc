#include "graph/prng.h"

namespace bfsx::graph {

std::uint64_t Xoshiro256ss::next_bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire 2019: multiply a 64-bit draw by the bound and keep the high
  // word; reject the thin biased strip at the bottom of each bucket.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t x = next();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

void Xoshiro256ss::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t t[4] = {0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      (void)next();
    }
  }
  s_[0] = t[0];
  s_[1] = t[1];
  s_[2] = t[2];
  s_[3] = t[3];
}

}  // namespace bfsx::graph
