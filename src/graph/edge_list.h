// Raw edge list: the interchange format between generators and the CSR
// builder, mirroring the Graph 500 pipeline (kernel 1 input).
#pragma once

#include <utility>
#include <vector>

#include "graph/types.h"

namespace bfsx::graph {

struct Edge {
  vid_t src;
  vid_t dst;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// A bag of directed edges over vertices [0, num_vertices).
struct EdgeList {
  vid_t num_vertices = 0;
  std::vector<Edge> edges;

  [[nodiscard]] eid_t num_edges() const noexcept {
    return static_cast<eid_t>(edges.size());
  }

  void add(vid_t src, vid_t dst) { edges.push_back({src, dst}); }
};

}  // namespace bfsx::graph
