// Delta-CSR: an immutable graph epoch that shares unchanged adjacency
// rows with a frozen base CSR and carries only the patched rows.
//
// The serve layer's epoch publishes (serve/epochs.h) used to pay a full
// O(V+E) edge-list rebuild for every batch of buffered edge writes.
// Under write traffic that rebuild — not traversal — becomes the
// bottleneck: the working set of a publish is the whole graph even when
// the batch touched a dozen rows. A DeltaCsr epoch instead materializes
// the *effective* adjacency row for exactly the vertices a batch
// touched (base row ∪ inserts ∖ removes, sorted and deduplicated, i.e.
// the row the rebuild would have produced) and forwards every other
// row to the shared base, so publish cost is O(rows touched since the
// base was last compacted), not O(V+E).
//
// Removals need no physical tombstones at traversal time: a removed
// edge is simply absent from its patched row. The base CSR retains the
// dead edge's storage until a compaction folds the overlay back into a
// flat CSR (see serve::GraphEpochs' patched-row-fraction policy).
//
// DeltaCsr models the HybridView + EdgeQueryView concept tiers
// (graph/view.h), so every templated kernel — top-down, bottom-up, the
// M/N hybrid drivers, the Graph 500 validator, and the bit-parallel
// MS-BFS — traverses a delta epoch unchanged, and traversals are
// bit-equal to the same kernels over the fully rebuilt CSR
// (test_delta_csr holds it to that). It deliberately does not model
// PrefetchableView: the per-row indirection already costs a branch, and
// delta epochs are short-lived by policy.
//
// Deltas never chain: every DeltaCsr overlays a *flat* base, and
// applying a new batch on top of an existing delta copies the live
// patches forward (cost O(cumulative patched rows), still ≪ O(V+E)).
// Lookup therefore stays one table probe regardless of epoch history.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/builder.h"
#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/types.h"
#include "graph/view.h"

namespace bfsx::graph {

class DeltaCsr {
 public:
  DeltaCsr() = default;

  /// Applies one batch of edge writes on top of `prev` (or directly on
  /// `base` when `prev` is null; `prev`, when given, must overlay this
  /// same `base`). Ops are raw directed edges, expanded exactly the way
  /// build_csr's options would: `opts.symmetrize` mirrors every insert
  /// and remove, `opts.remove_self_loops` drops (v, v) inserts. The
  /// canonical row form is required — throws std::invalid_argument
  /// unless opts.sort_neighbors && opts.deduplicate, or on a negative
  /// endpoint. Inserts may name vertices past the current count (the
  /// vertex set grows); removes of absent edges are no-ops. A row whose
  /// effective adjacency ends up unchanged is not counted as patched.
  [[nodiscard]] static DeltaCsr apply(std::shared_ptr<const CsrGraph> base,
                                      const DeltaCsr* prev,
                                      std::span<const Edge> inserts,
                                      std::span<const Edge> removes,
                                      const BuildOptions& opts = {});

  // ---- GraphView / TransposeView / EdgeCountedView / EdgeQueryView ----

  [[nodiscard]] vid_t num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] eid_t num_edges() const noexcept { return num_edges_; }
  [[nodiscard]] bool is_symmetric() const noexcept { return symmetric_; }

  [[nodiscard]] eid_t out_degree(vid_t v) const noexcept {
    return static_cast<eid_t>(out_row(v).size());
  }
  [[nodiscard]] eid_t in_degree(vid_t v) const noexcept {
    return static_cast<eid_t>(in_row(v).size());
  }

  template <typename Fn>
  void for_each_out_neighbor(vid_t v, Fn&& fn) const {
    for (const vid_t w : out_row(v)) fn(w);
  }

  template <typename Fn>
  void for_each_in_neighbor(vid_t v, Fn&& fn) const {
    for (const vid_t u : in_row(v)) {
      if (!fn(u)) return;
    }
  }

  /// O(log degree(u)) membership probe over the effective adjacency
  /// (patched rows included, removed edges excluded).
  [[nodiscard]] bool has_edge(vid_t u, vid_t v) const noexcept;

  // ---- introspection (compaction policy, tests, benches) ----

  [[nodiscard]] const CsrGraph& base() const noexcept { return *base_; }
  [[nodiscard]] const std::shared_ptr<const CsrGraph>& base_ptr()
      const noexcept {
    return base_;
  }
  /// Out-side rows whose effective adjacency differs from the base
  /// (plus rows for vertices the base does not have).
  [[nodiscard]] vid_t patched_rows() const noexcept {
    return static_cast<vid_t>(out_rows_.size());
  }
  /// patched_rows / num_vertices — the serve layer's compaction signal.
  [[nodiscard]] double patched_fraction() const noexcept {
    return num_vertices_ == 0
               ? 0.0
               : static_cast<double>(out_rows_.size()) /
                     static_cast<double>(num_vertices_);
  }
  [[nodiscard]] bool row_is_patched(vid_t v) const noexcept {
    return v >= 0 && v < num_vertices_ &&
           out_patch_of_[static_cast<std::size_t>(v)] >= 0;
  }

  /// The effective adjacency as a directed edge list — the compaction
  /// input. Feeding it back through build_csr with the options the
  /// epochs were built with yields a flat CSR bit-equal to this
  /// overlay's traversal semantics (symmetrize/dedup are idempotent on
  /// an already-canonical list).
  [[nodiscard]] EdgeList materialize_edges() const;

  /// The effective out-adjacency row of `v`: the patch if `v` was
  /// touched, the base row otherwise (empty for grown vertices never
  /// given edges).
  [[nodiscard]] std::span<const vid_t> out_row(vid_t v) const noexcept {
    const auto i = static_cast<std::size_t>(v);
    if (const std::int32_t p = out_patch_of_[i]; p >= 0) {
      return out_rows_[static_cast<std::size_t>(p)];
    }
    if (v < base_num_vertices_) return base_->out_neighbors(v);
    return {};
  }

  [[nodiscard]] std::span<const vid_t> in_row(vid_t v) const noexcept {
    if (symmetric_) return out_row(v);
    const auto i = static_cast<std::size_t>(v);
    if (const std::int32_t p = in_patch_of_[i]; p >= 0) {
      return in_rows_[static_cast<std::size_t>(p)];
    }
    if (v < base_num_vertices_) return base_->in_neighbors(v);
    return {};
  }

 private:
  std::shared_ptr<const CsrGraph> base_;
  vid_t base_num_vertices_ = 0;
  vid_t num_vertices_ = 0;
  eid_t num_edges_ = 0;
  bool symmetric_ = true;

  /// Per vertex: index into the patch-row arena, or -1 for "read the
  /// base". Sized num_vertices_. The in-side tables stay empty for
  /// symmetric graphs (in_row aliases out_row, like CsrGraph's shared
  /// adjacency).
  std::vector<std::int32_t> out_patch_of_;
  std::vector<std::vector<vid_t>> out_rows_;
  std::vector<std::int32_t> in_patch_of_;
  std::vector<std::vector<vid_t>> in_rows_;
};

static_assert(HybridView<DeltaCsr>);
static_assert(EdgeQueryView<DeltaCsr>);
static_assert(!PrefetchableView<DeltaCsr>);

}  // namespace bfsx::graph
