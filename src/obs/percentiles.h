// Latency-distribution summary: p50/p95/p99 (plus min/mean/max) over a
// sample vector, by the nearest-rank rule on the sorted samples
// (index = ceil(q·N) − 1). Tail percentiles are what a serving system
// promises — a mean hides the one query in a hundred that stalls — so
// bench_serve and bench_msbfs both report through this instead of
// open-coding quantile math with off-by-one ranks.
#pragma once

#include <cstddef>
#include <vector>

namespace bfsx::obs {

struct Percentiles {
  std::size_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Summarises `samples` (taken by value: the computation sorts its
/// copy). An empty input yields a zero-valued summary with count 0.
/// Nearest-rank percentiles are always actual samples, never
/// interpolated values — p99 of 10 samples is the largest one.
[[nodiscard]] Percentiles compute_percentiles(std::vector<double> samples);

}  // namespace bfsx::obs
