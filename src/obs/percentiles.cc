#include "obs/percentiles.h"

#include <algorithm>
#include <cmath>

namespace bfsx::obs {
namespace {

/// Nearest-rank: the smallest sample such that at least q·N samples
/// are <= it. `sorted` must be non-empty and ascending.
double nearest_rank(const std::vector<double>& sorted, double q) {
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const auto index =
      static_cast<std::size_t>(std::max(rank, 1.0)) - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

Percentiles compute_percentiles(std::vector<double> samples) {
  Percentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  p.count = samples.size();
  p.min = samples.front();
  p.max = samples.back();
  double sum = 0.0;
  for (const double s : samples) sum += s;
  p.mean = sum / static_cast<double>(samples.size());
  p.p50 = nearest_rank(samples, 0.50);
  p.p95 = nearest_rank(samples, 0.95);
  p.p99 = nearest_rank(samples, 0.99);
  return p;
}

}  // namespace bfsx::obs
