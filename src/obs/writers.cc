#include "obs/writers.h"

#include <stdexcept>

#include "obs/json.h"

namespace bfsx::obs {
namespace {

std::int64_t i64(graph::vid_t v) { return static_cast<std::int64_t>(v); }
std::int64_t i64(graph::eid_t e) { return static_cast<std::int64_t>(e); }

/// CSV cells never need quoting here: device/engine names come from
/// arch specs, which reject commas; still, quote defensively.
std::string csv_cell(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string quoted = "\"";
  for (const char c : text) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

StreamSink::StreamSink(const std::string& path)
    : file_(path), out_(&file_) {
  if (!file_) {
    throw std::runtime_error("trace sink: cannot open '" + path +
                             "' for writing");
  }
}

StreamSink::StreamSink(std::ostream& out) : out_(&out) {}

void JsonlWriter::on_run_begin(const RunEvent& e) {
  begin_run();
  out() << JsonObject()
               .field("schema", kTraceSchema)
               .field("event", "run_begin")
               .field("run", run_index())
               .field("engine", e.engine)
               .field("root", i64(e.root))
               .field("vertices", i64(e.num_vertices))
               .field("edges", i64(e.num_edges))
               .str()
        << '\n';
}

void JsonlWriter::on_level(const LevelEvent& e) {
  out() << JsonObject()
               .field("schema", kTraceSchema)
               .field("event", to_string(e.kind))
               .field("run", run_index())
               .field("level", e.level)
               .field("direction", graph::to_string(e.direction))
               .field("device", e.device)
               .field("frontier_vertices", i64(e.frontier_vertices))
               .field("frontier_edges", i64(e.frontier_edges))
               .field("bu_edges_hit", i64(e.bu_edges_hit))
               .field("bu_edges_miss", i64(e.bu_edges_miss))
               .field("next_vertices", i64(e.next_vertices))
               .field("compute_seconds", e.compute_seconds)
               .field("comm_seconds", e.comm_seconds)
               .field("balance", e.balance)
               .str()
        << '\n';
}

void JsonlWriter::on_run_end(const RunEvent& e) {
  out() << JsonObject()
               .field("schema", kTraceSchema)
               .field("event", "run_end")
               .field("run", run_index())
               .field("engine", e.engine)
               .field("root", i64(e.root))
               .field("vertices", i64(e.num_vertices))
               .field("edges", i64(e.num_edges))
               .field("seconds", e.seconds)
               .field("compute_seconds", e.compute_seconds)
               .field("comm_seconds", e.comm_seconds)
               .field("depth", e.depth)
               .field("reached", i64(e.reached))
               .field("edges_in_component", i64(e.edges_in_component))
               .field("direction_switches",
                      static_cast<std::int64_t>(e.direction_switches))
               .str()
        << '\n';
  out().flush();
}

void JsonlWriter::on_query(const QueryEvent& e) {
  out() << JsonObject()
               .field("schema", kTraceSchema)
               .field("event", "query")
               .field("stage", to_string(e.stage))
               .field("query_id", e.query_id)
               .field("detail", e.detail)
               .field("epoch", static_cast<std::int64_t>(e.epoch))
               .field("batch_size", static_cast<std::int64_t>(e.batch_size))
               .field("lanes", static_cast<std::int64_t>(e.lanes))
               .field("seconds", e.seconds)
               .str()
        << '\n';
}

CsvWriter::CsvWriter(const std::string& path) : StreamSink(path) {
  write_header();
}

CsvWriter::CsvWriter(std::ostream& out) : StreamSink(out) { write_header(); }

void CsvWriter::write_header() {
  out() << "schema,event,run,engine,root,vertices,edges,level,direction,"
           "device,frontier_vertices,frontier_edges,bu_edges_hit,"
           "bu_edges_miss,next_vertices,compute_seconds,comm_seconds,"
           "balance,seconds,depth,reached,edges_in_component,"
           "direction_switches\n";
}

void CsvWriter::on_run_begin(const RunEvent& e) {
  begin_run();
  out() << kTraceSchema << ",run_begin," << run_index() << ','
        << csv_cell(e.engine) << ',' << i64(e.root) << ','
        << i64(e.num_vertices) << ',' << i64(e.num_edges)
        << ",,,,,,,,,,,,,,,,\n";
}

void CsvWriter::on_level(const LevelEvent& e) {
  out() << kTraceSchema << ',' << to_string(e.kind) << ',' << run_index()
        << ",,,,"  // engine, root, vertices, edges
        << ',' << e.level << ',' << graph::to_string(e.direction) << ','
        << csv_cell(e.device) << ',' << i64(e.frontier_vertices) << ','
        << i64(e.frontier_edges) << ',' << i64(e.bu_edges_hit) << ','
        << i64(e.bu_edges_miss) << ',' << i64(e.next_vertices) << ','
        << json_double(e.compute_seconds) << ','
        << json_double(e.comm_seconds) << ',' << json_double(e.balance)
        << ",,,,,\n";
}

void CsvWriter::on_run_end(const RunEvent& e) {
  out() << kTraceSchema << ",run_end," << run_index() << ','
        << csv_cell(e.engine) << ',' << i64(e.root) << ','
        << i64(e.num_vertices) << ',' << i64(e.num_edges)
        << ",,,,,,,,"  // level..next_vertices
        << ',' << json_double(e.compute_seconds) << ','
        << json_double(e.comm_seconds) << ','
        << ','  // balance
        << json_double(e.seconds) << ',' << e.depth << ',' << i64(e.reached)
        << ',' << i64(e.edges_in_component) << ',' << e.direction_switches
        << '\n';
  out().flush();
}

}  // namespace bfsx::obs
