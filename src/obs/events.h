// Observability event types: the unified per-level / per-run records
// every engine family emits through a TraceSink (obs/sink.h).
//
// The paper's contribution rests on per-level work counters — |V|cq,
// |E|cq, bottom-up hit/miss scans — but before this subsystem those
// numbers escaped the engines only through printf and four
// incompatible result structs (TimedBfs, CombinationRun, LevelTrace,
// the dist per-superstep outcomes). LevelEvent is the superset record
// all of them map onto, so one consumer (a JSONL file, a test, a
// dashboard) can observe any engine. The serialized schema is
// versioned (kTraceSchema); see README "Observability" for the field
// table.
#pragma once

#include <cstdint>
#include <string>

#include "graph/types.h"

namespace bfsx::obs {

/// Version tag stamped on every serialized trace line. Bump when a
/// field changes meaning; add-only changes keep the version.
inline constexpr const char* kTraceSchema = "bfsx.trace.v1";

/// One traversal (one root). Emitted twice per run: on_run_begin with
/// the identity fields filled, on_run_end with the totals added.
struct RunEvent {
  std::string engine;            // registry name, e.g. "hybrid", "dist"
  graph::vid_t root = 0;
  graph::vid_t num_vertices = 0;
  graph::eid_t num_edges = 0;    // directed CSR edge count

  // Totals — populated only for on_run_end.
  double seconds = 0.0;          // modelled or wall, engine-dependent
  double compute_seconds = 0.0;  // seconds minus interconnect share
  double comm_seconds = 0.0;     // transfer / fabric share
  std::int32_t depth = 0;        // levels expanded
  graph::vid_t reached = 0;
  graph::eid_t edges_in_component = 0;
  int direction_switches = 0;
};

/// One expanded level — or, for kHandoff, the cross-architecture
/// frontier shipment between two levels (Algorithm 3 line 11), which
/// has no work counters but does cost wire time.
struct LevelEvent {
  enum class Kind { kLevel, kHandoff };

  Kind kind = Kind::kLevel;
  std::int32_t level = 0;        // the level being expanded
  graph::Direction direction = graph::Direction::kTopDown;
  std::string device;            // executing device (handoff: the target)

  // The M/N policy's decision inputs for this level (|V|cq, |E|cq; the
  // graph totals they are tested against live in the RunEvent).
  graph::vid_t frontier_vertices = 0;  // |V|cq
  graph::eid_t frontier_edges = 0;     // |E|cq
  graph::eid_t bu_edges_hit = 0;       // bottom-up scan, successful part
  graph::eid_t bu_edges_miss = 0;      // bottom-up scan, failed part
  graph::vid_t next_vertices = 0;

  double compute_seconds = 0.0;  // modelled or wall
  double comm_seconds = 0.0;     // handoff transfer / dist fabric time
  /// Distributed only: max/mean of per-device compute (1.0 = even).
  double balance = 1.0;
};

[[nodiscard]] constexpr const char* to_string(LevelEvent::Kind k) noexcept {
  return k == LevelEvent::Kind::kLevel ? "level" : "handoff";
}

/// One query-engine lifecycle stage (src/serve). A query is admitted
/// (kEnqueue) or bounced at the door (kReject); a scheduler tick
/// coalesces admitted queries into one dispatch (kDispatch, the only
/// batch-scoped stage — query_id is -1); each query completes
/// (kComplete) with its submit-to-answer latency. Distance queries
/// additionally report whether the landmark cache short-circuited them
/// (kCacheHit — answered without touching the graph) or passed them
/// through to the queue (kCacheMiss).
struct QueryEvent {
  enum class Stage {
    kEnqueue,
    kReject,
    kDispatch,
    kComplete,
    kCacheHit,
    kCacheMiss,
  };

  Stage stage = Stage::kEnqueue;
  std::int64_t query_id = -1;    // engine-assigned; -1 for kDispatch
  /// Stage-dependent detail: the query kind for enqueue/complete, the
  /// rejection reason for kReject, the dispatch path ("msbfs" or the
  /// single-source engine name) for kDispatch.
  std::string detail;
  std::uint64_t epoch = 0;       // graph epoch the stage observed
  std::int32_t batch_size = 0;   // kDispatch: queries coalesced this tick
  std::int32_t lanes = 0;        // kDispatch: distinct MS-BFS lanes (0 = single)
  double seconds = 0.0;          // kComplete: submit -> answer latency
};

[[nodiscard]] constexpr const char* to_string(QueryEvent::Stage s) noexcept {
  switch (s) {
    case QueryEvent::Stage::kEnqueue: return "enqueue";
    case QueryEvent::Stage::kReject: return "reject";
    case QueryEvent::Stage::kDispatch: return "dispatch";
    case QueryEvent::Stage::kComplete: return "complete";
    case QueryEvent::Stage::kCacheHit: return "cache_hit";
    case QueryEvent::Stage::kCacheMiss: return "cache_miss";
  }
  return "?";
}

}  // namespace bfsx::obs
