// Hardware performance-counter sampling via perf_event_open(2).
//
// The memory-subsystem pass (DESIGN.md §12) claims cache-behaviour
// improvements; this wrapper lets bench_mem and bench_build_pipeline
// *measure* them instead of inferring from wall clock: cycles,
// instructions, cache references/misses, and branch misses around a
// region of interest, read as one counter group so all five share the
// same enabled window.
//
// Containers and locked-down kernels routinely refuse perf_event_open
// (perf_event_paranoid, seccomp, missing PMU). That must never break a
// benchmark run, so failure to open degrades to available() == false
// and all-zero samples with valid == false — callers print "n/a"
// columns and move on. test_perf_counters pins the no-throw contract
// both ways.
#pragma once

#include <cstdint>

namespace bfsx::obs {

/// One measured region. `valid` is false when the counters could not be
/// opened (sample is all zeros) — consumers must gate derived ratios on
/// it rather than dividing zeros.
struct PerfSample {
  bool valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;

  /// Instructions per cycle; 0 when invalid or cycles == 0.
  [[nodiscard]] double ipc() const noexcept {
    return (valid && cycles > 0)
               ? static_cast<double>(instructions) / static_cast<double>(cycles)
               : 0.0;
  }

  /// cache_misses / cache_references; 0 when invalid or no references.
  [[nodiscard]] double cache_miss_rate() const noexcept {
    return (valid && cache_references > 0)
               ? static_cast<double>(cache_misses) /
                     static_cast<double>(cache_references)
               : 0.0;
  }
};

/// A group of hardware counters following the calling thread (and, via
/// inherit, the OpenMP workers it spawns). Construction attempts to
/// open the group; any failure — syscall denied, PMU absent, non-Linux
/// build — leaves the object inert: start()/stop() are harmless no-ops
/// returning invalid samples. Never throws.
class PerfCounters {
 public:
  PerfCounters() noexcept;
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when at least the cycles counter opened.
  [[nodiscard]] bool available() const noexcept { return leader_fd_ >= 0; }

  /// Resets and enables the group. No-op when unavailable.
  void start() noexcept;

  /// Disables the group and reads it. Counter values are scaled by
  /// time_enabled / time_running when the kernel multiplexed the PMU.
  /// Returns an invalid all-zero sample when unavailable.
  [[nodiscard]] PerfSample stop() noexcept;

 private:
  static constexpr int kMaxEvents = 5;
  int leader_fd_ = -1;
  int fds_[kMaxEvents] = {-1, -1, -1, -1, -1};
  std::uint64_t ids_[kMaxEvents] = {0, 0, 0, 0, 0};
  bool opened_[kMaxEvents] = {false, false, false, false, false};
};

}  // namespace bfsx::obs
