#include "obs/perf_counters.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define BFSX_HAVE_PERF_EVENT 1
#endif

#ifdef BFSX_HAVE_PERF_EVENT

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>

namespace bfsx::obs {
namespace {

/// glibc exposes no wrapper for perf_event_open; raw syscall per the
/// man page.
int perf_open(perf_event_attr* attr, int group_fd) noexcept {
  return static_cast<int>(::syscall(SYS_perf_event_open, attr, /*pid=*/0,
                                    /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

/// The five events, leader first. Index order matches the PerfSample
/// fields filled in stop().
constexpr std::uint64_t kEventConfig[] = {
    PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

}  // namespace

PerfCounters::PerfCounters() noexcept {
  for (int i = 0; i < kMaxEvents; ++i) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = kEventConfig[i];
    attr.disabled = (i == 0) ? 1 : 0;  // group toggled through the leader
    attr.exclude_kernel = 1;           // works under perf_event_paranoid=2
    attr.exclude_hv = 1;
    attr.inherit = 1;  // follow the OpenMP workers this thread spawns
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    const int fd = perf_open(&attr, i == 0 ? -1 : leader_fd_);
    if (fd < 0) {
      if (i == 0) return;  // no leader, no group: stay inert
      continue;            // a missing member just reads as zero
    }
    std::uint64_t id = 0;
    if (::ioctl(fd, PERF_EVENT_IOC_ID, &id) < 0) {
      ::close(fd);
      if (i == 0) return;
      continue;
    }
    if (i == 0) leader_fd_ = fd;
    fds_[i] = fd;
    ids_[i] = id;
    opened_[i] = true;
  }
}

PerfCounters::~PerfCounters() {
  for (int i = kMaxEvents - 1; i >= 0; --i) {
    if (fds_[i] >= 0) ::close(fds_[i]);
  }
}

void PerfCounters::start() noexcept {
  if (leader_fd_ < 0) return;
  ::ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample PerfCounters::stop() noexcept {
  PerfSample sample;
  if (leader_fd_ < 0) return sample;
  ::ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);

  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, then
  // (value, id) per member.
  std::uint64_t buf[3 + 2 * kMaxEvents] = {};
  const auto got = ::read(leader_fd_, buf, sizeof(buf));
  if (got < static_cast<long>(3 * sizeof(std::uint64_t))) return sample;

  const std::uint64_t nr = buf[0];
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  std::uint64_t values[kMaxEvents] = {};
  for (std::uint64_t e = 0; e < nr && e < kMaxEvents; ++e) {
    const std::uint64_t value = buf[3 + 2 * e];
    const std::uint64_t id = buf[3 + 2 * e + 1];
    for (int i = 0; i < kMaxEvents; ++i) {
      if (opened_[i] && ids_[i] == id) {
        // Undo kernel multiplexing: extrapolate to the full enabled
        // window (the same scaling `perf stat` applies).
        values[i] = (running > 0 && running != enabled)
                        ? static_cast<std::uint64_t>(
                              static_cast<double>(value) *
                              (static_cast<double>(enabled) /
                               static_cast<double>(running)))
                        : value;
        break;
      }
    }
  }
  sample.valid = true;
  sample.cycles = values[0];
  sample.instructions = values[1];
  sample.cache_references = values[2];
  sample.cache_misses = values[3];
  sample.branch_misses = values[4];
  return sample;
}

}  // namespace bfsx::obs

#else  // !BFSX_HAVE_PERF_EVENT

namespace bfsx::obs {

PerfCounters::PerfCounters() noexcept = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() noexcept {}
PerfSample PerfCounters::stop() noexcept { return {}; }

}  // namespace bfsx::obs

#endif  // BFSX_HAVE_PERF_EVENT
