// Metrics registry: named monotonic counters and accumulating timers,
// with an RAII scope for wall-clock sections. Deliberately small — no
// histograms, no threads of its own — this is the substrate CLI
// `--metrics`, the Graph 500 runner, and future servers report
// through, replacing ad-hoc printf accounting.
//
// Not thread-safe by design: one Registry belongs to one run/driver,
// matching the explicit-options threading of TraceSink (no globals).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace bfsx::obs {

class Registry {
 public:
  struct Timer {
    double seconds = 0.0;
    std::int64_t count = 0;  // completed scopes / record calls
  };

  /// Increments counter `name` by `delta` (creating it at zero).
  void add(std::string_view name, std::int64_t delta = 1) {
    counters_[std::string(name)] += delta;
  }

  /// Folds one measured duration into timer `name`.
  void record_seconds(std::string_view name, double seconds) {
    Timer& t = timers_[std::string(name)];
    t.seconds += seconds;
    ++t.count;
  }

  /// Current counter value; 0 for a name never incremented.
  [[nodiscard]] std::int64_t counter(std::string_view name) const {
    const auto it = counters_.find(std::string(name));
    return it == counters_.end() ? 0 : it->second;
  }

  /// Accumulated timer; zero-valued for a name never recorded.
  [[nodiscard]] Timer timer(std::string_view name) const {
    const auto it = timers_.find(std::string(name));
    return it == timers_.end() ? Timer{} : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::int64_t>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Timer>& timers() const noexcept {
    return timers_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && timers_.empty();
  }

  /// Human-readable table, one "name value" line per entry, timers
  /// with total seconds and scope count.
  [[nodiscard]] std::string format() const;

  /// One flat JSON object: {"counters":{...},"timers":{"x":{...}}}.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Timer> timers_;
};

/// RAII wall-clock scope: records elapsed steady-clock seconds into
/// `registry` under `name` on destruction.
class ScopedTimer {
 public:
  ScopedTimer(Registry& registry, std::string_view name)
      : registry_(registry), name_(name),
        start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_.record_seconds(
        name_, std::chrono::duration<double>(elapsed).count());
  }

 private:
  Registry& registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bfsx::obs
