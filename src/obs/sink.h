// TraceSink: the consumer interface every engine family reports to.
//
// Threading choice (DESIGN.md §7): sinks are passed explicitly as an
// optional, non-owning pointer on each driver's options — never a
// global. The library stays embeddable (two concurrent traversals can
// trace to two files), and a null sink costs one pointer test per
// level, which is not measurable next to a level expansion.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "obs/events.h"

namespace bfsx::obs {

/// Abstract trace consumer. All hooks default to no-ops so concrete
/// sinks override only what they record. Emission order per traversal:
/// on_run_begin, then on_level per expanded level (plus one kHandoff
/// event at a cross-architecture frontier shipment), then on_run_end.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void on_run_begin(const RunEvent&) {}
  virtual void on_level(const LevelEvent&) {}
  virtual void on_run_end(const RunEvent&) {}
  /// Query-engine stages (src/serve). Unlike the run/level hooks these
  /// arrive outside any run bracket; the serving engine serialises its
  /// calls, so sinks still never see concurrent invocations.
  virtual void on_query(const QueryEvent&) {}
};

/// In-memory sink: keeps every event. The test-suite workhorse, also
/// useful for programmatic consumers that post-process a traversal.
class MemorySink final : public TraceSink {
 public:
  void on_run_begin(const RunEvent& e) override { run_begins.push_back(e); }
  void on_level(const LevelEvent& e) override {
    // Runs are sequential, so the current run is the last begun one.
    const std::size_t run = run_begins.empty() ? 0 : run_begins.size() - 1;
    levels.emplace_back(run, e);
  }
  void on_run_end(const RunEvent& e) override { run_ends.push_back(e); }
  void on_query(const QueryEvent& e) override { queries.push_back(e); }

  /// The expanded-level (non-handoff) events of run `i`, in order.
  [[nodiscard]] std::vector<LevelEvent> levels_of_run(std::size_t i) const {
    std::vector<LevelEvent> out;
    for (const auto& [run, e] : levels) {
      if (run == i && e.kind == LevelEvent::Kind::kLevel) out.push_back(e);
    }
    return out;
  }

  std::vector<RunEvent> run_begins;
  /// (run index, event) in emission order; includes handoff events.
  std::vector<std::pair<std::size_t, LevelEvent>> levels;
  std::vector<RunEvent> run_ends;
  /// Query-engine stage events, in emission order.
  std::vector<QueryEvent> queries;
};

}  // namespace bfsx::obs
