// Tiny JSON emission helpers shared by the trace writers, the metrics
// registry, and the bench report helper. Emission only — the repo has
// no JSON dependency, and the trace consumers (tests, CI validation,
// plotting scripts) parse with real JSON libraries on their side.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bfsx::obs {

/// Appends `text` to `out` as a JSON string literal, quotes included.
/// Escapes the characters JSON requires (quote, backslash, control).
void append_json_string(std::string& out, std::string_view text);

/// Shortest round-trippable decimal for a finite double ("%.17g" is
/// exact; shorter forms are tried first). NaN/Inf — which JSON cannot
/// represent — are emitted as null.
[[nodiscard]] std::string json_double(double v);

/// Incremental writer for one flat JSON object: field(...) appends
/// `"key":value` pairs with commas handled, str() closes the brace.
class JsonObject {
 public:
  JsonObject() : text_("{") {}

  JsonObject& field(std::string_view key, std::string_view value) {
    key_prefix(key);
    append_json_string(text_, value);
    return *this;
  }
  JsonObject& field(std::string_view key, double value) {
    key_prefix(key);
    text_ += json_double(value);
    return *this;
  }
  JsonObject& field(std::string_view key, std::int64_t value) {
    key_prefix(key);
    text_ += std::to_string(value);
    return *this;
  }
  JsonObject& field(std::string_view key, std::int32_t value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  /// Appends pre-serialized JSON (an array or nested object) verbatim.
  JsonObject& raw_field(std::string_view key, std::string_view json) {
    key_prefix(key);
    text_ += json;
    return *this;
  }

  [[nodiscard]] std::string str() const { return text_ + "}"; }

 private:
  void key_prefix(std::string_view key) {
    if (text_.size() > 1) text_ += ",";
    append_json_string(text_, key);
    text_ += ":";
  }

  std::string text_;
};

}  // namespace bfsx::obs
