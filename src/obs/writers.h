// File-format trace sinks: JSONL (one JSON object per event line) and
// CSV (one row per event, fixed column set). Both stamp every record
// with the versioned schema tag so downstream tooling can reject
// traces it does not understand.
#pragma once

#include <cstddef>
#include <fstream>
#include <ostream>
#include <string>

#include "obs/sink.h"

namespace bfsx::obs {

/// Base for the two file writers: owns the optional ofstream, tracks
/// the running run index (0-based, incremented per on_run_begin).
class StreamSink : public TraceSink {
 public:
  /// Writes to `path`; throws std::runtime_error if it cannot open.
  explicit StreamSink(const std::string& path);
  /// Writes to a caller-owned stream (tests, stdout piping).
  explicit StreamSink(std::ostream& out);

 protected:
  [[nodiscard]] std::ostream& out() noexcept { return *out_; }
  /// The 0-based index of the run currently being emitted; -1 before
  /// the first on_run_begin.
  [[nodiscard]] std::int64_t run_index() const noexcept { return run_; }
  void begin_run() noexcept { ++run_; }

 private:
  std::ofstream file_;
  std::ostream* out_;
  std::int64_t run_ = -1;
};

/// JSON Lines trace: every line is a self-describing flat object with
/// "schema", "event" (run_begin | level | handoff | run_end | query)
/// and "run" fields, so files from multi-root benchmarks split cleanly.
/// Query-engine stages serialise as event "query" with a "stage" field
/// (enqueue | reject | dispatch | complete | cache_hit | cache_miss).
class JsonlWriter final : public StreamSink {
 public:
  using StreamSink::StreamSink;

  void on_run_begin(const RunEvent& e) override;
  void on_level(const LevelEvent& e) override;
  void on_run_end(const RunEvent& e) override;
  void on_query(const QueryEvent& e) override;
};

/// CSV trace: a header row, then one row per event over the union of
/// fields (run_begin/run_end rows leave level columns empty and vice
/// versa). Spreadsheet-friendly flavour of the same schema. Query
/// events are not part of the fixed column set and are dropped here;
/// serving traces should use the JSONL writer.
class CsvWriter final : public StreamSink {
 public:
  explicit CsvWriter(const std::string& path);
  explicit CsvWriter(std::ostream& out);

  void on_run_begin(const RunEvent& e) override;
  void on_level(const LevelEvent& e) override;
  void on_run_end(const RunEvent& e) override;

 private:
  void write_header();
};

}  // namespace bfsx::obs
