#include "obs/registry.h"

#include <cstdio>

#include "obs/json.h"

namespace bfsx::obs {

std::string Registry::format() const {
  std::string out;
  char line[160];
  for (const auto& [name, value] : counters_) {
    std::snprintf(line, sizeof line, "  %-32s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, t] : timers_) {
    std::snprintf(line, sizeof line, "  %-32s %.6f s over %lld scope(s)\n",
                  name.c_str(), t.seconds, static_cast<long long>(t.count));
    out += line;
  }
  return out;
}

std::string Registry::to_json() const {
  std::string counters = "{";
  for (const auto& [name, value] : counters_) {
    if (counters.size() > 1) counters += ",";
    append_json_string(counters, name);
    counters += ":" + std::to_string(value);
  }
  counters += "}";

  std::string timers = "{";
  for (const auto& [name, t] : timers_) {
    if (timers.size() > 1) timers += ",";
    append_json_string(timers, name);
    timers += ":" + JsonObject()
                        .field("seconds", t.seconds)
                        .field("count", t.count)
                        .str();
  }
  timers += "}";

  return JsonObject()
      .raw_field("counters", counters)
      .raw_field("timers", timers)
      .str();
}

}  // namespace bfsx::obs
