#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace bfsx::obs {

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

}  // namespace bfsx::obs
