// Reproduces paper Fig. 8: for each evaluation graph, pick the
// cross-architecture switching point four ways —
//   Random      (uniform over the 1,000-candidate grid)
//   Average     (mean performance over all 1,000 candidates)
//   Regression  (SVR predictor trained offline, the paper's method)
//   Exhaustive  (oracle: best of the 1,000 candidates)
// — and report speedups over the worst candidate, plus the
// regression-vs-exhaustive ratio the paper quotes as "95%".
#include "bench_common.h"

#include "core/level_trace.h"
#include "graph/prng.h"
#include "core/tuner.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

}  // namespace

// Prices the joint candidate space the paper's 1,000 cases span: a
// cross-architecture plan needs BOTH the handoff pair (M1, N1) and the
// accelerator-internal pair (M2, N2); Fig. 8's catastrophic worst
// points are jointly mistuned plans (bottom-up on the GPU from level 0
// *and* top-down on the GPU through the peak).
struct JointSweep {
  double best = 0, worst = 0, mean = 0;
};

JointSweep joint_sweep(const core::LevelTrace& trace,
                       const sim::ArchSpec& cpu, const sim::ArchSpec& gpu,
                       const sim::InterconnectSpec& link) {
  // 8 x 8 handoff grid x 4 x 4 inner grid = 1,024 joint cases.
  const auto handoff_m = core::SwitchCandidates::log_spaced(1, 300, 8);
  const auto handoff_n = core::SwitchCandidates::log_spaced(1, 300, 8);
  const auto inner_m = core::SwitchCandidates::log_spaced(1, 300, 4);
  const auto inner_n = core::SwitchCandidates::log_spaced(1, 300, 4);
  JointSweep out;
  bool first = true;
  double sum = 0;
  std::size_t count = 0;
  for (double m1 : handoff_m) {
    for (double n1 : handoff_n) {
      for (double m2 : inner_m) {
        for (double n2 : inner_n) {
          const double s = core::replay_cross(trace, cpu, gpu, link,
                                              {m1, n1}, {m2, n2});
          sum += s;
          ++count;
          if (first || s < out.best) out.best = s;
          if (first || s > out.worst) out.worst = s;
          first = false;
        }
      }
    }
  }
  out.mean = sum / static_cast<double>(count);
  return out;
}

int main() {
  print_header("Figure 8",
               "Random vs Average vs Regression vs Exhaustive switching points");
  const int base = pick_scale(16, 20);

  // Offline stage (paper Fig. 6 right): train on graphs surrounding the
  // evaluation sizes, label by exhaustive search.
  std::printf("training SVR predictor (%d.. %d scales, 4 arch pairs)...\n",
              base - 2, base);
  core::TrainerConfig train_cfg = bench_trainer_config(base - 2, base);
  const core::SwitchPredictor predictor =
      core::train_predictor(core::generate_training_data(train_cfg));
  std::printf("trained on %zu samples\n",
              train_cfg.graphs.size() * train_cfg.arch_pairs.size());

  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const sim::InterconnectSpec link;

  std::printf("\nspeedup over the worst of ~1,000 joint (M1,N1,M2,N2) "
              "switching points:\n");
  std::printf("%-22s %8s %8s %10s %10s %14s\n", "graph", "Random", "Average",
              "Regression", "Exhaustive", "regr/exh");
  double regr_share_sum = 0.0;
  double regr_over_random = 0.0;
  int n_graphs = 0;
  std::uint64_t eval_seed = 4242;  // unseen by training
  graph::Xoshiro256ss random_rng(99);
  for (int scale : {base - 1, base}) {
    for (int ef : {12, 24}) {  // edgefactors unseen by training
      graph::RmatParams p;
      p.scale = scale;
      p.edgefactor = ef;
      p.seed = ++eval_seed;
      const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
      const graph::vid_t root = graph::sample_roots(g, 1, eval_seed)[0];
      const core::LevelTrace trace = core::build_level_trace(g, root);

      const JointSweep sweep = joint_sweep(trace, cpu, gpu, link);

      // Random: one log-uniform joint draw, the paper's "picking the
      // switching point randomly".
      auto draw = [&random_rng] {
        return std::exp(random_rng.next_double() * std::log(300.0));
      };
      const double random_s = core::replay_cross(
          trace, cpu, gpu, link, {draw(), draw()}, {draw(), draw()});

      // Regression: both policies predicted (Algorithm 3 lines 1-2).
      const core::GraphFeatures gf = core::features_from_rmat(p);
      const core::HybridPolicy inner = predictor.predict(gf, gpu, gpu);
      const core::HybridPolicy predicted = predictor.predict(gf, cpu, gpu);
      const double regression =
          core::replay_cross(trace, cpu, gpu, link, predicted, inner);

      regr_share_sum += sweep.best / regression;
      regr_over_random += random_s / regression;
      ++n_graphs;
      std::printf("scale%-3d ef%-12d %7.1fx %7.1fx %9.1fx %9.1fx %13.0f%%\n",
                  scale, ef, sweep.worst / random_s, sweep.worst / sweep.mean,
                  sweep.worst / regression, sweep.worst / sweep.best,
                  100.0 * sweep.best / regression);
    }
  }
  std::printf("\n-> regression reaches %.0f%% of the exhaustive best on "
              "average (paper: 95%% with 140 samples)\n",
              100.0 * regr_share_sum / n_graphs);
  std::printf("-> regression is %.1fx faster than a random switching point "
              "on average (paper: 6x)\n",
              regr_over_random / n_graphs);
  std::printf("note: the paper quotes 695x over the *worst* point at SCALE "
              "21-23; the worst/best span grows with graph size (see "
              "EXPERIMENTS.md)\n");
  return 0;
}
