// Serving-mode benchmark: one resident graph, a hot-skewed query
// stream, three dispatch modes —
//   serial         every query its own single-source traversal
//                  (batch_max = 1, cache off);
//   batched        up to 64 compatible queries coalesced per tick into
//                  one bit-parallel MS-BFS pass (cache off);
//   batched_cache  batching plus the landmark distance cache on the
//                  admission path.
// Reported per mode and worker count: throughput (queries/s) and
// submit-to-answer latency percentiles. The batched win is algorithmic
// (shared edge walks), so it shows even on one core; the cache removes
// whole traversals, so it shows as a p50 collapse.
#include "bench_common.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/percentiles.h"
#include "serve/engine.h"
#include "serve/trace.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

struct ModeSpec {
  const char* label;
  int batch_max;
  bool cache;
};

}  // namespace

int main() {
  print_header("serve", "query serving: serial vs batched vs batched+cache");
  const int scale = pick_scale(15, 18);
  const int num_queries = full_mode() ? 4096 : 1024;

  graph::RmatParams params;
  params.scale = scale;
  params.edgefactor = 16;
  params.seed = 2014;
  const graph::EdgeList edges = graph::generate_rmat(params);
  const graph::CsrGraph g = graph::build_csr(edges);

  serve::TraceGenOptions gen;
  gen.num_queries = num_queries;
  gen.hot_fraction = 0.5;
  gen.hot_set = 16;
  const std::vector<serve::TraceOp> ops = serve::generate_query_trace(g, gen);
  std::printf("graph: %s vertices, %lld directed edges; %d queries "
              "(%.0f%% hot-sourced)\n\n",
              scale_label(scale).c_str(),
              static_cast<long long>(g.num_edges()), num_queries,
              gen.hot_fraction * 100.0);

  JsonReport report("serve");
  std::printf("%-14s %8s %10s %8s %10s %10s %10s %10s\n", "mode", "workers",
              "queries/s", "cached", "p50 ms", "p95 ms", "p99 ms",
              "max batch");

  const ModeSpec modes[] = {
      {"serial", 1, false},
      {"batched", 64, false},
      {"batched_cache", 64, true},
  };
  // serial throughput per worker count, for the speedup column.
  double serial_qps[8] = {};

  for (const int workers : {1, 2, 4}) {
    for (const ModeSpec& mode : modes) {
      serve::ServeOptions opts;
      opts.workers = workers;
      opts.batch_max = mode.batch_max;
      opts.cache_enabled = mode.cache;
      opts.num_landmarks = 16;
      opts.queue_capacity = ops.size();
      serve::QueryEngine engine(edges, opts);

      const serve::ReplaySummary sum = serve::replay_trace(engine, ops);
      engine.shutdown();
      const serve::ServeStats st = engine.stats();
      const obs::Percentiles lat = obs::compute_percentiles(sum.latencies);
      const double qps =
          sum.wall_seconds > 0.0
              ? static_cast<double>(sum.served) / sum.wall_seconds
              : 0.0;
      if (mode.batch_max == 1) serial_qps[workers] = qps;
      const double speedup = serial_qps[workers] > 0.0
                                 ? qps / serial_qps[workers]
                                 : 0.0;

      std::printf("%-14s %8d %10.0f %8lld %10.3f %10.3f %10.3f %10lld"
                  "   (%.2fx serial)\n",
                  mode.label, workers, qps,
                  static_cast<long long>(sum.cache_hits), lat.p50 * 1e3,
                  lat.p95 * 1e3, lat.p99 * 1e3,
                  static_cast<long long>(st.max_batch), speedup);

      report.row();
      report.cell("mode", mode.label);
      report.cell("workers", workers);
      report.cell("queries_per_second", qps);
      report.cell("speedup_vs_serial", speedup);
      report.cell("served", sum.served);
      report.cell("rejected", sum.rejected);
      report.cell("cache_hits", sum.cache_hits);
      report.cell("p50_seconds", lat.p50);
      report.cell("p95_seconds", lat.p95);
      report.cell("p99_seconds", lat.p99);
      report.cell("max_seconds", lat.max);
      report.cell("max_batch", st.max_batch);
      report.cell("dispatches", st.dispatches);
    }
    std::printf("\n");
  }

  std::printf("-> expectation: batched > serial queries/s at every worker "
              "count (shared edge walks),\n"
              "   and batched_cache cuts p50 vs batched (hot distance "
              "queries answered at admission)\n");
  report.write();
  return 0;
}
