// Serving-mode benchmark: one resident graph, a hot-skewed query
// stream, three dispatch modes —
//   serial         every query its own single-source traversal
//                  (batch_max = 1, cache off);
//   batched        up to 64 compatible queries coalesced per tick into
//                  one bit-parallel MS-BFS pass (cache off);
//   batched_cache  batching plus the landmark distance cache on the
//                  admission path.
// Reported per mode and worker count: throughput (queries/s) and
// submit-to-answer latency percentiles. The batched win is algorithmic
// (shared edge walks), so it shows even on one core; the cache removes
// whole traversals, so it shows as a p50 collapse.
//
// A second, lockstep sweep measures the write path under churn: the
// same insert/remove/publish trace replayed against full-rebuild
// publishes, delta publishes, and delta publishes with landmark
// repair. It emits the publish-cost curve into BENCH_serve.json and
// cross-checks that every recorded answer is identical across the
// three configurations — delta epochs and repaired caches must be
// indistinguishable from full rebuilds except in cost.
//
// Gate (report-only unless BFSX_ENFORCE_GATE=1): at <= 0.1% per-batch
// edge churn, the delta graph publish must be >= 5x cheaper than the
// full rebuild, and the answer streams must match exactly.
//
// Flags: --insert-every K, --remove-every K, --publish-every K
// override the churn trace cadence (0 disables the op).
#include "bench_common.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/percentiles.h"
#include "obs/registry.h"
#include "serve/engine.h"
#include "serve/trace.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

struct ModeSpec {
  const char* label;
  int batch_max;
  bool cache;
};

struct ChurnSpec {
  const char* label;
  bool delta;
  bool repair;
};

bool enforce_gate() {
  const char* v = std::getenv("BFSX_ENFORCE_GATE");
  return v != nullptr && v[0] == '1';
}

std::int64_t flag_or(int argc, char** argv, const char* name,
                     std::int64_t dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return dflt;
}

bool answers_match(const std::vector<serve::ReplayAnswer>& a,
                   const std::vector<serve::ReplayAnswer>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].ok != b[i].ok || a[i].kind != b[i].kind ||
        a[i].distance != b[i].distance || a[i].reachable != b[i].reachable ||
        a[i].epoch != b[i].epoch || a[i].bfs_checksum != b[i].bfs_checksum) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  print_header("serve", "query serving: serial vs batched vs batched+cache");
  const int scale = pick_scale(15, 18);
  const int num_queries = full_mode() ? 4096 : 1024;

  graph::RmatParams params;
  params.scale = scale;
  params.edgefactor = 16;
  params.seed = 2014;
  const graph::EdgeList edges = graph::generate_rmat(params);
  const graph::CsrGraph g = graph::build_csr(edges);

  serve::TraceGenOptions gen;
  gen.num_queries = num_queries;
  gen.hot_fraction = 0.5;
  gen.hot_set = 16;
  const std::vector<serve::TraceOp> ops = serve::generate_query_trace(g, gen);
  std::printf("graph: %s vertices, %lld directed edges; %d queries "
              "(%.0f%% hot-sourced)\n\n",
              scale_label(scale).c_str(),
              static_cast<long long>(g.num_edges()), num_queries,
              gen.hot_fraction * 100.0);

  JsonReport report("serve");
  std::printf("%-14s %8s %10s %8s %10s %10s %10s %10s\n", "mode", "workers",
              "queries/s", "cached", "p50 ms", "p95 ms", "p99 ms",
              "max batch");

  const ModeSpec modes[] = {
      {"serial", 1, false},
      {"batched", 64, false},
      {"batched_cache", 64, true},
  };
  // serial throughput per worker count, for the speedup column.
  double serial_qps[8] = {};

  for (const int workers : {1, 2, 4}) {
    for (const ModeSpec& mode : modes) {
      serve::ServeOptions opts;
      opts.workers = workers;
      opts.batch_max = mode.batch_max;
      opts.cache_enabled = mode.cache;
      opts.num_landmarks = 16;
      opts.queue_capacity = ops.size();
      serve::QueryEngine engine(edges, opts);

      const serve::ReplaySummary sum = serve::replay_trace(engine, ops);
      engine.shutdown();
      const serve::ServeStats st = engine.stats();
      const obs::Percentiles lat = obs::compute_percentiles(sum.latencies);
      const double qps =
          sum.wall_seconds > 0.0
              ? static_cast<double>(sum.served) / sum.wall_seconds
              : 0.0;
      if (mode.batch_max == 1) serial_qps[workers] = qps;
      const double speedup = serial_qps[workers] > 0.0
                                 ? qps / serial_qps[workers]
                                 : 0.0;

      std::printf("%-14s %8d %10.0f %8lld %10.3f %10.3f %10.3f %10lld"
                  "   (%.2fx serial)\n",
                  mode.label, workers, qps,
                  static_cast<long long>(sum.cache_hits), lat.p50 * 1e3,
                  lat.p95 * 1e3, lat.p99 * 1e3,
                  static_cast<long long>(st.max_batch), speedup);

      report.row();
      report.cell("mode", mode.label);
      report.cell("workers", workers);
      report.cell("queries_per_second", qps);
      report.cell("speedup_vs_serial", speedup);
      report.cell("served", sum.served);
      report.cell("rejected", sum.rejected);
      report.cell("cache_hits", sum.cache_hits);
      report.cell("p50_seconds", lat.p50);
      report.cell("p95_seconds", lat.p95);
      report.cell("p99_seconds", lat.p99);
      report.cell("max_seconds", lat.max);
      report.cell("max_batch", st.max_batch);
      report.cell("dispatches", st.dispatches);
    }
    std::printf("\n");
  }

  std::printf("-> expectation: batched > serial queries/s at every worker "
              "count (shared edge walks),\n"
              "   and batched_cache cuts p50 vs batched (hot distance "
              "queries answered at admission)\n\n");

  // ---- churn sweep: publish-cost curve under a write workload ----
  serve::TraceGenOptions cgen;
  cgen.num_queries = full_mode() ? 256 : 96;
  cgen.bfs_fraction = 0.05;
  cgen.hot_fraction = 0.9;  // mostly cache-answerable: the sweep times
  cgen.hot_set = 16;        // the write path, not query throughput
  cgen.insert_every = flag_or(argc, argv, "--insert-every", 2);
  cgen.remove_every = flag_or(argc, argv, "--remove-every", 0);
  cgen.publish_every =
      flag_or(argc, argv, "--publish-every", cgen.num_queries / 8);
  cgen.seed = 777;
  const std::vector<serve::TraceOp> churn_ops =
      serve::generate_query_trace(g, cgen);

  std::int64_t trace_inserts = 0;
  std::int64_t trace_removes = 0;
  std::int64_t trace_publishes = 0;
  for (const serve::TraceOp& op : churn_ops) {
    trace_inserts += op.kind == serve::TraceOp::Kind::kInsert;
    trace_removes += op.kind == serve::TraceOp::Kind::kRemove;
    trace_publishes += op.kind == serve::TraceOp::Kind::kPublish;
  }
  const double churn_per_publish =
      trace_publishes > 0
          ? static_cast<double>(trace_inserts + trace_removes) /
                static_cast<double>(trace_publishes) /
                static_cast<double>(g.num_edges())
          : 0.0;
  std::printf("churn sweep (lockstep): %lld inserts, %lld removes over "
              "%lld publishes (%.5f%% edge churn per publish)\n",
              static_cast<long long>(trace_inserts),
              static_cast<long long>(trace_removes),
              static_cast<long long>(trace_publishes),
              churn_per_publish * 100.0);
  std::printf("%-14s %10s %12s %12s %10s %10s %10s\n", "publish", "publishes",
              "graph ms/pub", "write ms/pub", "repairs", "rebuilds",
              "relaxed");

  const ChurnSpec churn_modes[] = {
      {"full_rebuild", false, false},
      {"delta", true, false},
      {"delta_repair", true, true},
  };
  double graph_ms[3] = {};
  std::vector<serve::ReplayAnswer> baseline_answers;
  bool all_match = true;

  for (std::size_t ci = 0; ci < 3; ++ci) {
    const ChurnSpec& spec = churn_modes[ci];
    serve::ServeOptions opts;
    opts.workers = 2;
    opts.batch_max = 64;
    opts.cache_enabled = true;
    opts.num_landmarks = 16;
    opts.queue_capacity = churn_ops.size();
    opts.delta_publish = spec.delta;
    opts.repair_cache = spec.repair;
    serve::QueryEngine engine(edges, opts);

    const serve::ReplaySummary sum =
        serve::replay_trace_lockstep(engine, churn_ops);
    obs::Registry metrics;
    engine.export_metrics(metrics);
    engine.shutdown();
    const serve::ServeStats st = engine.stats();
    const serve::RepairStats rep = engine.last_repair();

    const auto per_pub = [&](double total) {
      return sum.publishes > 0 ? total / static_cast<double>(sum.publishes)
                               : 0.0;
    };
    const double graph_pub_ms =
        per_pub(metrics.timer("serve.publish").seconds) * 1e3;
    const double write_pub_ms = per_pub(sum.publish_wall_seconds) * 1e3;
    graph_ms[ci] = graph_pub_ms;

    if (ci == 0) {
      baseline_answers = sum.answers;
    } else if (!answers_match(baseline_answers, sum.answers)) {
      all_match = false;
      std::printf("!! %s: answers DIVERGE from full_rebuild\n", spec.label);
    }

    std::printf("%-14s %10lld %12.3f %12.3f %10lld %10lld %10zu\n",
                spec.label, static_cast<long long>(sum.publishes),
                graph_pub_ms, write_pub_ms,
                static_cast<long long>(st.cache_repairs),
                static_cast<long long>(st.cache_rebuilds), rep.relaxed);

    report.row();
    report.cell("mode", std::string("churn:") + spec.label);
    report.cell("publishes", sum.publishes);
    report.cell("delta_publishes", st.delta_publishes);
    report.cell("full_publishes", st.full_publishes);
    report.cell("graph_publish_ms", graph_pub_ms);
    report.cell("write_path_ms", write_pub_ms);
    report.cell("cache_repairs", st.cache_repairs);
    report.cell("cache_rebuilds", st.cache_rebuilds);
    report.cell("repair_relaxed", static_cast<std::int64_t>(rep.relaxed));
    report.cell("inserts", trace_inserts);
    report.cell("removes", trace_removes);
    report.cell("churn_per_publish", churn_per_publish);
    report.cell("served", sum.served);
    report.cell("cache_hits", sum.cache_hits);
  }

  // Gate: at <= 0.1% churn the delta publish must be >= 5x cheaper
  // than the full rebuild, with identical answers. Higher churn rates
  // report the speedup but only enforce equality.
  const double speedup = graph_ms[1] > 0.0 ? graph_ms[0] / graph_ms[1] : 0.0;
  const bool low_churn = churn_per_publish <= 0.001;
  const bool speedup_ok = !low_churn || speedup >= 5.0;
  std::printf("\n-> delta publish speedup vs full rebuild: %.1fx "
              "(gate: >= 5x at <= 0.1%% churn)%s\n",
              speedup, speedup_ok ? "" : "  ** GATE FAILED **");
  std::printf("-> answers identical across configurations: %s\n",
              all_match ? "yes" : "NO  ** GATE FAILED **");
  report.row();
  report.cell("mode", "churn:gate");
  report.cell("publish_speedup", speedup);
  report.cell("low_churn", low_churn ? 1 : 0);
  report.cell("answers_match", all_match ? 1 : 0);
  report.cell("gate_ok", (speedup_ok && all_match) ? 1 : 0);

  report.write();
  if (enforce_gate() && (!speedup_ok || !all_match)) return 1;
  return 0;
}
