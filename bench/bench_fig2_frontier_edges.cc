// Reproduces paper Fig. 2: the number of edges in the current queue
// (|E|cq) per BFS level, same rise-peak-fall shape as Fig. 1.
#include "bench_common.h"

#include "bfs/drivers.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

void run_series(int scale) {
  const BuiltGraph bg = make_graph(scale, 16);
  bfs::TraversalLog log;
  (void)bfs::run_top_down(bg.csr, bg.root, &log);
  std::printf("SCALE=%d:", scale);
  for (const bfs::LevelRecord& lvl : log.levels) {
    std::printf(" L%d=%lld", lvl.level,
                static_cast<long long>(lvl.frontier_edges));
  }
  std::printf("\n");

  graph::eid_t peak = 0;
  std::size_t peak_at = 0;
  for (std::size_t i = 0; i < log.levels.size(); ++i) {
    if (log.levels[i].frontier_edges > peak) {
      peak = log.levels[i].frontier_edges;
      peak_at = i;
    }
  }
  const double peak_share =
      static_cast<double>(peak) / static_cast<double>(bg.csr.num_edges());
  std::printf("  -> peak |E|cq = %lld at level %zu (%.0f%% of |E|, interior: %s)\n",
              static_cast<long long>(peak), peak_at, 100.0 * peak_share,
              (peak_at > 0 && peak_at + 1 < log.levels.size()) ? "yes" : "NO");
}

}  // namespace

int main() {
  print_header("Figure 2", "|E|cq per level is small, peaks mid-traversal, then shrinks");
  const int base = pick_scale(16, 21);
  for (int scale : {base - 2, base - 1, base}) run_series(scale);
  return 0;
}
