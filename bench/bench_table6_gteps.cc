// Reproduces paper Table VI: average combination performance (GTEPS)
// for three data sizes on CPU, GPU and MIC, through the Graph 500
// multi-root protocol. Paper row (GTEPS):
//   2M: 3.06/6.32/1.64   4M: 6.14/6.23/1.55   8M: 5.66/5.00/1.33
#include "bench_common.h"

#include "core/level_trace.h"
#include "core/tuner.h"
#include "graph500/runner.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

/// Tuned-combination engine on one device for the Graph 500 runner.
graph500::BfsEngine make_tuned_engine(const sim::Device& dev,
                                      const core::HybridPolicy& policy) {
  return [&dev, policy](const graph::CsrGraph& g,
                        graph::vid_t root) -> graph500::TimedBfs {
    core::CombinationRun run = core::run_combination(g, root, dev, policy);
    return {std::move(run.result), run.seconds};
  };
}

}  // namespace

int main() {
  print_header("Table VI", "average GTEPS per data size per architecture");
  const int base = pick_scale(17, 21);
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const sim::Device gpu{sim::make_kepler_gpu()};
  const sim::Device mic{sim::make_knights_corner_mic()};
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();

  graph500::RunnerOptions opts;
  opts.num_roots = full_mode() ? 16 : 8;

  std::printf("%-14s %12s %12s %12s   (harmonic-mean GTEPS over %d roots)\n",
              "graph", "CPU", "GPU", "MIC", opts.num_roots);
  for (int scale : {base, base + 1, base + 2}) {
    const BuiltGraph bg = make_graph(scale, 16);
    const core::LevelTrace tr = core::build_level_trace(bg.csr, bg.root);
    std::printf("%s vertices ", scale_label(scale).c_str());
    for (const sim::Device* dev : {&cpu, &gpu, &mic}) {
      const core::HybridPolicy policy =
          core::pick_best(core::sweep_single(tr, dev->spec(), cands), cands)
              .policy;
      const graph500::BenchmarkResult res =
          graph500::run_benchmark(bg.csr, make_tuned_engine(*dev, policy),
                                  opts);
      std::printf(" %12.3f", res.stats.harmonic_mean / 1e9);
    }
    std::printf("\n");
  }
  std::printf("-> paper (SCALE 21-23): CPU and GPU within ~2x of each other, "
              "MIC ~3-4x behind both\n");
  return 0;
}
