// Root-batching throughput: the Graph 500 protocol run serially, with
// roots spread across OpenMP workers (reusable states from a
// StatePool), and with the bit-parallel MS-BFS kernel (64 roots per
// edge-set walk). Reports aggregate TEPS — total component edges of
// all roots divided by protocol wall time — plus a degree-reorder A/B
// on the same roots.
#include "bench_common.h"

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bfs/state_pool.h"
#include "graph/reorder.h"
#include "graph500/native_engine.h"
#include "graph500/runner.h"
#include "obs/percentiles.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

struct Measured {
  double seconds = 0.0;
  double aggregate_teps = 0.0;
  std::size_t states_created = 0;
  /// Per-root traversal seconds (engine-attributed, not protocol wall).
  obs::Percentiles per_root;
};

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

graph::eid_t total_edges(const graph500::BenchmarkResult& r) {
  graph::eid_t sum = 0;
  for (const graph500::RootRun& run : r.runs) sum += run.edges;
  return sum;
}

constexpr int kRepeats = 2;  // best-of to damp scheduler noise

/// One protocol pass over `roots` in the given dispatch mode.
Measured run_mode(const graph::CsrGraph& g,
                  const std::vector<graph::vid_t>& roots,
                  graph500::BatchMode mode) {
  graph500::RunnerOptions opts;
  opts.roots = roots;
  opts.validate = false;  // measure traversal, not the validator
  opts.batch_mode = mode;

  bfs::StatePool pool;
  const core::HybridPolicy policy{};
  const auto t0 = std::chrono::steady_clock::now();
  graph500::BenchmarkResult result =
      mode == graph500::BatchMode::kMsBfs
          ? graph500::run_benchmark(
                g, graph500::make_msbfs_batch_engine(policy), opts)
          : graph500::run_benchmark(
                g, graph500::make_native_hybrid_engine(policy, nullptr, &pool),
                opts);
  Measured m;
  m.seconds = wall_seconds(t0);
  m.aggregate_teps =
      m.seconds > 0.0 ? static_cast<double>(total_edges(result)) / m.seconds
                      : 0.0;
  m.states_created = pool.created();
  std::vector<double> per_root;
  per_root.reserve(result.runs.size());
  for (const graph500::RootRun& run : result.runs) {
    per_root.push_back(run.seconds);
  }
  m.per_root = obs::compute_percentiles(std::move(per_root));
  return m;
}

void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

}  // namespace

int main() {
  print_header("batching", "serial vs parallel-roots vs bit-parallel MS-BFS");
  const int scale = pick_scale(18, 19);
  const int num_roots = 64;
  const BuiltGraph bg = make_graph(scale, 16);
  const std::vector<graph::vid_t> roots =
      graph::sample_roots(bg.csr, num_roots, 500);
  std::printf("graph: %s vertices, %lld directed edges, %d roots\n\n",
              scale_label(scale).c_str(),
              static_cast<long long>(bg.csr.num_edges()), num_roots);

  JsonReport report("msbfs");
  std::printf("%-16s %8s %12s %14s %10s %7s %10s %10s\n", "mode", "threads",
              "seconds", "agg MTEPS", "speedup", "states", "p50 ms",
              "p99 ms");

  for (const int threads : {1, 2, 4}) {
    set_threads(threads);
    double serial_teps = 0.0;
    for (const graph500::BatchMode mode :
         {graph500::BatchMode::kSerial, graph500::BatchMode::kParallelRoots,
          graph500::BatchMode::kMsBfs}) {
      const Measured m = bench::best_of(
          kRepeats, [&] { return run_mode(bg.csr, roots, mode); },
          [](const Measured& x) { return x.aggregate_teps; });
      if (mode == graph500::BatchMode::kSerial) serial_teps = m.aggregate_teps;
      const double speedup =
          serial_teps > 0.0 ? m.aggregate_teps / serial_teps : 0.0;
      std::printf("%-16s %8d %12.3f %14.1f %9.2fx %7zu %10.3f %10.3f\n",
                  graph500::to_string(mode), threads, m.seconds,
                  m.aggregate_teps / 1e6, speedup, m.states_created,
                  m.per_root.p50 * 1e3, m.per_root.p99 * 1e3);
      report.row();
      report.cell("mode", graph500::to_string(mode));
      report.cell("threads", threads);
      report.cell("seconds", m.seconds);
      report.cell("aggregate_teps", m.aggregate_teps);
      report.cell("speedup_vs_serial", speedup);
      report.cell("states_created",
                  static_cast<std::int64_t>(m.states_created));
      report.cell("per_root_p50_seconds", m.per_root.p50);
      report.cell("per_root_p95_seconds", m.per_root.p95);
      report.cell("per_root_p99_seconds", m.per_root.p99);
    }
  }

  // Degree-reorder A/B: the same logical roots traversed on the
  // original and the degree-sorted graph (hub-first ids improve
  // frontier locality), serial dispatch at the widest thread count.
  {
    const graph::Permutation perm = graph::degree_order(bg.csr);
    const graph::EdgeList el = graph::generate_rmat(bg.params);
    const graph::CsrGraph reordered =
        graph::build_csr(graph::apply_permutation(el, perm));
    std::vector<graph::vid_t> mapped;
    mapped.reserve(roots.size());
    for (const graph::vid_t r : roots) {
      mapped.push_back(perm[static_cast<std::size_t>(r)]);
    }
    const auto by_teps = [](const Measured& x) { return x.aggregate_teps; };
    const Measured base = bench::best_of(
        kRepeats,
        [&] { return run_mode(bg.csr, roots, graph500::BatchMode::kSerial); },
        by_teps);
    const Measured deg = bench::best_of(
        kRepeats,
        [&] {
          return run_mode(reordered, mapped, graph500::BatchMode::kSerial);
        },
        by_teps);
    std::printf("\nreorder A/B (serial dispatch, same logical roots):\n");
    std::printf("%-16s %12.3f s %14.1f MTEPS\n", "original", base.seconds,
                base.aggregate_teps / 1e6);
    std::printf("%-16s %12.3f s %14.1f MTEPS (%0.2fx)\n", "degree-reordered",
                deg.seconds, deg.aggregate_teps / 1e6,
                base.aggregate_teps > 0.0
                    ? deg.aggregate_teps / base.aggregate_teps
                    : 0.0);
    for (const auto& [label, m] :
         {std::pair<const char*, const Measured&>{"reorder_none", base},
          std::pair<const char*, const Measured&>{"reorder_degree", deg}}) {
      report.row();
      report.cell("mode", label);
      report.cell("threads", 4);
      report.cell("seconds", m.seconds);
      report.cell("aggregate_teps", m.aggregate_teps);
    }
  }

  std::printf("-> expectation: parallel_roots >=2x and msbfs >=4x serial "
              "aggregate TEPS at 4 threads\n");
  report.write();
  return 0;
}
