// Reproduces paper Table III: the best switching point M for different
// (SCALE, edgefactor) graphs on the CPU, searched over [1, 300].
// The paper's point: best M varies a lot across graphs (54..275), which
// is why a fixed hand-tuned M cannot work.
#include "bench_common.h"

#include "core/tuner.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

}  // namespace

int main() {
  print_header("Table III", "best M per graph on CPUs (search range [1, 300])");
  const int base = pick_scale(15, 21);
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  // Dense M grid, N grid matching the paper's protocol (M is reported;
  // N is co-tuned).
  core::SwitchCandidates cands;
  cands.m_values = core::SwitchCandidates::log_spaced(1.0, 300.0, 60);
  cands.n_values = core::SwitchCandidates::log_spaced(1.0, 300.0, 12);

  // Many (M, N) candidates induce the *same* per-level plan (the rule
  // only changes behaviour when a threshold crosses an actual frontier
  // size), so the optimum is a whole REGION of M values. The paper's
  // single "best M" per graph is one measurement-noise-broken sample
  // from that region; we report the region itself, whose location and
  // width shift per graph — the same no-single-M-fits-all conclusion.
  std::printf("%-8s %-12s %-16s %-14s %-14s\n", "SCALE", "edgefactor",
              "best-M region", "best(ms)", "worst(ms)");
  bool regions_differ = false;
  double prev_lo = -1;
  for (int scale : {base, base + 1, base + 2}) {
    for (int ef : {8, 16, 32}) {
      const BuiltGraph bg = make_graph(scale, ef);
      const core::LevelTrace trace =
          core::build_level_trace(bg.csr, bg.root);
      const core::CandidateSweep sweep =
          core::sweep_single(trace, cpu, cands);
      const core::TunedPolicy best = core::pick_best(sweep, cands);
      double lo_m = 1e18;
      double hi_m = 0;
      for (std::size_t i = 0; i < cands.size(); ++i) {
        if (sweep.seconds[i] <= best.seconds * (1.0 + 1e-9)) {
          const core::HybridPolicy p = cands.at(i);
          lo_m = std::min(lo_m, p.m);
          hi_m = std::max(hi_m, p.m);
        }
      }
      if (prev_lo >= 0 && std::abs(lo_m - prev_lo) > 1e-9) {
        regions_differ = true;
      }
      prev_lo = lo_m;
      std::printf("%-8d %-12d [%5.1f, %6.1f] %-14.4f %-14.4f\n", scale, ef,
                  lo_m, hi_m, best.seconds * 1e3,
                  sweep.worst_seconds() * 1e3);
    }
  }
  std::printf("-> optimal-M regions move across graphs (%s); the paper's "
              "single-sample best M ranged 54..275 — either way, no "
              "hand-picked constant fits all graphs\n",
              regions_differ ? "confirmed" : "NOT CONFIRMED");
  return 0;
}
