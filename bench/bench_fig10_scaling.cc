// Reproduces paper Fig. 10: (a) strong scaling — performance of the
// combination on CPU and MIC as the core count grows on a fixed graph;
// (b) weak scaling — each core keeps a fixed share of vertices/edges as
// cores grow.
// Beyond the paper: (c) multi-device strong scaling — the same graph
// partitioned over a growing simulated cluster (src/dist), modelled
// GTEPS per device count for homogeneous and heterogeneous clusters
// and both partition strategies.
#include "bench_common.h"

#include "core/level_trace.h"
#include "core/tuner.h"
#include "dist/dist_bfs.h"
#include "sim/cluster.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

double tuned_seconds(const core::LevelTrace& tr, const sim::ArchSpec& arch) {
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();
  return core::pick_best(core::sweep_single(tr, arch, cands), cands).seconds;
}

void strong_scaling(int scale, JsonReport& report) {
  std::printf("\n(a) strong scaling: SCALE=%d (paper: SCALE 22, 4M vertices), "
              "GTEPS per core count\n", scale);
  const BuiltGraph bg = make_graph(scale, 16);
  const core::LevelTrace tr = core::build_level_trace(bg.csr, bg.root);
  const double edges = static_cast<double>(tr.num_edges) / 2.0;

  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  std::printf("%-8s", "CPU:");
  double cpu1 = 0;
  for (int p : {1, 2, 4, 8}) {
    const double t = tuned_seconds(tr, cpu.with_cores(p));
    if (p == 1) cpu1 = t;
    std::printf("  %d-core %.3f GTEPS (%.1fx)", p, edges / t / 1e9, cpu1 / t);
    report.row();
    report.cell("panel", "strong");
    report.cell("arch", "cpu");
    report.cell("cores", p);
    report.cell("scale", scale);
    report.cell("gteps", edges / t / 1e9);
    report.cell("speedup", cpu1 / t);
  }
  std::printf("\n");

  const sim::ArchSpec mic = sim::make_knights_corner_mic();
  std::printf("%-8s", "MIC:");
  double mic1 = 0;
  for (int p : {1, 8, 16, 30, 61}) {
    const double t = tuned_seconds(tr, mic.with_cores(p));
    if (p == 1) mic1 = t;
    std::printf("  %d-core %.3f GTEPS (%.1fx)", p, edges / t / 1e9, mic1 / t);
    report.row();
    report.cell("panel", "strong");
    report.cell("arch", "mic");
    report.cell("cores", p);
    report.cell("scale", scale);
    report.cell("gteps", edges / t / 1e9);
    report.cell("speedup", mic1 / t);
  }
  std::printf("\n");

  // Section V-C: the paper's 8-core CPU is ~3.3x the 60-core MIC, and a
  // single CPU core is far faster than a single MIC core.
  const double cpu_full = tuned_seconds(tr, cpu);
  const double mic_full = tuned_seconds(tr, mic);
  std::printf("-> full CPU over full MIC: %.1fx (paper: 3.3x); serial CPU "
              "over serial MIC: %.1fx (paper: ~20x)\n",
              mic_full / cpu_full, tuned_seconds(tr, mic.with_cores(1)) /
                                       tuned_seconds(tr, cpu.with_cores(1)));
}

void weak_scaling(int base_scale, JsonReport& report) {
  std::printf("\n(b) weak scaling: per-core load fixed (paper: 1M vertices "
              "per CPU core, 0.25M per MIC core)\n");
  // Each doubling of cores doubles the graph: constant per-core load.
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  std::printf("%-8s", "CPU:");
  for (int p : {1, 2, 4, 8}) {
    const int scale = base_scale + static_cast<int>(std::log2(p));
    const BuiltGraph bg = make_graph(scale, 16);
    const core::LevelTrace tr = core::build_level_trace(bg.csr, bg.root);
    const double edges = static_cast<double>(tr.num_edges) / 2.0;
    const double t = tuned_seconds(tr, cpu.with_cores(p));
    std::printf("  %d-core/2^%d %.3f GTEPS", p, scale, edges / t / 1e9);
    report.row();
    report.cell("panel", "weak");
    report.cell("arch", "cpu");
    report.cell("cores", p);
    report.cell("scale", scale);
    report.cell("gteps", edges / t / 1e9);
  }
  std::printf("\n");
  const sim::ArchSpec mic = sim::make_knights_corner_mic();
  std::printf("%-8s", "MIC:");
  for (int p : {2, 4, 8, 16}) {
    const int scale = base_scale + static_cast<int>(std::log2(p)) - 1;
    const BuiltGraph bg = make_graph(scale, 16);
    const core::LevelTrace tr = core::build_level_trace(bg.csr, bg.root);
    const double edges = static_cast<double>(tr.num_edges) / 2.0;
    const double t = tuned_seconds(tr, mic.with_cores(p));
    std::printf("  %d-core/2^%d %.3f GTEPS", p, scale, edges / t / 1e9);
    report.row();
    report.cell("panel", "weak");
    report.cell("arch", "mic");
    report.cell("cores", p);
    report.cell("scale", scale);
    report.cell("gteps", edges / t / 1e9);
  }
  std::printf("\n-> rising GTEPS with constant per-core load = good weak "
              "scaling (paper Fig. 10b)\n");
}

/// Modelled GTEPS of one distributed run (undirected edges / seconds).
double dist_gteps(const dist::DistBfsRun& run) {
  return static_cast<double>(run.result.edges_in_component) / run.seconds /
         1e9;
}

void dist_strong_scaling(int scale, JsonReport& report) {
  std::printf("\n(c) multi-device strong scaling: SCALE=%d, modelled GTEPS "
              "per device count (src/dist BSP simulation)\n", scale);
  const BuiltGraph bg = make_graph(scale, 16);

  for (const graph::PartitionStrategy strategy :
       {graph::PartitionStrategy::kBlock,
        graph::PartitionStrategy::kDegreeBalanced}) {
    dist::DistBfsOptions opts;
    opts.strategy = strategy;
    std::printf("CPU cluster, %-8s:", graph::to_string(strategy));
    double t1 = 0;
    for (const int n : {1, 2, 4, 8}) {
      const dist::DistBfsRun run =
          dist::run_dist_bfs(bg.csr, bg.root, sim::make_paper_cluster(n),
                             opts);
      if (n == 1) t1 = run.seconds;
      std::printf("  %dd %.3f GTEPS (%.2fx, comm %2.0f%%)", n,
                  dist_gteps(run), t1 / run.seconds,
                  100.0 * run.comm_seconds / run.seconds);
      report.row();
      report.cell("panel", "dist");
      report.cell("partition", graph::to_string(strategy));
      report.cell("devices", n);
      report.cell("scale", scale);
      report.cell("gteps", dist_gteps(run));
      report.cell("speedup", t1 / run.seconds);
      report.cell("comm_fraction", run.comm_seconds / run.seconds);
    }
    std::printf("\n");
  }

  // Heterogeneous: half the paper's CPUs, half its GPUs. Equal-share 1D
  // partitions hand both device classes the same rows, so the slower
  // class gates each superstep — the balance column shows the skew the
  // degree-balanced strategy cannot fix (it balances edges, not speed).
  std::vector<sim::Device> mixed;
  mixed.emplace_back(sim::make_sandy_bridge_cpu());
  mixed.emplace_back(sim::make_sandy_bridge_cpu());
  mixed.emplace_back(sim::make_kepler_gpu());
  mixed.emplace_back(sim::make_kepler_gpu());
  const sim::Cluster hetero{std::move(mixed), sim::InterconnectSpec{}};
  dist::DistBfsOptions opts;
  opts.strategy = graph::PartitionStrategy::kDegreeBalanced;
  const dist::DistBfsRun run =
      dist::run_dist_bfs(bg.csr, bg.root, hetero, opts);
  double worst_balance = 1.0;
  for (const dist::DistLevelOutcome& lvl : run.levels) {
    worst_balance = std::max(worst_balance, lvl.balance);
  }
  std::printf("2xCPU+2xGPU, balanced:  %.3f GTEPS, comm %2.0f%%, worst "
              "superstep balance %.2f (1.0 = even)\n",
              dist_gteps(run), 100.0 * run.comm_seconds / run.seconds,
              worst_balance);
}

}  // namespace

int main() {
  print_header("Figure 10", "strong and weak scaling of the combination");
  const int scale = pick_scale(17, 22);
  JsonReport report("fig10_scaling");
  strong_scaling(scale, report);
  weak_scaling(scale - 3, report);
  dist_strong_scaling(scale - 1, report);
  report.write();
  return 0;
}
