// Reproduces paper Fig. 1: the number of vertices in the current queue
// per BFS level — small at first, peaking in the middle, small again.
// One series per SCALE; edges = edgefactor 16 (the paper plots
// 2^(SCALE+4) edges, i.e. edgefactor 16).
#include "bench_common.h"

#include "bfs/drivers.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

void run_series(int scale) {
  const BuiltGraph bg = make_graph(scale, 16);
  bfs::TraversalLog log;
  (void)bfs::run_top_down(bg.csr, bg.root, &log);
  std::printf("SCALE=%d (|V|=%s, |E|=2^%d x16):", scale,
              scale_label(scale).c_str(), scale);
  for (const bfs::LevelRecord& lvl : log.levels) {
    std::printf(" L%d=%d", lvl.level, lvl.frontier_vertices);
  }
  std::printf("\n");

  // The Fig. 1 shape claim: rise then fall, with an interior peak.
  graph::vid_t peak = 0;
  std::size_t peak_at = 0;
  for (std::size_t i = 0; i < log.levels.size(); ++i) {
    if (log.levels[i].frontier_vertices > peak) {
      peak = log.levels[i].frontier_vertices;
      peak_at = i;
    }
  }
  std::printf("  -> peak |V|cq = %d at level %zu of %zu (interior: %s)\n",
              peak, peak_at, log.levels.size(),
              (peak_at > 0 && peak_at + 1 < log.levels.size()) ? "yes" : "NO");
}

}  // namespace

int main() {
  print_header("Figure 1", "|V|cq per level is small, peaks mid-traversal, then shrinks");
  const int base = pick_scale(16, 21);
  for (int scale : {base - 2, base - 1, base}) run_series(scale);
  return 0;
}
