// GraphView abstraction-penalty A/B: the top-down and bottom-up
// kernels run over the same graph twice — through the direct CsrGraph
// overloads and through the templated GraphView instantiation behind
// the CsrGraphView adapter — at 1/2/4 OpenMP threads. The adapter is
// supposed to be zero-overhead (it inlines to the same row walks), so
// the aggregate-TEPS penalty must stay under the 3% gate; this bench
// measures it instead of asserting it. Set BFSX_ENFORCE_GATE=1 to turn
// a gate breach into a nonzero exit (off by default: smoke-scale runs
// are timing-noise bound).
#include "bench_common.h"

#include <chrono>
#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bfs/drivers.h"
#include "graph/view.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

struct Measured {
  double seconds = 0.0;
  double aggregate_teps = 0.0;
};

constexpr int kRepeats = 5;  // best-of to damp scheduler noise

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One timed pass of `kernel` over every root; returns the best of
/// kRepeats passes by aggregate TEPS (total component edges / wall),
/// via the shared bench::best_of helper.
template <typename Kernel>
Measured best_pass(const std::vector<graph::vid_t>& roots, Kernel&& kernel) {
  return bench::best_of(
      kRepeats,
      [&roots, &kernel] {
        graph::eid_t edges = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (const graph::vid_t root : roots) {
          edges += kernel(root).edges_in_component;
        }
        Measured m;
        m.seconds = wall_seconds(t0);
        m.aggregate_teps =
            m.seconds > 0.0 ? static_cast<double>(edges) / m.seconds : 0.0;
        return m;
      },
      [](const Measured& m) { return m.aggregate_teps; });
}

void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

bool enforce_gate() {
  const char* v = std::getenv("BFSX_ENFORCE_GATE");
  return v != nullptr && v[0] == '1';
}

}  // namespace

int main() {
  print_header("graphview", "CsrGraphView adapter vs direct CSR kernels");
  const int scale = pick_scale(18, 20);
  const int num_roots = 16;
  const BuiltGraph bg = make_graph(scale, 16);
  const graph::CsrGraphView view(bg.csr);
  const std::vector<graph::vid_t> roots =
      graph::sample_roots(bg.csr, num_roots, 500);
  std::printf("graph: %s vertices, %lld directed edges, %d roots, "
              "best of %d passes\n\n",
              scale_label(scale).c_str(),
              static_cast<long long>(bg.csr.num_edges()), num_roots, kRepeats);

  constexpr double kGatePercent = 3.0;
  JsonReport report("graphview");
  std::printf("%-10s %8s %14s %14s %10s\n", "kernel", "threads",
              "direct MTEPS", "view MTEPS", "penalty");

  double direct_edges = 0.0, direct_seconds = 0.0;
  double view_edges = 0.0, view_seconds = 0.0;
  for (const int threads : {1, 2, 4}) {
    set_threads(threads);
    struct Row {
      const char* kernel;
      Measured direct;
      Measured via_view;
    };
    const Row rows[] = {
        {"top-down",
         best_pass(roots,
                   [&](graph::vid_t r) { return bfs::run_top_down(bg.csr, r); }),
         best_pass(roots,
                   [&](graph::vid_t r) { return bfs::run_top_down(view, r); })},
        {"bottom-up",
         best_pass(roots,
                   [&](graph::vid_t r) { return bfs::run_bottom_up(bg.csr, r); }),
         best_pass(roots, [&](graph::vid_t r) {
           return bfs::run_bottom_up(view, r);
         })},
    };
    for (const Row& row : rows) {
      const double penalty =
          row.direct.aggregate_teps > 0.0
              ? (row.direct.aggregate_teps - row.via_view.aggregate_teps) /
                    row.direct.aggregate_teps * 100.0
              : 0.0;
      direct_edges += row.direct.aggregate_teps * row.direct.seconds;
      direct_seconds += row.direct.seconds;
      view_edges += row.via_view.aggregate_teps * row.via_view.seconds;
      view_seconds += row.via_view.seconds;
      std::printf("%-10s %8d %14.1f %14.1f %9.2f%%\n", row.kernel, threads,
                  row.direct.aggregate_teps / 1e6,
                  row.via_view.aggregate_teps / 1e6, penalty);
      report.row();
      report.cell("kernel", row.kernel);
      report.cell("threads", threads);
      report.cell("direct_teps", row.direct.aggregate_teps);
      report.cell("view_teps", row.via_view.aggregate_teps);
      report.cell("penalty_percent", penalty);
      report.cell("gate_percent", kGatePercent);
    }
  }

  // The gate is on aggregate TEPS across the whole kernel × thread
  // matrix: per-cell numbers at smoke scales are timing-noise bound
  // (the view side regularly wins individual cells).
  const double direct_teps =
      direct_seconds > 0.0 ? direct_edges / direct_seconds : 0.0;
  const double view_teps = view_seconds > 0.0 ? view_edges / view_seconds : 0.0;
  const double penalty =
      direct_teps > 0.0 ? (direct_teps - view_teps) / direct_teps * 100.0 : 0.0;
  const bool gate_ok = penalty < kGatePercent;
  std::printf("\naggregate: direct %.1f MTEPS, via view %.1f MTEPS — "
              "abstraction penalty %.2f%% (gate: < %.0f%%) — %s\n",
              direct_teps / 1e6, view_teps / 1e6, penalty, kGatePercent,
              gate_ok ? "PASS" : "FAIL");
  report.row();
  report.cell("kernel", "aggregate");
  report.cell("threads", 0);
  report.cell("direct_teps", direct_teps);
  report.cell("view_teps", view_teps);
  report.cell("penalty_percent", penalty);
  report.cell("gate_percent", kGatePercent);
  report.write();
  if (!gate_ok && enforce_gate()) return 1;
  return 0;
}
