// Verifies the paper's Section III-E overhead claim with
// google-benchmark micro-measurements: "The execution-time of
// regression prediction is less than 0.1% of BFS execution-time."
//
// Measures (a) one SwitchPredictor::predict call (wall clock) and
// (b) one adaptive BFS traversal (wall clock, functional kernels), and
// prints the ratio.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.h"
#include "core/trainer.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

const core::SwitchPredictor& predictor() {
  static const core::SwitchPredictor instance = [] {
    core::TrainerConfig cfg = bench_trainer_config(11, 13);
    cfg.candidates = core::SwitchCandidates::coarse_grid();
    return core::train_predictor(core::generate_training_data(cfg));
  }();
  return instance;
}

const BuiltGraph& eval_graph() {
  // Prediction cost is constant while BFS cost grows with the graph, so
  // the overhead ratio only shrinks beyond this size.
  static const BuiltGraph bg = make_graph(pick_scale(17, 20), 16);
  return bg;
}

void BM_PredictSwitchingPoint(benchmark::State& state) {
  const core::GraphFeatures gf = features_of(eval_graph());
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor().predict(gf, cpu, gpu));
  }
}
BENCHMARK(BM_PredictSwitchingPoint);

void BM_AdaptiveBfsTraversal(benchmark::State& state) {
  const BuiltGraph& bg = eval_graph();
  sim::Machine machine = sim::make_paper_node();
  const core::GraphFeatures gf = features_of(bg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_adaptive(bg.csr, bg.root, gf, machine, predictor()));
  }
}
BENCHMARK(BM_AdaptiveBfsTraversal);

void BM_ExhaustiveSearchForComparison(benchmark::State& state) {
  // What the paper replaces: pricing all 1,000 candidates. Even with
  // our O(levels) trace replay this dwarfs one SVR prediction; without
  // replay it would be 1,000 full traversals.
  const BuiltGraph& bg = eval_graph();
  const core::LevelTrace trace = core::build_level_trace(bg.csr, bg.root);
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sweep_single(trace, cpu, cands));
  }
}
BENCHMARK(BM_ExhaustiveSearchForComparison);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Section III-E: prediction overhead vs BFS execution time\n");

  // Direct ratio measurement before the google-benchmark output.
  // Force the one-time lazy training/graph construction first so only
  // steady-state prediction cost is timed (training is the offline
  // stage the paper amortises).
  (void)predictor();
  (void)eval_graph();
  using clock = std::chrono::steady_clock;
  const core::GraphFeatures gf = features_of(eval_graph());
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  constexpr int kPredictReps = 1000;
  const auto t0 = clock::now();
  for (int i = 0; i < kPredictReps; ++i) {
    benchmark::DoNotOptimize(predictor().predict(gf, cpu, gpu));
  }
  const auto t1 = clock::now();
  sim::Machine machine = sim::make_paper_node();
  benchmark::DoNotOptimize(
      core::run_adaptive(eval_graph().csr, eval_graph().root, gf, machine,
                         predictor()));
  const auto t2 = clock::now();
  const double predict_s =
      std::chrono::duration<double>(t1 - t0).count() / kPredictReps;
  const double bfs_s = std::chrono::duration<double>(t2 - t1).count();
  std::printf("one prediction: %.2f us; one traversal: %.2f ms; overhead = "
              "%.4f%% of BFS time (paper: < 0.1%%)\n\n",
              predict_s * 1e6, bfs_s * 1e3, 100.0 * 2 * predict_s / bfs_s);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
