// Reproduces paper Section V-D: comparisons against other
// implementations —
//   * the Graph 500 reference code on the CPU (paper: our CPU
//     combination is 4.96-21.0x faster, average 11x);
//   * the cross-architecture combination over the Graph 500 reference
//     (paper: 16.4-63.2x, average 29.3x);
//   * the state-of-the-art MIC implementation (Gao et al., modelled as
//     the reference code on the MIC; paper: 13x).
#include "bench_common.h"

#include "core/level_trace.h"
#include "core/tuner.h"
#include "graph500/reference_bfs.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

}  // namespace

int main() {
  print_header("Section V-D", "speedups over reference implementations");
  const int base = pick_scale(16, 20);
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const sim::ArchSpec mic = sim::make_knights_corner_mic();
  const sim::InterconnectSpec link;
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();

  std::printf("%-16s %12s %12s %12s %12s\n", "graph", "CPUCB/ref",
              "cross/ref", "MICCB/micref", "ref(ms)");
  double s1 = 0;
  double s2 = 0;
  double s3 = 0;
  int n = 0;
  for (int scale : {base, base + 1, base + 2}) {
    for (int ef : {16, 32}) {
      const BuiltGraph bg = make_graph(scale, ef);
      const core::LevelTrace tr = core::build_level_trace(bg.csr, bg.root);
      // Reference = pure top-down at the reference-code penalty.
      const double ref_cpu =
          core::replay_pure(tr, cpu, bfs::Direction::kTopDown) *
          graph500::kReferencePenalty;
      const double ref_mic =
          core::replay_pure(tr, mic, bfs::Direction::kTopDown) *
          graph500::kReferencePenalty;
      const double cpu_cb =
          core::pick_best(core::sweep_single(tr, cpu, cands), cands).seconds;
      const core::TunedPolicy gpu_cb =
          core::pick_best(core::sweep_single(tr, gpu, cands), cands);
      const double cross =
          core::pick_best(
              core::sweep_cross(tr, cpu, gpu, link, cands, gpu_cb.policy),
              cands)
              .seconds;
      const double mic_cb =
          core::pick_best(core::sweep_single(tr, mic, cands), cands).seconds;
      s1 += ref_cpu / cpu_cb;
      s2 += ref_cpu / cross;
      s3 += ref_mic / mic_cb;
      ++n;
      std::printf("scale%-2d ef%-6d %11.1fx %11.1fx %11.1fx %12.3f\n", scale,
                  ef, ref_cpu / cpu_cb, ref_cpu / cross, ref_mic / mic_cb,
                  ref_cpu * 1e3);
    }
  }
  std::printf("\n-> averages: CPU combination %.1fx over the reference "
              "(paper: 11.0x), cross-architecture %.1fx (paper: 29.3x), MIC "
              "combination %.1fx over the MIC baseline (paper: 13x)\n",
              s1 / n, s2 / n, s3 / n);
  return 0;
}
