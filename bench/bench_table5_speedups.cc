// Reproduces paper Table V: speedup of the full cross-architecture
// combination (CPUTD+GPUCB) over plain GPU top-down for a series of
// graphs. Paper row: |V| in {2M, 4M, 8M}, |E| in {32M..256M}, speedups
// 35x..155x.
#include "bench_common.h"

#include "core/level_trace.h"
#include "core/tuner.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

}  // namespace

int main() {
  print_header("Table V", "CPUTD+GPUCB speedup over GPUTD per graph");
  const int base = pick_scale(17, 21);
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const sim::InterconnectSpec link;
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();

  struct Config {
    int scale;
    int ef;
  };
  // The paper's seven graphs are {2M,4M,8M} vertices x {16,32,64}
  // edgefactor subsets; mirror the pattern at the chosen base scale.
  const Config configs[] = {{base, 16},     {base, 32},     {base, 64},
                            {base + 1, 16}, {base + 1, 32}, {base + 1, 64},
                            {base + 2, 16}};

  std::printf("%-8s %-6s %14s %14s %10s\n", "SCALE", "ef", "GPUTD(ms)",
              "cross(ms)", "speedup");
  double min_speedup = 1e18;
  double max_speedup = 0;
  double product = 1.0;
  int count = 0;
  for (const Config& cfg : configs) {
    const BuiltGraph bg = make_graph(cfg.scale, cfg.ef);
    const core::LevelTrace trace = core::build_level_trace(bg.csr, bg.root);
    const core::HybridPolicy gpu_cb =
        core::pick_best(core::sweep_single(trace, gpu, cands), cands).policy;
    const core::HybridPolicy handoff =
        core::pick_best(
            core::sweep_cross(trace, cpu, gpu, link, cands, gpu_cb), cands)
            .policy;
    const double gputd =
        core::replay_pure(trace, gpu, bfs::Direction::kTopDown);
    const double cross =
        core::replay_cross(trace, cpu, gpu, link, handoff, gpu_cb);
    const double speedup = gputd / cross;
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    product *= speedup;
    ++count;
    std::printf("%-8d %-6d %14.3f %14.3f %9.1fx\n", cfg.scale, cfg.ef,
                gputd * 1e3, cross * 1e3, speedup);
  }
  std::printf("-> speedups span %.0fx..%.0fx (geo-mean %.0fx); paper: "
              "35x..155x (avg 64x) at SCALE 21-23\n",
              min_speedup, max_speedup,
              std::pow(product, 1.0 / count));
  return 0;
}
