// Ablation study over the cost-model design choices DESIGN.md calls
// out. Not a paper figure — this quantifies how sensitive the headline
// result (cross-architecture speedup over single-architecture
// combinations) is to the three calibrated mechanisms:
//   1. PCIe handoff cost (latency/bandwidth sweep);
//   2. per-level launch overhead asymmetry (CPU vs GPU);
//   3. the GPU's bottom-up miss-scan penalty.
#include "bench_common.h"

#include "core/level_trace.h"
#include "core/tuner.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

struct Outcome {
  double cross;
  double gpu_cb;
  double cpu_cb;
};

Outcome evaluate(const core::LevelTrace& tr, const sim::ArchSpec& cpu,
                 const sim::ArchSpec& gpu, const sim::InterconnectSpec& link) {
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();
  Outcome o{};
  const core::TunedPolicy gpu_cb =
      core::pick_best(core::sweep_single(tr, gpu, cands), cands);
  o.gpu_cb = gpu_cb.seconds;
  o.cpu_cb = core::pick_best(core::sweep_single(tr, cpu, cands), cands).seconds;
  o.cross = core::pick_best(
                core::sweep_cross(tr, cpu, gpu, link, cands, gpu_cb.policy),
                cands)
                .seconds;
  return o;
}

}  // namespace

int main() {
  print_header("Ablation", "cost-model sensitivity of the headline result");
  const int scale = pick_scale(19, 22);
  const BuiltGraph bg = make_graph(scale, 16);
  const core::LevelTrace tr = core::build_level_trace(bg.csr, bg.root);
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();

  std::printf("\n1) PCIe sensitivity (cross-CB seconds as the link degrades; "
              "tuner may retreat to a single device)\n");
  for (double bw : {64.0, 6.0, 0.5, 0.05}) {
    for (double lat_us : {1.0, 10.0, 1000.0}) {
      sim::InterconnectSpec link;
      link.bandwidth_gbps = bw;
      link.latency_us = lat_us;
      const Outcome o = evaluate(tr, cpu, gpu, link);
      std::printf("  bw=%6.2f GB/s lat=%7.1f us: cross=%8.4f ms "
                  "(vs GPUCB %.2fx, CPUCB %.2fx)\n",
                  bw, lat_us, o.cross * 1e3, o.gpu_cb / o.cross,
                  o.cpu_cb / o.cross);
    }
  }

  std::printf("\n2) launch-overhead asymmetry (GPU per-level overhead scaled; "
              "the tail-level switchback depends on it)\n");
  for (double mult : {0.1, 1.0, 4.0, 16.0}) {
    sim::ArchSpec gpu2 = gpu;
    gpu2.level_overhead_us *= mult;
    const Outcome o = evaluate(tr, cpu, gpu2, sim::InterconnectSpec{});
    std::printf("  gpu overhead x%-5.1f: cross=%8.4f ms GPUCB=%8.4f ms "
                "CPUCB=%8.4f ms\n",
                mult, o.cross * 1e3, o.gpu_cb * 1e3, o.cpu_cb * 1e3);
  }

  std::printf("\n3) GPU bottom-up miss penalty (drives the early-level "
              "handoff decision)\n");
  for (double mult : {0.25, 1.0, 4.0}) {
    sim::ArchSpec gpu2 = gpu;
    gpu2.bu_edge_miss_ns *= mult;
    const Outcome o = evaluate(tr, cpu, gpu2, sim::InterconnectSpec{});
    std::printf("  miss cost x%-5.2f: cross=%8.4f ms GPUCB=%8.4f ms "
                "(cross/GPUCB advantage %.2fx)\n",
                mult, o.cross * 1e3, o.gpu_cb * 1e3, o.gpu_cb / o.cross);
  }

  std::printf("\n-> expected reading: the cross-architecture win persists "
              "under moderate perturbation and collapses only when the link "
              "becomes absurdly slow — in which case the tuned handoff "
              "policy retreats toward a single device, capping the loss.\n");
  return 0;
}
