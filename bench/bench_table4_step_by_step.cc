// Reproduces paper Table IV: the step-by-step optimisation story. For
// one R-MAT graph, per-level times (seconds) of the eight approaches:
//   GPUTD GPUBU GPUCB | CPUTD CPUBU CPUCB | CPUTD+GPUBU CPUTD+GPUCB
// plus a total row and a speedup-over-GPUTD row.
//
// The paper's graph is 8M vertices / 128M edges (SCALE 23, ef 16);
// default here is SCALE 20, BFSX_FULL=1 for the original size.
#include "bench_common.h"

#include <map>

#include "core/level_trace.h"
#include "core/tuner.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;
using core::HybridPolicy;
using core::LevelTrace;
using core::TraceLevel;

struct Column {
  std::string name;
  std::vector<double> level_seconds;
  std::vector<std::string> tags;  // "TD"/"BU" (+device for cross columns)
  double total = 0.0;
};

double td_cost(const sim::ArchSpec& a, const TraceLevel& l) {
  return sim::top_down_level_seconds(a, l.frontier_edges);
}
double bu_cost(const sim::ArchSpec& a, const LevelTrace& t,
               const TraceLevel& l) {
  return sim::bottom_up_level_seconds(a, t.num_vertices, l.bu_edges_hit,
                                      l.bu_edges_miss);
}

Column pure_column(const std::string& name, const sim::ArchSpec& arch,
                   const LevelTrace& trace, bfs::Direction dir) {
  Column c;
  c.name = name;
  for (const TraceLevel& l : trace.levels) {
    const double s = dir == bfs::Direction::kTopDown
                         ? td_cost(arch, l)
                         : bu_cost(arch, trace, l);
    c.level_seconds.push_back(s);
    c.tags.emplace_back(to_string(dir));
    c.total += s;
  }
  return c;
}

Column combination_column(const std::string& name, const sim::ArchSpec& arch,
                          const LevelTrace& trace, const HybridPolicy& p) {
  Column c;
  c.name = name;
  for (const TraceLevel& l : trace.levels) {
    const bfs::Direction dir = p.decide(l.frontier_edges, l.frontier_vertices,
                                        trace.num_edges, trace.num_vertices);
    const double s = dir == bfs::Direction::kTopDown
                         ? td_cost(arch, l)
                         : bu_cost(arch, trace, l);
    c.level_seconds.push_back(s);
    c.tags.emplace_back(to_string(dir));
    c.total += s;
  }
  return c;
}

Column cross_column(const std::string& name, const sim::ArchSpec& host,
                    const sim::ArchSpec& accel,
                    const sim::InterconnectSpec& link, const LevelTrace& trace,
                    const HybridPolicy& handoff, const HybridPolicy* inner) {
  Column c;
  c.name = name;
  bool on_accel = false;
  for (const TraceLevel& l : trace.levels) {
    double s = 0.0;
    std::string tag;
    if (!on_accel &&
        handoff.decide(l.frontier_edges, l.frontier_vertices, trace.num_edges,
                       trace.num_vertices) == bfs::Direction::kTopDown) {
      s = td_cost(host, l);
      tag = "hostTD";
    } else {
      if (!on_accel) {
        on_accel = true;
        s += sim::transfer_seconds(link,
                                   sim::handoff_bytes(trace.num_vertices));
      }
      const bfs::Direction dir =
          inner != nullptr
              ? inner->decide(l.frontier_edges, l.frontier_vertices,
                              trace.num_edges, trace.num_vertices)
              : bfs::Direction::kBottomUp;
      s += dir == bfs::Direction::kTopDown ? td_cost(accel, l)
                                           : bu_cost(accel, trace, l);
      tag = dir == bfs::Direction::kTopDown ? "accTD" : "accBU";
    }
    c.level_seconds.push_back(s);
    c.tags.push_back(tag);
    c.total += s;
  }
  return c;
}

}  // namespace

int main() {
  print_header("Table IV",
               "step-by-step per-level times of the eight approaches");
  const int scale = pick_scale(20, 23);
  const BuiltGraph bg = make_graph(scale, 16);
  std::printf("graph: SCALE=%d edgefactor=16 -> |V|=%d, |E|=%lld directed\n",
              scale, bg.csr.num_vertices(),
              static_cast<long long>(bg.csr.num_edges()));

  const LevelTrace trace = core::build_level_trace(bg.csr, bg.root);
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const sim::InterconnectSpec link;
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();

  const HybridPolicy cpu_cb =
      core::pick_best(core::sweep_single(trace, cpu, cands), cands).policy;
  const HybridPolicy gpu_cb =
      core::pick_best(core::sweep_single(trace, gpu, cands), cands).policy;
  const HybridPolicy handoff =
      core::pick_best(
          core::sweep_cross(trace, cpu, gpu, link, cands, gpu_cb), cands)
          .policy;

  std::vector<Column> cols;
  cols.push_back(pure_column("GPUTD", gpu, trace, bfs::Direction::kTopDown));
  cols.push_back(pure_column("GPUBU", gpu, trace, bfs::Direction::kBottomUp));
  cols.push_back(combination_column("GPUCB", gpu, trace, gpu_cb));
  cols.push_back(pure_column("CPUTD", cpu, trace, bfs::Direction::kTopDown));
  cols.push_back(pure_column("CPUBU", cpu, trace, bfs::Direction::kBottomUp));
  cols.push_back(combination_column("CPUCB", cpu, trace, cpu_cb));
  cols.push_back(
      cross_column("CPUTD+GPUBU", cpu, gpu, link, trace, handoff, nullptr));
  cols.push_back(
      cross_column("CPUTD+GPUCB", cpu, gpu, link, trace, handoff, &gpu_cb));

  std::printf("\n%-9s", "Level");
  for (const Column& c : cols) std::printf(" %16s", c.name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < trace.levels.size(); ++i) {
    std::printf("%-9zu", i + 1);  // the paper numbers levels from 1
    for (const Column& c : cols) {
      std::printf(" %9.6f %-6s", c.level_seconds[i], c.tags[i].c_str());
    }
    std::printf("\n");
  }
  std::printf("%-9s", "Total");
  for (const Column& c : cols) std::printf(" %9.6f %-6s", c.total, "");
  std::printf("\n%-9s", "Speedup");
  const double base_total = cols.front().total;
  for (const Column& c : cols) {
    std::printf(" %9.1fx%-6s", base_total / c.total, "");
  }
  std::printf("\n");
  std::printf("\npaper Table IV speedups: 1.0 / 1.1 / 16.5 / 3.8 / 4.6 / 13.0 "
              "/ 32.8 / 36.1 (SCALE 23; shapes shrink with graph size)\n");
  return 0;
}
