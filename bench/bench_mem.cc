// Memory-subsystem A/B: each raw-speed optimisation of DESIGN.md §12 —
// software prefetch, hub-cached bottom-up, compressed CSR adjacency —
// measured independently against the untuned baseline and then
// combined, at 1/2/4 OpenMP threads, on hybrid (M/N-switched)
// traversals. Wall-clock TEPS is paired with hardware LLC miss rates
// from obs::PerfCounters so a speedup claim comes with the cache
// evidence behind it (counters degrade to "n/a" columns where
// perf_event_open is unavailable).
//
// Gates (report-only unless BFSX_ENFORCE_GATE=1):
//   * combined aggregate TEPS >= 1.10x baseline;
//   * no individual optimisation below 0.97x baseline.
#include "bench_common.h"

#include <chrono>
#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bfs/bottomup.h"
#include "bfs/frontier.h"
#include "bfs/hub_cache.h"
#include "bfs/mem_tuning.h"
#include "bfs/state.h"
#include "bfs/topdown.h"
#include "core/hybrid_policy.h"
#include "graph/compressed_csr.h"
#include "graph/view.h"
#include "obs/perf_counters.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

// Defaults mirrored by the CLI flags (--prefetch, --hub-cache); chosen
// per DESIGN.md §12.1/§12.2.
constexpr int kPrefetchDistance = 8;
constexpr int kHubK = 2048;
constexpr int kRepeats = 5;  // best-of to damp scheduler noise

struct RunTotals {
  graph::eid_t edges = 0;
  graph::vid_t hub_probes = 0;
  graph::vid_t hub_hits = 0;
};

struct Measured {
  double seconds = 0.0;
  double teps = 0.0;
  RunTotals totals;
  obs::PerfSample perf;
};

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One hybrid traversal with the given tuning; accumulates hub counters
/// so the hit rate can be reported alongside the speedup.
template <typename V>
void traverse(const V& g, graph::vid_t root, const core::HybridPolicy& policy,
              bfs::MemTuning tuning, RunTotals& totals) {
  bfs::BfsState state(g.num_vertices(), root);
  while (!state.frontier_empty()) {
    const graph::eid_t e_cq = bfs::frontier_out_edges(g, state.frontier_queue);
    const auto v_cq = static_cast<graph::vid_t>(state.frontier_queue.size());
    if (policy.decide(e_cq, v_cq, g.num_edges(), g.num_vertices()) ==
        bfs::Direction::kTopDown) {
      bfs::top_down_step(g, state, tuning);
    } else {
      const bfs::BottomUpStats stats = bfs::bottom_up_step(g, state, tuning);
      totals.hub_probes += stats.hub_probes;
      totals.hub_hits += stats.hub_hits;
    }
  }
  totals.edges += std::move(state).take_result(g).edges_in_component;
}

/// Best-of-kRepeats timed pass over every root, with perf counters
/// wrapped around the whole pass (one enable window per pass).
template <typename V>
Measured measure(const V& g, const std::vector<graph::vid_t>& roots,
                 const core::HybridPolicy& policy, bfs::MemTuning tuning) {
  return bench::best_of(
      kRepeats,
      [&] {
        obs::PerfCounters counters;
        Measured m;
        counters.start();
        const auto t0 = std::chrono::steady_clock::now();
        for (const graph::vid_t root : roots) {
          traverse(g, root, policy, tuning, m.totals);
        }
        m.seconds = wall_seconds(t0);
        m.perf = counters.stop();
        m.teps = m.seconds > 0.0
                     ? static_cast<double>(m.totals.edges) / m.seconds
                     : 0.0;
        return m;
      },
      [](const Measured& m) { return m.teps; });
}

void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

bool enforce_gate() {
  const char* v = std::getenv("BFSX_ENFORCE_GATE");
  return v != nullptr && v[0] == '1';
}

/// Percent LLC miss rate, or a negative sentinel when counters are
/// unavailable (printed as "n/a").
double miss_pct(const obs::PerfSample& s) {
  return s.valid ? s.cache_miss_rate() * 100.0 : -1.0;
}

void print_row(const char* name, int threads, const Measured& off,
               const Measured& on) {
  const double speedup = off.teps > 0.0 ? on.teps / off.teps : 0.0;
  char off_miss[32], on_miss[32], delta[32];
  if (off.perf.valid && on.perf.valid) {
    std::snprintf(off_miss, sizeof off_miss, "%6.2f%%", miss_pct(off.perf));
    std::snprintf(on_miss, sizeof on_miss, "%6.2f%%", miss_pct(on.perf));
    std::snprintf(delta, sizeof delta, "%+6.2fpp",
                  miss_pct(on.perf) - miss_pct(off.perf));
  } else {
    std::snprintf(off_miss, sizeof off_miss, "n/a");
    std::snprintf(on_miss, sizeof on_miss, "n/a");
    std::snprintf(delta, sizeof delta, "n/a");
  }
  std::printf("%-12s %8d %12.1f %12.1f %9.2fx %9s %9s %9s\n", name, threads,
              off.teps / 1e6, on.teps / 1e6, speedup, off_miss, on_miss,
              delta);
}

void report_row(JsonReport& report, const char* name, int threads,
                const Measured& off, const Measured& on) {
  report.row();
  report.cell("optimisation", name);
  report.cell("threads", threads);
  report.cell("off_teps", off.teps);
  report.cell("on_teps", on.teps);
  report.cell("speedup", off.teps > 0.0 ? on.teps / off.teps : 0.0);
  report.cell("perf_valid", static_cast<int>(off.perf.valid && on.perf.valid));
  report.cell("miss_rate_off_percent", miss_pct(off.perf));
  report.cell("miss_rate_on_percent", miss_pct(on.perf));
  report.cell("miss_rate_delta_pp",
              (off.perf.valid && on.perf.valid)
                  ? miss_pct(on.perf) - miss_pct(off.perf)
                  : 0.0);
  report.cell("ipc_off", off.perf.ipc());
  report.cell("ipc_on", on.perf.ipc());
}

}  // namespace

int main() {
  print_header("mem", "memory-subsystem optimisations A/B (DESIGN.md §12)");
  const int scale = pick_scale(18, 20);
  const int num_roots = 8;
  const BuiltGraph bg = make_graph(scale, 16);
  const graph::CsrGraphView view(bg.csr);
  const graph::CompressedCsrView cview(bg.csr);
  const bfs::HubCache hub(bg.csr, kHubK);
  const core::HybridPolicy policy{};
  const std::vector<graph::vid_t> roots =
      graph::sample_roots(bg.csr, num_roots, 500);
  std::printf("graph: %s vertices, %lld directed edges, %d roots, "
              "best of %d passes\n",
              scale_label(scale).c_str(),
              static_cast<long long>(bg.csr.num_edges()), num_roots, kRepeats);
  std::printf("prefetch distance %d; hub cache %zu hubs / %zu cached "
              "in-edges; compressed adjacency %.2fx smaller\n",
              kPrefetchDistance, hub.num_hubs(), hub.total_hub_entries(),
              cview.compression_ratio());
  {
    const obs::PerfCounters probe;
    std::printf("hardware counters: %s\n\n",
                probe.available() ? "available"
                                  : "unavailable (perf_event_open denied; "
                                    "miss-rate columns will read n/a)");
  }

  bfs::MemTuning tune_prefetch;
  tune_prefetch.prefetch.distance = kPrefetchDistance;
  bfs::MemTuning tune_hub;
  tune_hub.hub_cache = &hub;
  bfs::MemTuning tune_combined;
  tune_combined.prefetch.distance = kPrefetchDistance;
  tune_combined.hub_cache = &hub;

  JsonReport report("mem");
  std::printf("%-12s %8s %12s %12s %10s %9s %9s %9s\n", "optimisation",
              "threads", "off MTEPS", "on MTEPS", "speedup", "miss off",
              "miss on", "delta");

  // Gate aggregates only over thread counts the hardware can actually
  // run concurrently: on an oversubscribed host the scheduler's
  // timeslicing swings the *baseline* by ±10%, drowning the memory
  // effects these optimisations target. Oversubscribed rows are still
  // measured and reported — they just carry no gate weight.
#ifdef _OPENMP
  const int hw_threads = omp_get_num_procs();
#else
  const int hw_threads = 1;
#endif
  double base_edges = 0.0, base_seconds = 0.0;
  double comb_edges = 0.0, comb_seconds = 0.0;
  double opt_edges[3] = {0.0, 0.0, 0.0};
  double opt_seconds[3] = {0.0, 0.0, 0.0};
  for (const int threads : {1, 2, 4}) {
    set_threads(threads);
    // Warm-up pass (discarded): fault in the adjacency pages so the
    // first measured configuration is not charged the cold-cache cost.
    {
      RunTotals warm;
      for (const graph::vid_t root : roots) {
        traverse(view, root, policy, bfs::MemTuning{}, warm);
      }
    }
    const Measured base = measure(view, roots, policy, bfs::MemTuning{});
    const Measured pf = measure(view, roots, policy, tune_prefetch);
    const Measured hb = measure(view, roots, policy, tune_hub);
    const Measured cp = measure(cview, roots, policy, bfs::MemTuning{});
    // Combined = every optimisation that carries its weight here: the
    // compressed view trades decode instructions for footprint, so it
    // joins the combination only when it individually beat the raw CSR
    // at this thread count.
    const bool with_compress = cp.teps > base.teps;
    const Measured comb = with_compress
                              ? measure(cview, roots, policy, tune_combined)
                              : measure(view, roots, policy, tune_combined);

    print_row("prefetch", threads, base, pf);
    print_row("hub-cache", threads, base, hb);
    print_row("compress", threads, base, cp);
    print_row("combined", threads, base, comb);
    const double hub_hit_rate =
        hb.totals.hub_probes > 0
            ? static_cast<double>(hb.totals.hub_hits) /
                  static_cast<double>(hb.totals.hub_probes)
            : 0.0;
    std::printf("  (hub hit rate %.1f%% over %lld probes; combined %s "
                "compressed view)\n",
                hub_hit_rate * 100.0,
                static_cast<long long>(hb.totals.hub_probes),
                with_compress ? "includes" : "excludes");

    report_row(report, "prefetch", threads, base, pf);
    report_row(report, "hub_cache", threads, base, hb);
    report.cell("hub_hit_rate", hub_hit_rate);
    report.cell("hub_probes", static_cast<std::int64_t>(hb.totals.hub_probes));
    report_row(report, "compress", threads, base, cp);
    report.cell("compression_ratio", cview.compression_ratio());
    report_row(report, "combined", threads, base, comb);
    report.cell("includes_compress", static_cast<int>(with_compress));

    if (threads <= hw_threads) {
      base_edges += static_cast<double>(base.totals.edges);
      base_seconds += base.seconds;
      comb_edges += static_cast<double>(comb.totals.edges);
      comb_seconds += comb.seconds;
      const Measured* individuals[3] = {&pf, &hb, &cp};
      for (int i = 0; i < 3; ++i) {
        opt_edges[i] += static_cast<double>(individuals[i]->totals.edges);
        opt_seconds[i] += individuals[i]->seconds;
      }
    } else {
      std::printf("  (threads=%d oversubscribes %d hardware threads; row "
                  "excluded from gates)\n",
                  threads, hw_threads);
    }
  }

  // Aggregate gate over the non-oversubscribed rows: per-cell numbers
  // at smoke scales are timing-noise bound.
  const double base_teps = base_seconds > 0.0 ? base_edges / base_seconds : 0.0;
  const double comb_teps = comb_seconds > 0.0 ? comb_edges / comb_seconds : 0.0;
  const double combined_speedup = base_teps > 0.0 ? comb_teps / base_teps : 0.0;
  double worst_individual = 1e300;
  for (int i = 0; i < 3; ++i) {
    const double teps =
        opt_seconds[i] > 0.0 ? opt_edges[i] / opt_seconds[i] : 0.0;
    if (base_teps > 0.0) {
      worst_individual = std::min(worst_individual, teps / base_teps);
    }
  }
  constexpr double kCombinedGate = 1.10;
  constexpr double kIndividualFloor = 0.97;
  const bool gate_ok = combined_speedup >= kCombinedGate &&
                       worst_individual >= kIndividualFloor;
  std::printf("\naggregate (threads <= %d): baseline %.1f MTEPS, combined "
              "%.1f MTEPS — %.2fx (gate: >= %.2fx); worst individual %.2fx "
              "(floor: >= %.2fx) — %s\n",
              hw_threads, base_teps / 1e6, comb_teps / 1e6, combined_speedup,
              kCombinedGate, worst_individual, kIndividualFloor,
              gate_ok ? "PASS" : "FAIL");
  report.row();
  report.cell("optimisation", "aggregate");
  report.cell("threads", 0);
  report.cell("gated_max_threads", hw_threads);
  report.cell("off_teps", base_teps);
  report.cell("on_teps", comb_teps);
  report.cell("speedup", combined_speedup);
  report.cell("combined_gate", kCombinedGate);
  report.cell("worst_individual_speedup", worst_individual);
  report.cell("individual_floor", kIndividualFloor);
  report.cell("gate_ok", static_cast<int>(gate_ok));
  report.write();
  if (!gate_ok && enforce_gate()) return 1;
  return 0;
}
