// Ablation: the paper's stateless M/N rule vs Beamer's stateful
// alpha/beta rule (SC'12), both exhaustively tuned on the same traces.
// Quantifies what the reformulation that enables the regression
// predictor costs (or gains) relative to the original heuristic.
#include "bench_common.h"

#include "core/level_trace.h"
#include "core/tuner.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

/// Exhaustive best of the Beamer rule over the same log grid the M/N
/// tuners search.
double best_beamer(const core::LevelTrace& tr, const sim::ArchSpec& arch) {
  const auto alphas = core::SwitchCandidates::log_spaced(1, 300, 50);
  const auto betas = core::SwitchCandidates::log_spaced(1, 300, 20);
  double best = 0;
  bool first = true;
  for (double a : alphas) {
    for (double b : betas) {
      const double s = core::replay_beamer(tr, arch, {a, b});
      if (first || s < best) best = s;
      first = false;
    }
  }
  return best;
}

}  // namespace

int main() {
  print_header("Ablation",
               "M/N rule (paper) vs alpha/beta rule (Beamer SC'12)");
  const int base = pick_scale(16, 20);
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();

  std::printf("%-16s %-18s %12s %12s %10s\n", "graph", "device", "M/N(ms)",
              "a/b(ms)", "M/N vs a/b");
  for (int scale : {base, base + 1}) {
    for (int ef : {16, 32}) {
      const BuiltGraph bg = make_graph(scale, ef);
      const core::LevelTrace tr = core::build_level_trace(bg.csr, bg.root);
      for (const sim::ArchSpec& arch :
           {sim::make_sandy_bridge_cpu(), sim::make_kepler_gpu()}) {
        const double mn =
            core::pick_best(core::sweep_single(tr, arch, cands), cands)
                .seconds;
        const double ab = best_beamer(tr, arch);
        std::printf("scale%-2d ef%-6d %-18s %12.4f %12.4f %9.3fx\n", scale,
                    ef, arch.name.c_str(), mn * 1e3, ab * 1e3, ab / mn);
      }
    }
  }
  std::printf("\n-> both tuned rules pick near-identical per-level plans on "
              "scale-free graphs; the M/N reformulation loses nothing while "
              "being stateless — which is what makes it predictable from "
              "static (graph, architecture) features.\n");
  return 0;
}
