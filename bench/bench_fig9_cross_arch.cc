// Reproduces paper Fig. 9: combination performance per platform — MIC
// combination, CPU combination, GPU combination, and the CPU+GPU
// cross-architecture combination — across a series of graphs, reported
// as GTEPS with speedup-over-MIC annotations. Paper averages: cross is
// 8.5x over MIC-CB, 2.6x over CPU-CB, 2.2x over GPU-CB.
#include "bench_common.h"

#include "core/level_trace.h"
#include "core/tuner.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

}  // namespace

int main() {
  print_header("Figure 9",
               "MIC vs CPU vs GPU vs cross-architecture combinations");
  // The cross-architecture advantage needs enough frontier mass to
  // amortise the handoff — it emerges around SCALE 19-20 and widens
  // toward the paper's SCALE 21-23 figures.
  const int base = pick_scale(19, 21);
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const sim::ArchSpec mic = sim::make_knights_corner_mic();
  const sim::InterconnectSpec link;
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();

  std::printf("%-16s %10s %10s %10s %10s | speedup over MIC-CB\n", "graph",
              "MICCB", "CPUCB", "GPUCB", "crossCB");
  double s_cpu = 0;
  double s_gpu = 0;
  double s_cross = 0;
  int n = 0;
  for (int scale : {base, base + 1, base + 2}) {
    for (int ef : {16, 32}) {
      // Keep the default run under ~2 minutes on one core.
      if (scale >= base + 1 && ef == 32 && !full_mode()) continue;
      if (scale == base + 2 && !full_mode()) continue;
      const BuiltGraph bg = make_graph(scale, ef);
      const core::LevelTrace tr = core::build_level_trace(bg.csr, bg.root);
      const double t_mic =
          core::pick_best(core::sweep_single(tr, mic, cands), cands).seconds;
      const double t_cpu =
          core::pick_best(core::sweep_single(tr, cpu, cands), cands).seconds;
      const core::TunedPolicy gpu_cb =
          core::pick_best(core::sweep_single(tr, gpu, cands), cands);
      const double t_cross =
          core::pick_best(
              core::sweep_cross(tr, cpu, gpu, link, cands, gpu_cb.policy),
              cands)
              .seconds;
      // Undirected traversed edges for the GTEPS numerator.
      const double edges = static_cast<double>(tr.num_edges) / 2.0;
      std::printf("scale%-2d ef%-6d %10.3f %10.3f %10.3f %10.3f | %0.1fx %0.1fx %0.1fx\n",
                  scale, ef, edges / t_mic / 1e9, edges / t_cpu / 1e9,
                  edges / gpu_cb.seconds / 1e9, edges / t_cross / 1e9,
                  t_mic / t_cpu, t_mic / gpu_cb.seconds, t_mic / t_cross);
      s_cpu += t_mic / t_cpu;
      s_gpu += t_mic / gpu_cb.seconds;
      s_cross += t_mic / t_cross;
      ++n;
    }
  }
  std::printf("\n-> cross-architecture CB averages %.1fx over MIC-CB, %.1fx "
              "over CPU-CB, %.1fx over GPU-CB\n",
              s_cross / n, (s_cross / n) / (s_cpu / n),
              (s_cross / n) / (s_gpu / n));
  std::printf("   (paper: 8.5x / 2.6x / 2.2x at SCALE 21-23; the gap grows "
              "with graph size)\n");
  return 0;
}
