// Reproduces paper Section III-B: the RCMA / RCMB bottleneck analysis.
// Prints Table II's RCMB rows from the architecture descriptors, the
// algorithm's arithmetic intensity (dense Equation-1 value and the
// sparse BFS value measured on a real traversal), and the
// memory-bound verdict per platform.
#include "bench_common.h"

#include "bfs/drivers.h"
#include "bfs/spmv.h"
#include "sim/roofline.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

}  // namespace

int main() {
  print_header("Section III-B", "RCMA vs RCMB: why BFS is memory-bound");

  const sim::ArchSpec archs[] = {sim::make_sandy_bridge_cpu(),
                                 sim::make_knights_corner_mic(),
                                 sim::make_kepler_gpu()};

  std::printf("Table II RCMB rows (peak / measured bandwidth):\n");
  std::printf("%-20s %12s %12s\n", "architecture", "SP RCMB", "DP RCMB");
  for (const sim::ArchSpec& a : archs) {
    std::printf("%-20s %12.2f %12.2f\n", a.name.c_str(),
                sim::rcmb(a, true), sim::rcmb(a, false));
  }
  std::printf("(paper: 7.52/12.70/21.01 SP, 3.76/6.35/7.02 DP)\n\n");

  std::printf("algorithm intensity:\n");
  std::printf("  dense SpMV (Equation 1, n=1M): RCMA = %.3f flops/B "
              "(paper: 0.5)\n",
              bfs::rcma_dense_spmv(1'000'000));

  const int scale = pick_scale(16, 20);
  const BuiltGraph bg = make_graph(scale, 16);
  bfs::TraversalLog log;
  (void)bfs::run_top_down(bg.csr, bg.root, &log);
  graph::eid_t traversed = 0;
  for (const bfs::LevelRecord& lvl : log.levels) {
    traversed += lvl.frontier_edges;
  }
  const double sparse_rcma =
      bfs::rcma_sparse_bfs(bg.csr.num_vertices(), traversed);
  std::printf("  sparse BFS (SCALE %d, %lld traversed edges): RCMA = %.3f "
              "flops/B\n\n",
              scale, static_cast<long long>(traversed), sparse_rcma);

  std::printf("verdicts:\n");
  for (const sim::ArchSpec& a : archs) {
    std::printf("  %s (attainable %.1f of %.0f peak SP GFLOPS)\n",
                sim::describe_balance(sparse_rcma, a, true).c_str(),
                sim::roofline_gflops(a, sparse_rcma, true),
                a.peak_sp_gflops);
  }
  std::printf("\n-> the paper's conclusion: \"the limited memory bandwidth "
              "may not match the high processing power required for BFS "
              "exploration\" — peak GFLOPS ratios (Table II) do not order "
              "the BFS results (Table VI).\n");
  return 0;
}
