// Shared helpers for the experiment-reproduction binaries.
//
// Every bench honours two environment variables:
//   BFSX_SCALE — overrides the default graph SCALE (log2 vertices);
//   BFSX_FULL=1 — runs at the paper's original sizes (SCALE up to 23;
//                 slow on a laptop-class container, exact shapes).
// Defaults are chosen so the whole bench suite finishes in minutes on
// one core while preserving the paper's qualitative shapes.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/api.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"
#include "obs/json.h"

namespace bfsx::bench {

inline bool full_mode() {
  const char* v = std::getenv("BFSX_FULL");
  return v != nullptr && v[0] == '1';
}

/// Scale override: BFSX_SCALE wins; otherwise `full` in full mode, else
/// `dflt`.
inline int pick_scale(int dflt, int full) {
  if (const char* v = std::getenv("BFSX_SCALE")) return std::atoi(v);
  return full_mode() ? full : dflt;
}

struct BuiltGraph {
  graph::RmatParams params;
  graph::CsrGraph csr;
  graph::vid_t root;
};

/// Generates, builds, and roots an R-MAT graph with the paper's
/// Kronecker parameters.
inline BuiltGraph make_graph(int scale, int edgefactor,
                             std::uint64_t seed = 2014) {
  BuiltGraph bg;
  bg.params.scale = scale;
  bg.params.edgefactor = edgefactor;
  bg.params.seed = seed;
  bg.csr = graph::build_csr(graph::generate_rmat(bg.params));
  bg.root = graph::sample_roots(bg.csr, 1, seed + 1)[0];
  return bg;
}

inline core::GraphFeatures features_of(const BuiltGraph& bg) {
  return core::features_from_rmat(bg.params);
}

/// "2^18 (262144)" style label.
inline std::string scale_label(int scale) {
  return "2^" + std::to_string(scale);
}

inline void print_header(const char* experiment, const char* what) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", experiment, what);
  std::printf("mode: %s (set BFSX_FULL=1 for paper-sized graphs, BFSX_SCALE=n to override)\n",
              full_mode() ? "FULL (paper sizes)" : "scaled-down");
  std::printf("==================================================================\n");
}

/// Machine-readable companion to a bench's printed tables: rows of
/// key/value cells collected while the bench runs, written as
/// `BENCH_<figure>.json` (schema "bfsx.bench.v1") next to the binary.
/// Plotting scripts read these instead of scraping stdout.
class JsonReport {
 public:
  explicit JsonReport(std::string figure) : figure_(std::move(figure)) {}

  /// Starts a new output row; subsequent cell() calls land in it.
  void row() { rows_.emplace_back(); }

  template <typename V>
  void cell(std::string_view key, V value) {
    rows_.back().field(key, value);
  }
  void cell(std::string_view key, int value) {
    rows_.back().field(key, static_cast<std::int64_t>(value));
  }

  /// Writes BENCH_<figure>.json in the working directory and reports
  /// the path on stdout. Call once, after the tables are printed.
  void write() const {
    const std::string path = "BENCH_" + figure_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::string rows = "[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r != 0) rows += ",";
      rows += rows_[r].str();
    }
    rows += "]";
    const std::string out = obs::JsonObject()
                                .field("schema", "bfsx.bench.v1")
                                .field("figure", figure_)
                                .field("mode", full_mode() ? "full" : "scaled")
                                .raw_field("rows", rows)
                                .str() +
                            "\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("machine-readable result: %s (%zu rows)\n", path.c_str(),
                rows_.size());
  }

 private:
  std::string figure_;
  std::vector<obs::JsonObject> rows_;
};

/// Best-of-N measurement: invokes `run()` `reps` times and returns the
/// result `score` ranks highest. The perf benches (bench_graphview,
/// bench_msbfs, bench_mem) take the best pass rather than the mean so
/// one scheduler hiccup cannot fabricate a regression; `score` is
/// usually aggregate TEPS.
template <typename F, typename Score>
auto best_of(int reps, F&& run, Score&& score) {
  auto best = run();
  for (int rep = 1; rep < reps; ++rep) {
    auto candidate = run();
    if (score(candidate) > score(best)) best = std::move(candidate);
  }
  return best;
}

/// A quick trainer config that spans the scales the benches evaluate,
/// so the regression predictor interpolates rather than extrapolates.
/// `lo..hi` inclusive scale range.
inline core::TrainerConfig bench_trainer_config(int lo, int hi) {
  core::TrainerConfig cfg;
  for (int scale = lo; scale <= hi; ++scale) {
    for (int ef : {8, 16, 32}) {
      for (std::uint64_t seed : {11ULL, 29ULL}) {
        graph::RmatParams p;
        p.scale = scale;
        p.edgefactor = ef;
        p.seed = seed;
        cfg.graphs.push_back(p);
      }
    }
  }
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const sim::ArchSpec mic = sim::make_knights_corner_mic();
  cfg.arch_pairs = {{cpu, cpu}, {gpu, gpu}, {mic, mic}, {cpu, gpu}};
  return cfg;
}

}  // namespace bfsx::bench
