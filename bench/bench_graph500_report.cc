// Runs the full Graph 500 protocol the paper benchmarks against
// (Section V-D): kernel 1 (construction, timed for real), kernel 2
// (BFS from sampled roots, modelled time per architecture), validation
// on every run, and the official output rows.
#include <chrono>

#include "bench_common.h"

#include "core/level_trace.h"
#include "core/tuner.h"
#include "graph500/runner.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

}  // namespace

int main() {
  print_header("Graph 500 report",
               "kernel 1 + kernel 2 + validation, official output rows");
  const int scale = pick_scale(17, 21);
  const int edgefactor = 16;

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  graph::RmatParams params;
  params.scale = scale;
  params.edgefactor = edgefactor;
  const graph::EdgeList el = graph::generate_rmat(params);
  const auto t1 = clock::now();
  const graph::CsrGraph g = graph::build_csr(el);
  const auto t2 = clock::now();

  std::printf("SCALE:                %d\n", scale);
  std::printf("edgefactor:           %d\n", edgefactor);
  std::printf("NBFS:                 16\n");
  std::printf("generation_time:      %.4f s (wall)\n",
              std::chrono::duration<double>(t1 - t0).count());
  std::printf("construction_time:    %.4f s (wall, kernel 1)\n",
              std::chrono::duration<double>(t2 - t1).count());

  // Tuned combination engine on the CPU model (the paper's CPU entry).
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const graph::vid_t tune_root = graph::sample_roots(g, 1, 1)[0];
  const core::LevelTrace trace = core::build_level_trace(g, tune_root);
  const core::SwitchCandidates cands = core::SwitchCandidates::paper_grid();
  const core::HybridPolicy policy =
      core::pick_best(core::sweep_single(trace, cpu.spec(), cands), cands)
          .policy;

  graph500::RunnerOptions opts;
  opts.num_roots = 16;
  const graph500::BenchmarkResult res = graph500::run_benchmark(
      g,
      [&cpu, policy](const graph::CsrGraph& gg, graph::vid_t root) {
        core::CombinationRun run =
            core::run_combination(gg, root, cpu, policy);
        return graph500::TimedBfs{std::move(run.result), run.seconds};
      },
      opts);

  std::printf("%s", graph500::format_teps_stats(res.stats).c_str());
  std::printf("validation:           %s (%d failures)\n",
              res.validation_failures == 0 ? "PASS" : "FAIL",
              res.validation_failures);
  std::printf("mean_bfs_time:        %.6f s (modelled, Sandy Bridge)\n",
              res.mean_seconds());

  JsonReport report("graph500_report");
  report.row();
  report.cell("scale", scale);
  report.cell("edgefactor", edgefactor);
  report.cell("nbfs", static_cast<std::int64_t>(res.runs.size()));
  report.cell("generation_seconds",
              std::chrono::duration<double>(t1 - t0).count());
  report.cell("construction_seconds",
              std::chrono::duration<double>(t2 - t1).count());
  report.cell("tuned_m", policy.m);
  report.cell("tuned_n", policy.n);
  report.cell("harmonic_mean_teps", res.stats.harmonic_mean);
  report.cell("median_teps", res.stats.median);
  report.cell("mean_bfs_seconds", res.mean_seconds());
  report.cell("validation_failures", res.validation_failures);
  report.write();
  return res.validation_failures == 0 ? 0 : 1;
}
