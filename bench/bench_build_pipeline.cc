// Ingestion-pipeline scaling bench: times generate / validate / build /
// traverse separately across OpenMP thread counts.
//
// The traversal kernels were the hot path in the paper's experiments,
// but at Graph 500 scales a *serial* kernel-1 pipeline (R-MAT draws,
// endpoint validation, counting-sort CSR construction) dominates
// end-to-end wall time. This bench tracks how every stage scales with
// cores and doubles as a runtime determinism check: the edge list and
// the CSR arrays must hash identically for every thread count.
//
// Emits BENCH_build.json (schema bfsx.bench.v1).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.h"
#include "check/contract.h"
#include "graph500/native_engine.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"
#include "obs/perf_counters.h"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// FNV-1a over a byte span; used to assert thread-count invariance.
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t h = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_edges(const bfsx::graph::EdgeList& el) {
  return fnv1a(el.edges.data(), el.edges.size() * sizeof(bfsx::graph::Edge));
}

std::uint64_t hash_csr(const bfsx::graph::CsrGraph& g) {
  std::uint64_t h = fnv1a(g.out_offsets().data(),
                          g.out_offsets().size() * sizeof(bfsx::graph::eid_t));
  return fnv1a(g.out_targets().data(),
               g.out_targets().size() * sizeof(bfsx::graph::vid_t), h);
}

struct StageTimes {
  int threads = 1;
  double generate = 0;
  double validate = 0;
  double build = 0;
  double traverse = 0;
  std::uint64_t edge_hash = 0;
  std::uint64_t csr_hash = 0;
  /// Hardware counters over build and traverse (invalid where
  /// perf_event_open is unavailable; columns then read n/a).
  bfsx::obs::PerfSample build_perf;
  bfsx::obs::PerfSample traverse_perf;

  [[nodiscard]] double ingest() const { return generate + validate + build; }
};

StageTimes run_at(int threads, const bfsx::graph::RmatParams& params) {
  namespace graph = bfsx::graph;
  StageTimes st;
  st.threads = threads;
#ifdef _OPENMP
  omp_set_num_threads(threads);
#endif

  auto t0 = clock_type::now();
  graph::EdgeList el = graph::generate_rmat(params);
  st.generate = seconds_since(t0);
  st.edge_hash = hash_edges(el);

  t0 = clock_type::now();
  graph::validate_edge_list(el);
  st.validate = seconds_since(t0);

  bfsx::obs::PerfCounters counters;
  counters.start();
  t0 = clock_type::now();
  const graph::CsrGraph g = graph::build_csr(std::move(el));
  st.build = seconds_since(t0);
  st.build_perf = counters.stop();
  st.csr_hash = hash_csr(g);

  const graph::vid_t root = graph::sample_roots(g, 1, params.seed + 1)[0];
  const auto hybrid =
      bfsx::graph500::make_native_hybrid_engine(bfsx::core::HybridPolicy{});
  counters.start();
  t0 = clock_type::now();
  const auto timed = hybrid(g, root);
  st.traverse = seconds_since(t0);
  st.traverse_perf = counters.stop();
  std::printf(
      "  threads=%d  generate %.3fs  validate %.3fs  build %.3fs  "
      "traverse %.3fs  (reached %d vertices)\n",
      threads, st.generate, st.validate, st.build, st.traverse,
      timed.result.reached);
  return st;
}

/// One timed ingest+traverse pass at scale 14, used for the
/// checks-on/off A/B below. Returns wall seconds.
double ingest_traverse_once(const bfsx::graph::RmatParams& params) {
  namespace graph = bfsx::graph;
  const auto t0 = clock_type::now();
  graph::EdgeList el = graph::generate_rmat(params);
  graph::validate_edge_list(el);
  const graph::CsrGraph g = graph::build_csr(std::move(el));
  const graph::vid_t root = graph::sample_roots(g, 1, params.seed + 1)[0];
  const auto hybrid =
      bfsx::graph500::make_native_hybrid_engine(bfsx::core::HybridPolicy{});
  const auto timed = hybrid(g, root);
  (void)timed;
  return seconds_since(t0);
}

struct CheckOverhead {
  double on_seconds = 0;
  double off_seconds = 0;
  double pct = 0;
};

/// Measures the cost of the always-on BFSX_CHECK tier by running the
/// scale-14 ingest+traverse path with checks enabled vs. disabled via
/// the kill switch (the switch's only sanctioned use). Best-of-N so a
/// single scheduler hiccup cannot fake an overhead. The contract in
/// src/check/contract.h budgets this tier at < 2%.
CheckOverhead measure_check_overhead() {
  bfsx::graph::RmatParams params;
  params.scale = 14;
  params.edgefactor = 16;
  constexpr int kReps = 7;
  CheckOverhead m;
  (void)ingest_traverse_once(params);  // warm-up, discarded
  m.on_seconds = 1e30;
  m.off_seconds = 1e30;
  // Interleave on/off samples so slow drift (frequency scaling, page
  // cache) hits both sides equally; best-of-N absorbs hiccups.
  for (int r = 0; r < kReps; ++r) {
    m.on_seconds = std::min(m.on_seconds, ingest_traverse_once(params));
    {
      bfsx::check::ScopedDisableChecks off;
      m.off_seconds = std::min(m.off_seconds, ingest_traverse_once(params));
    }
  }
  m.pct = (m.on_seconds / m.off_seconds - 1.0) * 100.0;
  return m;
}

}  // namespace

int main() {
  using namespace bfsx::bench;
  print_header("build-pipeline",
               "ingestion scaling: generate / validate / build / traverse "
               "per thread count");

  bfsx::graph::RmatParams params;
  params.scale = pick_scale(16, 20);
  params.edgefactor = 16;
  std::printf("graph: R-MAT scale %d (%s vertices), edgefactor %d\n",
              params.scale, scale_label(params.scale).c_str(),
              params.edgefactor);

  std::vector<int> thread_counts{1};
#ifdef _OPENMP
  thread_counts = {1, 2, 4};
  const int hw = omp_get_max_threads();
  if (hw > 4) thread_counts.push_back(hw);
#endif

  std::vector<StageTimes> rows;
  rows.reserve(thread_counts.size());
  for (int t : thread_counts) rows.push_back(run_at(t, params));

  // Determinism gate: same bits out of every thread count, or the run
  // is worthless as a benchmark of *this* pipeline.
  bool deterministic = true;
  for (const StageTimes& st : rows) {
    deterministic = deterministic && st.edge_hash == rows.front().edge_hash &&
                    st.csr_hash == rows.front().csr_hash;
  }
  std::printf("determinism across thread counts: %s\n",
              deterministic ? "OK (edge + CSR hashes identical)" : "BROKEN");

  const double base_ingest = rows.front().ingest();
  std::printf("\n%8s %10s %10s %10s %10s %10s %8s\n", "threads", "generate",
              "validate", "build", "traverse", "ingest", "speedup");
  JsonReport report("build");
  for (const StageTimes& st : rows) {
    const double speedup = base_ingest / st.ingest();
    std::printf("%8d %9.3fs %9.3fs %9.3fs %9.3fs %9.3fs %7.2fx\n", st.threads,
                st.generate, st.validate, st.build, st.traverse, st.ingest(),
                speedup);
    report.row();
    report.cell("threads", st.threads);
    report.cell("scale", params.scale);
    report.cell("edgefactor", params.edgefactor);
    report.cell("generate_seconds", st.generate);
    report.cell("validate_seconds", st.validate);
    report.cell("build_seconds", st.build);
    report.cell("traverse_seconds", st.traverse);
    report.cell("ingest_seconds", st.ingest());
    report.cell("ingest_speedup", speedup);
    report.cell("deterministic", deterministic ? 1 : 0);
    report.cell("perf_valid",
                (st.build_perf.valid && st.traverse_perf.valid) ? 1 : 0);
    report.cell("build_ipc", st.build_perf.ipc());
    report.cell("build_miss_rate", st.build_perf.cache_miss_rate());
    report.cell("traverse_ipc", st.traverse_perf.ipc());
    report.cell("traverse_miss_rate", st.traverse_perf.cache_miss_rate());
    if (st.build_perf.valid && st.traverse_perf.valid) {
      std::printf("         build: IPC %.2f, LLC miss %.1f%%; traverse: "
                  "IPC %.2f, LLC miss %.1f%%\n",
                  st.build_perf.ipc(), st.build_perf.cache_miss_rate() * 100.0,
                  st.traverse_perf.ipc(),
                  st.traverse_perf.cache_miss_rate() * 100.0);
    }
  }

  // Contract-check overhead A/B (BFSX_CHECK tier, budget < 2%).
  const CheckOverhead overhead = measure_check_overhead();
  std::printf(
      "\ncheck overhead (scale-14 ingest+traverse): checks-on %.3fs, "
      "checks-off %.3fs, overhead %+.2f%% (budget < 2%%)\n",
      overhead.on_seconds, overhead.off_seconds, overhead.pct);
  report.row();
  report.cell("kind", "check_overhead");
  report.cell("scale", 14);
  report.cell("checks_on_seconds", overhead.on_seconds);
  report.cell("checks_off_seconds", overhead.off_seconds);
  report.cell("check_overhead_pct", overhead.pct);

  report.write();
  return deterministic ? 0 : 1;
}
