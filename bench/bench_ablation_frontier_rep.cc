// Ablation: bit-map vs bool-map current-queue representation
// (paper Section V-A mentions both). Wall-clock comparison of the two
// bottom-up implementations on this host via google-benchmark, plus an
// exactness cross-check.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "bfs/boolmap.h"
#include "bfs/drivers.h"
#include "bfs/validate.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

const BuiltGraph& bench_graph() {
  static const BuiltGraph bg = make_graph(pick_scale(16, 20), 16);
  return bg;
}

void BM_BottomUpBitmap(benchmark::State& state) {
  const BuiltGraph& bg = bench_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs::run_bottom_up(bg.csr, bg.root));
  }
  state.SetItemsProcessed(state.iterations() * bg.csr.num_edges());
}
BENCHMARK(BM_BottomUpBitmap)->Unit(benchmark::kMillisecond);

void BM_BottomUpBoolmap(benchmark::State& state) {
  const BuiltGraph& bg = bench_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs::run_bottom_up_boolmap(bg.csr, bg.root));
  }
  state.SetItemsProcessed(state.iterations() * bg.csr.num_edges());
}
BENCHMARK(BM_BottomUpBoolmap)->Unit(benchmark::kMillisecond);

void BM_TopDownForReference(benchmark::State& state) {
  const BuiltGraph& bg = bench_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs::run_top_down(bg.csr, bg.root));
  }
  state.SetItemsProcessed(state.iterations() * bg.csr.num_edges());
}
BENCHMARK(BM_TopDownForReference)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: frontier representation (paper V-A: \"bit-map or "
              "bool-map to store the queue vector\")\n");
  const BuiltGraph& bg = bench_graph();
  const bfs::BfsResult a = bfs::run_bottom_up(bg.csr, bg.root);
  const bfs::BfsResult b = bfs::run_bottom_up_boolmap(bg.csr, bg.root);
  std::printf("exactness cross-check: levels %s, reached %d vs %d\n\n",
              bfs::same_levels(a, b) ? "IDENTICAL" : "DIFFER (BUG)",
              a.reached, b.reached);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
