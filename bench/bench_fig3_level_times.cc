// Reproduces paper Fig. 3: per-level time of pure top-down vs pure
// bottom-up on the CPU. Bottom-up starts slower, wins through the fat
// middle, and loses again in the final levels.
#include "bench_common.h"

#include "core/level_trace.h"

namespace {

using namespace bfsx;
using namespace bfsx::bench;

}  // namespace

int main() {
  print_header("Figure 3",
               "per-level top-down vs bottom-up time (CPU model)");
  const int scale = pick_scale(18, 22);
  const BuiltGraph bg = make_graph(scale, 16);
  const core::LevelTrace trace = core::build_level_trace(bg.csr, bg.root);
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();

  std::printf("SCALE=%d edgefactor=16, times in milliseconds\n", scale);
  std::printf("%-6s %12s %12s %12s %10s\n", "level", "|V|cq", "TD(ms)",
              "BU(ms)", "faster");
  int crossings = 0;
  bool bu_was_faster = false;
  for (std::size_t i = 0; i < trace.levels.size(); ++i) {
    const core::TraceLevel& lvl = trace.levels[i];
    const double td =
        sim::top_down_level_seconds(cpu, lvl.frontier_edges) * 1e3;
    const double bu =
        sim::bottom_up_level_seconds(cpu, trace.num_vertices,
                                     lvl.bu_edges_hit, lvl.bu_edges_miss) *
        1e3;
    const bool bu_faster = bu < td;
    if (i > 0 && bu_faster != bu_was_faster) ++crossings;
    bu_was_faster = bu_faster;
    std::printf("%-6d %12d %12.4f %12.4f %10s\n", lvl.level,
                lvl.frontier_vertices, td, bu, bu_faster ? "BU" : "TD");
  }
  std::printf("-> direction advantage flips %d time(s); the paper's Fig. 3 "
              "shows TD -> BU -> TD\n", crossings);
  return 0;
}
